//! Cross-crate integration test: the accuracy-side pipeline (synthetic data →
//! pre-training → ADMM compression → evaluation), i.e. the machinery behind
//! Tables 2/3 and the budget sweep, at miniature scale.

use rand::{rngs::StdRng, SeedableRng};
use tdc::pipeline::TdcPipeline;
use tdc::tiling::TilingStrategy;
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::data::{SyntheticConfig, SyntheticDataset};
use tdc_nn::models::resnet_cifar;
use tdc_nn::train::{evaluate, train, TrainConfig};
use tdc_tucker::admm::AdmmConfig;

#[test]
fn resnet_family_compression_keeps_accuracy_above_chance_and_reduces_flops() {
    let mut cfg = SyntheticConfig::cifar_like(12, 17);
    cfg.classes = 6;
    let data = SyntheticDataset::generate(cfg).expect("dataset");
    let (train_set, test_set) = data.split(0.8);

    let mut rng = StdRng::seed_from_u64(170);
    let mut net = resnet_cifar(8, 1, 16, 16, 3, 6, &mut rng);
    train(
        &mut net,
        &train_set,
        &TrainConfig {
            epochs: 6,
            batch_size: 16,
            learning_rate: 0.05,
            ..Default::default()
        },
    )
    .expect("pre-training");
    let baseline = evaluate(&mut net, &test_set, 16).expect("baseline");
    assert!(
        baseline > 0.4,
        "the baseline should learn the separable task, got {baseline}"
    );

    let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
    let admm = AdmmConfig {
        epochs: 4,
        finetune_epochs: 2,
        batch_size: 16,
        ..Default::default()
    };
    let result = pipeline
        .compress_and_train(&mut net, &train_set, &test_set, 0.5, 2, admm)
        .expect("compression");

    // The compression must actually compress...
    assert!(
        result.achieved_reduction > 0.2,
        "reduction {}",
        result.achieved_reduction
    );
    assert!(result.ranks.iter().any(|r| r.is_some()));
    // ...ADMM must land in the neighbourhood of (usually above) the naive
    // projection — at this miniature scale the two can swap places by a few
    // test samples, so allow a small tolerance; the strict comparison is made
    // in `tdc-tucker`'s unit tests and by the Table 2 harness at larger scale.
    assert!(
        result.admm_accuracy + 0.15 >= result.direct_accuracy,
        "admm {} vs direct {}",
        result.admm_accuracy,
        result.direct_accuracy
    );
    // ...and the compressed model must stay above chance (1/6).
    assert!(
        result.admm_accuracy > 1.0 / 6.0 + 0.05,
        "admm accuracy {}",
        result.admm_accuracy
    );
}
