//! Cross-crate integration tests of the multi-model serving front door:
//! bit-identical outputs through HTTP vs. direct engine calls with two
//! models served concurrently, per-model admission control (one flooded
//! model sheds load with typed `Overloaded` rejections while its neighbour's
//! latency stays bounded), request deadlines surfacing as `504` without
//! reaching the executor, keep-alive connection reuse with bit-identical
//! outputs, and the batched POST body riding one executor batch.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdc_repro::serve::http::{
    http_request, is_timeout, BatchInferBody, BatchInferReply, InferBody, InferReply,
};
use tdc_repro::serve::{
    serving_descriptor, BackendKind, BatchingOptions, HealthReply, HttpClient, HttpServer,
    ModelConfig, ModelRegistry, RuntimeOptions, ServeEngine, ServeError,
};
use tdc_repro::tensor::{init, Tensor};

#[test]
fn two_models_over_http_match_direct_engine_calls_bit_for_bit() {
    let descriptors = [
        serving_descriptor("http-a", 12, 4, 8),
        serving_descriptor("http-b", 10, 4, 6),
    ];
    let backends = [BackendKind::Cpu, BackendKind::SimGpu];

    // Reference outputs from direct, in-process engines (same descriptor,
    // same default planning and seed, so the weights are identical).
    let mut rng = StdRng::seed_from_u64(4242);
    let mut inputs: Vec<Vec<Tensor>> = Vec::new();
    let mut expected: Vec<Vec<Tensor>> = Vec::new();
    for (descriptor, &backend) in descriptors.iter().zip(&backends) {
        let engine = ServeEngine::builder(descriptor)
            .runtime(RuntimeOptions {
                backend,
                ..RuntimeOptions::default()
            })
            .build()
            .unwrap();
        let dims = engine.model().input_dims().to_vec();
        let model_inputs: Vec<Tensor> = (0..6)
            .map(|_| init::uniform(dims.clone(), -1.0, 1.0, &mut rng))
            .collect();
        expected.push(
            model_inputs
                .iter()
                .map(|x| engine.infer(x.clone()).unwrap().output)
                .collect(),
        );
        inputs.push(model_inputs);
        engine.shutdown();
    }

    // The same two models behind the HTTP front end.
    let registry = ModelRegistry::new(4);
    for (descriptor, &backend) in descriptors.iter().zip(&backends) {
        registry
            .register(
                &descriptor.slug(),
                descriptor,
                ModelConfig {
                    runtime: RuntimeOptions {
                        backend,
                        ..RuntimeOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
    }
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();

    // Both models queried concurrently, one client thread per model.
    let clients: Vec<_> = descriptors
        .iter()
        .zip(inputs)
        .map(|(descriptor, model_inputs)| {
            let name = descriptor.slug();
            std::thread::spawn(move || -> Vec<Vec<f32>> {
                model_inputs
                    .iter()
                    .map(|input| {
                        let body = serde_json::to_string(&InferBody {
                            input: input.data().to_vec(),
                            dims: Some(input.dims().to_vec()),
                            deadline_ms: None,
                        })
                        .unwrap();
                        let (status, reply) = http_request(
                            &addr,
                            "POST",
                            &format!("/v1/models/{name}/infer"),
                            Some(&body),
                        )
                        .unwrap();
                        assert_eq!(status, 200, "{reply}");
                        let reply: InferReply = serde_json::from_str(&reply).unwrap();
                        assert_eq!(reply.model, name);
                        reply.output
                    })
                    .collect()
            })
        })
        .collect();
    let via_http: Vec<Vec<Vec<f32>>> = clients
        .into_iter()
        .map(|t| t.join().expect("client thread"))
        .collect();

    // Bit-identical across the JSON wire format, for both models.
    for (model_index, (model_http, model_expected)) in
        via_http.iter().zip(expected.iter()).enumerate()
    {
        for (request_index, (http_output, direct)) in
            model_http.iter().zip(model_expected).enumerate()
        {
            assert_eq!(
                http_output.as_slice(),
                direct.data(),
                "model {model_index} request {request_index}: HTTP output diverged from the \
                 direct engine call"
            );
        }
    }

    let registry = server.shutdown();
    let metrics = registry.metrics();
    assert_eq!(metrics.total_completed_requests, 12);
    assert_eq!(metrics.total_rejected_requests, 0);
}

#[test]
fn flooding_one_model_rejects_typed_and_leaves_the_other_model_fast() {
    // "flood" holds batches open for a long delay with a small admission
    // bound, so a burst deterministically overflows it; "steady" is a
    // normal low-latency model sharing the registry.
    const FLOOD_BOUND: usize = 8;
    let flood_delay = Duration::from_millis(1500);
    let registry = ModelRegistry::new(4);
    registry
        .register(
            "flood",
            &serving_descriptor("ov-flood", 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 16,
                    max_batch_delay: flood_delay,
                    max_queue_depth: FLOOD_BOUND,
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: 1,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    registry
        .register(
            "steady",
            &serving_descriptor("ov-steady", 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 4,
                    max_batch_delay: Duration::from_millis(1),
                    ..BatchingOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();
    let registry = Arc::clone(server.registry());

    // Flood: 24 instantaneous submissions against a bound of 8. The single
    // worker is waiting out the 1.5 s batch delay, so exactly the first 8
    // are admitted and every later push is a typed rejection.
    let mut rng = StdRng::seed_from_u64(7);
    let mut admitted = Vec::new();
    let mut rejections = 0usize;
    for _ in 0..24 {
        let input = init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng);
        match registry.submit("flood", input) {
            Ok(pending) => admitted.push(pending),
            Err(e) => {
                assert!(
                    matches!(e, ServeError::Overloaded { limit: FLOOD_BOUND }),
                    "expected a typed Overloaded rejection, got {e}"
                );
                rejections += 1;
            }
        }
    }
    assert_eq!(admitted.len(), FLOOD_BOUND);
    assert_eq!(rejections, 24 - FLOOD_BOUND);

    // The front door surfaces the same condition as 429 while the flood
    // model's queue is still full.
    let body = serde_json::to_string(&InferBody {
        input: vec![0.5f32; 10 * 10 * 4],
        dims: Some(vec![10, 10, 4]),
        deadline_ms: None,
    })
    .unwrap();
    let (status, reply) =
        http_request(&addr, "POST", "/v1/models/flood/infer", Some(&body)).unwrap();
    assert_eq!(status, 429, "{reply}");
    assert!(reply.contains("overloaded"), "{reply}");

    // Meanwhile the steady model keeps serving with bounded latency: its
    // engine, workers and queue are its own.
    for _ in 0..12 {
        let input = init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng);
        let response = registry.infer("steady", input).unwrap();
        assert_eq!(response.output.dims(), &[6]);
    }
    let metrics = registry.metrics();
    let steady = metrics.models.iter().find(|m| m.model == "steady").unwrap();
    assert_eq!(steady.metrics.completed_requests, 12);
    assert_eq!(steady.rejected_requests, 0);
    assert!(
        steady.metrics.total_latency.p99_ms < flood_delay.as_secs_f64() * 1e3 / 2.0,
        "steady p99 {:.2} ms is not isolated from the flooded neighbour",
        steady.metrics.total_latency.p99_ms
    );
    let flood = metrics.models.iter().find(|m| m.model == "flood").unwrap();
    assert_eq!(flood.rejected_requests, (24 - FLOOD_BOUND) as u64 + 1);

    // The admitted flood requests are still served once the batch releases.
    for pending in admitted {
        let response = pending.wait().unwrap();
        assert_eq!(response.output.dims(), &[6]);
    }
    drop(registry);
    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    let reports = registry.shutdown();
    assert_eq!(reports.len(), 2);
}

#[test]
fn past_deadline_request_answers_504_without_reaching_the_executor() {
    // "saturated": a single worker that would hold an under-full batch open
    // for 1.5 s — any request with a short deadline expires while queued.
    let flood_delay = Duration::from_millis(1500);
    let registry = ModelRegistry::new(2);
    registry
        .register(
            "sat",
            &serving_descriptor("dl-sat", 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 16,
                    max_batch_delay: flood_delay,
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: 1,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();

    let body = serde_json::to_string(&InferBody {
        input: vec![0.5f32; 10 * 10 * 4],
        dims: Some(vec![10, 10, 4]),
        deadline_ms: Some(1),
    })
    .unwrap();
    let started = Instant::now();
    let (status, reply) = http_request(&addr, "POST", "/v1/models/sat/infer", Some(&body)).unwrap();
    let elapsed = started.elapsed();
    assert_eq!(status, 504, "{reply}");
    assert!(reply.contains("deadline exceeded"), "{reply}");
    assert!(
        elapsed < flood_delay / 2,
        "the deadline did not bound the wait: {elapsed:?}"
    );

    // The request was admitted (not rejected) but never executed: the
    // engine counts one expiry, zero completions, zero latency samples.
    let metrics = server.registry().engine("sat").unwrap().metrics();
    assert_eq!(metrics.deadline_exceeded, 1);
    assert_eq!(
        metrics.completed_requests, 0,
        "the expired request must never reach the executor"
    );
    assert_eq!(metrics.total_latency.count, 0);

    // The registry-level snapshot (what /metrics serializes) agrees.
    let (status, metrics_json) = http_request(&addr, "GET", "/metrics", None).unwrap();
    assert_eq!(status, 200);
    assert!(
        metrics_json.contains("\"total_deadline_exceeded\":1"),
        "{metrics_json}"
    );

    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    registry.shutdown();
}

#[test]
fn healthz_readiness_tracks_admission_saturation() {
    // A congestible model: a single worker holds under-full batches open for
    // 1.5 s, and the admission bound is 4 — four queued requests saturate it.
    let registry = ModelRegistry::new(2);
    registry
        .register(
            "hz",
            &serving_descriptor("hz-model", 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 16,
                    max_batch_delay: Duration::from_millis(1500),
                    max_queue_depth: 4,
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: 1,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();
    let registry = Arc::clone(server.registry());

    // Idle fleet: alive, ready, admission open, nothing queued.
    let (status, reply) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{reply}");
    let health: HealthReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(health.status, "ok");
    assert_eq!(health.models, 1);
    assert_eq!(health.queue_depth, 0);
    assert_eq!(health.admission, "open");
    assert!(health.ready, "an idle serving process must be ready");

    // Fill the queue to the admission bound; the batch is still forming, so
    // every submission is queued (not dispatched) for the next 1.5 s.
    let mut rng = StdRng::seed_from_u64(99);
    let admitted: Vec<_> = (0..4)
        .map(|_| {
            let input = init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng);
            registry.submit("hz", input).unwrap()
        })
        .collect();

    let (status, reply) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{reply}");
    let health: HealthReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(health.queue_depth, 4);
    assert_eq!(
        health.admission, "saturated",
        "a queue at its admission bound must flip the health report"
    );
    assert!(health.ready, "saturation is backpressure, not unreadiness");

    for pending in admitted {
        pending.wait().unwrap();
    }
    drop(registry);
    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    registry.shutdown();
}

#[test]
fn admin_shutdown_surfaces_on_the_signal_and_answers_before_teardown() {
    let registry = ModelRegistry::new(2);
    registry
        .register(
            "sd",
            &serving_descriptor("sd-model", 10, 4, 6),
            ModelConfig::default(),
        )
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();
    let signal = server
        .shutdown_signal()
        .expect("a registry-bound server exposes its shutdown signal");
    assert!(!signal.requested(), "signal must start un-requested");

    let (status, reply) = http_request(&addr, "POST", "/admin/shutdown", None).unwrap();
    assert_eq!(status, 200, "{reply}");
    assert!(reply.contains("shutting-down"), "{reply}");
    assert!(
        signal.wait_timeout(Duration::from_secs(2)),
        "the admin request must reach the waitable signal"
    );

    // The handler only *requests* shutdown — the daemon owns the drain — so
    // the listener keeps answering until its owner acts on the signal.
    let (status, reply) = http_request(&addr, "GET", "/healthz", None).unwrap();
    assert_eq!(status, 200, "{reply}");

    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    registry.shutdown();
}

#[test]
fn client_request_timeout_is_typed_and_a_fresh_connection_recovers() {
    // A reply that cannot arrive within 150 ms: the single worker holds the
    // under-full batch open for the full 1.5 s delay.
    let registry = ModelRegistry::new(2);
    registry
        .register(
            "to",
            &serving_descriptor("to-model", 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 16,
                    max_batch_delay: Duration::from_millis(1500),
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: 1,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();
    let body = serde_json::to_string(&InferBody {
        input: vec![0.5f32; 10 * 10 * 4],
        dims: Some(vec![10, 10, 4]),
        deadline_ms: None,
    })
    .unwrap();

    let mut client = HttpClient::connect(&addr).unwrap();
    client
        .set_request_timeout(Some(Duration::from_millis(150)))
        .unwrap();
    let started = Instant::now();
    let err = client
        .request("POST", "/v1/models/to/infer", Some(&body))
        .expect_err("a 1.5 s reply must trip a 150 ms request timeout");
    assert!(
        is_timeout(&err),
        "the timeout must surface as a typed TimedOut/WouldBlock error, got {err}"
    );
    assert!(
        started.elapsed() < Duration::from_millis(1000),
        "the client timeout did not bound the wait"
    );

    // The slow reply is still being produced server-side; a fresh
    // connection without the aggressive timeout completes normally.
    let (status, reply) = http_request(&addr, "POST", "/v1/models/to/infer", Some(&body)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let reply: InferReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(reply.dims, vec![6]);

    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    registry.shutdown();
}

#[test]
fn keep_alive_connection_matches_connection_close_bit_for_bit() {
    let descriptor = serving_descriptor("ka-parity", 10, 4, 6);
    let registry = ModelRegistry::new(2);
    registry
        .register("ka", &descriptor, ModelConfig::default())
        .unwrap();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let addr = server.local_addr();

    let mut rng = StdRng::seed_from_u64(321);
    let bodies: Vec<String> = (0..4)
        .map(|_| {
            let input = init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng);
            serde_json::to_string(&InferBody {
                input: input.data().to_vec(),
                dims: Some(input.dims().to_vec()),
                deadline_ms: None,
            })
            .unwrap()
        })
        .collect();

    // Reference: one fresh Connection: close request per input.
    let via_close: Vec<Vec<f32>> = bodies
        .iter()
        .map(|body| {
            let (status, reply) =
                http_request(&addr, "POST", "/v1/models/ka/infer", Some(body)).unwrap();
            assert_eq!(status, 200, "{reply}");
            serde_json::from_str::<InferReply>(&reply).unwrap().output
        })
        .collect();

    // The same inputs over ONE keep-alive connection.
    let mut client = HttpClient::connect(&addr).unwrap();
    let via_keep_alive: Vec<Vec<f32>> = bodies
        .iter()
        .map(|body| {
            let (status, reply) = client
                .request("POST", "/v1/models/ka/infer", Some(body))
                .unwrap();
            assert_eq!(status, 200, "{reply}");
            serde_json::from_str::<InferReply>(&reply).unwrap().output
        })
        .collect();
    assert!(
        client.requests_sent() >= 3,
        "the connection must have served at least 3 sequential requests"
    );
    assert_eq!(
        via_keep_alive, via_close,
        "keep-alive outputs diverged from Connection: close outputs"
    );

    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    registry.shutdown();
}

#[test]
fn batched_post_body_rides_one_batch_and_matches_sequential_singles() {
    let descriptor = serving_descriptor("batch-parity", 10, 4, 6);
    let make_registry = || {
        let registry = ModelRegistry::new(2);
        registry
            .register(
                "bp",
                &descriptor,
                ModelConfig {
                    batching: BatchingOptions {
                        max_batch_size: 8,
                        ..BatchingOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        registry
    };

    let mut rng = StdRng::seed_from_u64(654);
    let inputs: Vec<Vec<f32>> = (0..4)
        .map(|_| {
            init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng)
                .data()
                .to_vec()
        })
        .collect();

    // Reference: N sequential single-sample calls on a fresh server.
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(make_registry())).unwrap();
    let addr = server.local_addr();
    let sequential: Vec<Vec<f32>> = inputs
        .iter()
        .map(|input| {
            let body = serde_json::to_string(&InferBody {
                input: input.clone(),
                dims: Some(vec![10, 10, 4]),
                deadline_ms: None,
            })
            .unwrap();
            let (status, reply) =
                http_request(&addr, "POST", "/v1/models/bp/infer", Some(&body)).unwrap();
            assert_eq!(status, 200, "{reply}");
            serde_json::from_str::<InferReply>(&reply).unwrap().output
        })
        .collect();
    drop(server);

    // One batched POST carrying all N inputs on another fresh server (same
    // descriptor and seed -> identical weights).
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(make_registry())).unwrap();
    let addr = server.local_addr();
    let body = serde_json::to_string(&BatchInferBody {
        inputs: inputs.clone(),
        dims: Some(vec![10, 10, 4]),
        deadline_ms: None,
    })
    .unwrap();
    let (status, reply) = http_request(&addr, "POST", "/v1/models/bp/infer", Some(&body)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let reply: BatchInferReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(reply.count, 4);
    assert_eq!(
        reply.batch_sizes,
        vec![4, 4, 4, 4],
        "the batched POST must ride one executor batch"
    );
    assert_eq!(
        reply.outputs, sequential,
        "batched POST outputs diverged from sequential single calls"
    );

    let registry = server.shutdown();
    let registry = Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("registry still shared"));
    registry.shutdown();
}
