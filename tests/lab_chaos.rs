//! End-to-end lab drill through the umbrella crate: a seeded square-wave
//! burst trace over a two-model registry with a worker panic scripted
//! mid-trace. The contract under fire:
//!
//! * clients only ever see **typed** errors (`ExecutionFailed` from the
//!   engine's unwind containment — never a poisoned lock, a hung
//!   channel, or a transport-level surprise);
//! * the engine's books reconcile — every submitted request is
//!   accounted as completed, expired, or failed;
//! * after the fault budget drains, a replay on the **same** deployment
//!   produces outputs bit-identical to a never-faulted run.

use tdc_repro::lab::runner::{deploy, reconcile, replay, ReplayOptions};
use tdc_repro::lab::spec::WorkloadSpec;
use tdc_repro::lab::trace::generate;

const SPEC: &str = r#"{
  "name": "burst-panic-drill",
  "seed": 90,
  "models": [
    {"name": "drill-hot", "spatial": 8, "base_channels": 4, "classes": 4},
    {"name": "drill-bulk", "spatial": 10, "base_channels": 4, "classes": 6}
  ],
  "model_mix": [0.7, 0.3],
  "size_mix": {"kind": "bounded-pareto", "alpha": 1.5, "min": 1, "max": 4},
  "phases": [
    {"label": "burst", "duration_ms": 260,
     "arrival": {"kind": "square", "low_hz": 80, "high_hz": 380, "period_ms": 130}}
  ],
  "faults": [
    {"at_ms": 90, "kind": "backend-panic", "model": "drill-hot", "count": 2}
  ]
}"#;

#[test]
fn burst_trace_with_mid_trace_worker_panic_heals_bit_identically() {
    let spec = WorkloadSpec::parse(SPEC).expect("drill spec");
    let trace = generate(&spec);
    assert!(trace.events.len() > 20, "burst trace too small to drill");
    let options = ReplayOptions::default();

    // Reference: same trace, no fault script — the clean fingerprint.
    let clean_spec = WorkloadSpec {
        faults: vec![],
        ..spec.clone()
    };
    let reference = deploy(&clean_spec, &trace, &options).expect("deploy reference");
    let clean = replay(&reference, &clean_spec, &trace, &options);
    assert!(clean.unexpected.is_empty() && clean.failed == 0 && clean.shed == 0);
    drop(reference.registry.shutdown());

    // Drill: the injector panics `forward_batch` twice starting at 90ms.
    let deployment = deploy(&spec, &trace, &options).expect("deploy drill");
    let drill = replay(&deployment, &spec, &trace, &options);
    assert!(
        drill.unexpected.is_empty(),
        "untyped failures leaked to clients: {:?}",
        drill.unexpected
    );
    assert!(drill.failed > 0, "the scripted panic never fired");
    assert_eq!(
        drill.shed, 0,
        "queues are sized to the trace; nothing sheds"
    );
    let injector = &deployment.injectors["drill-hot"];
    assert!(injector.is_idle(), "panic budget must be spent");
    assert!(injector.injected_panics() > 0);
    assert_eq!(injector.injected_errors(), 0);

    // Heal: same deployment, fault-free spec — bit-parity with reference.
    let healed = replay(&deployment, &clean_spec, &trace, &options);
    assert!(healed.unexpected.is_empty() && healed.failed == 0);
    assert_eq!(
        healed.output_fingerprint, clean.output_fingerprint,
        "post-heal outputs drifted from the fault-free reference"
    );

    // Books balance across the drill and the heal on this deployment.
    let totals = reconcile(&deployment.registry).expect("metrics reconcile");
    assert_eq!(totals.submitted, drill.submitted + healed.submitted);
    assert_eq!(
        totals.completed + totals.expired + totals.failed,
        drill.completed + drill.expired + drill.failed + healed.completed
    );
    assert_eq!(totals.rejected, 0);
}
