//! Cross-crate integration tests of the replica-fleet router tier:
//! routed inference bit-identical to a direct engine call (single and
//! batched bodies), a replica killed under load masked entirely by
//! failover with deterministic ejection and readmission through the
//! prober, a rolling fleet replan that keeps serving across the boundary,
//! and the `Retry-After` path end to end — engine hint → HTTP header →
//! router backoff decision.

use std::sync::Arc;
use std::time::{Duration, Instant};
use tdc_repro::router::testkit::{self, drain_replica, fleet_config, manual_probe_options};
use tdc_repro::router::{FleetReply, Router, RouterOptions, RoutingPolicy};
use tdc_repro::serve::http::{
    http_request, http_request_with_headers, BatchInferBody, BatchInferReply, InferBody, InferReply,
};
use tdc_repro::serve::{
    serving_descriptor, BatchingOptions, ControllerStatus, HttpClient, HttpServer, ModelConfig,
    ModelRegistry, PlanningOptions, RuntimeOptions, ServeEngine, TuneReport,
};
use tdc_repro::tensor::Tensor;

const MODEL: &str = "fleet-hot";
const DIMS: [usize; 3] = [10, 10, 4];

/// One in-process replica serving [`MODEL`] behind its own HTTP front end.
fn bind_replica(addr: &str) -> HttpServer {
    testkit::bind_replica(
        addr,
        MODEL,
        &serving_descriptor(MODEL, 10, 4, 6),
        fleet_config(),
    )
}

fn bind_fleet(n: usize, options: RouterOptions) -> (Vec<HttpServer>, Arc<Router>, HttpServer) {
    testkit::bind_fleet(
        n,
        options,
        MODEL,
        &serving_descriptor(MODEL, 10, 4, 6),
        &fleet_config(),
    )
}

fn infer_body(deadline_ms: Option<u64>) -> String {
    serde_json::to_string(&InferBody {
        input: vec![0.5f32; DIMS.iter().product()],
        dims: None,
        deadline_ms,
    })
    .unwrap()
}

#[test]
fn routed_inference_matches_a_direct_engine_bit_for_bit() {
    let (servers, router, front) =
        bind_fleet(2, manual_probe_options(RoutingPolicy::ConsistentHash));
    let addr = front.local_addr();
    let path = format!("/v1/models/{MODEL}/infer");

    // The reference: a direct in-process engine with the same descriptor,
    // planning and batching (identical seed -> identical weights).
    let config = fleet_config();
    let engine = ServeEngine::builder(&serving_descriptor(MODEL, 10, 4, 6))
        .planning(PlanningOptions::default())
        .batching(config.batching.clone())
        .runtime(config.runtime.clone())
        .build()
        .unwrap();
    let input = Tensor::from_vec(DIMS.to_vec(), vec![0.5f32; DIMS.iter().product()]).unwrap();
    let expected = engine.infer(input).unwrap().output.data().to_vec();
    engine.shutdown();

    // Single-sample body through the router.
    let (status, reply) = http_request(&addr, "POST", &path, Some(&infer_body(None))).unwrap();
    assert_eq!(status, 200, "routed infer failed: {reply}");
    let routed: InferReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        routed.output, expected,
        "routed single diverged from direct"
    );

    // Batched body through the router: every sample identical, so every
    // output must equal the single-sample reference bit for bit.
    let batch = serde_json::to_string(&BatchInferBody {
        inputs: vec![vec![0.5f32; DIMS.iter().product()]; 3],
        dims: None,
        deadline_ms: None,
    })
    .unwrap();
    let (status, reply) = http_request(&addr, "POST", &path, Some(&batch)).unwrap();
    assert_eq!(status, 200, "routed batch failed: {reply}");
    let batched: BatchInferReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(batched.count, 3);
    for output in &batched.outputs {
        assert_eq!(
            output, &expected,
            "routed batch sample diverged from direct"
        );
    }

    let metrics = router.metrics();
    assert_eq!(metrics.requests_total, 2);
    assert_eq!(metrics.forwarded_total, 2);
    assert_eq!(metrics.shed_total, 0);

    router.stop();
    front.stop();
    for server in servers {
        drain_replica(server);
    }
}

#[test]
fn killing_a_replica_under_load_is_invisible_and_ejection_readmission_observable() {
    let (mut servers, router, front) =
        bind_fleet(3, manual_probe_options(RoutingPolicy::LeastLoaded));
    let addr = front.local_addr();
    let path = format!("/v1/models/{MODEL}/infer");
    let body = infer_body(None);

    // Mark every replica's probe gauges once while all three are up.
    router.probe_once();
    assert!(router.metrics().replicas.iter().all(|r| r.healthy));

    // Hammer from three keep-alive clients while replica 0 dies mid-load.
    let hammer_threads: Vec<_> = (0..3)
        .map(|_| {
            let body = body.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                let mut failures = Vec::new();
                let mut client: Option<HttpClient> = None;
                for _ in 0..60 {
                    if client.is_none() {
                        client = HttpClient::connect(&addr).ok();
                    }
                    let outcome = match client.as_mut() {
                        Some(live) => live.request("POST", &path, Some(&body)),
                        None => http_request(&addr, "POST", &path, Some(&body)),
                    };
                    match outcome {
                        Ok((200, _)) => {}
                        Ok((status, reply)) => {
                            failures.push(format!("{status} {reply}"));
                            client = None;
                        }
                        Err(e) => {
                            failures.push(format!("transport: {e}"));
                            client = None;
                        }
                    }
                }
                failures
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(20));
    let victim_addr = servers[0].local_addr();
    drain_replica(servers.remove(0));
    for thread in hammer_threads {
        let failures = thread.join().unwrap();
        assert!(
            failures.is_empty(),
            "client-visible failures while a replica died: {failures:?}"
        );
    }

    // Deterministic ejection: eject_after consecutive failed sweeps.
    for _ in 0..router.options().eject_after {
        router.probe_once();
    }
    let metrics = router.metrics();
    assert_eq!(metrics.ejections_total, 1);
    assert!(!metrics.replicas[0].healthy, "dead replica still admitted");
    assert!(
        metrics.failovers_total >= 1,
        "requests to the dead replica never failed over"
    );

    // Restart on the old port; readmit_after successful sweeps re-admit.
    servers.insert(0, bind_replica(&victim_addr.to_string()));
    for _ in 0..router.options().readmit_after {
        router.probe_once();
    }
    let metrics = router.metrics();
    assert_eq!(metrics.readmissions_total, 1);
    assert!(
        metrics.replicas.iter().all(|r| r.healthy),
        "fleet not fully healthy after the restart"
    );

    // The healed fleet serves.
    let (status, reply) = http_request(&addr, "POST", &path, Some(&body)).unwrap();
    assert_eq!(status, 200, "post-heal infer failed: {reply}");

    router.stop();
    front.stop();
    for server in servers {
        drain_replica(server);
    }
}

#[test]
fn rolling_replan_keeps_serving_and_converges_every_replica() {
    let (servers, router, front) = bind_fleet(3, manual_probe_options(RoutingPolicy::LeastLoaded));
    let addr = front.local_addr();
    let path = format!("/v1/models/{MODEL}/infer");
    let body = infer_body(None);

    // A live hammer across the replan boundary: the rolling walk re-plans
    // one replica at a time, so >= N-1 replicas serve at every instant and
    // no client request may fail.
    let stop_flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let hammer_threads: Vec<_> = (0..2)
        .map(|_| {
            let body = body.clone();
            let path = path.clone();
            let stop_flag = Arc::clone(&stop_flag);
            std::thread::spawn(move || {
                let mut served = 0u64;
                let mut failures = Vec::new();
                while !stop_flag.load(std::sync::atomic::Ordering::SeqCst) {
                    match http_request(&addr, "POST", &path, Some(&body)) {
                        Ok((200, _)) => served += 1,
                        Ok((status, reply)) => failures.push(format!("{status} {reply}")),
                        Err(e) => failures.push(format!("transport: {e}")),
                    }
                }
                (served, failures)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(30));
    let (status, reply) = http_request(
        &addr,
        "POST",
        &format!("/v1/models/{MODEL}/replan"),
        Some("{\"budget\": 0.9}"),
    )
    .unwrap();
    assert_eq!(status, 200, "rolling replan failed: {reply}");
    assert!(
        reply.contains("\"ok\":true"),
        "fleet replan not ok: {reply}"
    );
    std::thread::sleep(Duration::from_millis(30));
    stop_flag.store(true, std::sync::atomic::Ordering::SeqCst);
    let mut served = 0u64;
    for thread in hammer_threads {
        let (ok, failures) = thread.join().unwrap();
        served += ok;
        assert!(
            failures.is_empty(),
            "client-visible failures across the replan boundary: {failures:?}"
        );
    }
    assert!(served > 0, "the hammer never landed a request");

    // Every replica converged to the new plan generation.
    for server in &servers {
        let (status, metrics) =
            http_request(&server.local_addr(), "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        let value = serde_json::parse_value(&metrics).unwrap();
        let models = value.get("models").and_then(|m| m.as_array()).unwrap();
        let entry = models
            .iter()
            .find(|m| m.get("model").and_then(|v| v.as_str()) == Some(MODEL))
            .expect("fleet model present in replica metrics");
        assert_eq!(
            entry.get("generation").and_then(|g| g.as_f64()),
            Some(2.0),
            "replica did not converge to generation 2: {metrics}"
        );
    }
    assert_eq!(router.metrics().fleet_replans_total, 1);

    router.stop();
    front.stop();
    for server in servers {
        drain_replica(server);
    }
}

#[test]
fn a_fleet_tune_rolls_every_replica_and_controller_state_aggregates() {
    let (servers, router, front) = bind_fleet(2, manual_probe_options(RoutingPolicy::LeastLoaded));
    let addr = front.local_addr();
    let path = format!("/v1/models/{MODEL}/infer");

    // A little warm-up traffic so each tune has measured latency on hand
    // (the search calibrates against it only past min_samples, but this
    // exercises the scrape path either way).
    for _ in 0..4 {
        let (status, reply) = http_request(&addr, "POST", &path, Some(&infer_body(None))).unwrap();
        assert_eq!(status, 200, "warm-up infer failed: {reply}");
    }

    // Tune through the router: the fan-out rolls one replica at a time and
    // every row carries that replica's own TuneReport.
    let (status, reply) = http_request(
        &addr,
        "POST",
        &format!("/v1/models/{MODEL}/tune"),
        Some("{\"target_p99_ms\": 5.0}"),
    )
    .unwrap();
    assert_eq!(status, 200, "fleet tune failed: {reply}");
    let fleet: FleetReply = serde_json::from_str(&reply).unwrap();
    assert!(fleet.ok, "fleet tune not ok: {reply}");
    assert_eq!(fleet.replicas.len(), 2);
    for row in &fleet.replicas {
        assert_eq!(
            row.status, 200,
            "replica {} tune failed: {}",
            row.id, row.body
        );
        let report: TuneReport = serde_json::from_str(&row.body).unwrap();
        assert_eq!(report.model, MODEL);
        assert_eq!(
            report.tuning_generation, 1,
            "replica {} not on its first tune",
            row.id
        );
        assert!(
            report.converged,
            "replica {} missed a 5 ms target: {}",
            row.id, row.body
        );
    }

    // The controller config fans out like any other control-plane write...
    let (status, reply) = http_request(
        &addr,
        "PUT",
        "/v1/controller",
        Some("{\"enabled\": true, \"interval_ms\": 50}"),
    )
    .unwrap();
    assert_eq!(status, 200, "fleet controller update failed: {reply}");

    // ...and the status read aggregates every replica's own block, so the
    // tune and the config change are both visible per replica.
    let (status, reply) = http_request(&addr, "GET", "/v1/controller", None).unwrap();
    assert_eq!(status, 200, "fleet controller status failed: {reply}");
    let fleet: FleetReply = serde_json::from_str(&reply).unwrap();
    assert!(fleet.ok);
    assert_eq!(fleet.replicas.len(), 2);
    for row in &fleet.replicas {
        let controller: ControllerStatus = serde_json::from_str(&row.body).unwrap();
        assert!(
            controller.driver_attached,
            "replica {} lost its driver",
            row.id
        );
        assert!(controller.config.enabled);
        assert_eq!(controller.config.interval_ms, 50);
        assert_eq!(controller.tunes_total, 1);
        let model = controller
            .models
            .iter()
            .find(|m| m.model == MODEL)
            .expect("tuned model missing from controller status");
        assert_eq!(model.tuning_generation, 1);
    }

    let metrics = router.metrics();
    assert_eq!(metrics.fleet_tunes_total, 1);
    assert_eq!(metrics.fleet_controller_updates_total, 1);

    router.stop();
    front.stop();
    for server in servers {
        drain_replica(server);
    }
}

#[test]
fn retry_after_flows_from_engine_hint_to_router_backoff() {
    // One replica with a deliberately congestible queue: an under-full
    // batch idles for the full 400 ms delay before dispatch, so two
    // deadline-less requests pin the FIFO at the admission bound of 2 for
    // that long — every arrival in the window is shed with `Retry-After`.
    let registry = ModelRegistry::new(2);
    registry
        .register(
            MODEL,
            &serving_descriptor(MODEL, 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 8,
                    max_batch_delay: Duration::from_millis(400),
                    max_queue_depth: 2,
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: 1,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    let replica = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
    let replica_addr = replica.local_addr();

    let (_, router, front) = {
        let router = Arc::new(Router::new(
            &[replica_addr],
            manual_probe_options(RoutingPolicy::ConsistentHash),
        ));
        let front = HttpServer::bind_with_handler("127.0.0.1:0", Arc::clone(&router) as _).unwrap();
        (Vec::<HttpServer>::new(), router, front)
    };
    let addr = front.local_addr();
    let path = format!("/v1/models/{MODEL}/infer");

    // Saturate: two queued requests sit in batch formation for ~400 ms,
    // so the next arrival is shed with a Retry-After hint.
    let saturators: Vec<_> = (0..2)
        .map(|_| {
            std::thread::spawn(move || {
                http_request(&replica_addr, "POST", &path_of(), Some(&infer_body(None)))
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(60));

    // (a) The replica itself sheds with the engine's hint as a header.
    let (status, headers, _) =
        http_request_with_headers(&replica_addr, "POST", &path, Some(&infer_body(None))).unwrap();
    assert_eq!(status, 429, "the saturated replica must shed");
    let replica_hint = retry_after_of(&headers).expect("replica 429 without Retry-After");
    assert!(replica_hint >= 1);

    // (b) Without a deadline the router gives the shed straight back to
    // the client — same status, hint propagated as a header.
    let (status, headers, _) =
        http_request_with_headers(&addr, "POST", &path, Some(&infer_body(None))).unwrap();
    assert_eq!(status, 429, "router must propagate the shed");
    let routed_hint = retry_after_of(&headers).expect("routed 429 without Retry-After");
    assert!(routed_hint >= 1);
    assert_eq!(router.metrics().retry_after_waits_total, 0);

    // (c) With a deadline the router honours the hint: it sleeps and
    // re-tries once the queue has drained, so the client sees a plain 200.
    let started = Instant::now();
    let (status, reply) =
        http_request(&addr, "POST", &path, Some(&infer_body(Some(5000)))).unwrap();
    assert_eq!(
        status, 200,
        "deadline-carrying request not retried: {reply}"
    );
    assert!(
        started.elapsed() >= Duration::from_millis(200),
        "the router cannot have waited out the hint this fast"
    );
    let metrics = router.metrics();
    assert!(
        metrics.retry_after_waits_total >= 1,
        "the router never slept on the Retry-After hint"
    );

    for thread in saturators {
        let _ = thread.join().unwrap();
    }
    router.stop();
    front.stop();
    drain_replica(replica);
}

fn path_of() -> String {
    format!("/v1/models/{MODEL}/infer")
}

fn retry_after_of(headers: &[(String, String)]) -> Option<u64> {
    headers
        .iter()
        .find(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
        .and_then(|(_, value)| value.trim().parse().ok())
}
