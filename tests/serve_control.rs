//! Cross-crate integration tests of the live control plane: the full
//! hot-lifecycle loop over HTTP (register → infer bit-identical to a direct
//! engine → plan hot-swap under live traffic with zero dropped requests →
//! retire → 404), latency isolation of a serving model while its siblings
//! are registered and retired underneath it, the in-flight-across-retire
//! drain guarantee, and QoS fairness on the shared fleet executor (a
//! batch-class flood pre-loaded on a paused single-worker pool must not
//! starve an interactive sibling once the pool resumes).

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdc_repro::serve::http::{
    http_request, InferBody, InferReply, RegisterBody, RegisterReply, RetireReply,
};
use tdc_repro::serve::{
    serving_descriptor, BatchingOptions, Executor, ExecutorOptions, HttpClient, HttpServer,
    ModelConfig, ModelRegistry, PlanCache, PlanningOptions, QosClass, ReplanReport, RuntimeOptions,
    ServeEngine, ServeError,
};
use tdc_repro::tensor::{init, Tensor};

/// A direct in-process engine over `descriptor` at `budget`, with the same
/// batching the HTTP-registered model uses — the bit-parity reference.
fn direct_output(
    descriptor: &tdc_repro::nn::models::ModelDescriptor,
    budget: f64,
    input: &Tensor,
) -> Vec<f32> {
    let engine = ServeEngine::builder(descriptor)
        .planning(PlanningOptions {
            budget,
            ..PlanningOptions::default()
        })
        .batching(BatchingOptions {
            max_batch_size: 4,
            max_batch_delay: Duration::from_millis(1),
            ..BatchingOptions::default()
        })
        .build()
        .unwrap();
    let output = engine.infer(input.clone()).unwrap().output.data().to_vec();
    engine.shutdown();
    output
}

#[test]
fn live_lifecycle_put_infer_replan_retire_over_http() {
    // A server that starts EMPTY: every model it ever serves arrives through
    // the admin API while it runs.
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(ModelRegistry::new(8))).unwrap();
    let addr = server.local_addr();

    let descriptor = serving_descriptor("life-hot", 12, 8, 10);
    let register = serde_json::to_string(&RegisterBody {
        max_batch_size: Some(4),
        max_batch_delay_ms: Some(1),
        ..RegisterBody::for_descriptor(descriptor.clone())
    })
    .unwrap();
    let (status, reply) = http_request(&addr, "PUT", "/v1/models/hot", Some(&register)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let registered: RegisterReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(registered.registered.generation, 1);

    // Infer over HTTP: bit-identical to a direct engine call at the same
    // budget and seed.
    let input = Tensor::from_vec(vec![12, 12, 8], vec![0.25f32; 12 * 12 * 8]).unwrap();
    let infer_body = serde_json::to_string(&InferBody {
        input: input.data().to_vec(),
        dims: None,
        deadline_ms: None,
    })
    .unwrap();
    let (status, reply) =
        http_request(&addr, "POST", "/v1/models/hot/infer", Some(&infer_body)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let before: InferReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        before.output,
        direct_output(&descriptor, 0.5, &input),
        "HTTP output diverged from the direct engine call"
    );

    // Replan under live traffic: a client hammers the model over one
    // keep-alive connection for the whole duration of the swap; every
    // response must be a 200 — zero dropped requests across the boundary.
    let stop = Arc::new(AtomicBool::new(false));
    let hammer = {
        let stop = Arc::clone(&stop);
        let body = infer_body.clone();
        std::thread::spawn(move || -> (u64, Vec<u16>) {
            let mut client = HttpClient::connect(&addr).unwrap();
            let mut okay = 0u64;
            let mut bad = Vec::new();
            while !stop.load(Ordering::SeqCst) {
                let (status, _) = client
                    .request("POST", "/v1/models/hot/infer", Some(&body))
                    .unwrap();
                if status == 200 {
                    okay += 1;
                } else {
                    bad.push(status);
                }
            }
            (okay, bad)
        })
    };
    // Let the hammer establish itself, then hot-swap the plan.
    std::thread::sleep(Duration::from_millis(50));
    let (status, reply) = http_request(
        &addr,
        "POST",
        "/v1/models/hot/replan",
        Some("{\"budget\": 0.9}"),
    )
    .unwrap();
    assert_eq!(status, 200, "{reply}");
    let replanned: ReplanReport = serde_json::from_str(&reply).unwrap();
    assert!(replanned.plan_changed, "{replanned:?}");
    assert_eq!(replanned.generation, 2);
    assert!(
        replanned.drained_completed_requests >= 1,
        "the old engine served the in-flight work before it was freed"
    );
    std::thread::sleep(Duration::from_millis(50));
    stop.store(true, Ordering::SeqCst);
    let (okay, bad) = hammer.join().unwrap();
    assert!(
        bad.is_empty(),
        "requests were dropped across the swap boundary: {bad:?}"
    );
    assert!(okay >= 2, "the hammer must have spanned the swap");

    // Bit parity holds on the new plan's side of the boundary too.
    let (status, reply) =
        http_request(&addr, "POST", "/v1/models/hot/infer", Some(&infer_body)).unwrap();
    assert_eq!(status, 200, "{reply}");
    let after: InferReply = serde_json::from_str(&reply).unwrap();
    assert_eq!(
        after.output,
        direct_output(&descriptor, 0.9, &input),
        "post-swap HTTP output diverged from a direct engine at the new budget"
    );
    assert_ne!(
        before.output, after.output,
        "0.5 → 0.9 selects a different plan, so the logits must differ"
    );

    // Retire: the reply carries the drained engine's counters, and the
    // route is gone — immediately and permanently.
    let (status, reply) = http_request(&addr, "DELETE", "/v1/models/hot", None).unwrap();
    assert_eq!(status, 200, "{reply}");
    let retired: RetireReply = serde_json::from_str(&reply).unwrap();
    assert!(retired.completed_requests >= 1);
    let (status, _) =
        http_request(&addr, "POST", "/v1/models/hot/infer", Some(&infer_body)).unwrap();
    assert_eq!(status, 404);

    let registry = server.shutdown();
    let metrics = registry.metrics();
    assert_eq!(metrics.models_registered_total, 1);
    assert_eq!(metrics.models_retired_total, 1);
    assert_eq!(metrics.replans_total, 1);
    assert!(metrics.models.is_empty());
}

#[test]
fn registering_and_retiring_siblings_does_not_disturb_a_loaded_model() {
    let registry = Arc::new(ModelRegistry::new(16));
    let descriptor = serving_descriptor("iso-steady", 10, 4, 6);
    registry
        .register(
            "steady",
            &descriptor,
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 4,
                    max_batch_delay: Duration::from_millis(1),
                    ..BatchingOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    let input = Tensor::from_vec(vec![10, 10, 4], vec![0.25f32; 400]).unwrap();
    let expected = registry
        .infer("steady", input.clone())
        .unwrap()
        .output
        .data()
        .to_vec();

    // Sustained load on "steady" from two client threads…
    let stop = Arc::new(AtomicBool::new(false));
    let clients: Vec<_> = (0..2)
        .map(|_| {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let input = input.clone();
            let expected = expected.clone();
            std::thread::spawn(move || -> (u64, f64) {
                let mut served = 0u64;
                let mut worst_ms = 0.0f64;
                while !stop.load(Ordering::SeqCst) {
                    let started = Instant::now();
                    let response = registry
                        .infer("steady", input.clone())
                        .expect("steady must never fail while siblings churn");
                    worst_ms = worst_ms.max(started.elapsed().as_secs_f64() * 1e3);
                    assert_eq!(
                        response.output.data(),
                        expected.as_slice(),
                        "steady's outputs were corrupted by sibling churn"
                    );
                    served += 1;
                }
                (served, worst_ms)
            })
        })
        .collect();

    // …while the control plane churns siblings underneath it: register,
    // serve once, retire — three full lifecycles (each register runs full
    // planning on this thread).
    let mut rng = StdRng::seed_from_u64(99);
    for round in 0..3 {
        let name = format!("churn-{round}");
        let sibling = serving_descriptor(&format!("iso-churn-{round}"), 12, 8, 10);
        registry
            .register(
                &name,
                &sibling,
                ModelConfig {
                    batching: BatchingOptions {
                        max_batch_size: 4,
                        max_batch_delay: Duration::from_millis(1),
                        ..BatchingOptions::default()
                    },
                    runtime: RuntimeOptions {
                        workers: 1,
                        ..RuntimeOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        registry
            .infer(&name, init::uniform(vec![12, 12, 8], -1.0, 1.0, &mut rng))
            .unwrap();
        let report = registry.retire(&name).unwrap();
        assert_eq!(report.metrics.completed_requests, 1);
    }
    stop.store(true, Ordering::SeqCst);
    let mut total = 0u64;
    let mut worst_ms = 0.0f64;
    for client in clients {
        let (served, worst) = client.join().unwrap();
        total += served;
        worst_ms = worst_ms.max(worst);
    }
    assert!(total > 0, "the load never ran");
    // Latency isolation: the steady model's worst observed latency stays far
    // below the seconds-scale a blocking registration (full planning pass)
    // would impose if readers waited on writers.
    assert!(
        worst_ms < 1000.0,
        "steady's worst latency {worst_ms:.1} ms was disturbed by sibling churn"
    );

    let metrics = registry.metrics();
    let steady = metrics.models.iter().find(|m| m.model == "steady").unwrap();
    assert_eq!(steady.metrics.completed_requests, total + 1);
    assert_eq!(steady.rejected_requests, 0);
    assert_eq!(steady.metrics.deadline_exceeded, 0);
    assert_eq!(metrics.models_registered_total, 4);
    assert_eq!(metrics.models_retired_total, 3);
    assert_eq!(metrics.models.len(), 1, "the churned siblings are gone");
    Arc::try_unwrap(registry)
        .unwrap_or_else(|_| panic!("registry still shared"))
        .shutdown();
}

/// The QoS fairness pin, made deterministic by controlling the executor:
/// a single-worker, single-shard pool starts **paused**, a batch-class
/// model's queue is pre-loaded with a flood, an interactive sibling's two
/// requests are enqueued *after* the whole flood, and only then does the
/// pool resume. Injection-order (FIFO) scheduling would serve every flood
/// batch before the sibling; the executor's priority bands must instead
/// dispatch the interactive batches ahead of the pre-existing backlog.
#[test]
fn batch_class_flood_on_a_paused_shared_pool_does_not_starve_interactive() {
    let executor = Arc::new(
        Executor::new(ExecutorOptions {
            workers: 1,
            injector_shards: 1,
            start_paused: true,
            ..ExecutorOptions::default()
        })
        .unwrap(),
    );
    let registry = ModelRegistry::with_executor(PlanCache::new(4), Arc::clone(&executor));
    // One request per executed batch, so dispatch order is visible per
    // request in the latency summaries.
    let one_per_batch = BatchingOptions {
        max_batch_size: 1,
        max_batch_delay: Duration::from_millis(1),
        ..BatchingOptions::default()
    };
    registry
        .register(
            "flood",
            &serving_descriptor("qos-flood", 12, 8, 10),
            ModelConfig {
                batching: one_per_batch.clone(),
                runtime: RuntimeOptions {
                    qos: QosClass::Batch,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();
    registry
        .register(
            "vip",
            &serving_descriptor("qos-vip", 12, 8, 10),
            ModelConfig {
                batching: one_per_batch,
                runtime: RuntimeOptions {
                    qos: QosClass::Interactive,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();

    // Pre-load while the pool is paused: the entire flood first, then the
    // interactive requests — the worst possible arrival order for "vip".
    const FLOOD: usize = 8;
    let input = Tensor::zeros(vec![12, 12, 8]);
    let flood_pending: Vec<_> = (0..FLOOD)
        .map(|_| registry.submit("flood", input.clone()).unwrap())
        .collect();
    let vip_pending: Vec<_> = (0..2)
        .map(|_| registry.submit("vip", input.clone()).unwrap())
        .collect();

    executor.resume();
    for handle in vip_pending {
        handle.wait().unwrap();
    }
    // Both interactive requests are done; on one serial worker, FIFO order
    // would have forced them behind all eight flood batches.
    let mid = registry.metrics();
    let flood_done = mid
        .models
        .iter()
        .find(|m| m.model == "flood")
        .unwrap()
        .metrics
        .completed_requests;
    assert!(
        flood_done < FLOOD as u64,
        "interactive requests waited out the whole batch-class backlog \
         ({flood_done}/{FLOOD} flood requests already served)"
    );

    for handle in flood_pending {
        handle.wait().unwrap();
    }
    let metrics = registry.metrics();
    let vip = metrics.models.iter().find(|m| m.model == "vip").unwrap();
    let flood = metrics.models.iter().find(|m| m.model == "flood").unwrap();
    assert_eq!(vip.metrics.completed_requests, 2);
    assert_eq!(flood.metrics.completed_requests, FLOOD as u64);
    // The fair-share pin: scheduled in band order, the interactive model's
    // worst end-to-end latency stays below the flood's median — its p99
    // reflects its own two batches, not the sibling's backlog.
    assert!(
        vip.metrics.total_latency.p99_ms < flood.metrics.total_latency.p50_ms,
        "vip p99 {:.2} ms not isolated from the flood (flood p50 {:.2} ms)",
        vip.metrics.total_latency.p99_ms,
        flood.metrics.total_latency.p50_ms
    );
    // The telemetry names the classes and the shared pool.
    assert_eq!(vip.executor.qos, "interactive");
    assert_eq!(flood.executor.qos, "batch");
    assert_eq!(metrics.executor.workers, 1);
    assert_eq!(
        metrics.executor.bands.len(),
        3,
        "one band row per QoS class"
    );

    // Lifecycle on the shared pool: retiring the flood model drains it
    // without touching the sibling, and a hot-swap re-registers the
    // sibling's engine on the same executor.
    let report = registry.retire("flood").unwrap();
    assert_eq!(report.metrics.completed_requests, FLOOD as u64);
    let swap = registry
        .replan(
            "vip",
            PlanningOptions {
                budget: 0.9,
                ..PlanningOptions::default()
            },
        )
        .unwrap();
    assert_eq!(swap.generation, 2);
    registry.infer("vip", input).unwrap();
    let after = registry.metrics();
    let vip = after.models.iter().find(|m| m.model == "vip").unwrap();
    assert_eq!(vip.metrics.completed_requests, 1);
    assert_eq!(vip.executor.qos, "interactive");
    registry.shutdown();
    executor.shutdown();
}

#[test]
fn requests_in_flight_at_retire_are_drained_not_dropped() {
    let registry = ModelRegistry::new(4);
    // A single worker holding an under-full batch open for a long delay:
    // everything submitted below is still queued when the retire lands.
    registry
        .register(
            "draining",
            &serving_descriptor("drain-test", 10, 4, 6),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 16,
                    max_batch_delay: Duration::from_millis(800),
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: 1,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .unwrap();

    const IN_FLIGHT: usize = 6;
    let pending: Vec<_> = (0..IN_FLIGHT)
        .map(|_| {
            registry
                .submit("draining", Tensor::zeros(vec![10, 10, 4]))
                .unwrap()
        })
        .collect();

    // Retire while all six sit in the queue. Closing admission releases the
    // forming batch immediately, so the drain is prompt, and every admitted
    // request is answered before the engine is freed.
    let started = Instant::now();
    let report = registry.retire("draining").unwrap();
    assert_eq!(
        report.metrics.completed_requests, IN_FLIGHT as u64,
        "every in-flight request must be served by the drain"
    );
    assert!(
        started.elapsed() < Duration::from_millis(800),
        "closing admission must release the forming batch early, not wait \
         out the full delay"
    );
    for handle in pending {
        let response = handle.wait().expect("drained request was dropped");
        assert_eq!(response.output.dims(), &[6]);
    }

    // The route is gone; admission is refused with the unknown-model error.
    assert!(matches!(
        registry.submit("draining", Tensor::zeros(vec![10, 10, 4])),
        Err(ServeError::UnknownModel { .. })
    ));
    registry.shutdown();
}
