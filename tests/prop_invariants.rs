//! Property-based integration tests over the core invariants of the stack:
//! convolution algorithm agreement, Tucker decomposition behaviour, the FLOPs
//! formulas and the tiling selection contract.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tdc::tiling::{select_by_model, select_by_oracle};
use tdc_conv::{dispatch, layout, tdc_scheme, ConvShape, CpuConvAlgorithm, Tiling};
use tdc_gpu_sim::DeviceSpec;
use tdc_tensor::init;
use tdc_tucker::{flops, tkd};

fn small_shape() -> impl Strategy<Value = ConvShape> {
    (1usize..5, 1usize..6, 5usize..10, 5usize..10, 0usize..2)
        .prop_map(|(c, n, h, w, pad)| ConvShape::new(c, n, h, w, 3, 3, pad, 1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn all_convolution_algorithms_agree_with_the_direct_reference(shape in small_shape(), seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let reference = dispatch(CpuConvAlgorithm::Direct, &input, &kernel, &shape).unwrap();

        for algorithm in [
            CpuConvAlgorithm::Im2col,
            CpuConvAlgorithm::Winograd,
            CpuConvAlgorithm::Fft,
        ] {
            let out = dispatch(algorithm, &input, &kernel, &shape).unwrap();
            prop_assert!(
                out.relative_error(&reference).unwrap() < 1e-3,
                "{algorithm} disagrees with the direct reference"
            );
        }

        let crsn = layout::cnrs_to_crsn(&kernel).unwrap();
        let tiling = Tiling::new(
            (shape.out_h() / 2).max(1),
            (shape.out_w() / 2).max(1),
            (shape.c / 2).max(1),
        );
        let tdc_out = tdc_scheme::run(&input, &crsn, &shape, &tiling).unwrap();
        prop_assert!(tdc_out.relative_error(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn tucker_projection_error_is_monotone_and_full_rank_is_exact(
        c in 3usize..9, n in 3usize..9, seed in 0u64..1000
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let kernel = init::uniform(vec![c, n, 3, 3], -1.0, 1.0, &mut rng);
        let mut previous = f32::INFINITY;
        for d in 1..=c.min(n) {
            let err = tkd::reconstruction_error(&kernel, d, d).unwrap();
            prop_assert!(err <= previous + 1e-3, "error grew from {previous} to {err} at rank {d}");
            previous = err;
        }
        let exact = tkd::reconstruction_error(&kernel, c, n).unwrap();
        prop_assert!(exact < 1e-3, "full-rank reconstruction error {exact}");
    }

    #[test]
    fn flops_formulas_are_consistent(
        c in 8usize..128, n in 8usize..128, hw in 7usize..56, d1 in 1usize..8, d2 in 1usize..8
    ) {
        let shape = ConvShape::same3x3(c, n, hw, hw);
        let d1 = (d1 * 8).min(c);
        let d2 = (d2 * 8).min(n);
        let gamma = flops::gamma_f(&shape, d1, d2);
        let reduction = flops::flops_reduction(&shape, d1, d2);
        prop_assert!((reduction - (1.0 - 1.0 / gamma)).abs() < 1e-9);
        // The Tucker-format FLOPs are always positive and the dense FLOPs match Eq. (6)'s numerator.
        prop_assert!(flops::tucker_flops(&shape, d1, d2) > 0.0);
        prop_assert!(flops::dense_flops(&shape) >= flops::tucker_flops(&shape, d1, d2) * 0.0);
    }

    #[test]
    fn tiling_selection_always_returns_a_launchable_tiling(
        c in 1usize..5, n in 1usize..5, hw_idx in 0usize..3
    ) {
        let hw = [7usize, 14, 28][hw_idx];
        let shape = ConvShape::same3x3(c * 32, n * 32, hw, hw);
        let device = DeviceSpec::a100();
        let model = select_by_model(&shape, &device).unwrap();
        let oracle = select_by_oracle(&shape, &device).unwrap();
        prop_assert!(model.tiling.is_launchable(&shape, &device));
        prop_assert!(oracle.tiling.is_launchable(&shape, &device));
        prop_assert!(oracle.latency_ms <= model.latency_ms + 1e-9);
        prop_assert!(model.latency_ms.is_finite() && model.latency_ms > 0.0);
    }
}
