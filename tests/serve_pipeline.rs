//! Cross-crate integration test of the serving subsystem: plan-cache
//! hit/miss semantics (memory and disk), deterministic batched outputs, and
//! graceful shutdown draining the queue.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use tdc_repro::serve::{
    serving_descriptor, CacheOutcome, PlanCache, PlanKey, ServeConfig, ServeEngine,
};
use tdc_repro::tensor::{init, Tensor};

fn config(workers: usize, max_batch: usize, delay_ms: u64) -> ServeConfig {
    ServeConfig {
        workers,
        max_batch_size: max_batch,
        max_batch_delay: Duration::from_millis(delay_ms),
        ..ServeConfig::default()
    }
}

#[test]
fn plan_cache_hit_miss_semantics_across_engines_and_processes() {
    let descriptor = serving_descriptor("it-cache", 12, 4, 8);
    let spill = std::env::temp_dir().join(format!("tdc-serve-it-{}", std::process::id()));
    let cache = PlanCache::new(4).with_spill_dir(&spill).unwrap();

    // Cold start misses, warm restart hits memory.
    let first = ServeEngine::start(&descriptor, &config(1, 4, 1), &cache).unwrap();
    assert_eq!(first.plan_outcome(), CacheOutcome::Miss);
    let fingerprint = first.plan().fingerprint();
    drop(first);
    let second = ServeEngine::start(&descriptor, &config(1, 4, 1), &cache).unwrap();
    assert_eq!(second.plan_outcome(), CacheOutcome::MemoryHit);
    assert_eq!(second.plan().fingerprint(), fingerprint);
    drop(second);

    // A different budget is a different key: miss again.
    let other_budget = ServeConfig {
        budget: 0.3,
        ..config(1, 4, 1)
    };
    let third = ServeEngine::start(&descriptor, &other_budget, &cache).unwrap();
    assert_eq!(third.plan_outcome(), CacheOutcome::Miss);
    drop(third);

    // A different selection config (rank step) under the *same* budget is
    // also a different key — the cache must never serve a plan computed
    // under another configuration.
    let other_step = ServeConfig {
        rank_step: 8,
        ..config(1, 4, 1)
    };
    let stepped = ServeEngine::start(&descriptor, &other_step, &cache).unwrap();
    assert_eq!(stepped.plan_outcome(), CacheOutcome::Miss);
    drop(stepped);

    // "Process restart": cold memory, warm disk -> disk hit, same plan.
    cache.clear_memory();
    let fourth = ServeEngine::start(&descriptor, &config(1, 4, 1), &cache).unwrap();
    assert_eq!(fourth.plan_outcome(), CacheOutcome::DiskHit);
    assert_eq!(fourth.plan().fingerprint(), fingerprint);
    drop(fourth);

    let stats = cache.stats();
    assert_eq!(stats.memory_hits, 1);
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.misses, 3);

    // Direct key-level checks of the keying: budget quantization absorbs
    // float noise, and every selection input participates in the key.
    let cfg = tdc_repro::core::RankSelectionConfig::default();
    let noisy = tdc_repro::core::RankSelectionConfig {
        budget: cfg.budget + 1e-9,
        ..cfg.clone()
    };
    assert_eq!(
        PlanKey::new("m", "d", &cfg),
        PlanKey::new("m", "d", &noisy),
        "float noise below a micro-unit must not split keys"
    );
    let stepped = tdc_repro::core::RankSelectionConfig {
        rank_step: cfg.rank_step + 1,
        ..cfg.clone()
    };
    assert_ne!(
        PlanKey::new("m", "d", &cfg),
        PlanKey::new("m", "d", &stepped)
    );
    std::fs::remove_dir_all(&spill).ok();
}

#[test]
fn outputs_are_deterministic_regardless_of_batch_composition() {
    let descriptor = serving_descriptor("it-determinism", 12, 4, 8);
    let mut rng = StdRng::seed_from_u64(77);
    let inputs: Vec<Tensor> = (0..12)
        .map(|_| init::uniform(vec![12, 12, 4], -1.0, 1.0, &mut rng))
        .collect();

    // Reference: an engine serving one request at a time (batch size 1).
    let cache = PlanCache::new(2);
    let solo = ServeEngine::start(&descriptor, &config(1, 1, 0), &cache).unwrap();
    let reference: Vec<Tensor> = inputs
        .iter()
        .map(|x| solo.infer(x.clone()).unwrap().output)
        .collect();
    solo.shutdown();

    // Same inputs submitted concurrently through a batching engine: every
    // output must be bit-identical to the solo run, whatever batches formed.
    let batched = ServeEngine::start(&descriptor, &config(3, 4, 5), &cache).unwrap();
    let pending: Vec<_> = inputs
        .iter()
        .map(|x| batched.submit(x.clone()).unwrap())
        .collect();
    let mut batch_sizes = Vec::new();
    for (p, expected) in pending.into_iter().zip(reference.iter()) {
        let response = p.wait().unwrap();
        batch_sizes.push(response.batch_size);
        assert_eq!(
            &response.output, expected,
            "batched output diverged from solo output"
        );
    }
    batched.shutdown();
    // Sanity: the engine did form real batches for at least part of the run.
    assert!(
        batch_sizes.iter().any(|&b| b > 1),
        "no batching happened: {batch_sizes:?}"
    );
}

#[test]
fn shutdown_drains_the_queue_gracefully() {
    let descriptor = serving_descriptor("it-drain", 12, 4, 8);
    let cache = PlanCache::new(2);
    // One slow worker and a generous batch delay so a backlog builds up.
    let engine = Arc::new(ServeEngine::start(&descriptor, &config(1, 2, 1), &cache).unwrap());

    let mut rng = StdRng::seed_from_u64(5);
    let pending: Vec<_> = (0..20)
        .map(|_| {
            engine
                .submit(init::uniform(vec![12, 12, 4], -1.0, 1.0, &mut rng))
                .unwrap()
        })
        .collect();

    // Shut down immediately: everything already queued must still be served.
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("engine still shared"));
    let report = engine.shutdown();
    assert_eq!(
        report.metrics.completed_requests, 20,
        "shutdown dropped queued requests"
    );

    for p in pending {
        let response = p
            .wait()
            .expect("queued request must be answered during drain");
        assert_eq!(response.output.dims(), &[8]);
    }
}
