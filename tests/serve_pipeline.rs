//! Cross-crate integration test of the serving subsystem: plan-cache
//! hit/miss semantics (memory and disk), deterministic batched outputs,
//! execution-backend parity, builder validation, and graceful shutdown
//! draining the queue.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;
use tdc_repro::serve::{
    serving_descriptor, BackendKind, BatchingOptions, CacheOutcome, PlanCache, PlanKey,
    PlanningOptions, RuntimeOptions, ServeEngine, ServeError,
};
use tdc_repro::tensor::{init, Tensor};

fn engine(
    descriptor: &tdc_repro::nn::models::ModelDescriptor,
    cache: &PlanCache,
    backend: BackendKind,
    workers: usize,
    max_batch: usize,
    delay_ms: u64,
) -> ServeEngine {
    ServeEngine::builder(descriptor)
        .batching(BatchingOptions {
            max_batch_size: max_batch,
            max_batch_delay: Duration::from_millis(delay_ms),
            ..BatchingOptions::default()
        })
        .runtime(RuntimeOptions {
            workers,
            backend,
            ..RuntimeOptions::default()
        })
        .plan_cache(cache)
        .build()
        .expect("engine build")
}

#[test]
fn plan_cache_hit_miss_semantics_across_engines_and_processes() {
    let descriptor = serving_descriptor("it-cache", 12, 4, 8);
    let spill = std::env::temp_dir().join(format!("tdc-serve-it-{}", std::process::id()));
    let cache = PlanCache::new(4).with_spill_dir(&spill).unwrap();

    // Cold start misses, warm restart hits memory.
    let first = engine(&descriptor, &cache, BackendKind::Cpu, 1, 4, 1);
    assert_eq!(first.plan_outcome(), CacheOutcome::Miss);
    let fingerprint = first.plan().fingerprint();
    drop(first);
    let second = engine(&descriptor, &cache, BackendKind::Cpu, 1, 4, 1);
    assert_eq!(second.plan_outcome(), CacheOutcome::MemoryHit);
    assert_eq!(second.plan().fingerprint(), fingerprint);
    drop(second);

    // A different budget is a different key: miss again.
    let third = ServeEngine::builder(&descriptor)
        .planning(PlanningOptions {
            budget: 0.3,
            ..PlanningOptions::default()
        })
        .runtime(RuntimeOptions {
            workers: 1,
            ..RuntimeOptions::default()
        })
        .plan_cache(&cache)
        .build()
        .unwrap();
    assert_eq!(third.plan_outcome(), CacheOutcome::Miss);
    drop(third);

    // A different selection config (rank step) under the *same* budget is
    // also a different key — the cache must never serve a plan computed
    // under another configuration.
    let stepped = ServeEngine::builder(&descriptor)
        .planning(PlanningOptions {
            rank_step: 8,
            ..PlanningOptions::default()
        })
        .runtime(RuntimeOptions {
            workers: 1,
            ..RuntimeOptions::default()
        })
        .plan_cache(&cache)
        .build()
        .unwrap();
    assert_eq!(stepped.plan_outcome(), CacheOutcome::Miss);
    drop(stepped);

    // "Process restart": cold memory, warm disk -> disk hit, same plan.
    cache.clear_memory();
    let fourth = engine(&descriptor, &cache, BackendKind::Cpu, 1, 4, 1);
    assert_eq!(fourth.plan_outcome(), CacheOutcome::DiskHit);
    assert_eq!(fourth.plan().fingerprint(), fingerprint);
    drop(fourth);

    let stats = cache.stats();
    assert_eq!(stats.memory_hits, 1);
    assert_eq!(stats.disk_hits, 1);
    assert_eq!(stats.misses, 3);

    // Direct key-level checks of the keying: budget quantization absorbs
    // float noise, and every selection input — including the execution
    // backend — participates in the key.
    let cfg = tdc_repro::core::RankSelectionConfig::default();
    let noisy = tdc_repro::core::RankSelectionConfig {
        budget: cfg.budget + 1e-9,
        ..cfg.clone()
    };
    assert_eq!(
        PlanKey::new("m", "d", "cpu", &cfg),
        PlanKey::new("m", "d", "cpu", &noisy),
        "float noise below a micro-unit must not split keys"
    );
    let stepped = tdc_repro::core::RankSelectionConfig {
        rank_step: cfg.rank_step + 1,
        ..cfg.clone()
    };
    assert_ne!(
        PlanKey::new("m", "d", "cpu", &cfg),
        PlanKey::new("m", "d", "cpu", &stepped)
    );
    assert_ne!(
        PlanKey::new("m", "d", "cpu", &cfg),
        PlanKey::new("m", "d", "sim-gpu", &cfg),
        "the backend identity must participate in the key"
    );
    std::fs::remove_dir_all(&spill).ok();
}

#[test]
fn outputs_are_deterministic_regardless_of_batch_composition() {
    let descriptor = serving_descriptor("it-determinism", 12, 4, 8);
    let mut rng = StdRng::seed_from_u64(77);
    let inputs: Vec<Tensor> = (0..12)
        .map(|_| init::uniform(vec![12, 12, 4], -1.0, 1.0, &mut rng))
        .collect();

    // Reference: an engine serving one request at a time (batch size 1).
    let cache = PlanCache::new(2);
    let solo = engine(&descriptor, &cache, BackendKind::Cpu, 1, 1, 0);
    let reference: Vec<Tensor> = inputs
        .iter()
        .map(|x| solo.infer(x.clone()).unwrap().output)
        .collect();
    solo.shutdown();

    // Same inputs submitted concurrently through a batching engine: every
    // output must be bit-identical to the solo run, whatever batches formed.
    let batched = engine(&descriptor, &cache, BackendKind::Cpu, 3, 4, 5);
    let pending: Vec<_> = inputs
        .iter()
        .map(|x| batched.submit(x.clone()).unwrap())
        .collect();
    let mut batch_sizes = Vec::new();
    for (p, expected) in pending.into_iter().zip(reference.iter()) {
        let response = p.wait().unwrap();
        batch_sizes.push(response.batch_size);
        assert_eq!(
            &response.output, expected,
            "batched output diverged from solo output"
        );
    }
    batched.shutdown();
    // Sanity: the engine did form real batches for at least part of the run.
    assert!(
        batch_sizes.iter().any(|&b| b > 1),
        "no batching happened: {batch_sizes:?}"
    );
}

#[test]
fn cpu_and_sim_gpu_backends_produce_bit_identical_outputs() {
    let descriptor = serving_descriptor("it-parity", 12, 4, 8);
    let mut rng = StdRng::seed_from_u64(99);
    let inputs: Vec<Tensor> = (0..8)
        .map(|_| init::uniform(vec![12, 12, 4], -1.0, 1.0, &mut rng))
        .collect();

    let cache = PlanCache::new(4);
    let cpu = engine(&descriptor, &cache, BackendKind::Cpu, 2, 4, 2);
    let cpu_outputs: Vec<Tensor> = inputs
        .iter()
        .map(|x| cpu.infer(x.clone()).unwrap().output)
        .collect();
    let cpu_report = cpu.shutdown();
    assert_eq!(cpu_report.backend, "cpu");
    assert_eq!(cpu_report.metrics.simulated_gpu_ms_total, 0.0);

    let sim = engine(&descriptor, &cache, BackendKind::SimGpu, 2, 4, 2);
    assert_eq!(sim.backend_name(), "sim-gpu");
    let pending: Vec<_> = inputs
        .iter()
        .map(|x| sim.submit(x.clone()).unwrap())
        .collect();
    for (p, expected) in pending.into_iter().zip(cpu_outputs.iter()) {
        let response = p.wait().unwrap();
        assert_eq!(
            &response.output, expected,
            "sim-gpu output diverged from the cpu backend"
        );
        assert!(
            response.simulated_gpu_batch_ms > 0.0,
            "every sim-gpu batch must carry a simulated latency"
        );
    }
    let sim_report = sim.shutdown();
    assert_eq!(sim_report.backend, "sim-gpu");
    assert!(sim_report.metrics.simulated_gpu_ms_total > 0.0);
    // The per-sample breakdown covers the 4 convolutions plus the FC layer.
    assert_eq!(sim_report.backend_latency.per_layer.len(), 5);
    assert!(sim_report.backend_latency.total_ms > 0.0);
}

#[test]
fn builder_validation_rejects_degenerate_options() {
    let descriptor = serving_descriptor("it-validate", 12, 4, 8);
    let cache = PlanCache::new(2);

    let zero_workers = ServeEngine::builder(&descriptor)
        .runtime(RuntimeOptions {
            workers: 0,
            ..RuntimeOptions::default()
        })
        .plan_cache(&cache)
        .build();
    assert!(matches!(zero_workers, Err(ServeError::BadConfig { .. })));

    let zero_batch = ServeEngine::builder(&descriptor)
        .batching(BatchingOptions {
            max_batch_size: 0,
            ..BatchingOptions::default()
        })
        .plan_cache(&cache)
        .build();
    assert!(matches!(zero_batch, Err(ServeError::BadConfig { .. })));

    for bad_budget in [f64::NAN, f64::INFINITY, -0.5, 1.5] {
        let non_finite = ServeEngine::builder(&descriptor)
            .planning(PlanningOptions {
                budget: bad_budget,
                ..PlanningOptions::default()
            })
            .plan_cache(&cache)
            .build();
        assert!(
            matches!(non_finite, Err(ServeError::BadConfig { .. })),
            "budget {bad_budget} must be rejected"
        );
    }
    assert_eq!(
        cache.stats().misses,
        0,
        "validation must fire before any planning work"
    );
}

#[test]
fn shutdown_drains_the_queue_gracefully() {
    let descriptor = serving_descriptor("it-drain", 12, 4, 8);
    let cache = PlanCache::new(2);
    // One slow worker and a generous batch delay so a backlog builds up.
    let engine = Arc::new(engine(&descriptor, &cache, BackendKind::Cpu, 1, 2, 1));

    let mut rng = StdRng::seed_from_u64(5);
    let pending: Vec<_> = (0..20)
        .map(|_| {
            engine
                .submit(init::uniform(vec![12, 12, 4], -1.0, 1.0, &mut rng))
                .unwrap()
        })
        .collect();

    // Shut down immediately: everything already queued must still be served.
    let engine = Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("engine still shared"));
    let report = engine.shutdown();
    assert_eq!(
        report.metrics.completed_requests, 20,
        "shutdown dropped queued requests"
    );

    for p in pending {
        let response = p
            .wait()
            .expect("queued request must be answered during drain");
        assert_eq!(response.output.dims(), &[8]);
    }
}
