//! Cross-crate integration test: the full latency-side pipeline on a real
//! model descriptor, asserting the qualitative results the paper's Figures 8/9
//! report.

use tdc::inference::Backend;
use tdc::pipeline::TdcPipeline;
use tdc::rank_select::Decision;
use tdc::tiling::TilingStrategy;
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::models::{resnet18_descriptor, vgg16_descriptor};

#[test]
fn resnet18_plan_reproduces_the_figure8_ordering_on_a100() {
    let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
    let plan = pipeline.plan(&resnet18_descriptor(), 0.6).expect("plan");

    let ms = |b: Backend| plan.report(b).unwrap().total_ms;
    let original = ms(Backend::OriginalCudnn);
    let tk_cudnn = ms(Backend::TuckerCudnn);
    let tdc_oracle = ms(Backend::TuckerTdcOracle);
    let tdc_model = ms(Backend::TuckerTdcModel);

    // Paper Figure 8 orderings (relative, not absolute):
    assert!(
        tdc_oracle <= tdc_model + 1e-9,
        "oracle should be at least as fast as model tiling"
    );
    assert!(
        tdc_model < tk_cudnn,
        "the TDC kernel should beat cuDNN on the compressed model"
    );
    assert!(
        tk_cudnn < original,
        "compression alone should already beat the original model"
    );

    // Speedups in a plausible band around the paper's 2.2x / 3.3x.
    let speedup_vs_original = original / tdc_oracle;
    let speedup_vs_cudnn = tk_cudnn / tdc_oracle;
    assert!(
        speedup_vs_original > 1.3 && speedup_vs_original < 25.0,
        "speedup over original = {speedup_vs_original}"
    );
    assert!(
        speedup_vs_cudnn > 1.05 && speedup_vs_cudnn < 10.0,
        "speedup over TK-cuDNN = {speedup_vs_cudnn}"
    );
}

#[test]
fn generated_kernels_cover_every_decomposed_layer_shape() {
    let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
    let plan = pipeline.plan(&resnet18_descriptor(), 0.6).expect("plan");
    assert!(!plan.kernels.is_empty());
    for d in &plan.decisions {
        if let Decision::Decompose { rank, .. } = d.decision {
            let core = d.shape.with_ranks(rank.d1, rank.d2);
            let found = plan.kernels.iter().any(|k| {
                k.threads_per_block == core.n
                    && k.source.contains(&format!("#define C        {}", core.c))
            });
            assert!(found, "no generated kernel for core shape {core}");
        }
    }
    // Every generated kernel follows the Listing-2 structure.
    for k in &plan.kernels {
        assert_eq!(k.source.matches("__syncthreads()").count(), 1);
        assert!(k.source.contains("atomicAdd"));
    }
}

#[test]
fn both_devices_produce_consistent_plans_for_vgg16() {
    for device in [DeviceSpec::a100(), DeviceSpec::rtx2080ti()] {
        let pipeline = TdcPipeline::new(device.clone(), TilingStrategy::Model);
        let plan = pipeline.plan(&vgg16_descriptor(), 0.5).expect("plan");
        assert_eq!(plan.decisions.len(), 13);
        let original = plan.report(Backend::OriginalCudnn).unwrap().total_ms;
        let tdc = plan.report(Backend::TuckerTdcModel).unwrap().total_ms;
        assert!(
            tdc <= original,
            "TDC should not be slower end-to-end on {}",
            device.name
        );
        // Latency reports are internally consistent.
        for r in &plan.reports {
            let layer_sum: f64 = r.layers.iter().map(|l| l.ms).sum();
            assert!((layer_sum - r.conv_ms).abs() < 1e-6);
        }
    }
}

#[test]
fn a100_is_faster_than_2080ti_for_the_same_plan() {
    let model = resnet18_descriptor();
    let a100 = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model)
        .plan(&model, 0.6)
        .expect("a100 plan");
    let ti = TdcPipeline::new(DeviceSpec::rtx2080ti(), TilingStrategy::Model)
        .plan(&model, 0.6)
        .expect("2080ti plan");
    for backend in Backend::all() {
        let a100_ms = a100.report(backend).unwrap().total_ms;
        let ti_ms = ti.report(backend).unwrap().total_ms;
        // The 2080 Ti has a higher per-SM FP32 peak (13.45 TFLOP/s over 68
        // SMs vs 19.5 over 108), so the fixed-tile IMPLICIT_GEMM baseline —
        // single-wave and compute-bound on the deep small-spatial layers —
        // may model a hair faster there; real cuDNN would re-tile to fill
        // the A100. Allow that baseline a small tolerance and require strict
        // dominance everywhere the paper's claim is actually under test.
        if backend == Backend::OriginalCudnn {
            assert!(
                a100_ms < ti_ms * 1.02,
                "{backend:?} should be within 2% of the 2080 Ti on the A100"
            );
        } else {
            assert!(a100_ms < ti_ms, "{backend:?} should be faster on the A100");
        }
    }
}
