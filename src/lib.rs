//! # tdc-repro
//!
//! Umbrella crate of the TDC (PPoPP'23) reproduction workspace. It re-exports
//! the individual crates so the repository-level examples and integration
//! tests can use one coherent namespace:
//!
//! * [`tensor`] — dense tensors, GEMM, matricization, SVD (`tdc-tensor`)
//! * [`gpu_sim`] — the A100 / RTX 2080 Ti device simulator (`tdc-gpu-sim`)
//! * [`conv`] — the convolution algorithm zoo and cost models (`tdc-conv`)
//! * [`nn`] — the CNN training substrate and model zoo (`tdc-nn`)
//! * [`tucker`] — Tucker-2 decomposition and ADMM training (`tdc-tucker`)
//! * [`core`] — the TDC framework: performance model, tiling selection,
//!   code generation, rank selection, end-to-end pipeline (`tdc`)
//! * [`serve`] — batched inference serving with a compression-plan cache
//!   (`tdc-serve`)
//! * [`router`] — the replica-fleet router tier: health-driven ejection,
//!   Retry-After-aware failover, fleet control-plane fan-out (`tdc-router`)
//! * [`lab`] — the trace-driven workload engine, chaos harness and bench
//!   regression gate (`tdc-lab`)
//!
//! See `README.md` for a quickstart.

pub use tdc as core;
pub use tdc_conv as conv;
pub use tdc_gpu_sim as gpu_sim;
pub use tdc_lab as lab;
pub use tdc_nn as nn;
pub use tdc_router as router;
pub use tdc_serve as serve;
pub use tdc_tensor as tensor;
pub use tdc_tucker as tucker;

#[cfg(test)]
mod tests {
    #[test]
    fn reexports_are_wired() {
        // Touch one item from each re-exported crate.
        let _ = crate::tensor::Tensor::zeros(vec![2, 2]);
        let _ = crate::gpu_sim::DeviceSpec::a100();
        let _ = crate::conv::ConvShape::same3x3(8, 8, 8, 8);
        let _ = crate::nn::models::resnet18_descriptor();
        let _ = crate::tucker::rank::RankPair::new(32, 32);
        let _ = crate::core::tiling::TilingStrategy::Model;
        let _ = crate::serve::PlanCache::new(2);
        let _ = crate::router::RoutingPolicy::parse("least-loaded");
        let _ = crate::lab::artifact::CURRENT_SCHEMA_VERSION;
    }
}
