//! Figure 7: per-layer kernel runtime for all 18 evaluation shapes on the
//! RTX 2080 Ti, comparing cuDNN-FFT / cuDNN-WINOGRAD / cuDNN-GEMM / TVM /
//! TDC-ORACLE / TDC-MODELING.

use tdc_bench::figures::layerwise_figure;
use tdc_gpu_sim::DeviceSpec;

fn main() {
    layerwise_figure(&DeviceSpec::rtx2080ti(), "Figure 7");
}
