//! Figure 4: runtime of core convolutions as the number of output channels
//! grows from 32 to 256 (input channels fixed at 64), for 28×28 and 14×14
//! spatial sizes on the RTX 2080 Ti. The paper's point is the *staircase*:
//! latency stays flat until the wave count ticks up.

use tdc_bench::figures::staircase_figure;
use tdc_gpu_sim::DeviceSpec;

fn main() {
    let device = DeviceSpec::rtx2080ti();
    println!(
        "Figure 4 — core convolution latency vs. output channels ({})",
        device.name
    );
    println!("(C = 64 fixed, N swept 32..256, TDC kernel with model-selected tiling)\n");
    staircase_figure(&device);
    println!(
        "Expected shape (paper Figure 4): within each series the latency is a\n\
         monotone staircase — plateaus where the wave count is constant, jumps\n\
         where an extra wave is needed."
    );
}
