//! Table 3: accuracy / FLOPs-reduction comparison of TDC against compression
//! baselines across model families.
//!
//! The paper's Table 3 covers five ImageNet models against published pruning /
//! CPD / TT / TKD baselines. Neither ImageNet nor those checkpoints are
//! available here, so this harness reproduces the comparisons that can be
//! computed from scratch (see DESIGN.md): for each trainable model family it
//! reports the uncompressed baseline, the standard-TKD analogue (decompose the
//! pre-trained model, then retrain), and TDC's ADMM-based compression, at the
//! same FLOPs budget. The ordering to reproduce is
//! `TDC ≥ decompose-and-retrain > no-retraining`, with TDC staying close to
//! the uncompressed baseline.

use rand::{rngs::StdRng, SeedableRng};
use tdc::pipeline::TdcPipeline;
use tdc::tiling::TilingStrategy;
use tdc_bench::{fmt_pct, TextTable};
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::data::{SyntheticConfig, SyntheticDataset};
use tdc_nn::layer::Network;
use tdc_nn::models::{resnet_cifar, tiny_cnn, vgg_like};
use tdc_nn::train::{evaluate, train, TrainConfig};
use tdc_tucker::admm::{direct_compress, AdmmConfig};

struct Family {
    name: &'static str,
    budget: f64,
    net: Network,
}

fn main() {
    println!("Table 3 — accuracy vs. FLOPs reduction across model families\n");
    let data = SyntheticDataset::generate(SyntheticConfig::cifar_like(20, 13)).expect("dataset");
    let (train_set, test_set) = data.split(0.8);
    let mut rng = StdRng::seed_from_u64(99);

    let families = vec![
        Family {
            name: "ResNet family (ResNet-18/50 stand-in)",
            budget: 0.6,
            net: resnet_cifar(8, 1, 16, 16, 3, 10, &mut rng),
        },
        Family {
            name: "VGG family (VGG-16 stand-in)",
            budget: 0.6,
            net: vgg_like(8, 16, 16, 3, 10, &mut rng),
        },
        Family {
            name: "DenseNet family (compact stand-in)",
            budget: 0.3,
            net: tiny_cnn(16, 16, 3, 10, 16, &mut rng),
        },
    ];

    let mut table = TextTable::new(&[
        "Model family",
        "Method",
        "Top-1 accuracy",
        "FLOPs reduction",
    ]);
    let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
    let train_cfg = TrainConfig {
        epochs: 10,
        batch_size: 16,
        learning_rate: 0.05,
        ..Default::default()
    };

    for family in families {
        eprintln!("[table3] {}: pre-training...", family.name);
        let mut net = family.net;
        train(&mut net, &train_set, &train_cfg).expect("pre-training");
        let baseline = evaluate(&mut net, &test_set, 16).expect("baseline eval");
        table.row(&[
            family.name.into(),
            "Original (no compression)".into(),
            fmt_pct(baseline as f64),
            "N/A".into(),
        ]);

        // Std. TKD analogue: decompose the pre-trained model and retrain.
        eprintln!(
            "[table3] {}: decompose-and-retrain baseline...",
            family.name
        );
        let ranks = pipeline
            .select_ranks_for_network(&net, family.budget, 2)
            .expect("rank selection");
        let mut std_tkd = net.clone();
        direct_compress(&mut std_tkd, &ranks).expect("direct compression");
        let no_retrain_acc = evaluate(&mut std_tkd, &test_set, 16).expect("eval");
        let retrain_cfg = TrainConfig {
            epochs: 4,
            batch_size: 16,
            learning_rate: 0.01,
            ..Default::default()
        };
        train(&mut std_tkd, &train_set, &retrain_cfg).expect("retraining");
        let std_tkd_acc = evaluate(&mut std_tkd, &test_set, 16).expect("eval");

        // TDC: ADMM-based compression at the same budget.
        eprintln!("[table3] {}: TDC ADMM compression...", family.name);
        let admm = AdmmConfig {
            epochs: 6,
            finetune_epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        let mut tdc_net = net.clone();
        let result = pipeline
            .compress_and_train(&mut tdc_net, &train_set, &test_set, family.budget, 2, admm)
            .expect("TDC compression");

        table.row(&[
            family.name.into(),
            "Std. TKD (project only, no retraining)".into(),
            fmt_pct(no_retrain_acc as f64),
            fmt_pct(result.achieved_reduction),
        ]);
        table.row(&[
            family.name.into(),
            "MUSCO-style (decompose + retrain)".into(),
            fmt_pct(std_tkd_acc as f64),
            fmt_pct(result.achieved_reduction),
        ]);
        table.row(&[
            family.name.into(),
            "TDC (ADMM-based)".into(),
            fmt_pct(result.admm_accuracy as f64),
            fmt_pct(result.achieved_reduction),
        ]);
    }

    println!("{}", table.render());
    println!(
        "Expected shape (paper Table 3): TDC matches or beats the decompose-and-\n\
         retrain baseline and stays close to the uncompressed accuracy, while the\n\
         projection-only baseline loses the most."
    );
}
