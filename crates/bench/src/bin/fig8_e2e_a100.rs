//! Figure 8: end-to-end inference latency of the five evaluation CNNs on the
//! A100 under the five execution configurations (original cuDNN, TK-cuDNN,
//! TK-TVM, TK-TDC-oracle, TK-TDC-modeling).

use tdc_bench::figures::end_to_end_figure;
use tdc_gpu_sim::DeviceSpec;

fn main() {
    end_to_end_figure(&DeviceSpec::a100(), "Figure 8");
}
