//! Table 2: accuracy of direct compression vs. ADMM-based compression at the
//! same FLOPs reduction, on a ResNet-20-style network.
//!
//! The paper uses ResNet-20 on CIFAR-10 (91.25% baseline, 87.41% direct,
//! 91.02% ADMM at 60% FLOPs reduction). This reproduction uses a reduced-width
//! ResNet of the same family on a synthetic separable dataset (see DESIGN.md
//! for the substitution); the comparison to reproduce is the *ordering*:
//! baseline ≥ ADMM > direct, with ADMM recovering most of the gap.

use rand::{rngs::StdRng, SeedableRng};
use tdc::pipeline::TdcPipeline;
use tdc::tiling::TilingStrategy;
use tdc_bench::{fmt_pct, TextTable};
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::data::{SyntheticConfig, SyntheticDataset};
use tdc_nn::models::resnet_cifar;
use tdc_nn::train::{evaluate, train, TrainConfig};
use tdc_tucker::admm::AdmmConfig;

fn main() {
    println!("Table 2 — Direct training vs. ADMM-based compression (ResNet-20 family)\n");

    // Synthetic CIFAR-like task (see DESIGN.md: CIFAR-10 is not available here).
    let data = SyntheticDataset::generate(SyntheticConfig::cifar_like(24, 7)).expect("dataset");
    let (train_set, test_set) = data.split(0.8);

    // A reduced-width ResNet-20-family model (3 stages x 1 residual block).
    let mut rng = StdRng::seed_from_u64(2023);
    let mut net = resnet_cifar(8, 1, 16, 16, 3, 10, &mut rng);

    eprintln!("[table2] pre-training the baseline...");
    let cfg = TrainConfig {
        epochs: 10,
        batch_size: 16,
        learning_rate: 0.05,
        ..Default::default()
    };
    train(&mut net, &train_set, &cfg).expect("baseline training");
    let baseline = evaluate(&mut net, &test_set, 16).expect("baseline eval");

    eprintln!("[table2] compressing with direct projection and with ADMM...");
    let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
    let admm = AdmmConfig {
        epochs: 6,
        finetune_epochs: 3,
        batch_size: 16,
        ..Default::default()
    };
    let result = pipeline
        .compress_and_train(&mut net, &train_set, &test_set, 0.6, 2, admm)
        .expect("compression");

    let mut table = TextTable::new(&["Method", "Top-1 accuracy", "FLOPs reduction"]);
    table.row(&[
        "Baseline (no compression)".into(),
        fmt_pct(baseline as f64),
        "N/A".into(),
    ]);
    table.row(&[
        "Direct Compression (project, no ADMM)".into(),
        fmt_pct(result.direct_accuracy as f64),
        fmt_pct(result.achieved_reduction),
    ]);
    table.row(&[
        "ADMM-based (TDC)".into(),
        fmt_pct(result.admm_accuracy as f64),
        fmt_pct(result.achieved_reduction),
    ]);
    println!("{}", table.render());
    println!(
        "Expected shape (paper Table 2): ADMM-based compression recovers (most of)\n\
         the accuracy that direct compression loses at the same FLOPs reduction."
    );
}
