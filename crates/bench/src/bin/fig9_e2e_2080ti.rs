//! Figure 9: end-to-end inference latency of the five evaluation CNNs on the
//! RTX 2080 Ti under the five execution configurations.

use tdc_bench::figures::end_to_end_figure;
use tdc_gpu_sim::DeviceSpec;

fn main() {
    end_to_end_figure(&DeviceSpec::rtx2080ti(), "Figure 9");
}
