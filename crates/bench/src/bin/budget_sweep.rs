//! Section 7.2 budget sweep: the impact of the target FLOPs-reduction budget
//! on accuracy for a ResNet-style model (the paper sweeps 65/70/75/80% for
//! ResNet-18 and observes accuracy dropping as the budget grows).

use rand::{rngs::StdRng, SeedableRng};
use tdc::pipeline::TdcPipeline;
use tdc::tiling::TilingStrategy;
use tdc_bench::{fmt_pct, TextTable};
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::data::{SyntheticConfig, SyntheticDataset};
use tdc_nn::models::resnet_cifar;
use tdc_nn::train::{evaluate, train, TrainConfig};
use tdc_tucker::admm::AdmmConfig;

fn main() {
    println!("Section 7.2 — target-budget sweep (ResNet family)\n");
    let data = SyntheticDataset::generate(SyntheticConfig::cifar_like(24, 5)).expect("dataset");
    let (train_set, test_set) = data.split(0.8);

    let mut rng = StdRng::seed_from_u64(7);
    let mut base_net = resnet_cifar(8, 1, 16, 16, 3, 10, &mut rng);
    eprintln!("[budget_sweep] pre-training the baseline...");
    train(
        &mut base_net,
        &train_set,
        &TrainConfig {
            epochs: 10,
            batch_size: 16,
            learning_rate: 0.05,
            ..Default::default()
        },
    )
    .expect("pre-training");
    let baseline = evaluate(&mut base_net, &test_set, 16).expect("baseline eval");

    let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
    let mut table = TextTable::new(&[
        "target budget",
        "achieved FLOPs reduction",
        "Top-1 accuracy",
    ]);
    table.row(&[
        "0% (baseline)".into(),
        "0.0%".into(),
        fmt_pct(baseline as f64),
    ]);

    for &budget in &[0.5f64, 0.65, 0.75, 0.85] {
        eprintln!(
            "[budget_sweep] compressing at budget {}...",
            fmt_pct(budget)
        );
        let mut net = base_net.clone();
        let admm = AdmmConfig {
            epochs: 5,
            finetune_epochs: 3,
            batch_size: 16,
            ..Default::default()
        };
        let result = pipeline
            .compress_and_train(&mut net, &train_set, &test_set, budget, 2, admm)
            .expect("compression");
        table.row(&[
            fmt_pct(budget),
            fmt_pct(result.achieved_reduction),
            fmt_pct(result.admm_accuracy as f64),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper §7.2): accuracy degrades as the budget becomes more\n\
         aggressive; moderate budgets stay near the uncompressed baseline."
    );
}
