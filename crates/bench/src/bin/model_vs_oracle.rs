//! Section 5.5 claim: the analytical tiling model produces code that is only
//! modestly slower than the exhaustive "oracle" search (~25% in the paper),
//! while still clearly faster than TVM. This binary reports the per-shape and
//! geometric-mean ratios on both devices.

use tdc::tiling::{select, TilingStrategy};
use tdc_bench::{fmt_ms, fmt_x, geomean, TextTable};
use tdc_conv::cost::{algorithm_latency_ms, ConvAlgorithm};
use tdc_conv::shapes::figure6_shapes;
use tdc_gpu_sim::DeviceSpec;

fn report(device: &DeviceSpec) {
    println!(
        "Analytical model vs. oracle tiling selection on {}\n",
        device.name
    );
    let mut table = TextTable::new(&[
        "shape (C,N,H,W)",
        "oracle (ms)",
        "model (ms)",
        "model/oracle",
        "TVM (ms)",
        "TVM/model",
    ]);
    let mut model_vs_oracle = Vec::new();
    let mut tvm_vs_model = Vec::new();
    for shape in figure6_shapes() {
        let oracle = select(&shape, device, TilingStrategy::Oracle)
            .unwrap()
            .latency_ms;
        let model = select(&shape, device, TilingStrategy::Model)
            .unwrap()
            .latency_ms;
        let tvm = algorithm_latency_ms(ConvAlgorithm::Tvm, &shape, device);
        model_vs_oracle.push(model / oracle);
        tvm_vs_model.push(tvm / model);
        table.row(&[
            format!("({},{},{},{})", shape.c, shape.n, shape.h, shape.w),
            fmt_ms(oracle),
            fmt_ms(model),
            format!("{:.2}", model / oracle),
            fmt_ms(tvm),
            format!("{:.2}", tvm / model),
        ]);
    }
    println!("{}", table.render());
    println!(
        "geomean model/oracle ratio : {:.2} (paper reports ~1.25)",
        geomean(&model_vs_oracle)
    );
    println!(
        "geomean TVM speedup of model: {} (paper reports ~1.5x)\n",
        fmt_x(geomean(&tvm_vs_model))
    );
}

fn main() {
    report(&DeviceSpec::a100());
    report(&DeviceSpec::rtx2080ti());
}
