//! Shared figure/table generators used by the `src/bin/*` harness binaries.
//!
//! Each function prints the rows the corresponding paper figure plots and
//! returns the underlying numbers so tests (and EXPERIMENTS.md tooling) can
//! assert the qualitative shape without re-parsing stdout.

use crate::{fmt_ms, fmt_x, geomean, TextTable};
use tdc::inference::Backend;
use tdc::pipeline::TdcPipeline;
use tdc::tiling::{select, TilingStrategy};
use tdc_conv::cost::{algorithm_latency_ms, ConvAlgorithm};
use tdc_conv::shapes::{figure4_sweep, figure6_shapes};
use tdc_conv::ConvShape;
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::models::all_descriptors;

/// One row of the layer-wise comparison (Figures 6/7).
#[derive(Debug, Clone)]
pub struct LayerwiseRow {
    /// The convolution shape.
    pub shape: ConvShape,
    /// Latency per algorithm, in the column order of the figure:
    /// FFT, Winograd, GEMM, TVM, TDC-oracle, TDC-model.
    pub ms: [f64; 6],
}

/// Generate and print the Figure 6/7 layer-wise comparison for one device.
pub fn layerwise_figure(device: &DeviceSpec, figure: &str) -> Vec<LayerwiseRow> {
    println!(
        "{figure} — per-layer core convolution runtime on {}\n",
        device.name
    );
    let mut table = TextTable::new(&[
        "shape (C,N,H,W)",
        "cuDNN-FFT",
        "cuDNN-WINOGRAD",
        "cuDNN-GEMM",
        "TVM",
        "TDC-ORACLE",
        "TDC-MODELING",
    ]);
    let mut rows = Vec::new();
    for shape in figure6_shapes() {
        let fft = algorithm_latency_ms(ConvAlgorithm::CudnnFft, &shape, device);
        let wino = algorithm_latency_ms(ConvAlgorithm::CudnnWinograd, &shape, device);
        let gemm = algorithm_latency_ms(ConvAlgorithm::CudnnGemm, &shape, device);
        let tvm = algorithm_latency_ms(ConvAlgorithm::Tvm, &shape, device);
        let oracle = select(&shape, device, TilingStrategy::Oracle)
            .expect("oracle tiling")
            .latency_ms;
        let model = select(&shape, device, TilingStrategy::Model)
            .expect("model tiling")
            .latency_ms;
        table.row(&[
            format!("({},{},{},{})", shape.c, shape.n, shape.h, shape.w),
            fmt_ms(fft),
            fmt_ms(wino),
            fmt_ms(gemm),
            fmt_ms(tvm),
            fmt_ms(oracle),
            fmt_ms(model),
        ]);
        rows.push(LayerwiseRow {
            shape,
            ms: [fft, wino, gemm, tvm, oracle, model],
        });
    }
    println!("{}", table.render());

    let ratio = |idx: usize| -> f64 {
        geomean(&rows.iter().map(|r| r.ms[idx] / r.ms[4]).collect::<Vec<_>>())
    };
    println!("Geometric-mean speedup of TDC-ORACLE over:");
    println!("  cuDNN-FFT      : {}", fmt_x(ratio(0)));
    println!("  cuDNN-WINOGRAD : {}", fmt_x(ratio(1)));
    println!("  cuDNN-GEMM     : {}", fmt_x(ratio(2)));
    println!("  TVM            : {}", fmt_x(ratio(3)));
    println!(
        "TDC-MODELING vs TDC-ORACLE (geomean ratio): {:.2}",
        ratio(5)
    );
    println!(
        "\nExpected shape (paper): TDC fastest on the small/medium spatial shapes,\n\
         losing or tying only on the two large VGG shapes (224/112).\n"
    );
    rows
}

/// One row of the end-to-end comparison (Figures 8/9).
#[derive(Debug, Clone)]
pub struct EndToEndRow {
    /// Model name.
    pub model: String,
    /// Latency per backend in the order of [`Backend::all`].
    pub ms: [f64; 5],
}

/// The per-model FLOPs-reduction budgets the paper uses (Section 7.2): 65% for
/// ResNet-18, 60% for ResNet-50, 80% for VGG-16 and 10% for the DenseNets.
pub fn paper_budget(model_name: &str) -> f64 {
    if model_name.contains("DenseNet") {
        0.10
    } else if model_name.contains("ResNet-18") {
        0.65
    } else if model_name.contains("ResNet-50") {
        0.60
    } else if model_name.contains("VGG") {
        0.80
    } else {
        0.60
    }
}

/// Generate and print the Figure 8/9 end-to-end comparison for one device,
/// using the paper's per-model budgets (see [`paper_budget`]).
pub fn end_to_end_figure(device: &DeviceSpec, figure: &str) -> Vec<EndToEndRow> {
    println!(
        "{figure} — end-to-end inference latency on {} (batch 1, paper per-model budgets)\n",
        device.name,
    );
    let pipeline = TdcPipeline::new(device.clone(), TilingStrategy::Model);
    let mut table = TextTable::new(&[
        "model",
        "Original cuDNN",
        "TK cuDNN",
        "TK TVM",
        "TK TDC-ORACLE",
        "TK TDC-MODELING",
        "TDC speedup vs orig",
        "TDC speedup vs cuDNN",
        "TDC speedup vs TVM",
    ]);
    let mut rows = Vec::new();
    for descriptor in all_descriptors() {
        let budget = paper_budget(&descriptor.name);
        let plan = pipeline
            .plan(&descriptor, budget)
            .expect("compression plan");
        let ms_of = |b: Backend| plan.report(b).expect("report").total_ms;
        let ms = [
            ms_of(Backend::OriginalCudnn),
            ms_of(Backend::TuckerCudnn),
            ms_of(Backend::TuckerTvm),
            ms_of(Backend::TuckerTdcOracle),
            ms_of(Backend::TuckerTdcModel),
        ];
        table.row(&[
            descriptor.name.clone(),
            fmt_ms(ms[0]),
            fmt_ms(ms[1]),
            fmt_ms(ms[2]),
            fmt_ms(ms[3]),
            fmt_ms(ms[4]),
            fmt_x(ms[0] / ms[3]),
            fmt_x(ms[1] / ms[3]),
            fmt_x(ms[2] / ms[3]),
        ]);
        rows.push(EndToEndRow {
            model: descriptor.name.clone(),
            ms,
        });
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper): for every model, TDC-oracle <= TDC-model < TVM ≈/< \n\
         TK-cuDNN < original cuDNN; speedups over the original are largest for ResNet-18.\n"
    );
    rows
}

/// Print the Figure 4 staircase series and return (label, N, latency_ms).
pub fn staircase_figure(device: &DeviceSpec) -> Vec<(&'static str, usize, f64)> {
    let mut out = Vec::new();
    let mut table = TextTable::new(&["series", "N", "latency (ms)", "tiling"]);
    for (shape, label) in figure4_sweep() {
        let choice = select(&shape, device, TilingStrategy::Model).expect("tiling");
        table.row(&[
            label.to_string(),
            shape.n.to_string(),
            fmt_ms(choice.latency_ms),
            choice.tiling.to_string(),
        ]);
        out.push((label, shape.n, choice.latency_ms));
    }
    println!("{}", table.render());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layerwise_rows_cover_all_shapes_with_finite_latencies() {
        let rows = layerwise_figure(&DeviceSpec::a100(), "Figure 6 (test)");
        assert_eq!(rows.len(), 18);
        assert!(rows
            .iter()
            .all(|r| r.ms.iter().all(|m| m.is_finite() && *m > 0.0)));
        // On the medium shapes TDC-oracle should be the fastest column.
        let medium = rows
            .iter()
            .find(|r| r.shape.h == 28 && r.shape.c == 160)
            .unwrap();
        let oracle = medium.ms[4];
        assert!(medium.ms[..4].iter().all(|&m| m > oracle));
    }

    #[test]
    fn staircase_trends_upward_within_each_series() {
        // The paper's staircase: latency grows with N overall, in uneven steps.
        // Because the tiling is re-selected at every N, small local dips are
        // possible; the series must still never drop by more than 10% and must
        // end clearly above where it started.
        let series = staircase_figure(&DeviceSpec::rtx2080ti());
        for label in ["28x28", "14x14"] {
            let lat: Vec<f64> = series
                .iter()
                .filter(|(l, _, _)| *l == label)
                .map(|(_, _, ms)| *ms)
                .collect();
            assert_eq!(lat.len(), 8);
            assert!(
                lat.windows(2).all(|w| w[1] >= w[0] * 0.9),
                "{label} series should not drop sharply: {lat:?}"
            );
            assert!(
                *lat.last().unwrap() > lat[0] * 1.5,
                "{label} series should grow overall: {lat:?}"
            );
        }
    }
}
