//! # tdc-bench
//!
//! The benchmark harness that regenerates every table and figure of the TDC
//! paper's evaluation (Section 7). Each `src/bin/*` binary prints the rows of
//! one table or the series of one figure; the Criterion benches in `benches/`
//! time the underlying computational kernels. See DESIGN.md §5 for the
//! experiment-to-binary index and EXPERIMENTS.md for recorded outputs.

pub mod figures;

use std::fmt::Write as _;

/// Geometric mean of a slice of positive numbers (used for the "average
/// speedup" summaries the paper quotes).
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-300).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// A simple fixed-width text table builder for the binaries' stdout reports.
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Create a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        TextTable {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (must have the same arity as the headers).
    pub fn row(&mut self, cells: &[String]) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render the table as aligned text.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let _ = write!(out, "| {:width$} ", cell, width = widths[i]);
            }
            out.push_str("|\n");
        };
        write_row(&self.headers, &mut out);
        for (i, w) in widths.iter().enumerate() {
            let _ = write!(out, "|{:-<width$}", "", width = w + 2);
            if i + 1 == widths.len() {
                out.push_str("|\n");
            }
        }
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Format milliseconds with enough precision for sub-millisecond kernels.
pub fn fmt_ms(ms: f64) -> String {
    if ms < 0.01 {
        format!("{ms:.5}")
    } else if ms < 1.0 {
        format!("{ms:.4}")
    } else {
        format!("{ms:.3}")
    }
}

/// Format a speedup factor.
pub fn fmt_x(x: f64) -> String {
    format!("{x:.2}x")
}

/// Format a percentage.
pub fn fmt_pct(frac: f64) -> String {
    format!("{:.1}%", frac * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned_rows() {
        let mut t = TextTable::new(&["shape", "ms"]);
        t.row(&["(64,32,28,28)".into(), "0.0123".into()]);
        t.row(&["(32,32,7,7)".into(), "0.002".into()]);
        let text = t.render();
        assert!(text.contains("shape"));
        assert!(text.lines().count() >= 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
        // Every line has the same number of column separators.
        let pipes: Vec<usize> = text.lines().map(|l| l.matches('|').count()).collect();
        assert!(pipes.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_x(2.345), "2.35x");
        assert_eq!(fmt_pct(0.631), "63.1%");
        assert!(fmt_ms(0.00123).starts_with("0.0012"));
        assert!(fmt_ms(12.3456).starts_with("12.346"));
    }
}
