//! Criterion bench behind Figures 8/9: cost of the end-to-end latency
//! evaluation (given an already-selected compression plan) for ResNet-18 on
//! the A100 device model. The companion binaries print the full five-model
//! tables.

use criterion::{criterion_group, criterion_main, Criterion};
use std::time::Duration;
use tdc::inference::{model_latency, Backend};
use tdc::rank_select::{select_ranks, RankSelectionConfig};
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::models::resnet18_descriptor;

fn bench_e2e(c: &mut Criterion) {
    let device = DeviceSpec::a100();
    let model = resnet18_descriptor();
    // Rank selection (and its tiling searches) happen once, outside the
    // measured region — the bench measures the per-backend latency roll-up.
    let summary = select_ranks(&model, &device, &RankSelectionConfig::default()).unwrap();

    let mut group = c.benchmark_group("fig8_e2e_resnet18_a100");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(300));
    for backend in Backend::all() {
        group.bench_function(format!("{backend:?}"), |b| {
            b.iter(|| model_latency(&model, &summary.decisions, backend, &device).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_e2e);
criterion_main!(benches);
