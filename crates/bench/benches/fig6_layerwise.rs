//! Criterion bench behind Figures 6/7: cost of the per-shape latency
//! evaluation for each algorithm family on the A100 device model. The
//! companion binaries `fig6_layerwise_a100` / `fig7_layerwise_2080ti` print
//! the full 18-shape tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdc_conv::cost::{algorithm_latency_ms, ConvAlgorithm};
use tdc_conv::ConvShape;
use tdc_gpu_sim::DeviceSpec;

fn bench_layerwise(c: &mut Criterion) {
    let device = DeviceSpec::a100();
    let shapes = [
        ("small", ConvShape::same3x3(32, 32, 7, 7)),
        ("medium", ConvShape::same3x3(96, 64, 28, 28)),
        ("large", ConvShape::same3x3(64, 32, 112, 112)),
    ];
    let mut group = c.benchmark_group("fig6_layerwise");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for (label, shape) in shapes {
        for alg in [
            ConvAlgorithm::CudnnGemm,
            ConvAlgorithm::CudnnWinograd,
            ConvAlgorithm::CudnnFft,
            ConvAlgorithm::Tvm,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", alg), label),
                &shape,
                |b, s| b.iter(|| algorithm_latency_ms(alg, s, &device)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_layerwise);
criterion_main!(benches);
