//! Criterion bench behind Figure 4: cost of evaluating the TDC kernel latency
//! (tiling selection + simulator) across the output-channel sweep on the
//! 2080 Ti device model. The companion binary `fig4_staircase` prints the
//! actual series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use tdc::tiling::{select_by_model, select_by_oracle};
use tdc_conv::ConvShape;
use tdc_gpu_sim::DeviceSpec;

fn bench_staircase(c: &mut Criterion) {
    let device = DeviceSpec::rtx2080ti();
    let mut group = c.benchmark_group("fig4_staircase");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(2))
        .warm_up_time(Duration::from_millis(300));
    for &n in &[32usize, 128, 256] {
        let shape = ConvShape::same3x3(64, n, 28, 28);
        group.bench_with_input(
            BenchmarkId::new("model_selection_28x28", n),
            &shape,
            |b, s| b.iter(|| select_by_model(s, &device).unwrap()),
        );
        group.bench_with_input(
            BenchmarkId::new("oracle_selection_28x28", n),
            &shape,
            |b, s| b.iter(|| select_by_oracle(s, &device).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_staircase);
criterion_main!(benches);
