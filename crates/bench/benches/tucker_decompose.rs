//! Tucker decomposition benchmark: truncated-HOSVD decomposition, the ADMM
//! projection operator, and the Tucker-format forward pass, on an
//! ImageNet-scale kernel (256×256×3×3, the largest 3×3 kernel in ResNet-18).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;
use tdc_conv::ConvShape;
use tdc_tensor::init;
use tdc_tucker::tkd::{project, tucker2};
use tdc_tucker::tucker_conv::TuckerConv;

fn bench_tucker(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let kernel = init::uniform(vec![256, 256, 3, 3], -0.1, 0.1, &mut rng);
    let shape = ConvShape::same3x3(256, 256, 14, 14);
    let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
    let factors = tucker2(&kernel, 64, 64).unwrap();
    let layer = TuckerConv::from_factors(shape, &factors).unwrap();

    let mut group = c.benchmark_group("tucker_256x256x3x3");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    group.bench_function("tucker2_rank64", |b| {
        b.iter(|| tucker2(&kernel, 64, 64).unwrap())
    });
    group.bench_function("admm_projection_rank64", |b| {
        b.iter(|| project(&kernel, 64, 64).unwrap())
    });
    group.bench_function("tucker_layer_forward_14x14", |b| {
        b.iter(|| layer.forward(&input).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_tucker);
criterion_main!(benches);
