//! CPU-side convolution algorithm benchmark: the actual from-scratch
//! implementations (direct, im2col+GEMM, Winograd, FFT, the TVM scheme
//! emulation and the TDC scheme emulation) on a Tucker-core-sized problem.
//! This is the compute that backs every correctness test and the training
//! substrate.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use std::time::Duration;
use tdc_conv::{dispatch, layout, tdc_scheme, tvm_scheme, ConvShape, CpuConvAlgorithm, Tiling};
use tdc_tensor::init;

fn bench_cpu_kernels(c: &mut Criterion) {
    let shape = ConvShape::same3x3(32, 32, 28, 28);
    let mut rng = StdRng::seed_from_u64(1);
    let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
    let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
    let kernel_crsn = layout::cnrs_to_crsn(&kernel).unwrap();
    let tiling = Tiling::new(7, 7, 8);
    let tvm_tile = tvm_scheme::TvmTile::new(7, 7);

    let mut group = c.benchmark_group("cpu_conv_32x32x28x28");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for (label, algorithm) in [
        ("direct", CpuConvAlgorithm::Direct),
        ("im2col_gemm", CpuConvAlgorithm::Im2col),
        ("winograd_f2x3", CpuConvAlgorithm::Winograd),
        ("fft", CpuConvAlgorithm::Fft),
    ] {
        group.bench_function(label, |b| {
            b.iter(|| dispatch(algorithm, &input, &kernel, &shape).unwrap())
        });
    }
    group.bench_function("tvm_scheme", |b| {
        b.iter(|| tvm_scheme::run(&input, &kernel, &shape, &tvm_tile).unwrap())
    });
    group.bench_function("tdc_scheme", |b| {
        b.iter(|| tdc_scheme::run(&input, &kernel_crsn, &shape, &tiling).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_cpu_kernels);
criterion_main!(benches);
