//! Property tests for the lab's trace engine: the reproducibility and
//! shape guarantees every other lab piece (the replay runner, the chaos
//! scenarios, the CI gate) builds on.
//!
//! * same seed + same spec ⇒ byte-identical canonical trace and equal
//!   fingerprint, across independent `generate` calls;
//! * timestamps are strictly monotone (the runner replays in order, the
//!   artifact's per-phase counts depend on it);
//! * every drawn request size respects the declared size-mix bounds and
//!   every model index points into the zoo;
//! * the fingerprint commits to the seed — two seeds never collide on
//!   the same fingerprint even when they happen to emit similar events.

use proptest::prelude::*;
use tdc_lab::spec::{Arrival, ModelSpec, PhaseSpec, SizeMix, WorkloadSpec};
use tdc_lab::trace::generate;

/// A compact two-model spec exercising all four arrival processes.
fn spec(
    seed: u64,
    rate_hz: f64,
    alpha: f64,
    min: usize,
    span: usize,
    duration_ms: u64,
) -> WorkloadSpec {
    WorkloadSpec {
        name: "prop-workload".to_string(),
        seed,
        models: vec![
            ModelSpec {
                name: "prop-a".to_string(),
                spatial: 8,
                base_channels: 4,
                classes: 4,
                qos: None,
                deadline_ms: None,
            },
            ModelSpec {
                name: "prop-b".to_string(),
                spatial: 10,
                base_channels: 4,
                classes: 6,
                qos: None,
                deadline_ms: Some(250),
            },
        ],
        model_mix: vec![0.6, 0.4],
        size_mix: SizeMix::BoundedPareto {
            alpha,
            min,
            max: min + span,
        },
        phases: vec![
            PhaseSpec {
                label: "uniform".to_string(),
                duration_ms,
                arrival: Arrival::Uniform { rate_hz },
            },
            PhaseSpec {
                label: "poisson".to_string(),
                duration_ms,
                arrival: Arrival::Poisson { rate_hz },
            },
            PhaseSpec {
                label: "sine".to_string(),
                duration_ms,
                arrival: Arrival::Sine {
                    base_hz: rate_hz,
                    amplitude_hz: rate_hz * 0.5,
                    period_ms: duration_ms.max(2) / 2,
                },
            },
            PhaseSpec {
                label: "square".to_string(),
                duration_ms,
                arrival: Arrival::Square {
                    low_hz: rate_hz * 0.5,
                    high_hz: rate_hz * 2.0,
                    period_ms: duration_ms.max(2) / 2,
                },
            },
        ],
        faults: Vec::new(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn identical_seed_and_spec_produce_byte_identical_traces(
        seed in 0u64..10_000,
        rate_hz in 50.0f64..400.0,
        alpha in 0.8f64..2.5,
        min in 1usize..4,
        span in 0usize..8,
        duration_ms in 20u64..120,
    ) {
        let workload = spec(seed, rate_hz, alpha, min, span, duration_ms);
        let first = generate(&workload);
        let second = generate(&workload.clone());
        prop_assert_eq!(first.canonical_bytes(), second.canonical_bytes());
        prop_assert_eq!(first.fingerprint, second.fingerprint);
        prop_assert_eq!(first.events.len(), second.events.len());
    }

    #[test]
    fn timestamps_are_strictly_monotone_and_phases_ordered(
        seed in 0u64..10_000,
        rate_hz in 50.0f64..400.0,
        duration_ms in 20u64..120,
    ) {
        let workload = spec(seed, rate_hz, 1.5, 1, 4, duration_ms);
        let trace = generate(&workload);
        let mut last_ts = 0u64;
        let mut last_phase = 0usize;
        for (i, event) in trace.events.iter().enumerate() {
            if i > 0 {
                prop_assert!(event.timestamp_us > last_ts,
                    "event {} at {}us does not advance past {}us", i, event.timestamp_us, last_ts);
            }
            prop_assert!(event.phase >= last_phase, "phase index went backwards");
            prop_assert!(event.phase < workload.phases.len());
            last_ts = event.timestamp_us;
            last_phase = event.phase;
        }
        let total_us = workload.duration_ms() * 1_000;
        prop_assert!(last_ts < total_us, "last event {}us beyond workload span {}us", last_ts, total_us);
    }

    #[test]
    fn request_sizes_respect_the_size_mix_bounds(
        seed in 0u64..10_000,
        alpha in 0.8f64..2.5,
        min in 1usize..4,
        span in 0usize..8,
    ) {
        let workload = spec(seed, 200.0, alpha, min, span, 60);
        let trace = generate(&workload);
        prop_assert!(!trace.events.is_empty());
        for event in &trace.events {
            prop_assert!(event.samples >= min && event.samples <= min + span,
                "sample count {} outside [{}, {}]", event.samples, min, min + span);
            prop_assert!(event.model < workload.models.len());
            let deadline = workload.models[event.model].deadline_ms;
            prop_assert_eq!(event.deadline_ms, deadline);
        }
    }

    #[test]
    fn fingerprint_commits_to_the_seed(
        seed in 0u64..10_000,
        bump in 1u64..100,
    ) {
        let base = generate(&spec(seed, 200.0, 1.5, 1, 4, 40));
        let other = generate(&spec(seed + bump, 200.0, 1.5, 1, 4, 40));
        prop_assert!(base.fingerprint != other.fingerprint,
            "fingerprints collide across seeds {} and {}", seed, seed + bump);
    }
}
