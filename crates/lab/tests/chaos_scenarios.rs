//! The chaos catalog as CI tests: every scenario in
//! [`tdc_lab::chaos`] runs end-to-end and asserts its invariants
//! internally (typed errors only, counters reconcile, bit-parity after
//! the fault heals). These tests just invoke them and sanity-check the
//! returned reports.

use tdc_lab::chaos;

#[test]
fn worker_panic_inside_forward_batch_recovers() {
    let report = chaos::worker_panic_recovers();
    assert_eq!(report.scenario, "worker-panic");
    assert!(report.typed_failures > 0, "panic fault never fired");
    assert!(report.requests > report.typed_failures);
}

#[test]
fn backend_error_storm_recovers() {
    let report = chaos::error_storm_recovers();
    assert_eq!(report.scenario, "error-storm");
    assert!(report.typed_failures > 0, "error fault never fired");
    assert!(report.requests > report.typed_failures);
}

#[test]
fn replica_kill_mid_drain_is_masked_by_the_router() {
    let report = chaos::replica_kill_mid_drain_masked();
    assert_eq!(report.scenario, "replica-kill");
    assert_eq!(
        report.typed_failures, 0,
        "router leaked a failure to a client"
    );
    assert!(report.requests > 0);
}

#[test]
fn slow_replica_is_ejected_on_latency_and_readmitted_after_heal() {
    let report = chaos::slow_replica_ejected_on_latency();
    assert_eq!(report.scenario, "slow-replica");
    assert_eq!(
        report.typed_failures, 0,
        "a brown-out must not surface as client failures"
    );
    assert!(report.requests > 0);
}

#[test]
fn plan_spill_dir_loss_degrades_to_memory_only() {
    let report = chaos::spill_dir_loss_survives();
    assert_eq!(report.scenario, "spill-dir-loss");
    assert_eq!(
        report.typed_failures, 0,
        "spill loss surfaced as a request failure"
    );
    assert!(report.requests > 0);
}

#[test]
fn admission_queue_saturation_sheds_with_typed_errors() {
    let report = chaos::queue_saturation_sheds_typed();
    assert_eq!(report.scenario, "queue-saturation");
    assert!(
        report.typed_failures > 0,
        "flood never tripped admission control"
    );
    assert!(
        report.requests > report.typed_failures,
        "admitted requests must complete"
    );
}
