//! The CI bench-regression gate.
//!
//! Compares a freshly produced `BENCH_serve.json` against the committed
//! baseline and fails (exit 1) when the serving stack regressed:
//!
//! * **deterministic fields compare exactly.** The trace fingerprint,
//!   event/outcome counts and the completed-output fingerprint are
//!   machine-independent — same code, same spec, same seed ⇒ same bytes
//!   on any host. Any drift means the workload engine, the planner or
//!   the numerics changed, which must be a deliberate baseline refresh,
//!   never an accident.
//! * **wall-clock metrics compare within wide tolerance bands.** The
//!   baseline is recorded on a developer machine, the fresh artifact on
//!   a CI runner — absolute latency is not comparable, but a collapse
//!   is: the gate fails when fresh throughput drops below
//!   `LAB_GATE_MIN_THROUGHPUT_FRAC` (default 0.25) of baseline or fresh
//!   p99 exceeds `LAB_GATE_MAX_P99_FRAC` (default 4.0) times baseline.
//!
//! * **`--trend` adds a history report.** The last
//!   `LAB_GATE_TREND_WINDOW` (default 3) committed revisions of the
//!   baseline artifact are pulled out of git history and each wall-clock
//!   field's drift direction — improving, steady, degrading — is printed
//!   for the fresh run against the committed record. Trend output is
//!   advisory (it never flips the exit code: commits land on
//!   heterogeneous machines, so history is context, not a gate) and
//!   degrades to a note when git or the file's history is unavailable.
//!
//! Usage:
//!
//! ```text
//! lab_gate --baseline BENCH_serve.json --fresh target/BENCH_serve_fresh.json [--trend]
//! ```
//!
//! Both artifacts must validate against the schema they declare and must
//! carry a `trace` section (the gate's deterministic core); refreshing
//! the baseline means re-running `serve_bench --trace` and committing
//! the result alongside the change that moved it.

use serde::Value;
use tdc_lab::artifact;

fn flag(name: &str, env: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    let mut choice = std::env::var(env).ok();
    let prefix = format!("{name}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            choice = Some(value.to_string());
        } else if arg == name {
            match args.get(i + 1) {
                Some(value) => choice = Some(value.clone()),
                None => {
                    eprintln!("lab_gate: {name} needs a value");
                    std::process::exit(2);
                }
            }
        }
    }
    choice.unwrap_or_else(|| default.to_string())
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn bool_flag(name: &str, env: &str) -> bool {
    std::env::args().any(|a| a == name)
        || std::env::var(env).is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

fn load(label: &str, path: &str) -> Value {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("lab_gate: cannot read {label} artifact {path}: {e}");
        std::process::exit(1);
    });
    let value = serde_json::parse_value(&text).unwrap_or_else(|e| {
        eprintln!(
            "lab_gate: {label} artifact {path} is not valid JSON: {}",
            e.message
        );
        std::process::exit(1);
    });
    match artifact::validate(&value) {
        Ok(version) => {
            println!("  {label:<8} {path} (schema_version {version})");
            value
        }
        Err(e) => {
            eprintln!("lab_gate: {label} artifact {path} invalid: {e}");
            std::process::exit(1);
        }
    }
}

fn trace_section<'v>(label: &str, value: &'v Value) -> &'v Value {
    match value.get("trace") {
        Some(section) if !matches!(section, Value::Null) => section,
        _ => {
            eprintln!(
                "lab_gate: {label} artifact has no trace section — run \
                 `serve_bench --trace <spec.json>` to produce one"
            );
            std::process::exit(1);
        }
    }
}

fn str_field<'v>(section: &'v Value, key: &str) -> &'v str {
    section
        .get(key)
        .and_then(|v| v.as_str())
        .unwrap_or_else(|| {
            eprintln!("lab_gate: trace section missing string field {key:?}");
            std::process::exit(1);
        })
}

fn num_field(section: &Value, key: &str) -> f64 {
    section
        .get(key)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| {
            eprintln!("lab_gate: trace section missing numeric field {key:?}");
            std::process::exit(1);
        })
}

/// Run git with `args` and return stdout, or `None` when git is missing,
/// the cwd is not a repository, or the invocation fails for any reason —
/// the trend report treats every failure shape as "no history".
fn git_output(args: &[&str]) -> Option<String> {
    let out = std::process::Command::new("git").args(args).output().ok()?;
    if !out.status.success() {
        return None;
    }
    Some(String::from_utf8_lossy(&out.stdout).into_owned())
}

/// The last `window` committed revisions of `path`, newest first, as
/// `(short-sha, artifact)` pairs. Revisions that no longer parse or
/// validate (ancient schemas, merge debris) are skipped, not fatal.
fn baseline_history(path: &str, window: usize) -> Option<Vec<(String, Value)>> {
    // `git show` wants a path relative to the repository root, whatever
    // the cwd or the --baseline spelling.
    let toplevel = git_output(&["rev-parse", "--show-toplevel"])?;
    let rel = match std::path::Path::new(path).strip_prefix(toplevel.trim()) {
        Ok(stripped) => stripped.to_str()?.to_string(),
        Err(_) => {
            let prefix = git_output(&["rev-parse", "--show-prefix"])?;
            format!("{}{}", prefix.trim(), path)
        }
    };
    let log = git_output(&["log", "-n", &window.to_string(), "--format=%H", "--", &rel])?;
    let mut history = Vec::new();
    for sha in log.split_whitespace() {
        let Some(text) = git_output(&["show", &format!("{sha}:{rel}")]) else {
            continue;
        };
        let Ok(value) = serde_json::parse_value(&text) else {
            continue;
        };
        if artifact::validate(&value).is_err() {
            continue;
        }
        if matches!(value.get("trace"), Some(section) if !matches!(section, Value::Null)) {
            history.push((sha[..sha.len().min(10)].to_string(), value));
        }
    }
    Some(history)
}

/// Which way `fresh` drifts against the committed mean: within 10% is
/// steady; beyond that the sign is read through `higher_is_better`.
fn drift_direction(fresh: f64, mean: f64, higher_is_better: bool) -> &'static str {
    if mean <= 0.0 {
        return "n/a";
    }
    let delta = (fresh - mean) / mean;
    if delta.abs() <= 0.10 {
        "steady"
    } else if (delta > 0.0) == higher_is_better {
        "improving"
    } else {
        "degrading"
    }
}

/// The `--trend` report: fresh wall-clock metrics against the last
/// `window` committed baselines, per field, with a drift direction.
/// Advisory only — the exit code is owned by the two-artifact gate.
fn trend_report(baseline_path: &str, fresh_trace: &Value, window: usize) {
    println!("lab_gate: trend over the last {window} committed baseline(s)");
    let Some(history) = baseline_history(baseline_path, window) else {
        println!("  (git history unavailable for {baseline_path}; trend skipped)");
        return;
    };
    if history.is_empty() {
        println!("  (no committed revisions of {baseline_path} carry a trace section)");
        return;
    }
    for (sha, _) in &history {
        println!("  committed {sha}");
    }
    // (field, higher-is-better): a throughput drop and a p99 rise both
    // read as "degrading".
    for (key, higher_is_better) in [("throughput_rps", true), ("p99_ms", false)] {
        let committed: Vec<f64> = history
            .iter()
            .map(|(_, value)| num_field(trace_section("committed", value), key))
            .collect();
        let mean = committed.iter().sum::<f64>() / committed.len() as f64;
        let fresh = num_field(fresh_trace, key);
        let trail = committed
            .iter()
            .rev() // oldest -> newest, matching reading order
            .map(|v| format!("{v:.1}"))
            .collect::<Vec<_>>()
            .join(" -> ");
        println!(
            "  {key:<16} committed {trail} (mean {mean:.1}), fresh {fresh:.1}  [{}]",
            drift_direction(fresh, mean, higher_is_better)
        );
    }
}

struct Gate {
    checks: u64,
    failures: u64,
}

impl Gate {
    fn exact_str(&mut self, key: &str, baseline: &Value, fresh: &Value) {
        self.report(
            key,
            str_field(baseline, key) == str_field(fresh, key),
            &format!("{:?}", str_field(baseline, key)),
            &format!("{:?}", str_field(fresh, key)),
            "exact",
        );
    }

    fn exact_num(&mut self, key: &str, baseline: &Value, fresh: &Value) {
        let (b, f) = (num_field(baseline, key), num_field(fresh, key));
        self.report(key, b == f, &format!("{b}"), &format!("{f}"), "exact");
    }

    fn band(&mut self, key: &str, baseline: f64, fresh: f64, ok: bool, band: &str) {
        self.report(
            key,
            ok,
            &format!("{baseline:.3}"),
            &format!("{fresh:.3}"),
            band,
        );
    }

    fn report(&mut self, key: &str, ok: bool, baseline: &str, fresh: &str, rule: &str) {
        self.checks += 1;
        if !ok {
            self.failures += 1;
        }
        println!(
            "  {} {key:<22} baseline {baseline:>20} fresh {fresh:>20}  [{rule}]",
            if ok { "ok  " } else { "FAIL" }
        );
    }
}

fn main() {
    let baseline_path = flag("--baseline", "LAB_GATE_BASELINE", "BENCH_serve.json");
    let fresh_path = flag("--fresh", "LAB_GATE_FRESH", "target/BENCH_serve_fresh.json");
    let min_throughput_frac = env_f64("LAB_GATE_MIN_THROUGHPUT_FRAC", 0.25);
    let max_p99_frac = env_f64("LAB_GATE_MAX_P99_FRAC", 4.0);
    let trend = bool_flag("--trend", "LAB_GATE_TREND");
    let trend_window = env_f64("LAB_GATE_TREND_WINDOW", 3.0).max(1.0) as usize;

    println!("lab_gate: comparing artifacts");
    let baseline = load("baseline", &baseline_path);
    let fresh = load("fresh", &fresh_path);
    let baseline_trace = trace_section("baseline", &baseline);
    let fresh_trace = trace_section("fresh", &fresh);

    let mut gate = Gate {
        checks: 0,
        failures: 0,
    };

    // Deterministic core: identical request stream, identical outcomes,
    // identical output bits.
    gate.exact_str("workload", baseline_trace, fresh_trace);
    gate.exact_num("seed", baseline_trace, fresh_trace);
    gate.exact_str("trace_fingerprint", baseline_trace, fresh_trace);
    for key in [
        "events",
        "requests",
        "submitted",
        "shed",
        "completed",
        "expired",
        "failed",
        "unexpected_failures",
    ] {
        gate.exact_num(key, baseline_trace, fresh_trace);
    }
    gate.exact_str("output_fingerprint", baseline_trace, fresh_trace);

    // Wall-clock metrics: wide bands, because baseline and fresh run on
    // different machines. The gate catches collapses, not jitter.
    let throughput_b = num_field(baseline_trace, "throughput_rps");
    let throughput_f = num_field(fresh_trace, "throughput_rps");
    gate.band(
        "throughput_rps",
        throughput_b,
        throughput_f,
        throughput_f >= throughput_b * min_throughput_frac,
        &format!(">= {min_throughput_frac}x baseline"),
    );
    let p99_b = num_field(baseline_trace, "p99_ms");
    let p99_f = num_field(fresh_trace, "p99_ms");
    gate.band(
        "p99_ms",
        p99_b,
        p99_f,
        p99_b <= 0.0 || p99_f <= p99_b * max_p99_frac,
        &format!("<= {max_p99_frac}x baseline"),
    );

    if trend {
        trend_report(&baseline_path, fresh_trace, trend_window);
    }

    if gate.failures > 0 {
        eprintln!(
            "lab_gate: FAILED — {}/{} check(s) regressed. If this change is \
             intentional, refresh the committed baseline in the same PR \
             (see docs/ARCHITECTURE.md, lab tier).",
            gate.failures, gate.checks
        );
        std::process::exit(1);
    }
    println!("lab_gate: ok — {} check(s) passed", gate.checks);
}
