//! Synthetic open-loop serving benchmark.
//!
//! Drives the `tdc-serve` engine with a multi-client, open-loop workload
//! (clients submit at a fixed rate regardless of completions — the standard
//! way to surface queueing delay), prints throughput and latency
//! percentiles, demonstrates at least one plan-cache hit via a warm engine
//! restart, and records everything as a `BENCH_serve.json` artifact
//! (schema 10) so later changes can track the serving-performance trajectory.
//!
//! Modes (composable):
//!
//! * default — one model, measured per execution backend (`runs`, with the
//!   sim-GPU backend's per-layer simulated latency breakdown);
//! * `--models N` — additionally, N models behind a [`ModelRegistry`] with
//!   clients round-robining mixed traffic across them; the artifact gains
//!   per-model latency summaries plus admission rejections (`multi_model`).
//!   Composes with `--backend`: a single backend pins every model, the
//!   default `both` alternates cpu / sim-gpu across the fleet.
//! * `--deadline-ms D` — every benchmark request carries a `D` ms deadline;
//!   requests expiring unserved are counted per run (`deadline_exceeded`).
//! * `--keep-alive` — adds an HTTP phase: the single model behind the
//!   HTTP/1.1 front end, driven over persistent connections; the artifact's
//!   `http` section records connection-reuse and timeout counts.
//! * `--autotune` — adds the SLO phase: one sim-GPU model registered at a
//!   deliberately over-provisioned budget (0.9 — past the feasibility
//!   cliff, so its plan misses the SLO), then the control plane's budget
//!   search bisects down to the largest budget whose estimated p99 meets
//!   the target, hot-swaps it in, and serves traffic on the tuned plan; the
//!   artifact's `autotune` section records the search trace and the
//!   control-plane lifecycle counters. The target defaults to the estimate
//!   at budget 0.45 (so convergence is meaningful) and can be overridden
//!   with `SERVE_BENCH_TARGET_P99_MS`.
//! * `--router` — adds the fleet phase: three in-process replicas (each a
//!   registry behind its own HTTP front end) behind a `tdc-router`
//!   [`Router`], hammered over keep-alive connections while one replica is
//!   shut down mid-load and later restarted on its old port. The artifact's
//!   `router` section records per-replica forward counts plus the
//!   failover/ejection/readmission counters; the phase asserts zero
//!   client-visible failures.
//! * `--qos` — adds the mixed-priority phase: three models — one per QoS
//!   class (`interactive`, `standard`, `batch`) — behind one registry on
//!   the shared fleet executor, driven with interleaved mixed traffic; the
//!   artifact's `qos` section records per-class completion counts and
//!   latency percentiles plus the executor's fleet telemetry (worker
//!   utilization, steal totals).
//! * `--trace <spec.json>` — adds the trace phase: a `tdc-lab`
//!   [`WorkloadSpec`] is expanded into its
//!   byte-reproducible trace (seeded arrival processes, heavy-tailed size
//!   mix, multi-model zoo) and replayed open-loop against a live registry;
//!   the artifact's `trace` section records the trace fingerprint, the
//!   full outcome accounting (`submitted == completed + expired + failed`,
//!   sheds separate) and the completed-output fingerprint. Two runs of the
//!   same spec produce identical request streams — the deterministic core
//!   the `lab_gate` regression gate compares.
//! * `--controller` — adds the joint-knob controller phase: one sim-GPU
//!   model registered with a deliberately sluggish batching window, tuned
//!   by the `tdc-ctrl` coordinate-descent controller against a
//!   measured-latency SLO (all four knobs: budget, batch size, batch
//!   delay, fair-share weight), then browned out with an injected backend
//!   delay so the next controller tick detects drift and re-tunes through
//!   the zero-drop swap path. The artifact's `controller` section records
//!   the knob movement, the measured p99 trajectory (untuned → tuned →
//!   drifted → recovered) and the drift/retune counters. The SLO defaults
//!   to half the untuned measured p99 and can be pinned with
//!   `SERVE_BENCH_TARGET_P99_MS`.
//! * `--check-schema` — no benchmark: read the existing artifact and
//!   validate it against whatever `schema_version` it declares (every
//!   historical version 1..=10 is understood; see `tdc_lab::artifact`).
//!   CI runs this after the bench smoke steps to catch schema drift
//!   between the writer and its consumers.
//!
//! Usage:
//!
//! ```text
//! serve_bench [--backend cpu|sim-gpu|both] [--models N] [--deadline-ms D]
//!             [--keep-alive] [--autotune] [--router] [--qos] [--controller]
//!             [--trace spec.json] [--check-schema]
//! ```
//!
//! Environment knobs (all optional):
//!
//! * `SERVE_BENCH_REQUESTS`  — total requests in the measured phase (default 960;
//!   enough to make the measured window long enough to damp scheduler noise)
//! * `SERVE_BENCH_WARMUP`    — unmeasured warmup requests per backend (default 256)
//! * `SERVE_BENCH_CLIENTS`   — concurrent client threads (default 4)
//! * `SERVE_BENCH_WORKERS`   — executor worker threads (default 4)
//! * `SERVE_BENCH_RATE_HZ`   — per-client submission rate (default 4000)
//! * `SERVE_BENCH_BACKEND`   — same as `--backend` (the flag wins)
//! * `SERVE_BENCH_MODELS`    — same as `--models` (the flag wins)
//! * `SERVE_BENCH_DEADLINE_MS` — same as `--deadline-ms` (the flag wins)
//! * `SERVE_BENCH_TARGET_P99_MS` — `--autotune` SLO target override, ms
//! * `SERVE_BENCH_TRACE`     — same as `--trace` (the flag wins)
//! * `SERVE_BENCH_TRACE_TIME_SCALE` — trace-clock multiplier (default 1.0)
//! * `SERVE_BENCH_OUT`       — artifact path (default `BENCH_serve.json`)

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tdc_lab::runner::{deploy, reconcile, replay, ReplayOptions};
use tdc_lab::spec::WorkloadSpec;
use tdc_router::{Router, RouterOptions, RoutingPolicy};
use tdc_serve::http::{http_request, InferBody};
use tdc_serve::{
    serving_descriptor, AutotuneRequest, BackendKind, BatchingOptions, CacheOutcome, HttpClient,
    HttpServer, LatencySummary, LayerSimLatency, ModelConfig, ModelRegistry, PlanCache,
    PlanningOptions, RuntimeOptions, ServeEngine, ServeError,
};
use tdc_tensor::init;

/// The schema this binary writes; `--check-schema` additionally accepts
/// every *older* version via [`tdc_lab::artifact::validate`].
const EXPECTED_SCHEMA_VERSION: u32 = tdc_lab::artifact::CURRENT_SCHEMA_VERSION;

/// The `BENCH_serve.json` schema, versioned so later PRs can extend it.
/// Schema 10 (over 9): a `controller` section — the joint-knob tune's
/// before/after knob sets, the measured p99 trajectory across the phase's
/// stages and the drift-triggered re-tune count, pinning the control
/// loop's convergence in the artifact trajectory.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ServeBenchArtifact {
    schema_version: u32,
    bench: String,
    model: String,
    device: String,
    budget: f64,
    workers: usize,
    clients: usize,
    max_batch_size: usize,
    max_batch_delay_ms: f64,
    deadline_ms: Option<u64>,
    runs: Vec<BackendRun>,
    multi_model: Option<MultiModelRun>,
    http: Option<HttpRun>,
    autotune: Option<AutotuneRun>,
    router: Option<RouterRun>,
    qos: Option<QosRun>,
    trace: Option<TraceRun>,
    kernels: Option<KernelsRun>,
    controller: Option<ControllerRun>,
}

/// The `--controller` phase (schema 10): the joint-knob tune against a
/// measured SLO, plus one injected brown-out caught by the drift check.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ControllerRun {
    /// The model the controller tuned.
    model: String,
    /// The SLO the search aimed at, ms.
    target_p99_ms: f64,
    /// The knob set the model was registered with.
    knobs_before: tdc_serve::KnobSet,
    /// The knob set the search applied.
    knobs_after: tdc_serve::KnobSet,
    /// Measured p99 before the tune, ms.
    untuned_p99_ms: f64,
    /// Measured closed-loop throughput before the tune, req/s.
    untuned_throughput_rps: f64,
    /// Measured p99 on the tuned knobs, ms.
    tuned_p99_ms: f64,
    /// Measured closed-loop throughput on the tuned knobs, req/s.
    tuned_throughput_rps: f64,
    /// Did the search meet the SLO (by its calibrated estimate)?
    converged: bool,
    /// Were the winning knobs hot-swapped in?
    applied: bool,
    /// Coordinate-descent probes the search evaluated.
    probes: u64,
    /// The model's tuning generation at the end of the phase (>= 2: the
    /// explicit tune plus the drift-triggered re-tune).
    tuning_generation: u64,
    /// Drift events the controller recorded for the model.
    drift_events: u64,
    /// Re-tunes triggered by the drift tick (>= 1 by construction).
    drift_retunes: u64,
    /// Deadline-aware early batch releases observed across the phase.
    early_releases: u64,
    /// Measured p99 per stage: untuned, tuned, drifted, recovered; ms.
    p99_trajectory: Vec<f64>,
}

/// The CPU hot-path kernel telemetry (schema 9): blocked-GEMM tile shape
/// plus the serving engine's f32 buffer-pool counters over the CPU
/// backend's **measured window** (warmup traffic excluded).
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct KernelsRun {
    /// Register tile rows of the blocked GEMM (`GEMM_MR`).
    gemm_tile_mr: u64,
    /// Register tile columns of the blocked GEMM (`GEMM_NR`).
    gemm_tile_nr: u64,
    /// Maximum f32 capacity simultaneously checked out of the pool
    /// (absolute over the engine's lifetime, warmup included).
    arena_high_water_f32: u64,
    /// Fresh `Vec<f32>` allocations the pool performed inside the measured
    /// window — the warm steady state performs none.
    arena_allocated_buffers: u64,
    /// Pool takes inside the measured window.
    arena_takes: u64,
    /// Fraction of measured-window takes served by a recycled buffer.
    arena_hit_rate: f64,
    /// Measured-window fresh pool allocations divided by completed
    /// requests — the zero-allocation criterion is this staying at zero.
    allocs_per_request: f64,
}

/// The `--trace` phase: one workload spec replayed end to end.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct TraceRun {
    /// Path of the workload spec that was replayed.
    spec: String,
    /// The spec's workload name.
    workload: String,
    /// The spec's PRNG seed.
    seed: u64,
    /// FNV-1a fingerprint of the generated trace, hex — identical across
    /// machines for the same spec.
    trace_fingerprint: String,
    /// Trace events dispatched.
    events: u64,
    /// Samples dispatched (`submitted + shed`).
    requests: u64,
    /// Samples admitted.
    submitted: u64,
    /// Samples shed with typed `Overloaded`.
    shed: u64,
    /// Samples completed.
    completed: u64,
    /// Samples expired with typed `DeadlineExceeded`.
    expired: u64,
    /// Samples failed with typed `ExecutionFailed`.
    failed: u64,
    /// Client-visible outcomes outside the typed contract (must be 0).
    unexpected_failures: u64,
    /// FNV-1a over the completed outputs' bits in submission order, hex.
    output_fingerprint: String,
    /// Wall-clock seconds for the replay.
    elapsed_s: f64,
    /// Completed samples per wall-clock second.
    throughput_rps: f64,
    /// Median total latency of the busiest model, ms.
    p50_ms: f64,
    /// Worst per-model p99 total latency, ms.
    p99_ms: f64,
    /// Events per phase, in phase order.
    per_phase_events: Vec<u64>,
    /// Trace-clock multiplier the replay ran at.
    time_scale: f64,
    /// Per-model outcome rows, in zoo order.
    per_model: Vec<TraceModelRun>,
}

/// One model's row in the trace phase.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct TraceModelRun {
    /// Registered model name.
    model: String,
    /// QoS class label, if the spec pinned one.
    qos: Option<String>,
    /// Per-request deadline, if the spec set one.
    deadline_ms: Option<u64>,
    /// Samples the trace aimed at this model.
    samples: u64,
    /// Samples completed.
    completed: u64,
    /// Samples expired.
    expired: u64,
    /// Samples failed.
    failed: u64,
    /// The model's p99 total latency, ms.
    p99_ms: f64,
}

/// The `--qos` mixed-priority phase: one model per QoS class behind one
/// registry, all scheduled by the shared fleet executor.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct QosRun {
    /// Requests submitted to each class's model.
    requests_per_class: u64,
    /// One row per QoS class, in `interactive`, `standard`, `batch` order.
    per_class: Vec<QosClassRun>,
    /// Worker threads in the shared executor pool.
    executor_workers: usize,
    /// Batches dispatched by stealing another worker's token, fleet-wide.
    steals_total: u64,
    /// Fraction of executor worker time spent running batches across the
    /// pool's lifetime, `0.0..=1.0`.
    worker_utilization: f64,
}

/// One QoS class's share of the mixed-priority phase.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct QosClassRun {
    /// QoS class label (`"interactive"`, `"standard"`, `"batch"`).
    qos: String,
    /// Registered model name serving this class.
    model: String,
    /// Fair-share weight the model was registered with.
    fair_share_weight: usize,
    /// Requests completed.
    completed: u64,
    /// Requests expired past their deadline.
    deadline_exceeded: u64,
    /// This model's batches that ran on a stolen dispatch token.
    stolen_batches: u64,
    /// End-to-end latency percentiles for the class.
    total_latency: LatencySummary,
    /// Queue-wait latency percentiles for the class.
    queue_latency: LatencySummary,
}

/// The `--router` fleet phase: a 3-replica topology behind the router,
/// with one replica killed under load and restarted.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct RouterRun {
    /// Replicas in the fleet.
    replicas: usize,
    /// Routing policy label.
    policy: String,
    /// Client requests fired at the router across the phase.
    requests: u64,
    /// Requests answered `200 OK`. Must equal `requests`.
    completed: u64,
    /// Client-visible failures (non-200, transport errors). Must be zero —
    /// failover masks the killed replica.
    failed: u64,
    /// Attempts beyond the first replica (failover masking in action).
    failovers_total: u64,
    /// Prober ejections across the phase (the killed replica).
    ejections_total: u64,
    /// Prober readmissions across the phase (the restarted replica).
    readmissions_total: u64,
    /// Requests each replica answered, in replica-id order.
    per_replica_forwarded: Vec<u64>,
}

/// The `--autotune` SLO phase: search trace, winning budget, post-swap
/// serving proof and control-plane counters.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct AutotuneRun {
    /// The model the search tuned.
    model: String,
    /// The over-provisioned budget the model was registered at.
    registered_budget: f64,
    /// The control plane's full search report (target, probes, winner).
    report: tdc_serve::AutotuneReport,
    /// Requests served on the tuned plan after the hot-swap.
    post_swap_requests: u64,
    /// p99 across the post-swap requests, ms (wall clock, not simulated).
    post_swap_p99_ms: f64,
    /// Control-plane lifecycle counters at the end of the phase.
    lifecycle: tdc_serve::LifecycleCounters,
}

/// The `--keep-alive` HTTP phase: requests driven through the front end
/// over persistent connections.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct HttpRun {
    keep_alive: bool,
    requests: u64,
    /// TCP connections opened for `requests` (1 per client with keep-alive;
    /// 1 per request without).
    connections_opened: u64,
    /// Requests that reused an existing connection instead of opening one.
    connection_reuse: u64,
    /// Mean requests served per connection.
    requests_per_connection: f64,
    /// `200 OK` responses.
    completed: u64,
    /// `504 Gateway Timeout` responses (deadline expiries over HTTP).
    timeouts: u64,
}

/// The `--models N` measured phase: mixed traffic through one registry.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct MultiModelRun {
    models: usize,
    requests_submitted: usize,
    elapsed_s: f64,
    total_throughput_rps: f64,
    total_completed: u64,
    total_rejected: u64,
    total_deadline_exceeded: u64,
    per_model: Vec<ModelRun>,
}

/// One model's share of the mixed-traffic phase.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct ModelRun {
    model: String,
    backend: String,
    requests: u64,
    rejected: u64,
    deadline_exceeded: u64,
    throughput_rps: f64,
    total_latency: LatencySummary,
    queue_latency: LatencySummary,
    exec_latency: LatencySummary,
    mean_batch_size: f64,
    plan_fingerprint: String,
}

/// One backend's measured phase.
#[derive(Debug, serde::Serialize, serde::Deserialize)]
struct BackendRun {
    backend: String,
    requests: u64,
    rejected: u64,
    deadline_exceeded: u64,
    elapsed_s: f64,
    throughput_rps: f64,
    total_latency: LatencySummary,
    queue_latency: LatencySummary,
    exec_latency: LatencySummary,
    mean_batch_size: f64,
    max_batch_observed: u64,
    predicted_gpu_ms_per_sample: f64,
    predicted_gpu_ms_total: f64,
    simulated_gpu_ms_total: f64,
    /// Per-sample (batch 1) simulated per-layer breakdown — absent on
    /// backends that do not simulate.
    simulated_per_layer: Option<Vec<LayerSimLatency>>,
    plan_fingerprint: String,
    plan_outcome_cold: String,
    plan_outcome_warm: String,
    decomposed_layers: usize,
    achieved_flops_reduction: f64,
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Resolve `--flag value` / `--flag=value` (last occurrence wins) with `env`
/// as the fallback when the flag is absent.
fn flag_or_env(flag: &str, env: &str) -> Option<String> {
    let mut choice = std::env::var(env).ok();
    let args: Vec<String> = std::env::args().collect();
    let prefix = format!("{flag}=");
    for (i, arg) in args.iter().enumerate() {
        if let Some(value) = arg.strip_prefix(&prefix) {
            choice = Some(value.to_string());
        } else if arg == flag {
            match args.get(i + 1) {
                Some(value) => choice = Some(value.clone()),
                None => {
                    eprintln!("serve_bench: {flag} needs a value");
                    std::process::exit(2);
                }
            }
        }
    }
    choice
}

fn backend_selection() -> Vec<BackendKind> {
    match flag_or_env("--backend", "SERVE_BENCH_BACKEND").as_deref() {
        None | Some("both") | Some("all") => BackendKind::all().to_vec(),
        Some(label) => match BackendKind::parse(label) {
            Some(kind) => vec![kind],
            None => {
                eprintln!("serve_bench: unknown backend {label:?}; use cpu, sim-gpu or both");
                std::process::exit(2);
            }
        },
    }
}

fn models_selection() -> usize {
    match flag_or_env("--models", "SERVE_BENCH_MODELS").map(|v| v.parse()) {
        None => 1,
        Some(Ok(n)) if n >= 1 => n,
        Some(_) => {
            eprintln!("serve_bench: --models needs a positive integer");
            std::process::exit(2);
        }
    }
}

fn deadline_selection() -> Option<u64> {
    match flag_or_env("--deadline-ms", "SERVE_BENCH_DEADLINE_MS").map(|v| v.parse()) {
        None => None,
        Some(Ok(ms)) if ms > 0 => Some(ms),
        Some(_) => {
            eprintln!("serve_bench: --deadline-ms needs a positive integer");
            std::process::exit(2);
        }
    }
}

fn bool_flag(flag: &str) -> bool {
    std::env::args().any(|arg| arg == flag)
}

/// `--check-schema`: validate the artifact on disk against whatever
/// schema version it declares — every version the benchmark has ever
/// written (1..=[`EXPECTED_SCHEMA_VERSION`]) is accepted, each against
/// its own required-field list ([`tdc_lab::artifact::validate`]). A
/// current-version artifact is additionally round-tripped through the
/// typed struct so field drift fails the check too. Exits the process.
fn check_schema(path: &str) -> ! {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("serve_bench --check-schema: cannot read {path}: {e}");
            std::process::exit(1);
        }
    };
    let value: serde::Value = match serde_json::parse_value(&text) {
        Ok(value) => value,
        Err(e) => {
            eprintln!(
                "serve_bench --check-schema: {path} is not valid JSON: {}",
                e.message
            );
            std::process::exit(1);
        }
    };
    match tdc_lab::artifact::validate(&value) {
        Ok(version) if version == EXPECTED_SCHEMA_VERSION => {
            // Round-trip through the typed artifact so field drift (not just
            // the version number) fails the check too.
            if let Err(e) = serde_json::from_str::<ServeBenchArtifact>(&text) {
                eprintln!(
                    "serve_bench --check-schema: {path} has schema_version \
                     {version} but does not parse as the expected artifact: {}",
                    e.message
                );
                std::process::exit(1);
            }
            println!("serve_bench --check-schema: {path} ok (schema_version {version})");
            std::process::exit(0);
        }
        Ok(version) => {
            println!(
                "serve_bench --check-schema: {path} ok (historical schema_version \
                 {version}; this binary writes {EXPECTED_SCHEMA_VERSION})"
            );
            std::process::exit(0);
        }
        Err(e) => {
            eprintln!("serve_bench --check-schema: {path} invalid: {e}");
            std::process::exit(1);
        }
    }
}

fn cache_outcome_label(outcome: CacheOutcome) -> &'static str {
    match outcome {
        CacheOutcome::MemoryHit => "memory-hit",
        CacheOutcome::DiskHit => "disk-hit",
        CacheOutcome::Miss => "miss",
    }
}

struct BenchSettings {
    requests: usize,
    clients: usize,
    workers: usize,
    rate_hz: f64,
    planning: PlanningOptions,
    batching: BatchingOptions,
}

fn run_backend(
    descriptor: &tdc_nn::models::ModelDescriptor,
    cache: &PlanCache,
    kind: BackendKind,
    s: &BenchSettings,
) -> (BackendRun, tdc_serve::PoolStats) {
    let build = |settings: &BenchSettings| {
        ServeEngine::builder(descriptor)
            .planning(settings.planning.clone())
            .batching(settings.batching.clone())
            .runtime(RuntimeOptions {
                workers: settings.workers,
                backend: kind,
                ..RuntimeOptions::default()
            })
            .plan_cache(cache)
            .build()
            .expect("build engine")
    };

    println!("\n== backend: {kind} ==");

    // Cold start: planning is a cache miss (each backend keys separately).
    let plan_started = Instant::now();
    let engine = build(s);
    let cold_plan_ms = plan_started.elapsed().as_secs_f64() * 1e3;
    let plan_outcome_cold = engine.plan_outcome();
    println!(
        "  cold start: planned in {cold_plan_ms:.1} ms ({} of {} layers decomposed, \
         {:.0}% FLOPs reduction)",
        engine.model().decomposed_layers(),
        engine.plan().decisions.len(),
        engine.plan().achieved_reduction * 100.0
    );

    // Warm restart: same (model, device, backend, budget) key must hit.
    drop(engine);
    let warm_started = Instant::now();
    let engine = Arc::new(build(s));
    let warm_plan_ms = warm_started.elapsed().as_secs_f64() * 1e3;
    let plan_outcome_warm = engine.plan_outcome();
    assert_eq!(plan_outcome_warm, CacheOutcome::MemoryHit);
    println!(
        "  warm restart: plan cache hit, engine up in {warm_plan_ms:.1} ms \
         ({}x faster than cold)",
        (cold_plan_ms / warm_plan_ms.max(1e-9)).round()
    );

    let spatial = descriptor.convs[0].h;
    let channels = descriptor.convs[0].c;

    // Unmeasured warmup: enough concurrent traffic to populate the buffer
    // pool at the engine's full checkout depth and fault in every hot page,
    // then reset the metrics so the measured window reports steady state.
    // The pool counters are monotonic, so snapshotting them here lets the
    // measured window report its *own* allocation delta — zero, once warm.
    let warmup = env_usize("SERVE_BENCH_WARMUP", 256);
    {
        let mut rng = StdRng::seed_from_u64(7);
        let pool = engine.buffer_pool();
        let mut submitted = 0usize;
        while submitted < warmup {
            // Whole-warmup bursts reach the same concurrent checkout depth
            // the measured phase will (notably responses awaiting their
            // client), so every size class is pre-populated to it.
            let burst = warmup - submitted;
            let pending: Vec<_> = (0..burst)
                .map(|_| {
                    let input =
                        init::uniform(vec![spatial, spatial, channels], -1.0, 1.0, &mut rng);
                    engine.submit(input).expect("warmup submit")
                })
                .collect();
            for p in pending {
                let response = p.wait().expect("warmup response");
                pool.give(response.output.into_data());
            }
            submitted += burst;
        }
    }
    engine.reset_metrics();
    let pool_at_window_start = engine.pool_stats();

    // Open-loop measured phase.
    let interval = Duration::from_secs_f64(1.0 / s.rate_hz.max(1.0));
    let per_client = s.requests.div_ceil(s.clients);
    let measured_started = Instant::now();
    let client_threads: Vec<_> = (0..s.clients)
        .map(|client_index| {
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(100 + client_index as u64);
                let pool = engine.buffer_pool();
                // Materialise the inputs up front so the measured window
                // times the server, not the client's RNG.
                let inputs: Vec<_> = (0..per_client)
                    .map(|_| init::uniform(vec![spatial, spatial, channels], -1.0, 1.0, &mut rng))
                    .collect();
                // Responses are consumed as they arrive (a drain thread per
                // client), not hoarded until the end of the run: recycling
                // each output promptly keeps the pool's checkout depth — and
                // therefore its steady-state allocation count — bounded, as
                // a real response-consuming client would.
                let (tx, rx) = std::sync::mpsc::channel::<tdc_serve::PendingResponse>();
                let drain_pool = Arc::clone(&pool);
                let drain = std::thread::spawn(move || {
                    let mut timed_out = 0u64;
                    for p in rx {
                        match p.wait() {
                            Ok(response) => drain_pool.give(response.output.into_data()),
                            Err(ServeError::DeadlineExceeded { .. }) => timed_out += 1,
                            Err(e) => panic!("response: {e}"),
                        }
                    }
                    timed_out
                });
                let mut rejected = 0u64;
                // Open-loop pacing against an *absolute* arrival schedule:
                // request `i` is due at `start + i·interval`, and a client
                // that wakes late submits back-to-back until it has caught
                // up. A per-request relative sleep would compound the
                // scheduler's wake-up latency into the offered rate.
                let start = Instant::now();
                for (i, input) in inputs.into_iter().enumerate() {
                    let due = start + interval * i as u32;
                    if let Some(wait) = due.checked_duration_since(Instant::now()) {
                        if !wait.is_zero() {
                            std::thread::sleep(wait);
                        }
                    }
                    // Under a sustained backlog the admission bound sheds
                    // load; an open-loop client records the rejection and
                    // keeps its arrival schedule.
                    match engine.submit(input) {
                        Ok(p) => tx.send(p).expect("drain thread alive"),
                        Err(ServeError::Overloaded { .. }) => rejected += 1,
                        Err(e) => panic!("submit: {e}"),
                    }
                }
                // Closing the channel lets the drain thread finish once the
                // last outstanding response has been consumed (arrivals stay
                // open-loop; the join just bounds the run). A deadline
                // expiry is an expected open-loop outcome, not a client
                // failure.
                drop(tx);
                let timed_out = drain.join().expect("drain thread");
                (rejected, timed_out)
            })
        })
        .collect();
    let mut rejected = 0u64;
    let mut client_timeouts = 0u64;
    for t in client_threads {
        let (r, d) = t.join().expect("client thread");
        rejected += r;
        client_timeouts += d;
    }

    let engine =
        Arc::try_unwrap(engine).unwrap_or_else(|_| panic!("clients still hold the engine"));
    // The measured window's pool activity: everything since the post-warmup
    // snapshot. `high_water_f32` stays absolute (it is a maximum, not a
    // counter).
    let pool_end = engine.pool_stats();
    let pool_stats = tdc_serve::PoolStats {
        allocated_buffers: pool_end.allocated_buffers - pool_at_window_start.allocated_buffers,
        allocated_f32: pool_end.allocated_f32 - pool_at_window_start.allocated_f32,
        high_water_f32: pool_end.high_water_f32,
        takes: pool_end.takes - pool_at_window_start.takes,
        hits: pool_end.hits - pool_at_window_start.hits,
    };
    let predicted_gpu_ms_per_sample = engine.predicted_gpu_ms_per_sample();
    let decomposed_layers = engine.model().decomposed_layers();
    let achieved_flops_reduction = engine.plan().achieved_reduction;
    let report = engine.shutdown();
    let elapsed_s = measured_started.elapsed().as_secs_f64();
    let metrics = &report.metrics;
    let throughput_rps = metrics.completed_requests as f64 / elapsed_s.max(1e-9);

    assert_eq!(
        metrics.deadline_exceeded, client_timeouts,
        "engine deadline counter must match the client-side count"
    );
    println!("  measured phase: {:.2} s wall clock", elapsed_s);
    println!(
        "  completed        : {} requests in {} batches ({} rejected at admission, \
         {} expired past deadline)",
        metrics.completed_requests, metrics.batches, rejected, metrics.deadline_exceeded
    );
    println!("  throughput       : {throughput_rps:.1} req/s");
    println!(
        "  latency (total)  : p50 {:.2} ms  p90 {:.2} ms  p99 {:.2} ms  max {:.2} ms",
        metrics.total_latency.p50_ms,
        metrics.total_latency.p90_ms,
        metrics.total_latency.p99_ms,
        metrics.total_latency.max_ms
    );
    println!(
        "  latency (queue)  : p50 {:.2} ms  p99 {:.2} ms",
        metrics.queue_latency.p50_ms, metrics.queue_latency.p99_ms
    );
    println!(
        "  latency (exec)   : p50 {:.2} ms  p99 {:.2} ms",
        metrics.exec_latency.p50_ms, metrics.exec_latency.p99_ms
    );
    println!(
        "  batching         : mean {:.2} req/batch, max {}",
        metrics.mean_batch_size, metrics.max_batch_size
    );
    println!(
        "  predicted GPU    : {:.4} ms/sample, {:.2} ms total for this workload",
        predicted_gpu_ms_per_sample, metrics.predicted_gpu_ms_total
    );

    let simulated_per_layer = if kind == BackendKind::SimGpu {
        let breakdown = &report.backend_latency;
        println!(
            "  simulated GPU    : {:.2} ms total; per-sample breakdown on {}:",
            metrics.simulated_gpu_ms_total, breakdown.device
        );
        for layer in &breakdown.per_layer {
            println!(
                "    {:24} {:>9.4} ms  ({} kernel(s), {:.1}% SM util)",
                layer.label,
                layer.ms,
                layer.kernels,
                layer.sm_utilization * 100.0
            );
        }
        Some(breakdown.per_layer.clone())
    } else {
        None
    };

    if kind == BackendKind::Cpu {
        println!(
            "  arena pool       : high-water {} f32, {} fresh allocation(s) in the \
             measured window, {}/{} takes recycled",
            pool_stats.high_water_f32,
            pool_stats.allocated_buffers,
            pool_stats.hits,
            pool_stats.takes
        );
    }

    let run = BackendRun {
        backend: report.backend.clone(),
        requests: metrics.completed_requests,
        rejected,
        deadline_exceeded: metrics.deadline_exceeded,
        elapsed_s,
        throughput_rps,
        total_latency: metrics.total_latency,
        queue_latency: metrics.queue_latency,
        exec_latency: metrics.exec_latency,
        mean_batch_size: metrics.mean_batch_size,
        max_batch_observed: metrics.max_batch_size,
        predicted_gpu_ms_per_sample,
        predicted_gpu_ms_total: metrics.predicted_gpu_ms_total,
        simulated_gpu_ms_total: metrics.simulated_gpu_ms_total,
        simulated_per_layer,
        plan_fingerprint: format!("{:016x}", report.plan_fingerprint),
        plan_outcome_cold: cache_outcome_label(plan_outcome_cold).to_string(),
        plan_outcome_warm: cache_outcome_label(plan_outcome_warm).to_string(),
        decomposed_layers,
        achieved_flops_reduction,
    };
    (run, pool_stats)
}

/// The `--models N` phase: N distinct models behind one registry, every
/// client thread round-robining its submissions across all of them. The
/// `--backend` selection composes: a single backend pins every model to it,
/// the default `both` alternates cpu / sim-gpu across the fleet.
fn run_multi_model(n: usize, backends: &[BackendKind], s: &BenchSettings) -> MultiModelRun {
    let registry = ModelRegistry::new(n.max(2));
    for index in 0..n {
        // Genuinely different networks (growing spatial size), large enough
        // that the planner decomposes at least one layer per model.
        let descriptor = serving_descriptor(&format!("svc-{index}"), 12 + 2 * (index % 4), 8, 10);
        let backend = backends[index % backends.len()];
        registry
            .register(
                &descriptor.slug(),
                &descriptor,
                ModelConfig {
                    planning: s.planning.clone(),
                    batching: s.batching.clone(),
                    runtime: RuntimeOptions {
                        workers: s.workers,
                        backend,
                        ..RuntimeOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .expect("register model");
    }
    let names: Vec<String> = registry.names().iter().map(|x| x.to_string()).collect();
    let dims: Vec<Vec<usize>> = registry
        .model_info()
        .iter()
        .map(|i| i.input_dims.clone())
        .collect();
    println!("\n== multi-model: {} models ==", n);
    for info in registry.model_info() {
        println!(
            "  {:12} {} on {} ({} of {} layers decomposed, queue bound {})",
            info.name,
            info.backend,
            info.device,
            info.decomposed_layers,
            info.conv_layers,
            info.max_queue_depth
        );
    }

    let registry = Arc::new(registry);
    let interval = Duration::from_secs_f64(1.0 / s.rate_hz.max(1.0));
    let per_client = s.requests.div_ceil(s.clients);
    let measured_started = Instant::now();
    let client_threads: Vec<_> = (0..s.clients)
        .map(|client_index| {
            let registry = Arc::clone(&registry);
            let names = names.clone();
            let dims = dims.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(500 + client_index as u64);
                let mut pending = Vec::with_capacity(per_client);
                let mut rejected = 0u64;
                for r in 0..per_client {
                    // Mixed traffic: successive requests hit different
                    // models, and the clients' disjoint global offsets cover
                    // every model even when there are more models than any
                    // one client's request budget.
                    let m = (client_index * per_client + r) % names.len();
                    let input = init::uniform(dims[m].clone(), -1.0, 1.0, &mut rng);
                    match registry.submit(&names[m], input) {
                        Ok(p) => pending.push(p),
                        Err(ServeError::Overloaded { .. }) => rejected += 1,
                        Err(e) => panic!("submit to {}: {e}", names[m]),
                    }
                    std::thread::sleep(interval);
                }
                let mut timed_out = 0u64;
                for p in pending {
                    match p.wait() {
                        Ok(_) => {}
                        Err(ServeError::DeadlineExceeded { .. }) => timed_out += 1,
                        Err(e) => panic!("response: {e}"),
                    }
                }
                (rejected, timed_out)
            })
        })
        .collect();
    let mut client_rejected = 0u64;
    let mut client_timeouts = 0u64;
    for t in client_threads {
        let (r, d) = t.join().expect("client thread");
        client_rejected += r;
        client_timeouts += d;
    }
    let elapsed_s = measured_started.elapsed().as_secs_f64();

    let metrics = registry.metrics();
    assert_eq!(
        metrics.total_rejected_requests, client_rejected,
        "registry rejection counters must match the client-side count"
    );
    assert_eq!(
        metrics.total_deadline_exceeded, client_timeouts,
        "registry deadline counters must match the client-side count"
    );
    let registry =
        Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("clients still hold the registry"));
    // metrics.models and model_info() share the registry's name order.
    let per_model: Vec<ModelRun> = metrics
        .models
        .iter()
        .zip(registry.model_info())
        .map(|(entry, info)| ModelRun {
            model: entry.model.clone(),
            backend: info.backend,
            requests: entry.metrics.completed_requests,
            rejected: entry.rejected_requests,
            deadline_exceeded: entry.metrics.deadline_exceeded,
            throughput_rps: entry.metrics.completed_requests as f64 / elapsed_s.max(1e-9),
            total_latency: entry.metrics.total_latency,
            queue_latency: entry.metrics.queue_latency,
            exec_latency: entry.metrics.exec_latency,
            mean_batch_size: entry.metrics.mean_batch_size,
            plan_fingerprint: info.plan_fingerprint,
        })
        .collect();
    registry.shutdown();

    println!("  measured phase: {:.2} s wall clock", elapsed_s);
    for run in &per_model {
        println!(
            "  {:12} {:>5} req ({} rejected) @ {:>7.1} req/s  \
             p50 {:.2} ms  p99 {:.2} ms  mean batch {:.2}",
            run.model,
            run.requests,
            run.rejected,
            run.throughput_rps,
            run.total_latency.p50_ms,
            run.total_latency.p99_ms,
            run.mean_batch_size
        );
    }
    MultiModelRun {
        models: n,
        requests_submitted: per_client * s.clients,
        elapsed_s,
        total_throughput_rps: metrics.total_completed_requests as f64 / elapsed_s.max(1e-9),
        total_completed: metrics.total_completed_requests,
        total_rejected: metrics.total_rejected_requests,
        total_deadline_exceeded: metrics.total_deadline_exceeded,
        per_model,
    }
}

/// The `--keep-alive` HTTP phase: one model behind the front end, driven by
/// this thread over persistent connections (or one connection per request
/// when `keep_alive` is false — kept as a comparison point in the code
/// path). Counts connection reuse and `504` timeouts.
fn run_http_phase(
    descriptor: &tdc_nn::models::ModelDescriptor,
    s: &BenchSettings,
    keep_alive: bool,
) -> HttpRun {
    let registry = ModelRegistry::new(2);
    registry
        .register(
            &descriptor.slug(),
            descriptor,
            ModelConfig {
                planning: s.planning.clone(),
                batching: s.batching.clone(),
                runtime: RuntimeOptions {
                    workers: s.workers,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .expect("register http-phase model");
    let name = descriptor.slug();
    let dims: Vec<usize> = registry.model_info()[0].input_dims.clone();
    let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).expect("bind http phase");
    let addr = server.local_addr();
    let path = format!("/v1/models/{name}/infer");

    // A modest request budget: the HTTP phase measures connection behavior,
    // not executor throughput (the per-backend runs already do that).
    let requests: u64 = (s.requests as u64).clamp(8, 48);
    let connections: u64 = (s.clients as u64).clamp(1, 4);
    let mut rng = StdRng::seed_from_u64(900);
    let mut completed = 0u64;
    let mut timeouts = 0u64;
    let mut connections_opened = 0u64;
    let mut sent = 0u64;
    let body_for = |rng: &mut StdRng| {
        let input = init::uniform(dims.clone(), -1.0, 1.0, rng);
        serde_json::to_string(&InferBody {
            input: input.data().to_vec(),
            dims: Some(dims.clone()),
            deadline_ms: None,
        })
        .expect("serialize http body")
    };
    if keep_alive {
        let per_connection = requests.div_ceil(connections);
        'outer: for _ in 0..connections {
            let mut client = HttpClient::connect(&addr).expect("connect http phase");
            connections_opened += 1;
            for _ in 0..per_connection {
                if sent >= requests {
                    break 'outer;
                }
                let body = body_for(&mut rng);
                let (status, reply) = client
                    .request("POST", &path, Some(&body))
                    .expect("http request");
                sent += 1;
                match status {
                    200 => completed += 1,
                    504 => timeouts += 1,
                    other => panic!("http phase: unexpected status {other}: {reply}"),
                }
            }
        }
    } else {
        for _ in 0..requests {
            let body = body_for(&mut rng);
            connections_opened += 1;
            let (status, reply) =
                http_request(&addr, "POST", &path, Some(&body)).expect("http request");
            sent += 1;
            match status {
                200 => completed += 1,
                504 => timeouts += 1,
                other => panic!("http phase: unexpected status {other}: {reply}"),
            }
        }
    }
    let registry = server.shutdown();
    let registry =
        Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("http-phase registry still shared"));
    registry.shutdown();

    let run = HttpRun {
        keep_alive,
        requests: sent,
        connections_opened,
        connection_reuse: sent - connections_opened.min(sent),
        requests_per_connection: sent as f64 / connections_opened.max(1) as f64,
        completed,
        timeouts,
    };
    println!("\n== http phase: keep-alive {} ==", run.keep_alive);
    println!(
        "  {} request(s) over {} connection(s) ({:.1} req/conn, {} reused, \
         {} ok, {} timed out)",
        run.requests,
        run.connections_opened,
        run.requests_per_connection,
        run.connection_reuse,
        run.completed,
        run.timeouts
    );
    run
}

/// The `--autotune` phase: register one sim-GPU model at a deliberately
/// over-provisioned budget (0.9 demands more FLOPs reduction than the
/// model's layers can deliver, so rank selection degrades to dense
/// fallbacks and the plan misses the SLO), run the control plane's budget
/// search against a target p99, and serve traffic on the hot-swapped tuned
/// plan.
fn run_autotune(s: &BenchSettings) -> AutotuneRun {
    const OVER_PROVISIONED_BUDGET: f64 = 0.9;
    const REFERENCE_BUDGET: f64 = 0.45;
    let registry = ModelRegistry::new(16);
    let descriptor = serving_descriptor("svc-tune", 12, 8, 10);
    let name = descriptor.slug();
    registry
        .register(
            &name,
            &descriptor,
            ModelConfig {
                planning: PlanningOptions {
                    budget: OVER_PROVISIONED_BUDGET,
                    ..s.planning.clone()
                },
                batching: s.batching.clone(),
                runtime: RuntimeOptions {
                    workers: s.workers,
                    backend: BackendKind::SimGpu,
                    ..RuntimeOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .expect("register autotune model");

    // The SLO: what a feasible mid-range budget delivers, unless the
    // operator pinned one. With the default, the over-provisioned start is
    // guaranteed to miss it and the search has real work to do.
    let pinned_target = std::env::var("SERVE_BENCH_TARGET_P99_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let target_derived = pinned_target.is_none();
    let target_p99_ms = pinned_target.unwrap_or_else(|| {
        registry
            .estimate_sim_p99_ms(&name, REFERENCE_BUDGET)
            .expect("estimate the reference budget")
    });

    println!("\n== autotune: SLO target p99 {target_p99_ms:.4} ms ==");
    println!(
        "  registered {} at over-provisioned budget {:.2} (sim-gpu, {} worker(s))",
        name, OVER_PROVISIONED_BUDGET, s.workers
    );
    let report = registry
        .autotune(&name, &AutotuneRequest::new(target_p99_ms))
        .expect("autotune search");
    for probe in &report.probes {
        println!(
            "  probe budget {:.3} -> estimated p99 {:.4} ms{}",
            probe.budget,
            probe.estimated_p99_ms,
            if probe.estimated_p99_ms <= target_p99_ms {
                "  (meets SLO)"
            } else {
                ""
            }
        );
    }
    println!(
        "  winner: budget {:.3} (estimated p99 {:.4} ms, converged {}, applied {})",
        report.final_budget, report.achieved_p99_ms, report.converged, report.applied
    );
    if target_derived {
        // The default target is the estimate at a feasible budget inside
        // the interval, so the search must converge on it.
        assert!(
            report.converged,
            "the default interval must contain a budget meeting the SLO"
        );
        assert!(
            report.achieved_p99_ms <= target_p99_ms,
            "winner p99 {:.4} ms misses the target {:.4} ms",
            report.achieved_p99_ms,
            target_p99_ms
        );
    } else if !report.converged {
        // A pinned SERVE_BENCH_TARGET_P99_MS may be unreachable; record the
        // non-converged trace instead of failing the bench.
        println!("  note: pinned target is not reachable inside the interval; nothing applied");
    }
    assert!(report.final_budget <= report.start_budget);

    // Serve on the tuned plan: the swap is only a win if traffic flows.
    let mut rng = StdRng::seed_from_u64(1234);
    let post_swap_requests = 16u64;
    for _ in 0..post_swap_requests {
        registry
            .infer(&name, init::uniform(vec![12, 12, 8], -1.0, 1.0, &mut rng))
            .expect("post-swap inference");
    }
    let metrics = registry.metrics();
    let tuned = &metrics.models[0];
    assert_eq!(tuned.metrics.completed_requests, post_swap_requests);
    assert_eq!(tuned.generation, if report.applied { 2 } else { 1 });
    println!(
        "  post-swap: {} request(s) on the tuned plan, p99 {:.2} ms (generation {})",
        post_swap_requests, tuned.metrics.total_latency.p99_ms, tuned.generation
    );
    let run = AutotuneRun {
        model: name,
        registered_budget: OVER_PROVISIONED_BUDGET,
        report,
        post_swap_requests,
        post_swap_p99_ms: tuned.metrics.total_latency.p99_ms,
        lifecycle: registry.control().counters(),
    };
    registry.shutdown();
    run
}

/// The `--controller` phase: register one sim-GPU model with a deliberately
/// sluggish 12 ms batch-formation delay, let the `tdc-ctrl` coordinate
/// descent tune all four knobs against a measured-latency SLO, then inject
/// a backend brown-out so the next controller tick detects the drift and
/// re-tunes through the zero-drop swap path. Every stage's p99 is measured
/// with closed-loop traffic, so the artifact records real convergence, not
/// just the simulator's opinion of it.
fn run_controller_phase(s: &BenchSettings) -> ControllerRun {
    use tdc_lab::fault::FaultInjector;
    use tdc_serve::{ControllerConfig, TuneRequest};

    let registry = ModelRegistry::new(4);
    registry.set_tune_driver(Arc::new(tdc_ctrl::Controller::new()));
    registry
        .set_controller_config(ControllerConfig {
            min_samples: 16,
            ..ControllerConfig::default()
        })
        .expect("set controller config");

    let injector = FaultInjector::new();
    let descriptor = serving_descriptor("svc-ctrl", 12, 8, 10);
    let name = descriptor.slug();
    registry
        .register(
            &name,
            &descriptor,
            ModelConfig {
                planning: s.planning.clone(),
                batching: BatchingOptions {
                    max_batch_size: 8,
                    // Deliberately sluggish: closed-loop traffic never fills
                    // a batch, so every request eats the full formation delay
                    // and the tuner has real latency to claw back.
                    max_batch_delay: Duration::from_millis(12),
                    ..BatchingOptions::default()
                },
                runtime: RuntimeOptions {
                    workers: s.workers,
                    backend: BackendKind::SimGpu,
                    ..RuntimeOptions::default()
                },
                backend_wrapper: Some(
                    Arc::new(injector.clone()) as Arc<dyn tdc_serve::BackendWrapper>
                ),
            },
        )
        .expect("register controller model");

    // Closed-loop measurement against whichever engine currently serves
    // the model (re-fetched per stage, so post-swap stages measure the
    // swapped-in engine, not the retired one).
    let measure = |label: &str, requests: u64| -> (f64, f64) {
        let engine = registry.engine(&name).expect("controller model engine");
        engine.reset_metrics();
        let mut rng = StdRng::seed_from_u64(0x0c17);
        let started = Instant::now();
        for _ in 0..requests {
            registry
                .infer(&name, init::uniform(vec![12, 12, 8], -1.0, 1.0, &mut rng))
                .expect("controller phase inference");
        }
        let elapsed = started.elapsed().as_secs_f64();
        let p99 = engine.metrics().total_latency.p99_ms;
        let throughput = requests as f64 / elapsed.max(1e-9);
        println!("  {label:<9} : measured p99 {p99:.3} ms, {throughput:.0} req/s ({requests} closed-loop requests)");
        (p99, throughput)
    };

    println!("\n== controller phase: joint-knob tune + drift re-tune ==");
    let (untuned_p99_ms, untuned_throughput_rps) = measure("untuned", 48);

    // The SLO: half the untuned measured p99 unless the operator pinned
    // one. The untuned plan misses a derived target by construction, so
    // the search has real work to do.
    let pinned_target = std::env::var("SERVE_BENCH_TARGET_P99_MS")
        .ok()
        .and_then(|v| v.parse::<f64>().ok());
    let target_derived = pinned_target.is_none();
    let target_p99_ms = pinned_target.unwrap_or(untuned_p99_ms * 0.5);
    println!("  SLO target: p99 {target_p99_ms:.3} ms");

    // Tune before resetting anything: the 48 untuned samples seed the
    // search's measurement calibration.
    let report = registry
        .tune(
            &name,
            &TuneRequest {
                target_p99_ms: Some(target_p99_ms),
                ..TuneRequest::default()
            },
        )
        .expect("joint-knob tune");
    println!(
        "  tune: {} probe(s), knobs {:?} -> {:?} (estimated p99 {:.3} ms, converged {}, applied {})",
        report.probes.len(),
        report.before,
        report.after,
        report.estimated_p99_ms,
        report.converged,
        report.applied
    );
    if target_derived {
        assert!(
            report.converged,
            "halving a 12 ms formation delay must reach a half-p99 target"
        );
    } else if !report.converged {
        println!("  note: pinned target is not reachable; recording the non-converged trace");
    }

    let (tuned_p99_ms, tuned_throughput_rps) = measure("tuned", 48);

    // Brown-out: stall every batch 20 ms. Measured p99 blows through the
    // drift band around the tune's expected p99 and the next tick must
    // both record the drift and re-tune the model.
    injector.arm_delays(10_000, Duration::from_millis(20));
    let (drifted_p99_ms, _) = measure("drifted", 24);
    let tick = registry.controller_tick();
    println!(
        "  tick: examined {}, drifted {:?}, retuned {:?} (injected {} stall(s))",
        tick.examined,
        tick.drifted,
        tick.retuned,
        injector.injected_delays()
    );
    assert_eq!(tick.drifted, vec![name.clone()], "the brown-out must drift");
    assert_eq!(tick.retuned, vec![name.clone()], "a drifted model re-tunes");
    let drift_retunes = tick.retuned.len() as u64;

    injector.disarm();
    let (recovered_p99_ms, _) = measure("recovered", 24);

    let status = registry.controller_status();
    let model_status = status
        .models
        .iter()
        .find(|m| m.model == name)
        .expect("controller state for the tuned model")
        .clone();
    println!(
        "  state: tuning generation {}, {} drift event(s), {} early release(s)",
        model_status.tuning_generation, model_status.drift_events, model_status.early_releases
    );

    let run = ControllerRun {
        model: name,
        target_p99_ms,
        knobs_before: report.before,
        knobs_after: report.after,
        untuned_p99_ms,
        untuned_throughput_rps,
        tuned_p99_ms,
        tuned_throughput_rps,
        converged: report.converged,
        applied: report.applied,
        probes: report.probes.len() as u64,
        tuning_generation: model_status.tuning_generation,
        drift_events: model_status.drift_events,
        drift_retunes,
        early_releases: model_status.early_releases,
        p99_trajectory: vec![
            untuned_p99_ms,
            tuned_p99_ms,
            drifted_p99_ms,
            recovered_p99_ms,
        ],
    };
    registry.shutdown();
    run
}

/// The `--qos` phase: one model per QoS class — `interactive`, `standard`,
/// `batch` — behind one registry, every batch scheduled by the registry's
/// shared fleet executor. Clients interleave traffic across the three
/// classes (open loop, per-class request budgets equal), so the per-class
/// percentiles show what priority banding buys the interactive tier under
/// contention with batch work.
fn run_qos_phase(s: &BenchSettings) -> QosRun {
    use tdc_serve::QosClass;

    let registry = ModelRegistry::new(4);
    let classes = [QosClass::Interactive, QosClass::Standard, QosClass::Batch];
    let mut names = Vec::new();
    for (index, &qos) in classes.iter().enumerate() {
        let descriptor = serving_descriptor(&format!("svc-qos-{qos}"), 12 + 2 * index, 8, 10);
        registry
            .register(
                &descriptor.slug(),
                &descriptor,
                ModelConfig {
                    planning: s.planning.clone(),
                    batching: s.batching.clone(),
                    runtime: RuntimeOptions {
                        workers: s.workers,
                        qos,
                        ..RuntimeOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .expect("register qos model");
        names.push(descriptor.slug());
    }
    // model_info() is name-sorted; re-order dims to match the class order
    // of `names`.
    let info = registry.model_info();
    let dims: Vec<Vec<usize>> = names
        .iter()
        .map(|name| {
            info.iter()
                .find(|i| &i.name == name)
                .expect("registered qos model")
                .input_dims
                .clone()
        })
        .collect();
    println!("\n== qos phase: one model per class on the shared executor ==");

    let registry = Arc::new(registry);
    let interval = Duration::from_secs_f64(1.0 / s.rate_hz.max(1.0));
    // A modest per-class budget: the phase measures class separation, not
    // raw throughput (the per-backend runs already do that).
    let per_class: u64 = (s.requests as u64 / 3).clamp(12, 60);
    let client_threads: Vec<_> = (0..s.clients.clamp(2, 4))
        .map(|client_index| {
            let registry = Arc::clone(&registry);
            let names = names.clone();
            let dims = dims.clone();
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(700 + client_index as u64);
                let mut pending = Vec::new();
                // Interleave classes request by request so every batch
                // window sees mixed-priority arrivals.
                for r in 0..per_class {
                    for m in 0..names.len() {
                        let input = init::uniform(dims[m].clone(), -1.0, 1.0, &mut rng);
                        match registry.submit(&names[m], input) {
                            Ok(p) => pending.push(p),
                            Err(ServeError::Overloaded { .. }) => {}
                            Err(e) => panic!("submit to {}: {e}", names[m]),
                        }
                    }
                    if r + 1 < per_class {
                        std::thread::sleep(interval);
                    }
                }
                for p in pending {
                    match p.wait() {
                        Ok(_) | Err(ServeError::DeadlineExceeded { .. }) => {}
                        Err(e) => panic!("response: {e}"),
                    }
                }
            })
        })
        .collect();
    for t in client_threads {
        t.join().expect("qos client thread");
    }

    let metrics = registry.metrics();
    let per_class_runs: Vec<QosClassRun> = names
        .iter()
        .map(|name| {
            let entry = metrics
                .models
                .iter()
                .find(|m| &m.model == name)
                .expect("qos model metrics");
            QosClassRun {
                qos: entry.executor.qos.clone(),
                model: name.clone(),
                fair_share_weight: entry.executor.weight,
                completed: entry.metrics.completed_requests,
                deadline_exceeded: entry.metrics.deadline_exceeded,
                stolen_batches: entry.metrics.stolen_batches,
                total_latency: entry.metrics.total_latency,
                queue_latency: entry.metrics.queue_latency,
            }
        })
        .collect();
    for run in &per_class_runs {
        println!(
            "  {:12} {:>5} completed ({} expired, {} stolen batch(es))  \
             p50 {:.2} ms  p99 {:.2} ms",
            run.qos,
            run.completed,
            run.deadline_exceeded,
            run.stolen_batches,
            run.total_latency.p50_ms,
            run.total_latency.p99_ms
        );
    }
    println!(
        "  executor: {} worker(s), {} steal(s), {:.1}% utilization",
        metrics.executor.workers,
        metrics.executor.steals_total,
        metrics.executor.utilization * 100.0
    );
    let run = QosRun {
        requests_per_class: per_class,
        per_class: per_class_runs,
        executor_workers: metrics.executor.workers,
        steals_total: metrics.executor.steals_total,
        worker_utilization: metrics.executor.utilization,
    };
    let registry =
        Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("qos-phase registry still shared"));
    registry.shutdown();
    run
}

/// One in-process replica for the `--router` phase: a registry serving the
/// fleet model behind its own HTTP front end.
fn bind_fleet_replica(
    descriptor: &tdc_nn::models::ModelDescriptor,
    s: &BenchSettings,
    addr: &str,
) -> HttpServer {
    // The shared fleet testkit supplies the stock replica shape; only the
    // bench's planning options ride on top.
    let config = ModelConfig {
        planning: s.planning.clone(),
        ..tdc_router::testkit::fleet_config()
    };
    tdc_router::testkit::bind_replica(addr, &descriptor.slug(), descriptor, config)
}

/// Fully drain one fleet replica: stop its front end, then its engines.
fn drain_fleet_replica(server: HttpServer) {
    tdc_router::testkit::drain_replica(server);
}

/// The `--router` phase: three in-process replicas behind a least-loaded
/// [`Router`], hammered over keep-alive connections while replica 0 is
/// drained mid-load (failover must mask it — zero client-visible failures),
/// ejected by the prober, restarted on its old port and re-admitted.
fn run_router_phase(s: &BenchSettings) -> RouterRun {
    const REPLICAS: usize = 3;
    let descriptor = serving_descriptor("svc-fleet", 10, 4, 6);
    let name = descriptor.slug();
    let mut servers: Vec<HttpServer> = (0..REPLICAS)
        .map(|_| bind_fleet_replica(&descriptor, s, "127.0.0.1:0"))
        .collect();
    let addrs: Vec<std::net::SocketAddr> = servers.iter().map(|sv| sv.local_addr()).collect();
    let router = Arc::new(Router::new(
        &addrs,
        RouterOptions {
            policy: RoutingPolicy::LeastLoaded,
            probe_interval: Duration::from_millis(50),
            probe_timeout: Duration::from_millis(250),
            ..RouterOptions::default()
        },
    ));
    let front = HttpServer::bind_with_handler("127.0.0.1:0", Arc::clone(&router) as _)
        .expect("bind router");
    let front_addr = front.local_addr();
    println!("\n== router phase: {REPLICAS} replicas behind http://{front_addr} ==");

    let path = format!("/v1/models/{name}/infer");
    let body = serde_json::to_string(&InferBody {
        input: vec![0.5f32; 10 * 10 * 4],
        dims: None,
        deadline_ms: None,
    })
    .expect("serialize fleet body");

    // Keep-alive hammer clients; each records ok/failed and reconnects if
    // the router drops its connection.
    let clients = s.clients.clamp(2, 4);
    let per_client: u64 = (s.requests as u64 / clients as u64).clamp(24, 80);
    let hammer_threads: Vec<_> = (0..clients)
        .map(|_| {
            let body = body.clone();
            let path = path.clone();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                let mut failed = 0u64;
                let mut first_failure: Option<String> = None;
                let mut client: Option<HttpClient> = None;
                for _ in 0..per_client {
                    if client.is_none() {
                        client = HttpClient::connect(&front_addr).ok();
                    }
                    let outcome = match client.as_mut() {
                        Some(live) => live.request("POST", &path, Some(&body)),
                        None => http_request(&front_addr, "POST", &path, Some(&body)),
                    };
                    match outcome {
                        Ok((200, _)) => ok += 1,
                        Ok((status, reply)) => {
                            failed += 1;
                            first_failure.get_or_insert(format!("{status} {reply}"));
                            client = None;
                        }
                        Err(e) => {
                            failed += 1;
                            first_failure.get_or_insert(format!("transport error: {e}"));
                            client = None;
                        }
                    }
                }
                (ok, failed, first_failure)
            })
        })
        .collect();

    // Mid-load: drain replica 0 completely (listener closed, engines
    // stopped). The router's pooled connections to it go stale and its
    // later connects are refused — failover must absorb all of it.
    std::thread::sleep(Duration::from_millis(30));
    let victim_addr = addrs[0];
    drain_fleet_replica(servers.remove(0));

    let mut completed = 0u64;
    let mut failed = 0u64;
    let mut first_failure: Option<String> = None;
    for thread in hammer_threads {
        let (ok, bad, first) = thread.join().expect("hammer thread");
        completed += ok;
        failed += bad;
        if first_failure.is_none() {
            first_failure = first;
        }
    }
    assert_eq!(
        failed,
        0,
        "kill-under-load leaked a client-visible failure: {}",
        first_failure.unwrap_or_default()
    );

    // The prober (50 ms period, eject_after 2) must eject the dead replica.
    let wait_until = |what: &str, pred: &dyn Fn() -> bool| {
        let deadline = Instant::now() + Duration::from_secs(10);
        while !pred() {
            assert!(
                Instant::now() < deadline,
                "router phase: {what} not reached"
            );
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    wait_until("ejection", &|| router.metrics().ejections_total >= 1);

    // Restart the replica on its old port; the prober must re-admit it.
    servers.insert(
        0,
        bind_fleet_replica(&descriptor, s, &victim_addr.to_string()),
    );
    wait_until("readmission", &|| {
        let m = router.metrics();
        m.readmissions_total >= 1 && m.replicas.iter().all(|r| r.healthy)
    });

    // A final burst over the healed fleet must stay clean.
    let post_requests = 8u64;
    for _ in 0..post_requests {
        let (status, reply) =
            http_request(&front_addr, "POST", &path, Some(&body)).expect("post-heal request");
        assert_eq!(status, 200, "post-heal request failed: {reply}");
        completed += 1;
    }

    let metrics = router.metrics();
    let run = RouterRun {
        replicas: REPLICAS,
        policy: metrics.policy.clone(),
        requests: clients as u64 * per_client + post_requests,
        completed,
        failed,
        failovers_total: metrics.failovers_total,
        ejections_total: metrics.ejections_total,
        readmissions_total: metrics.readmissions_total,
        per_replica_forwarded: metrics.replicas.iter().map(|r| r.forwarded_total).collect(),
    };
    println!(
        "  {} requests, {} completed, {} failed ({} failover(s), \
         {} ejection(s), {} readmission(s))",
        run.requests,
        run.completed,
        run.failed,
        run.failovers_total,
        run.ejections_total,
        run.readmissions_total
    );
    println!("  per-replica forwards: {:?}", run.per_replica_forwarded);

    router.stop();
    front.stop();
    for server in servers {
        drain_fleet_replica(server);
    }
    run
}

/// The `--trace` phase: expand a workload spec into its deterministic
/// trace and replay it open-loop against a live registry built from the
/// spec's model zoo. The recorded fingerprints (trace + completed
/// outputs) are machine-independent — `lab_gate` compares them exactly
/// between the committed baseline and a fresh CI run.
fn run_trace_phase(spec_path: &str, s: &BenchSettings) -> TraceRun {
    let spec = WorkloadSpec::load(std::path::Path::new(spec_path)).unwrap_or_else(|e| {
        eprintln!("serve_bench --trace: {e}");
        std::process::exit(2);
    });
    let trace = tdc_lab::generate(&spec);
    let options = ReplayOptions {
        workers: s.workers.clamp(1, 4),
        max_batch_size: s.batching.max_batch_size,
        max_batch_delay: s.batching.max_batch_delay,
        time_scale: env_f64("SERVE_BENCH_TRACE_TIME_SCALE", 1.0).clamp(0.01, 100.0),
        ..ReplayOptions::default()
    };
    println!(
        "\n== trace phase: {} ({} events, {} samples, fingerprint {:016x}) ==",
        spec.name,
        trace.events.len(),
        trace.total_samples(),
        trace.fingerprint
    );
    for (index, phase) in spec.phases.iter().enumerate() {
        println!(
            "  phase {index} {:<10} {:>4} ms, {} event(s)",
            phase.label,
            phase.duration_ms,
            trace.per_phase_events(spec.phases.len())[index]
        );
    }

    let deployment = deploy(&spec, &trace, &options).expect("deploy trace zoo");
    let report = replay(&deployment, &spec, &trace, &options);
    assert!(
        report.unexpected.is_empty(),
        "trace phase leaked untyped failures: {:?}",
        report.unexpected
    );
    assert_eq!(
        report.submitted,
        report.completed + report.expired + report.failed,
        "trace phase accounting must balance"
    );
    let totals = reconcile(&deployment.registry).expect("trace phase reconciliation");
    assert_eq!(
        totals.submitted, report.submitted,
        "engine-side submitted count disagrees with the client"
    );

    let metrics = deployment.registry.metrics();
    let per_model_samples = trace.per_model_samples(spec.models.len());
    let per_model: Vec<TraceModelRun> = spec
        .models
        .iter()
        .enumerate()
        .map(|(index, model)| {
            let entry = metrics
                .models
                .iter()
                .find(|m| m.model == model.name)
                .expect("trace model metrics");
            TraceModelRun {
                model: model.name.clone(),
                qos: model.qos.map(|q| q.label().to_string()),
                deadline_ms: model.deadline_ms,
                samples: per_model_samples[index],
                completed: entry.metrics.completed_requests,
                expired: entry.metrics.deadline_exceeded,
                failed: entry.metrics.failed_requests,
                p99_ms: entry.metrics.total_latency.p99_ms,
            }
        })
        .collect();
    drop(deployment.registry.shutdown());

    let run = TraceRun {
        spec: spec_path.to_string(),
        workload: spec.name.clone(),
        seed: spec.seed,
        trace_fingerprint: format!("{:016x}", trace.fingerprint),
        events: report.events,
        requests: report.requests,
        submitted: report.submitted,
        shed: report.shed,
        completed: report.completed,
        expired: report.expired,
        failed: report.failed,
        unexpected_failures: report.unexpected.len() as u64,
        output_fingerprint: format!("{:016x}", report.output_fingerprint),
        elapsed_s: report.elapsed_s,
        throughput_rps: report.throughput_rps,
        p50_ms: report.p50_ms,
        p99_ms: report.p99_ms,
        per_phase_events: trace.per_phase_events(spec.phases.len()),
        time_scale: options.time_scale,
        per_model,
    };
    println!(
        "  {} sample(s): {} completed, {} shed, {} expired, {} failed \
         ({:.1} rps, p99 {:.2} ms, outputs {})",
        run.requests,
        run.completed,
        run.shed,
        run.expired,
        run.failed,
        run.throughput_rps,
        run.p99_ms,
        run.output_fingerprint
    );
    run
}

fn main() {
    let out_path =
        std::env::var("SERVE_BENCH_OUT").unwrap_or_else(|_| "BENCH_serve.json".to_string());
    if bool_flag("--check-schema") {
        check_schema(&out_path);
    }
    let deadline_ms = deadline_selection();
    let settings = BenchSettings {
        requests: env_usize("SERVE_BENCH_REQUESTS", 960),
        clients: env_usize("SERVE_BENCH_CLIENTS", 4).max(1),
        workers: env_usize("SERVE_BENCH_WORKERS", 4).max(1),
        rate_hz: env_f64("SERVE_BENCH_RATE_HZ", 4000.0),
        planning: PlanningOptions::default(),
        batching: BatchingOptions {
            max_batch_size: 8,
            max_batch_delay: Duration::from_millis(2),
            default_deadline: deadline_ms.map(Duration::from_millis),
            ..BatchingOptions::default()
        },
    };
    let backends = backend_selection();
    let models = models_selection();
    let keep_alive = bool_flag("--keep-alive");
    let autotune = bool_flag("--autotune");
    let router_mode = bool_flag("--router");
    let qos_mode = bool_flag("--qos");
    let controller_mode = bool_flag("--controller");
    let trace_spec = flag_or_env("--trace", "SERVE_BENCH_TRACE");

    let descriptor = serving_descriptor("svc-mini", 16, 8, 10);
    let cache = Arc::new(PlanCache::new(4));

    println!(
        "tdc-serve bench: model {} on {}",
        descriptor.name, settings.planning.device.name
    );
    println!(
        "  {} requests, {} clients @ {:.0} req/s each, {} workers, batch <= {} / {:?}",
        settings.requests,
        settings.clients,
        settings.rate_hz,
        settings.workers,
        settings.batching.max_batch_size,
        settings.batching.max_batch_delay
    );

    println!(
        "  backends: {}",
        backends
            .iter()
            .map(|b| b.label())
            .collect::<Vec<_>>()
            .join(", ")
    );
    // The per-backend single-model runs always execute, so the artifact's
    // backend trajectory stays comparable PR over PR; --models N adds the
    // mixed registry phase on top.
    let measured: Vec<(BackendRun, tdc_serve::PoolStats)> = backends
        .iter()
        .map(|&kind| run_backend(&descriptor, &cache, kind, &settings))
        .collect();
    // The kernels section reports the CPU backend's pool telemetry — the
    // sim-GPU backend does not stage through the arena.
    let kernels = backends
        .iter()
        .zip(&measured)
        .find(|(kind, _)| **kind == BackendKind::Cpu)
        .map(|(_, (run, stats))| KernelsRun {
            gemm_tile_mr: tdc_tensor::matmul::GEMM_MR as u64,
            gemm_tile_nr: tdc_tensor::matmul::GEMM_NR as u64,
            arena_high_water_f32: stats.high_water_f32,
            arena_allocated_buffers: stats.allocated_buffers,
            arena_takes: stats.takes,
            arena_hit_rate: stats.hits as f64 / (stats.takes.max(1)) as f64,
            allocs_per_request: stats.allocated_buffers as f64 / run.requests.max(1) as f64,
        });
    let runs: Vec<BackendRun> = measured.into_iter().map(|(run, _)| run).collect();
    let multi_model = if models >= 2 {
        println!("\n  mode: + multi-model registry ({models} models, mixed traffic)");
        Some(run_multi_model(models, &backends, &settings))
    } else {
        None
    };
    let http = if keep_alive {
        Some(run_http_phase(&descriptor, &settings, true))
    } else {
        None
    };
    let autotune = if autotune {
        Some(run_autotune(&settings))
    } else {
        None
    };
    let router = if router_mode {
        Some(run_router_phase(&settings))
    } else {
        None
    };
    let qos = if qos_mode {
        Some(run_qos_phase(&settings))
    } else {
        None
    };
    let controller = if controller_mode {
        Some(run_controller_phase(&settings))
    } else {
        None
    };
    let trace = trace_spec.map(|path| run_trace_phase(&path, &settings));

    // The top-level model field names what was actually benchmarked: the
    // single-model descriptor, or the registry fleet in --models mode.
    let artifact = ServeBenchArtifact {
        schema_version: EXPECTED_SCHEMA_VERSION,
        bench: "serve".into(),
        model: descriptor.name.clone(),
        device: settings.planning.device.name.clone(),
        budget: settings.planning.budget,
        workers: settings.workers,
        clients: settings.clients,
        max_batch_size: settings.batching.max_batch_size,
        max_batch_delay_ms: settings.batching.max_batch_delay.as_secs_f64() * 1e3,
        deadline_ms,
        runs,
        multi_model,
        http,
        autotune,
        router,
        qos,
        trace,
        kernels,
        controller,
    };
    let json = serde_json::to_string_pretty(&artifact).expect("serialize artifact");
    std::fs::write(&out_path, json).expect("write artifact");
    println!("\n  artifact written : {out_path}");

    if let Some(multi) = &artifact.multi_model {
        assert_eq!(multi.per_model.len(), models);
        assert_eq!(
            multi.total_completed + multi.total_rejected + multi.total_deadline_exceeded,
            multi.requests_submitted as u64,
            "every submitted request must be completed, rejected or expired"
        );
        if multi.requests_submitted >= models {
            for run in &multi.per_model {
                assert!(
                    run.requests + run.rejected + run.deadline_exceeded > 0,
                    "model {} saw no traffic in the mixed phase",
                    run.model
                );
            }
        }
    }
    if let Some(http) = &artifact.http {
        assert_eq!(http.completed + http.timeouts, http.requests);
        if http.keep_alive && http.requests > http.connections_opened {
            assert!(
                http.connection_reuse > 0,
                "keep-alive phase opened one connection per request"
            );
        }
    }
    if let Some(fleet) = &artifact.router {
        assert_eq!(fleet.failed, 0, "the router phase must mask every failure");
        assert_eq!(fleet.completed, fleet.requests);
        assert!(
            fleet.ejections_total >= 1,
            "the killed replica was never ejected"
        );
        assert!(
            fleet.readmissions_total >= 1,
            "the restarted replica was never re-admitted"
        );
        assert_eq!(fleet.per_replica_forwarded.len(), fleet.replicas);
    }
    if let Some(qos) = &artifact.qos {
        assert_eq!(qos.per_class.len(), 3, "one row per QoS class");
        assert_eq!(
            qos.per_class
                .iter()
                .map(|c| c.qos.as_str())
                .collect::<Vec<_>>(),
            vec!["interactive", "standard", "batch"]
        );
        assert!(qos.executor_workers >= 1, "the shared executor must exist");
        for class in &qos.per_class {
            assert!(
                class.completed + class.deadline_exceeded > 0,
                "class {} saw no traffic in the qos phase",
                class.qos
            );
        }
    }
    if let Some(trace) = &artifact.trace {
        assert_eq!(
            trace.unexpected_failures, 0,
            "the trace phase must only ever surface typed errors"
        );
        assert_eq!(trace.requests, trace.submitted + trace.shed);
        assert_eq!(
            trace.submitted,
            trace.completed + trace.expired + trace.failed
        );
        assert_eq!(
            trace.per_phase_events.iter().sum::<u64>(),
            trace.events,
            "every trace event belongs to a phase"
        );
    }
    if let Some(ctrl) = &artifact.controller {
        assert_eq!(
            ctrl.p99_trajectory.len(),
            4,
            "the trajectory records untuned, tuned, drifted and recovered"
        );
        assert!(
            ctrl.drift_retunes >= 1,
            "the injected brown-out never triggered a drift re-tune"
        );
        assert!(
            ctrl.tuning_generation >= 2,
            "the explicit tune plus the drift re-tune must both be recorded"
        );
        if ctrl.converged {
            assert!(
                ctrl.tuned_p99_ms <= ctrl.target_p99_ms,
                "tuned measured p99 {:.3} ms misses the SLO {:.3} ms",
                ctrl.tuned_p99_ms,
                ctrl.target_p99_ms
            );
            assert!(
                ctrl.tuned_throughput_rps >= ctrl.untuned_throughput_rps,
                "tuning must not cost closed-loop throughput ({:.0} -> {:.0} req/s)",
                ctrl.untuned_throughput_rps,
                ctrl.tuned_throughput_rps
            );
        }
    }
    if let Some(tune) = &artifact.autotune {
        assert!(
            tune.report.probes.len() >= 2,
            "the search must probe at least both interval edges"
        );
        assert_eq!(tune.lifecycle.autotune_runs_total, 1);
        assert_eq!(
            tune.lifecycle.replans_total,
            u64::from(tune.report.applied),
            "an applied search is exactly one hot-swap"
        );
    }

    let stats = cache.stats();
    println!(
        "  plan cache       : {} memory hit(s), {} disk hit(s), {} miss(es)",
        stats.memory_hits, stats.disk_hits, stats.misses
    );
    assert!(
        stats.hits() >= artifact.runs.len() as u64,
        "every backend's warm restart must produce a plan-cache hit"
    );
    for run in &artifact.runs {
        assert!(
            (run.requests + run.rejected + run.deadline_exceeded) as usize >= settings.requests,
            "every request must be completed, rejected or expired on backend {}",
            run.backend
        );
    }
}
