//! Scripted fault injection at the execution-backend boundary.
//!
//! [`FaultInjector`] is a [`BackendWrapper`]: registered on a model's
//! `ModelConfig`, it interposes a [`FaultBackend`] between the engine and
//! the real executor. The injector itself is the *control handle* — the
//! chaos harness keeps a clone and arms faults mid-trace
//! ([`FaultInjector::arm_panics`] / [`FaultInjector::arm_errors`]); the
//! wrapped backend consumes the armed budget one batch at a time, then
//! falls back to pass-through. Because the wrapper rides on the model
//! config, a plan hot-swap re-applies it to the rebuilt engine and the
//! handle keeps working across replans.
//!
//! Three fault shapes, matching the ways a real executor degrades:
//!
//! * **panic** — `forward_batch` panics, exercising the engine's
//!   worker-side unwind containment;
//! * **error storm** — `forward_batch` returns typed
//!   `ServeError::ExecutionFailed`, exercising the per-request failure
//!   path;
//! * **delay** — `forward_batch` stalls for a scripted duration before
//!   delegating: the replica stays *correct* but slow, which is how
//!   brown-outs actually present. Delay faults raise measured latency
//!   without corrupting outputs, so they exercise latency-driven
//!   machinery (controller drift detection, probe-timeout ejection)
//!   rather than the error paths.
//!
//! Either way the invariant under test is the same: clients only ever
//! see *typed* errors (or slow successes), and the engine's counters
//! still reconcile.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use tdc_serve::backend::{BackendLatencyReport, BackendWrapper, BatchExecution, ExecutionBackend};
use tdc_serve::ServeError;
use tdc_tensor::Tensor;

/// The armed fault budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// Pass through to the real backend.
    Off,
    /// Panic for the next `n` batches.
    Panic(u32),
    /// Fail the next `n` batches with `ExecutionFailed`.
    Error(u32),
    /// Stall the next `n` batches for `delay_ms` before delegating.
    Delay(u32, u64),
}

#[derive(Debug)]
struct FaultState {
    mode: Mutex<FaultMode>,
    injected_panics: AtomicU64,
    injected_errors: AtomicU64,
    injected_delays: AtomicU64,
}

/// Control handle + [`BackendWrapper`] for scripted backend faults.
///
/// Cloning is cheap and shares the armed state, so the harness can hand
/// one clone to the registry (via `ModelConfig::backend_wrapper`) and
/// keep another to arm faults and read injection counters.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: Arc<FaultState>,
}

impl FaultInjector {
    /// A disarmed injector (pass-through until armed).
    pub fn new() -> Self {
        FaultInjector {
            state: Arc::new(FaultState {
                mode: Mutex::new(FaultMode::Off),
                injected_panics: AtomicU64::new(0),
                injected_errors: AtomicU64::new(0),
                injected_delays: AtomicU64::new(0),
            }),
        }
    }

    fn set_mode(&self, mode: FaultMode) {
        let mut guard = self
            .state
            .mode
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard = mode;
    }

    /// Arm the injector to panic inside `forward_batch` for the next
    /// `count` batches, then disarm itself.
    pub fn arm_panics(&self, count: u32) {
        self.set_mode(FaultMode::Panic(count));
    }

    /// Arm the injector to return typed `ExecutionFailed` errors for the
    /// next `count` batches, then disarm itself.
    pub fn arm_errors(&self, count: u32) {
        self.set_mode(FaultMode::Error(count));
    }

    /// Arm the injector to stall `forward_batch` for `delay` on each of
    /// the next `count` batches, then disarm itself. Outputs stay
    /// bit-correct — the batch is merely late — so this is the brown-out
    /// fault: it drives measured p99 up for latency-sensitive machinery
    /// (controller drift, slow-replica ejection) without error noise.
    pub fn arm_delays(&self, count: u32, delay: std::time::Duration) {
        self.set_mode(FaultMode::Delay(count, delay.as_millis() as u64));
    }

    /// Disarm any remaining fault budget.
    pub fn disarm(&self) {
        self.set_mode(FaultMode::Off);
    }

    /// True when the armed budget is exhausted (or never armed): the
    /// system has healed and subsequent batches pass through untouched.
    pub fn is_idle(&self) -> bool {
        let guard = self
            .state
            .mode
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        *guard == FaultMode::Off
    }

    /// Batches killed by injected panics so far.
    pub fn injected_panics(&self) -> u64 {
        self.state.injected_panics.load(Ordering::Relaxed)
    }

    /// Batches failed with injected typed errors so far.
    pub fn injected_errors(&self) -> u64 {
        self.state.injected_errors.load(Ordering::Relaxed)
    }

    /// Batches stalled by injected delays so far.
    pub fn injected_delays(&self) -> u64 {
        self.state.injected_delays.load(Ordering::Relaxed)
    }
}

impl Default for FaultInjector {
    fn default() -> Self {
        Self::new()
    }
}

impl BackendWrapper for FaultInjector {
    fn wrap(&self, inner: Arc<dyn ExecutionBackend>) -> Arc<dyn ExecutionBackend> {
        Arc::new(FaultBackend {
            inner,
            state: Arc::clone(&self.state),
        })
    }
}

/// The interposed backend: consumes the injector's armed budget, then
/// delegates to the real backend.
pub struct FaultBackend {
    inner: Arc<dyn ExecutionBackend>,
    state: Arc<FaultState>,
}

impl FaultBackend {
    /// Take one fault from the armed budget, if any. Never holds the
    /// mode lock while panicking or executing.
    fn take_fault(&self) -> FaultMode {
        let mut guard = self
            .state
            .mode
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match *guard {
            FaultMode::Off => FaultMode::Off,
            FaultMode::Panic(n) => {
                *guard = if n > 1 {
                    FaultMode::Panic(n - 1)
                } else {
                    FaultMode::Off
                };
                FaultMode::Panic(n)
            }
            FaultMode::Error(n) => {
                *guard = if n > 1 {
                    FaultMode::Error(n - 1)
                } else {
                    FaultMode::Off
                };
                FaultMode::Error(n)
            }
            FaultMode::Delay(n, delay_ms) => {
                *guard = if n > 1 {
                    FaultMode::Delay(n - 1, delay_ms)
                } else {
                    FaultMode::Off
                };
                FaultMode::Delay(n, delay_ms)
            }
        }
    }
}

impl ExecutionBackend for FaultBackend {
    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input_dims(&self) -> &[usize] {
        self.inner.input_dims()
    }

    fn warmup(&self) -> Result<(), ServeError> {
        // Warmup always passes through: faults model a backend that dies
        // *in service*, not one that fails to build.
        self.inner.warmup()
    }

    fn forward_batch(&self, inputs: &[&Tensor]) -> Result<BatchExecution, ServeError> {
        match self.take_fault() {
            FaultMode::Off => self.inner.forward_batch(inputs),
            FaultMode::Panic(_) => {
                self.state.injected_panics.fetch_add(1, Ordering::Relaxed);
                panic!("injected fault: scripted backend panic");
            }
            FaultMode::Error(_) => {
                self.state.injected_errors.fetch_add(1, Ordering::Relaxed);
                Err(ServeError::ExecutionFailed {
                    reason: "injected fault: scripted backend error".into(),
                })
            }
            FaultMode::Delay(_, delay_ms) => {
                self.state.injected_delays.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(std::time::Duration::from_millis(delay_ms));
                self.inner.forward_batch(inputs)
            }
        }
    }

    fn latency_report(&self, batch_size: usize) -> Result<BackendLatencyReport, ServeError> {
        self.inner.latency_report(batch_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_drains_then_disarms() {
        let injector = FaultInjector::new();
        assert!(injector.is_idle());
        injector.arm_panics(2);
        assert!(!injector.is_idle());
        // Drain the budget through the internal state machine directly.
        let backend = injector.wrap(Arc::new(NullBackend));
        for _ in 0..2 {
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let _ = backend.forward_batch(&[]);
            }));
            assert!(result.is_err(), "armed panic must fire");
        }
        assert!(injector.is_idle());
        assert_eq!(injector.injected_panics(), 2);
        assert!(backend.forward_batch(&[]).is_ok(), "healed: pass-through");
    }

    #[test]
    fn delay_budget_stalls_then_passes_through_bit_correct() {
        let injector = FaultInjector::new();
        injector.arm_delays(1, std::time::Duration::from_millis(40));
        let backend = injector.wrap(Arc::new(NullBackend));
        let input = Tensor::from_vec(vec![2], vec![1.0, 2.0]).unwrap();

        let started = std::time::Instant::now();
        let slow = backend.forward_batch(&[&input]).expect("delayed batch");
        assert!(
            started.elapsed() >= std::time::Duration::from_millis(40),
            "armed delay must stall the batch"
        );
        assert_eq!(
            slow.outputs[0].data(),
            input.data(),
            "a delayed batch must still be bit-correct"
        );
        assert_eq!(injector.injected_delays(), 1);
        assert!(injector.is_idle(), "delay budget must drain");

        let started = std::time::Instant::now();
        backend.forward_batch(&[&input]).expect("healed batch");
        assert!(
            started.elapsed() < std::time::Duration::from_millis(40),
            "healed batches must not stall"
        );
    }

    #[test]
    fn error_budget_is_typed() {
        let injector = FaultInjector::new();
        injector.arm_errors(1);
        let backend = injector.wrap(Arc::new(NullBackend));
        match backend.forward_batch(&[]) {
            Err(ServeError::ExecutionFailed { reason }) => {
                assert!(reason.contains("injected fault"));
            }
            other => panic!("expected typed ExecutionFailed, got {other:?}"),
        }
        assert_eq!(injector.injected_errors(), 1);
        assert!(injector.is_idle());
    }

    struct NullBackend;

    impl ExecutionBackend for NullBackend {
        fn name(&self) -> &str {
            "null"
        }
        fn input_dims(&self) -> &[usize] {
            &[]
        }
        fn warmup(&self) -> Result<(), ServeError> {
            Ok(())
        }
        fn forward_batch(&self, inputs: &[&Tensor]) -> Result<BatchExecution, ServeError> {
            Ok(BatchExecution {
                outputs: inputs.iter().map(|t| (*t).clone()).collect(),
                simulated_gpu_ms: 0.0,
            })
        }
        fn latency_report(&self, _batch_size: usize) -> Result<BackendLatencyReport, ServeError> {
            Err(ServeError::ExecutionFailed {
                reason: "null backend has no latency report".into(),
            })
        }
    }
}
