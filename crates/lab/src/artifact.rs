//! `BENCH_serve.json` schema validation, across every version the
//! benchmark has ever written.
//!
//! The artifact schema has grown monotonically — each serving-tier PR
//! appended an optional section and bumped `schema_version`:
//!
//! | version | added |
//! |---------|-------|
//! | 1 | flat single-backend report |
//! | 2 | header + per-backend `runs[]` (cold/warm plan outcomes, simulated GPU account) |
//! | 3 | `multi_model` registry phase |
//! | 4 | `deadline_ms`, `http` phase, per-run `rejected` / `deadline_exceeded` |
//! | 5 | `autotune` phase |
//! | 6 | `router` fleet phase |
//! | 7 | `qos` phase |
//! | 8 | `trace` phase (this crate's trace-driven workload engine) |
//! | 9 | `kernels` section (blocked-GEMM tile dims, arena pool telemetry) |
//! | 10 | `controller` phase (joint-knob tune convergence + drift retune trace) |
//!
//! [`validate`] accepts **any** historical version and checks the fields
//! that version is required to carry — so `serve_bench --check-schema`
//! can vet an artifact written by any released benchmark, and the
//! regression gate can reject a baseline/fresh pair before comparing
//! them. Sections from a *newer* version appearing in an older artifact
//! are an error: that artifact lies about its version.

use serde_json::Value;

/// The schema version the benchmark currently writes.
pub const CURRENT_SCHEMA_VERSION: u32 = 10;

/// When each optional section entered the schema.
const SECTIONS: [(&str, u32); 8] = [
    ("multi_model", 3),
    ("http", 4),
    ("autotune", 5),
    ("router", 6),
    ("qos", 7),
    ("trace", 8),
    ("kernels", 9),
    ("controller", 10),
];

fn is_present(artifact: &Value, key: &str) -> bool {
    matches!(artifact.get(key), Some(v) if !matches!(v, Value::Null))
}

fn require(value: &Value, keys: &[&str], ctx: &str) -> Result<(), String> {
    for key in keys {
        if value.get(key).is_none() {
            return Err(format!("{ctx}: missing required field {key:?}"));
        }
    }
    Ok(())
}

fn require_latency(value: &Value, key: &str, ctx: &str) -> Result<(), String> {
    let summary = value
        .get(key)
        .ok_or_else(|| format!("{ctx}: missing latency summary {key:?}"))?;
    require(
        summary,
        &["count", "mean_ms", "p50_ms", "p90_ms", "p99_ms", "max_ms"],
        &format!("{ctx}.{key}"),
    )
}

fn validate_run(run: &Value, version: u32, ctx: &str) -> Result<(), String> {
    require(
        run,
        &[
            "backend",
            "requests",
            "elapsed_s",
            "throughput_rps",
            "mean_batch_size",
            "max_batch_observed",
            "predicted_gpu_ms_per_sample",
            "predicted_gpu_ms_total",
            "simulated_gpu_ms_total",
            "plan_fingerprint",
            "plan_outcome_cold",
            "plan_outcome_warm",
            "decomposed_layers",
            "achieved_flops_reduction",
        ],
        ctx,
    )?;
    for key in ["total_latency", "queue_latency", "exec_latency"] {
        require_latency(run, key, ctx)?;
    }
    if version >= 4 {
        require(run, &["rejected", "deadline_exceeded"], ctx)?;
    }
    Ok(())
}

fn validate_trace_section(trace: &Value) -> Result<(), String> {
    require(
        trace,
        &[
            "spec",
            "workload",
            "seed",
            "trace_fingerprint",
            "events",
            "requests",
            "submitted",
            "shed",
            "completed",
            "expired",
            "failed",
            "unexpected_failures",
            "output_fingerprint",
            "elapsed_s",
            "throughput_rps",
            "p50_ms",
            "p99_ms",
            "per_phase_events",
            "time_scale",
        ],
        "trace",
    )?;
    let phases = trace
        .get("per_phase_events")
        .and_then(|v| v.as_array())
        .ok_or_else(|| "trace.per_phase_events must be an array".to_string())?;
    if phases.is_empty() {
        return Err("trace.per_phase_events must not be empty".into());
    }
    Ok(())
}

/// Validate an artifact against the schema version it declares, returning
/// that version. Accepts every version the benchmark has ever written.
pub fn validate(artifact: &Value) -> Result<u32, String> {
    let version = artifact
        .get("schema_version")
        .and_then(|v| v.as_f64())
        .filter(|v| v.fract() == 0.0 && *v >= 0.0)
        .ok_or_else(|| "missing or non-integer schema_version".to_string())?
        as u32;
    if version == 0 || version > CURRENT_SCHEMA_VERSION {
        return Err(format!(
            "unsupported schema_version {version} (this build understands 1..={CURRENT_SCHEMA_VERSION})"
        ));
    }

    require(
        artifact,
        &[
            "bench",
            "model",
            "device",
            "budget",
            "workers",
            "clients",
            "max_batch_size",
            "max_batch_delay_ms",
        ],
        "artifact",
    )?;

    if version == 1 {
        require(
            artifact,
            &[
                "requests",
                "elapsed_s",
                "throughput_rps",
                "mean_batch_size",
                "max_batch_observed",
                "predicted_gpu_ms_per_sample",
                "predicted_gpu_ms_total",
                "plan_fingerprint",
                "plan_cache_memory_hits",
                "plan_cache_disk_hits",
                "plan_cache_misses",
                "decomposed_layers",
                "achieved_flops_reduction",
            ],
            "artifact",
        )?;
        for key in ["total_latency", "queue_latency", "exec_latency"] {
            require_latency(artifact, key, "artifact")?;
        }
    } else {
        let runs = artifact
            .get("runs")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "artifact: missing or non-array \"runs\"".to_string())?;
        if runs.is_empty() {
            return Err("artifact: \"runs\" must not be empty".into());
        }
        for (i, run) in runs.iter().enumerate() {
            validate_run(run, version, &format!("runs[{i}]"))?;
        }
    }
    if version >= 4 && artifact.get("deadline_ms").is_none() {
        return Err("artifact: schema_version >= 4 requires a \"deadline_ms\" key".into());
    }

    for (section, introduced) in SECTIONS {
        if version < introduced {
            if is_present(artifact, section) {
                return Err(format!(
                    "artifact: section {section:?} requires schema_version >= {introduced}, \
                     but artifact declares {version}"
                ));
            }
        } else if artifact.get(section).is_none() {
            return Err(format!(
                "artifact: schema_version {version} requires a {section:?} key (null when the \
                 phase did not run)"
            ));
        }
    }

    if is_present(artifact, "multi_model") {
        require(
            artifact.get("multi_model").unwrap(),
            &[
                "models",
                "requests_submitted",
                "total_completed",
                "per_model",
            ],
            "multi_model",
        )?;
    }
    if is_present(artifact, "http") {
        require(
            artifact.get("http").unwrap(),
            &["requests", "completed"],
            "http",
        )?;
    }
    if is_present(artifact, "autotune") {
        require(artifact.get("autotune").unwrap(), &["model"], "autotune")?;
    }
    if is_present(artifact, "router") {
        require(
            artifact.get("router").unwrap(),
            &["replicas", "policy", "requests", "completed"],
            "router",
        )?;
    }
    if is_present(artifact, "qos") {
        require(artifact.get("qos").unwrap(), &["per_class"], "qos")?;
    }
    if is_present(artifact, "trace") {
        validate_trace_section(artifact.get("trace").unwrap())?;
    }
    if is_present(artifact, "kernels") {
        require(
            artifact.get("kernels").unwrap(),
            &[
                "gemm_tile_mr",
                "gemm_tile_nr",
                "arena_high_water_f32",
                "arena_allocated_buffers",
                "arena_hit_rate",
                "allocs_per_request",
            ],
            "kernels",
        )?;
    }
    if is_present(artifact, "controller") {
        let controller = artifact.get("controller").unwrap();
        require(
            controller,
            &[
                "model",
                "target_p99_ms",
                "knobs_before",
                "knobs_after",
                "untuned_p99_ms",
                "untuned_throughput_rps",
                "tuned_p99_ms",
                "tuned_throughput_rps",
                "converged",
                "drift_retunes",
                "p99_trajectory",
            ],
            "controller",
        )?;
        let trajectory = controller
            .get("p99_trajectory")
            .and_then(|v| v.as_array())
            .ok_or_else(|| "controller.p99_trajectory must be an array".to_string())?;
        if trajectory.is_empty() {
            return Err("controller.p99_trajectory must not be empty".into());
        }
    }

    Ok(version)
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::parse_value;

    fn lat() -> String {
        r#"{"count": 10, "mean_ms": 1.0, "p50_ms": 1.0, "p90_ms": 1.5,
            "p99_ms": 2.0, "max_ms": 3.0}"#
            .to_string()
    }

    fn header() -> String {
        r#""bench": "serve", "model": "m", "device": "a100", "budget": 0.5,
           "workers": 2, "clients": 4, "max_batch_size": 8, "max_batch_delay_ms": 2.0"#
            .to_string()
    }

    fn run(version: u32) -> String {
        let deadline_fields = if version >= 4 {
            r#""rejected": 0, "deadline_exceeded": 0,"#
        } else {
            ""
        };
        format!(
            r#"{{"backend": "cpu", "requests": 64, {deadline_fields}
                "elapsed_s": 0.5, "throughput_rps": 128.0,
                "total_latency": {lat}, "queue_latency": {lat}, "exec_latency": {lat},
                "mean_batch_size": 4.0, "max_batch_observed": 8,
                "predicted_gpu_ms_per_sample": 0.1, "predicted_gpu_ms_total": 6.4,
                "simulated_gpu_ms_total": 0.0, "simulated_per_layer": null,
                "plan_fingerprint": "abc", "plan_outcome_cold": "computed",
                "plan_outcome_warm": "memory", "decomposed_layers": 3,
                "achieved_flops_reduction": 0.4}}"#,
            lat = lat()
        )
    }

    fn sections(version: u32) -> String {
        let mut parts = Vec::new();
        if version >= 3 {
            parts.push(
                r#""multi_model": {"models": 2, "requests_submitted": 10,
                    "total_completed": 10, "per_model": []}"#
                    .to_string(),
            );
        }
        if version >= 4 {
            parts.push(r#""deadline_ms": 5000"#.to_string());
            parts.push(r#""http": {"requests": 10, "completed": 10}"#.to_string());
        }
        if version >= 5 {
            parts.push(r#""autotune": {"model": "m"}"#.to_string());
        }
        if version >= 6 {
            parts.push(
                r#""router": {"replicas": 2, "policy": "hash", "requests": 10,
                    "completed": 10}"#
                    .to_string(),
            );
        }
        if version >= 7 {
            parts.push(r#""qos": {"per_class": []}"#.to_string());
        }
        if version >= 8 {
            parts.push(
                r#""trace": {"spec": "examples/traces/x.json", "workload": "x",
                    "seed": 7, "trace_fingerprint": "deadbeef", "events": 5,
                    "requests": 9, "submitted": 9, "shed": 0, "completed": 9,
                    "expired": 0, "failed": 0, "unexpected_failures": 0,
                    "output_fingerprint": "cafe", "elapsed_s": 0.5,
                    "throughput_rps": 18.0, "p50_ms": 1.0, "p99_ms": 2.0,
                    "per_phase_events": [3, 2], "time_scale": 1.0,
                    "per_model": []}"#
                    .to_string(),
            );
        }
        if version >= 9 {
            parts.push(
                r#""kernels": {"gemm_tile_mr": 4, "gemm_tile_nr": 8,
                    "arena_high_water_f32": 65536, "arena_allocated_buffers": 24,
                    "arena_hit_rate": 0.99, "allocs_per_request": 0.1}"#
                    .to_string(),
            );
        }
        if version >= 10 {
            parts.push(
                r#""controller": {"model": "m", "target_p99_ms": 5.0,
                    "knobs_before": {"flops_budget": 0.5, "max_batch_size": 8,
                        "max_batch_delay_us": 2000, "fair_share_weight": 1},
                    "knobs_after": {"flops_budget": 0.5, "max_batch_size": 16,
                        "max_batch_delay_us": 1000, "fair_share_weight": 1},
                    "untuned_p99_ms": 6.0, "untuned_throughput_rps": 100.0,
                    "tuned_p99_ms": 4.0, "tuned_throughput_rps": 140.0,
                    "converged": true, "drift_retunes": 1,
                    "p99_trajectory": [6.0, 4.0, 4.1]}"#
                    .to_string(),
            );
        }
        parts.join(", ")
    }

    fn artifact(version: u32) -> String {
        if version == 1 {
            return format!(
                r#"{{"schema_version": 1, {header}, "requests": 64,
                    "elapsed_s": 0.5, "throughput_rps": 128.0,
                    "total_latency": {lat}, "queue_latency": {lat},
                    "exec_latency": {lat}, "mean_batch_size": 4.0,
                    "max_batch_observed": 8, "predicted_gpu_ms_per_sample": 0.1,
                    "predicted_gpu_ms_total": 6.4, "plan_fingerprint": "abc",
                    "plan_cache_memory_hits": 1, "plan_cache_disk_hits": 0,
                    "plan_cache_misses": 1, "decomposed_layers": 3,
                    "achieved_flops_reduction": 0.4}}"#,
                header = header(),
                lat = lat()
            );
        }
        let sections = sections(version);
        let sep = if sections.is_empty() { "" } else { ", " };
        format!(
            r#"{{"schema_version": {version}, {header}, "runs": [{run}]{sep}{sections}}}"#,
            header = header(),
            run = run(version)
        )
    }

    #[test]
    fn accepts_every_historical_version() {
        for version in 1..=CURRENT_SCHEMA_VERSION {
            let text = artifact(version);
            let value = parse_value(&text).expect("fixture parses");
            assert_eq!(
                validate(&value),
                Ok(version),
                "schema {version} fixture must validate: {text}"
            );
        }
    }

    #[test]
    fn rejects_version_zero_and_future() {
        for bad in [0, CURRENT_SCHEMA_VERSION + 1] {
            let text = artifact(2).replace(
                "\"schema_version\": 2",
                &format!("\"schema_version\": {bad}"),
            );
            let value = parse_value(&text).expect("parses");
            assert!(validate(&value).is_err(), "version {bad} must be rejected");
        }
    }

    #[test]
    fn rejects_missing_run_fields() {
        let text = artifact(2).replace("\"plan_outcome_cold\": \"computed\",", "");
        let value = parse_value(&text).expect("parses");
        let err = validate(&value).expect_err("must fail");
        assert!(err.contains("plan_outcome_cold"), "{err}");
    }

    #[test]
    fn rejects_section_from_the_future() {
        // A v2 artifact carrying a router section lies about its version.
        let text = artifact(2).replace(
            "\"runs\":",
            r#""router": {"replicas": 2, "policy": "hash", "requests": 1,
               "completed": 1}, "runs":"#,
        );
        let value = parse_value(&text).expect("parses");
        let err = validate(&value).expect_err("must fail");
        assert!(err.contains("router"), "{err}");
    }

    #[test]
    fn requires_declared_sections_even_when_null() {
        // v8 must carry a "trace" key; dropping it entirely is an error,
        // but an explicit null (phase skipped) is fine.
        let with_null = artifact(8).replace("\"trace\": {", "\"trace_skipped\": {");
        let value = parse_value(&with_null).expect("parses");
        let err = validate(&value).expect_err("must fail");
        assert!(err.contains("trace"), "{err}");

        let mut kept = artifact(7).replace("\"schema_version\": 7", "\"schema_version\": 8");
        kept.truncate(kept.len() - 1);
        kept.push_str(", \"trace\": null}");
        let value = parse_value(&kept).expect("parses");
        assert_eq!(validate(&value), Ok(8));
    }

    #[test]
    fn rejects_missing_deadline_key_after_v4() {
        let text = artifact(4).replace(r#""deadline_ms": 5000, "#, "");
        let value = parse_value(&text).expect("parses");
        let err = validate(&value).expect_err("must fail");
        assert!(err.contains("deadline_ms"), "{err}");
    }

    #[test]
    fn accepts_the_committed_baseline() {
        // The repository's committed artifact must always validate.
        let text = std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../BENCH_serve.json"
        ))
        .expect("committed BENCH_serve.json");
        let value = parse_value(&text).expect("baseline parses");
        let version = validate(&value).expect("baseline validates");
        assert_eq!(version, CURRENT_SCHEMA_VERSION);
    }
}
