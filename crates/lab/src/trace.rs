//! Trace generation: expanding a [`WorkloadSpec`] into a concrete,
//! byte-reproducible sequence of timestamped request events.
//!
//! The generator draws every random quantity from one `StdRng` seeded
//! with the spec's seed, in a fixed order (inter-arrival gap, then model,
//! then request size, per event), so the same spec + seed always yields
//! the same [`Trace`] — the foundation both for the bench-regression gate
//! (the committed baseline and a fresh CI run describe the *same*
//! request stream) and for the chaos harness's bit-parity checks (a
//! post-heal replay re-issues exactly the fault run's requests).
//!
//! Timestamps are virtual microseconds from trace start and strictly
//! increasing: every gap is clamped to at least 1 µs, so event order is
//! total and replay dispatch is unambiguous.

use crate::spec::{Arrival, SizeMix, WorkloadSpec};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request event in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time of the request, microseconds from trace start.
    pub timestamp_us: u64,
    /// Index into the spec's model zoo.
    pub model: usize,
    /// Samples carried by the request (each becomes one engine request).
    pub samples: usize,
    /// Deadline applied to the request, from the model spec.
    pub deadline_ms: Option<u64>,
    /// Index of the phase that emitted the event.
    pub phase: usize,
}

/// A fully expanded workload trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Trace {
    /// Events in strictly increasing timestamp order.
    pub events: Vec<TraceEvent>,
    /// FNV-1a fingerprint of [`Trace::canonical_bytes`]; two traces with
    /// the same fingerprint describe the same request stream.
    pub fingerprint: u64,
}

/// FNV-1a 64-bit hash — the workspace's stock content fingerprint (the
/// router uses the same construction for placement hashing).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Streaming FNV-1a accumulator for fingerprints built out of several
/// pieces (request outputs, event records) without concatenating buffers.
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// A fresh accumulator at the FNV offset basis.
    pub fn new() -> Self {
        Fnv1a(0xcbf2_9ce4_8422_2325)
    }

    /// Absorb `bytes`.
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// The current hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

fn gap_us(arrival: &Arrival, local_us: u64, rng: &mut StdRng) -> u64 {
    let gap_s = match arrival {
        Arrival::Uniform { rate_hz } => 1.0 / rate_hz,
        Arrival::Poisson { rate_hz } => {
            let u: f64 = rng.gen_range(0.0..1.0);
            -(1.0 - u).ln() / rate_hz
        }
        Arrival::Sine {
            base_hz,
            amplitude_hz,
            period_ms,
        } => {
            let t_ms = local_us as f64 / 1000.0;
            let rate = base_hz
                + amplitude_hz * (2.0 * std::f64::consts::PI * t_ms / *period_ms as f64).sin();
            1.0 / rate
        }
        Arrival::Square {
            low_hz,
            high_hz,
            period_ms,
        } => {
            let in_period_ms = (local_us / 1000) % period_ms;
            let rate = if in_period_ms < period_ms / 2 {
                *high_hz
            } else {
                *low_hz
            };
            1.0 / rate
        }
    };
    ((gap_s * 1e6).round() as u64).max(1)
}

fn pick_model(mix: &[f64], total: f64, rng: &mut StdRng) -> usize {
    let draw: f64 = rng.gen_range(0.0..total);
    let mut acc = 0.0;
    for (i, w) in mix.iter().enumerate() {
        acc += w;
        if draw < acc {
            return i;
        }
    }
    mix.len() - 1
}

fn sample_size(mix: &SizeMix, rng: &mut StdRng) -> usize {
    match mix {
        SizeMix::Fixed { samples } => *samples,
        SizeMix::BoundedPareto { alpha, min, max } => {
            if min == max {
                return *min;
            }
            // Inverse-CDF sampling of the bounded Pareto on [min, max+1):
            // x = L / (1 - u (1 - (L/H)^α))^(1/α).
            let l = *min as f64;
            let h = (*max + 1) as f64;
            let u: f64 = rng.gen_range(0.0..1.0);
            let ratio = (l / h).powf(*alpha);
            let x = l / (1.0 - u * (1.0 - ratio)).powf(1.0 / alpha);
            (x.floor() as usize).clamp(*min, *max)
        }
    }
}

/// Expand `spec` into its trace. Deterministic: same spec + seed ⇒
/// identical events and fingerprint, byte for byte.
pub fn generate(spec: &WorkloadSpec) -> Trace {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mix_total: f64 = spec.model_mix.iter().sum();
    let mut events = Vec::new();
    let mut phase_start_us = 0u64;
    for (phase, phase_spec) in spec.phases.iter().enumerate() {
        let duration_us = phase_spec.duration_ms * 1000;
        let mut local_us = 0u64;
        loop {
            local_us = local_us.saturating_add(gap_us(&phase_spec.arrival, local_us, &mut rng));
            if local_us >= duration_us {
                break;
            }
            let model = pick_model(&spec.model_mix, mix_total, &mut rng);
            let samples = sample_size(&spec.size_mix, &mut rng);
            events.push(TraceEvent {
                timestamp_us: phase_start_us + local_us,
                model,
                samples,
                deadline_ms: spec.models[model].deadline_ms,
                phase,
            });
        }
        phase_start_us += duration_us;
    }
    let mut trace = Trace {
        events,
        fingerprint: 0,
    };
    trace.fingerprint = fnv1a(&trace.canonical_bytes_with_header(&spec.name, spec.seed));
    trace
}

impl Trace {
    /// Canonical little-endian byte encoding of the event stream, used
    /// for the fingerprint and for byte-level reproducibility checks.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut bytes = Vec::with_capacity(self.events.len() * 28);
        for event in &self.events {
            bytes.extend_from_slice(&event.timestamp_us.to_le_bytes());
            bytes.extend_from_slice(&(event.model as u32).to_le_bytes());
            bytes.extend_from_slice(&(event.samples as u32).to_le_bytes());
            bytes.extend_from_slice(&event.deadline_ms.unwrap_or(u64::MAX).to_le_bytes());
            bytes.extend_from_slice(&(event.phase as u32).to_le_bytes());
        }
        bytes
    }

    fn canonical_bytes_with_header(&self, name: &str, seed: u64) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(name.as_bytes());
        bytes.push(0);
        bytes.extend_from_slice(&seed.to_le_bytes());
        bytes.extend_from_slice(&self.canonical_bytes());
        bytes
    }

    /// Total samples (engine-level requests) across all events.
    pub fn total_samples(&self) -> u64 {
        self.events.iter().map(|e| e.samples as u64).sum()
    }

    /// Event count per phase index (length `phases`).
    pub fn per_phase_events(&self, phases: usize) -> Vec<u64> {
        let mut counts = vec![0u64; phases];
        for event in &self.events {
            if event.phase < phases {
                counts[event.phase] += 1;
            }
        }
        counts
    }

    /// Samples per model index (length `models`).
    pub fn per_model_samples(&self, models: usize) -> Vec<u64> {
        let mut counts = vec![0u64; models];
        for event in &self.events {
            if event.model < models {
                counts[event.model] += event.samples as u64;
            }
        }
        counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ModelSpec, PhaseSpec};

    fn two_model_spec(seed: u64) -> WorkloadSpec {
        WorkloadSpec {
            name: "trace-unit".into(),
            seed,
            models: vec![
                ModelSpec {
                    name: "a".into(),
                    spatial: 8,
                    base_channels: 4,
                    classes: 4,
                    qos: None,
                    deadline_ms: Some(500),
                },
                ModelSpec {
                    name: "b".into(),
                    spatial: 8,
                    base_channels: 4,
                    classes: 4,
                    qos: None,
                    deadline_ms: None,
                },
            ],
            model_mix: vec![0.5, 0.5],
            size_mix: SizeMix::BoundedPareto {
                alpha: 1.2,
                min: 1,
                max: 5,
            },
            phases: vec![
                PhaseSpec {
                    label: "wave".into(),
                    duration_ms: 250,
                    arrival: Arrival::Sine {
                        base_hz: 200.0,
                        amplitude_hz: 150.0,
                        period_ms: 100,
                    },
                },
                PhaseSpec {
                    label: "burst".into(),
                    duration_ms: 250,
                    arrival: Arrival::Square {
                        low_hz: 50.0,
                        high_hz: 400.0,
                        period_ms: 100,
                    },
                },
            ],
            faults: vec![],
        }
    }

    #[test]
    fn same_seed_is_byte_identical() {
        let spec = two_model_spec(9);
        let a = generate(&spec);
        let b = generate(&spec);
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        assert_eq!(a.fingerprint, b.fingerprint);
        assert!(!a.events.is_empty());
    }

    #[test]
    fn different_seed_diverges() {
        let a = generate(&two_model_spec(9));
        let b = generate(&two_model_spec(10));
        assert_ne!(a.fingerprint, b.fingerprint);
    }

    #[test]
    fn timestamps_strictly_increase_and_stay_in_range() {
        let spec = two_model_spec(3);
        let trace = generate(&spec);
        let mut last = 0u64;
        for event in &trace.events {
            assert!(event.timestamp_us > last);
            assert!(event.timestamp_us < spec.duration_ms() * 1000);
            assert!(event.samples >= 1 && event.samples <= 5);
            assert!(event.model < 2);
            last = event.timestamp_us;
        }
        let per_phase = trace.per_phase_events(2);
        assert_eq!(
            per_phase.iter().sum::<u64>(),
            trace.events.len() as u64,
            "every event belongs to a phase"
        );
        assert!(per_phase.iter().all(|&c| c > 0));
    }

    #[test]
    fn burst_phase_is_front_loaded() {
        // Square wave 400 Hz then 50 Hz per 100 ms period: the first half
        // of each period must carry the bulk of the arrivals.
        let spec = WorkloadSpec {
            phases: vec![PhaseSpec {
                label: "burst".into(),
                duration_ms: 100,
                arrival: Arrival::Square {
                    low_hz: 50.0,
                    high_hz: 400.0,
                    period_ms: 100,
                },
            }],
            ..two_model_spec(5)
        };
        let trace = generate(&spec);
        let first_half = trace
            .events
            .iter()
            .filter(|e| e.timestamp_us < 50_000)
            .count();
        let second_half = trace.events.len() - first_half;
        assert!(
            first_half >= 4 * second_half.max(1),
            "burst half should dominate: {first_half} vs {second_half}"
        );
    }
}
