//! # tdc-lab
//!
//! The serving stack's laboratory tier: reproducible trace-driven
//! workloads, scripted chaos with invariant checks, and the benchmark
//! regression gate CI runs on every change.
//!
//! ## Pieces
//!
//! * [`spec`] — the JSON [`WorkloadSpec`] format:
//!   phases of arrival processes (uniform / Poisson / diurnal sine /
//!   square-wave burst), heavy-tailed request-size mixes, multi-model
//!   zoos with per-model QoS and deadlines, and scripted fault events.
//! * [`trace`] — [`generate`] expands a spec into a
//!   [`Trace`]: a byte-reproducible, strictly-ordered
//!   stream of timestamped request events with an FNV-1a fingerprint.
//!   Same spec + seed ⇒ identical trace, on any machine.
//! * [`fault`] — [`FaultInjector`], a
//!   [`BackendWrapper`](tdc_serve::BackendWrapper) that panics or
//!   fails `forward_batch` on command; the chaos harness's scalpel.
//! * [`runner`] — [`deploy`] builds a registry from a
//!   spec and [`replay`] drives it open-loop on the
//!   trace clock, arming faults at their scripted timestamps and
//!   accounting for every sample
//!   (`submitted == completed + expired + failed`, plus typed sheds).
//! * [`chaos`] — the scenario catalog: worker panic inside
//!   `forward_batch`, backend error storms, replica kill/restart under
//!   load, plan spill-dir loss, admission-queue saturation — each
//!   asserting the same contract: *clients only ever see typed errors,
//!   counters reconcile, and after the fault heals, outputs are
//!   bit-identical to a fault-free run*.
//! * [`artifact`] — `BENCH_serve.json` schema validation across every
//!   version the benchmark has ever written (1..=8).
//!
//! ## Bins
//!
//! * `serve_bench` — the serving benchmark (moved up from the router
//!   tier so one binary drives engines, registries, fleets *and*
//!   traces): `--trace <spec.json>` replays a workload spec and records
//!   the outcome in the artifact's `trace` section.
//! * `lab_gate` — the CI regression gate: compares a fresh artifact
//!   against the committed baseline — deterministic fields (trace and
//!   output fingerprints, event/outcome counts) must match exactly,
//!   wall-clock metrics (throughput, p99) within wide tolerance bands.

pub mod artifact;
pub mod chaos;
pub mod fault;
pub mod runner;
pub mod spec;
pub mod trace;

pub use fault::FaultInjector;
pub use runner::{deploy, reconcile, replay, LabDeployment, ReplayOptions, ReplayReport};
pub use spec::{Arrival, FaultAction, FaultSpec, ModelSpec, PhaseSpec, SizeMix, WorkloadSpec};
pub use trace::{fnv1a, generate, Fnv1a, Trace, TraceEvent};
