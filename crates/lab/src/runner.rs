//! Trace replay: driving a live [`ModelRegistry`] with a generated
//! [`Trace`], firing scripted faults on the trace clock, and accounting
//! for every request.
//!
//! The runner is open-loop: a dispatch pass walks the trace sleeping to
//! each event's (scaled) timestamp and submits without waiting, then a
//! collection pass waits every admitted request in submission order.
//! Request inputs are derived from the spec seed and the event index —
//! not from a shared stream — so the same trace always submits the same
//! tensors regardless of timing, and a replay after a fault run can be
//! compared bit-for-bit against a fault-free run via
//! [`ReplayReport::output_fingerprint`].
//!
//! Accounting is the harness's core invariant: every dispatched sample
//! lands in exactly one of `submitted` (admitted) or `shed`
//! (typed `Overloaded` at admission), and every admitted sample in
//! exactly one of `completed`, `expired` (typed `DeadlineExceeded`) or
//! `failed` (typed `ExecutionFailed`). Anything else a client could
//! observe is recorded in [`ReplayReport::unexpected`] — chaos scenarios
//! assert it stays empty.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use tdc_serve::{
    serving_descriptor, BackendKind, BatchingOptions, ModelConfig, ModelRegistry, PendingResponse,
    RuntimeOptions, ServeError,
};
use tdc_tensor::{init, Tensor};

use crate::fault::FaultInjector;
use crate::spec::{FaultAction, WorkloadSpec};
use crate::trace::{fnv1a, Fnv1a, Trace};

/// How the runner builds engines and paces the trace.
#[derive(Debug, Clone)]
pub struct ReplayOptions {
    /// Execution backend for every model.
    pub backend: BackendKind,
    /// Fair-share weight / worker count per model.
    pub workers: usize,
    /// Maximum requests per batch.
    pub max_batch_size: usize,
    /// Longest the oldest queued request waits for batch-mates.
    pub max_batch_delay: Duration,
    /// Admission bound per model. `None` sizes the queue to the whole
    /// trace, so a conforming replay never sheds — the right setting for
    /// determinism-sensitive runs (the regression gate, bit-parity
    /// checks). Chaos scenarios set it low on purpose.
    pub max_queue_depth: Option<usize>,
    /// Trace-time multiplier: wall-clock gap = virtual gap × scale.
    /// `1.0` replays in real time; below 1 compresses the trace.
    pub time_scale: f64,
}

impl Default for ReplayOptions {
    fn default() -> Self {
        ReplayOptions {
            backend: BackendKind::Cpu,
            workers: 2,
            max_batch_size: 8,
            max_batch_delay: Duration::from_millis(2),
            max_queue_depth: None,
            time_scale: 1.0,
        }
    }
}

/// A registry built from a workload spec, plus the fault-injector
/// handles the replay loop arms on the trace clock.
pub struct LabDeployment {
    /// The live registry serving the spec's model zoo.
    pub registry: ModelRegistry,
    /// One injector handle per model named by a fault in the spec.
    pub injectors: HashMap<String, FaultInjector>,
}

/// Build a registry serving `spec`'s model zoo, wiring a [`FaultInjector`]
/// into every model the spec's fault script targets.
pub fn deploy(
    spec: &WorkloadSpec,
    trace: &Trace,
    options: &ReplayOptions,
) -> Result<LabDeployment, ServeError> {
    let registry = ModelRegistry::new(spec.models.len().max(2));
    let mut injectors = HashMap::new();
    let per_model_samples = trace.per_model_samples(spec.models.len());
    for (index, model) in spec.models.iter().enumerate() {
        let needs_injector = spec
            .faults
            .iter()
            .any(|f| f.action.model() == model.name.as_str());
        let wrapper = if needs_injector {
            let injector = FaultInjector::new();
            injectors.insert(model.name.clone(), injector.clone());
            Some(Arc::new(injector) as Arc<dyn tdc_serve::BackendWrapper>)
        } else {
            None
        };
        let queue_depth = options
            .max_queue_depth
            .unwrap_or(per_model_samples[index] as usize + 16);
        let config = ModelConfig {
            batching: BatchingOptions {
                max_batch_size: options.max_batch_size,
                max_batch_delay: options.max_batch_delay,
                max_queue_depth: queue_depth.max(1),
                ..BatchingOptions::default()
            },
            runtime: RuntimeOptions {
                workers: options.workers,
                qos: model.qos.unwrap_or_default(),
                backend: options.backend,
                ..RuntimeOptions::default()
            },
            backend_wrapper: wrapper,
            ..ModelConfig::default()
        };
        let descriptor = serving_descriptor(
            &model.name,
            model.spatial,
            model.base_channels,
            model.classes,
        );
        registry.register(&model.name, &descriptor, config)?;
    }
    Ok(LabDeployment {
        registry,
        injectors,
    })
}

/// Everything one replay observed, client-side.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Trace events dispatched.
    pub events: u64,
    /// Samples dispatched (`submitted + shed`).
    pub requests: u64,
    /// Samples admitted past the queue door.
    pub submitted: u64,
    /// Samples shed at admission with typed `Overloaded`.
    pub shed: u64,
    /// Admitted samples served successfully.
    pub completed: u64,
    /// Admitted samples expired with typed `DeadlineExceeded`.
    pub expired: u64,
    /// Admitted samples failed with typed `ExecutionFailed`.
    pub failed: u64,
    /// Any client-visible outcome *outside* the typed contract — chaos
    /// scenarios assert this stays empty.
    pub unexpected: Vec<String>,
    /// FNV-1a over the completed outputs' `f32` bits in submission order
    /// (sheds/expiries/failures contribute a fixed marker, so parity
    /// comparisons also require identical outcome patterns).
    pub output_fingerprint: u64,
    /// Wall-clock seconds from first dispatch to last collected wait.
    pub elapsed_s: f64,
    /// Completed samples per wall-clock second.
    pub throughput_rps: f64,
    /// Highest per-model p99 total latency among models that completed
    /// work, ms.
    pub p99_ms: f64,
    /// Median total latency of the busiest model, ms.
    pub p50_ms: f64,
}

enum SampleOutcome {
    Admitted(PendingResponse),
    Shed,
}

/// Replay `trace` against a deployed registry, arming `injectors` as the
/// trace clock passes each fault's `at_ms`.
pub fn replay(
    deployment: &LabDeployment,
    spec: &WorkloadSpec,
    trace: &Trace,
    options: &ReplayOptions,
) -> ReplayReport {
    let started = Instant::now();
    let mut pending: Vec<SampleOutcome> = Vec::with_capacity(trace.total_samples() as usize);
    let mut shed = 0u64;
    let mut unexpected = Vec::new();
    let mut next_fault = 0usize;

    for (index, event) in trace.events.iter().enumerate() {
        // Fire every scripted fault whose timestamp the trace clock has
        // reached.
        while next_fault < spec.faults.len()
            && spec.faults[next_fault].at_ms * 1000 <= event.timestamp_us
        {
            let fault = &spec.faults[next_fault];
            if let Some(injector) = deployment.injectors.get(fault.action.model()) {
                match &fault.action {
                    FaultAction::BackendPanic { count, .. } => injector.arm_panics(*count),
                    FaultAction::BackendError { count, .. } => injector.arm_errors(*count),
                    FaultAction::BackendDelay {
                        count, delay_ms, ..
                    } => injector.arm_delays(*count, Duration::from_millis(*delay_ms)),
                }
            }
            next_fault += 1;
        }

        // Open-loop pacing on the scaled trace clock.
        let due = Duration::from_micros((event.timestamp_us as f64 * options.time_scale) as u64);
        let now = started.elapsed();
        if due > now {
            std::thread::sleep(due - now);
        }

        let model = &spec.models[event.model];
        let inputs = event_inputs(spec, event.model, index, event.samples, model.spatial);
        let deadline = event.deadline_ms.map(Duration::from_millis);
        match deployment
            .registry
            .submit_many(&model.name, inputs, deadline)
        {
            Ok(handles) => pending.extend(handles.into_iter().map(SampleOutcome::Admitted)),
            Err(ServeError::Overloaded { .. }) => {
                shed += event.samples as u64;
                pending.extend((0..event.samples).map(|_| SampleOutcome::Shed));
            }
            Err(other) => {
                shed += event.samples as u64;
                unexpected.push(format!(
                    "event {index} ({}): untyped admission failure: {other}",
                    model.name
                ));
                pending.extend((0..event.samples).map(|_| SampleOutcome::Shed));
            }
        }
    }

    // Collection pass: wait every admitted sample in submission order and
    // fingerprint the outcome stream.
    let mut completed = 0u64;
    let mut expired = 0u64;
    let mut failed = 0u64;
    let mut submitted = 0u64;
    let mut hasher = Fnv1a::new();
    for (index, outcome) in pending.into_iter().enumerate() {
        match outcome {
            SampleOutcome::Shed => hasher.update(b"shed"),
            SampleOutcome::Admitted(handle) => {
                submitted += 1;
                match handle.wait() {
                    Ok(response) => {
                        completed += 1;
                        for value in response.output.data() {
                            hasher.update(&value.to_bits().to_le_bytes());
                        }
                    }
                    Err(ServeError::DeadlineExceeded { .. }) => {
                        expired += 1;
                        hasher.update(b"expired");
                    }
                    Err(ServeError::ExecutionFailed { .. }) => {
                        failed += 1;
                        hasher.update(b"failed");
                    }
                    Err(other) => {
                        failed += 1;
                        hasher.update(b"unexpected");
                        unexpected.push(format!("sample {index}: untyped failure: {other}"));
                    }
                }
            }
        }
    }
    let elapsed_s = started.elapsed().as_secs_f64();

    let metrics = deployment.registry.metrics();
    let mut p99_ms = 0.0f64;
    let mut p50_ms = 0.0f64;
    let mut busiest = 0usize;
    for entry in &metrics.models {
        if entry.metrics.completed_requests > 0 {
            p99_ms = p99_ms.max(entry.metrics.total_latency.p99_ms);
            if entry.metrics.completed_requests as usize >= busiest {
                busiest = entry.metrics.completed_requests as usize;
                p50_ms = entry.metrics.total_latency.p50_ms;
            }
        }
    }

    ReplayReport {
        events: trace.events.len() as u64,
        requests: submitted + shed,
        submitted,
        shed,
        completed,
        expired,
        failed,
        unexpected,
        output_fingerprint: hasher.finish(),
        elapsed_s,
        throughput_rps: if elapsed_s > 0.0 {
            completed as f64 / elapsed_s
        } else {
            0.0
        },
        p99_ms,
        p50_ms,
    }
}

/// Deterministic inputs for one trace event: seeded by the spec seed, the
/// model index and the event index, so any replay of the same trace
/// submits bit-identical tensors — independent of wall-clock timing.
pub fn event_inputs(
    spec: &WorkloadSpec,
    model: usize,
    event_index: usize,
    samples: usize,
    spatial: usize,
) -> Vec<Tensor> {
    let mut key = [0u8; 24];
    key[..8].copy_from_slice(&spec.seed.to_le_bytes());
    key[8..16].copy_from_slice(&(model as u64).to_le_bytes());
    key[16..].copy_from_slice(&(event_index as u64).to_le_bytes());
    let mut rng = StdRng::seed_from_u64(fnv1a(&key));
    let base = spec.models[model].base_channels;
    (0..samples)
        .map(|_| init::uniform(vec![spatial, spatial, base], -1.0, 1.0, &mut rng))
        .collect()
}

/// Engine-side totals after a drain, for reconciliation against the
/// client-side [`ReplayReport`] counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegistryTotals {
    /// Requests admitted, summed over models (current generation).
    pub submitted: u64,
    /// Requests completed (current generation).
    pub completed: u64,
    /// Requests expired (current generation).
    pub expired: u64,
    /// Requests failed (current generation).
    pub failed: u64,
    /// Requests shed at admission (route lifetime).
    pub rejected: u64,
}

/// Check the engine-side accounting invariant — for every model,
/// `submitted == completed + deadline_exceeded + failed` — and return the
/// summed totals. The totals are per plan generation, so they compare
/// against the *sum* of every replay run on this deployment since the
/// last replan.
pub fn reconcile(registry: &ModelRegistry) -> Result<RegistryTotals, String> {
    let metrics = registry.metrics();
    let mut totals = RegistryTotals {
        submitted: 0,
        completed: 0,
        expired: 0,
        failed: 0,
        rejected: 0,
    };
    for entry in &metrics.models {
        let m = &entry.metrics;
        let accounted = m.completed_requests + m.deadline_exceeded + m.failed_requests;
        if m.submitted_requests != accounted {
            return Err(format!(
                "model {}: submitted {} != completed {} + expired {} + failed {}",
                entry.model,
                m.submitted_requests,
                m.completed_requests,
                m.deadline_exceeded,
                m.failed_requests
            ));
        }
        totals.submitted += m.submitted_requests;
        totals.completed += m.completed_requests;
        totals.expired += m.deadline_exceeded;
        totals.failed += m.failed_requests;
        totals.rejected += entry.rejected_requests;
    }
    Ok(totals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::WorkloadSpec;
    use crate::trace::generate;

    fn quick_spec() -> WorkloadSpec {
        WorkloadSpec::parse(
            r#"{"name": "runner-unit", "seed": 11,
                "models": [{"name": "ru-m", "spatial": 8, "base_channels": 4, "classes": 4}],
                "size_mix": {"kind": "bounded-pareto", "alpha": 1.5, "min": 1, "max": 3},
                "phases": [{"label": "p", "duration_ms": 120,
                            "arrival": {"kind": "uniform", "rate_hz": 250}}]}"#,
        )
        .expect("spec")
    }

    #[test]
    fn fault_free_replay_reconciles_and_repeats() {
        let spec = quick_spec();
        let trace = generate(&spec);
        let options = ReplayOptions::default();
        let deployment = deploy(&spec, &trace, &options).expect("deploy");
        let first = replay(&deployment, &spec, &trace, &options);
        assert!(first.unexpected.is_empty(), "{:?}", first.unexpected);
        assert_eq!(first.shed, 0);
        assert_eq!(first.failed, 0);
        assert_eq!(first.expired, 0);
        assert_eq!(first.completed, trace.total_samples());

        let second = replay(&deployment, &spec, &trace, &options);
        assert_eq!(
            first.output_fingerprint, second.output_fingerprint,
            "same trace on the same deployment must be bit-identical"
        );

        let totals = reconcile(&deployment.registry).expect("reconcile");
        assert_eq!(totals.submitted, first.submitted + second.submitted);
        assert_eq!(totals.rejected, 0);
    }

    #[test]
    fn event_inputs_are_deterministic() {
        let spec = quick_spec();
        let a = event_inputs(&spec, 0, 7, 2, 8);
        let b = event_inputs(&spec, 0, 7, 2, 8);
        assert_eq!(a.len(), 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.data(), y.data());
        }
        let c = event_inputs(&spec, 0, 8, 2, 8);
        assert_ne!(a[0].data(), c[0].data(), "different events differ");
    }
}
