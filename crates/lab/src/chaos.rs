//! The chaos scenario catalog.
//!
//! Each scenario drives live serving machinery (engines, registries, a
//! routed fleet) through one scripted failure and asserts the same
//! three-part contract:
//!
//! 1. **typed errors only** — nothing a client observes falls outside
//!    the typed `ServeError` surface (`Overloaded`, `DeadlineExceeded`,
//!    `ExecutionFailed`) or, over HTTP, its status-code mapping;
//! 2. **counters reconcile** — after a drain, every submitted request is
//!    accounted for exactly once
//!    (`submitted == completed + expired + failed`, sheds counted
//!    separately);
//! 3. **bit-parity after heal** — once the fault clears, replaying the
//!    same trace produces byte-identical outputs to a fault-free run.
//!
//! Scenarios panic with a descriptive message on violation (they are
//! test bodies first), and return a [`ChaosReport`] so callers — the
//! crate's integration tests, the repository-level `lab_chaos` test —
//! can log what actually happened.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tdc_router::testkit::{self, drain_replica, fleet_config, hammer, manual_probe_options};
use tdc_router::{Router, RoutingPolicy};
use tdc_serve::http::{http_request, route_full, InferBody, InferReply};
use tdc_serve::{
    serving_descriptor, BatchingOptions, HttpHandler, HttpServer, ModelConfig, ModelRegistry,
    PlanCache, PlanningOptions, RoutedResponse, ServeError,
};
use tdc_tensor::Tensor;

use crate::runner::{deploy, reconcile, replay, ReplayOptions};
use crate::spec::WorkloadSpec;
use crate::trace::generate;

/// What one scenario run observed — returned for logging, never the
/// pass/fail signal (violations panic).
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// Scenario label.
    pub scenario: &'static str,
    /// Requests (samples) the scenario drove.
    pub requests: u64,
    /// Typed failures the fault caused (`ExecutionFailed`, sheds, …).
    pub typed_failures: u64,
    /// One-line outcome summary.
    pub outcome: String,
}

fn backend_fault_spec(name: &str, kind: &str) -> WorkloadSpec {
    WorkloadSpec::parse(&format!(
        r#"{{"name": "{name}", "seed": 1300,
            "models": [{{"name": "{name}-m", "spatial": 8, "base_channels": 4, "classes": 4}}],
            "size_mix": {{"kind": "bounded-pareto", "alpha": 1.5, "min": 1, "max": 3}},
            "phases": [{{"label": "steady", "duration_ms": 240,
                        "arrival": {{"kind": "uniform", "rate_hz": 300}}}}],
            "faults": [{{"at_ms": 80, "kind": "{kind}", "model": "{name}-m", "count": 2}}]}}"#
    ))
    .expect("scenario spec")
}

fn backend_fault_scenario(
    scenario: &'static str,
    spec: WorkloadSpec,
    expect_panics: bool,
) -> ChaosReport {
    let trace = generate(&spec);
    let options = ReplayOptions::default();

    // Fault-free reference: same spec minus the fault script, same seed,
    // so the trace — and therefore the submitted tensors — are identical.
    let reference_spec = WorkloadSpec {
        faults: vec![],
        ..spec.clone()
    };
    let reference = deploy(&reference_spec, &trace, &options).expect("deploy reference");
    let baseline = replay(&reference, &reference_spec, &trace, &options);
    assert!(
        baseline.unexpected.is_empty() && baseline.failed == 0 && baseline.shed == 0,
        "{scenario}: reference run must be clean: {baseline:?}"
    );
    drop(reference.registry.shutdown());

    // Fault run: the injector arms mid-trace and kills/fails two batches.
    let deployment = deploy(&spec, &trace, &options).expect("deploy faulted");
    let faulted = replay(&deployment, &spec, &trace, &options);
    assert!(
        faulted.unexpected.is_empty(),
        "{scenario}: clients saw untyped failures: {:?}",
        faulted.unexpected
    );
    assert!(
        faulted.failed > 0,
        "{scenario}: the scripted fault never fired (completed {}, failed 0)",
        faulted.completed
    );
    let injector = &deployment.injectors[spec.faults[0].action.model()];
    assert!(
        injector.is_idle(),
        "{scenario}: fault budget must be exhausted after the run"
    );
    if expect_panics {
        assert!(injector.injected_panics() > 0, "{scenario}: no panic fired");
        assert_eq!(
            injector.injected_errors(),
            0,
            "{scenario}: wrong fault kind"
        );
    } else {
        assert!(injector.injected_errors() > 0, "{scenario}: no error fired");
        assert_eq!(
            injector.injected_panics(),
            0,
            "{scenario}: wrong fault kind"
        );
    }

    // Heal: the same deployment replayed without the fault script (a
    // replay arms whatever faults its spec lists, so the heal pass uses
    // the fault-free spec) — outputs must be bit-identical to the
    // fault-free reference.
    let healed = replay(&deployment, &reference_spec, &trace, &options);
    assert!(
        healed.unexpected.is_empty() && healed.failed == 0,
        "{scenario}: post-heal replay not clean: {healed:?}"
    );
    assert_eq!(
        healed.output_fingerprint, baseline.output_fingerprint,
        "{scenario}: post-heal outputs drifted from the fault-free reference"
    );

    // Engine books reconcile across both runs on this deployment.
    let totals = reconcile(&deployment.registry).expect("reconcile");
    assert_eq!(
        totals.submitted,
        faulted.submitted + healed.submitted,
        "{scenario}: engine-side submitted count disagrees with the client"
    );
    assert_eq!(
        totals.completed + totals.expired + totals.failed,
        faulted.completed + faulted.expired + faulted.failed + healed.completed,
        "{scenario}: outcome totals disagree"
    );

    ChaosReport {
        scenario,
        requests: faulted.requests + healed.requests,
        typed_failures: faulted.failed,
        outcome: format!(
            "{} samples failed typed, healed fingerprint {:016x} matches reference",
            faulted.failed, healed.output_fingerprint
        ),
    }
}

/// Worker panic inside `forward_batch`: the engine's unwind containment
/// turns a panicking backend into per-request typed `ExecutionFailed`,
/// the worker survives, and after the panic budget drains the engine
/// serves bit-identically to a never-faulted one.
pub fn worker_panic_recovers() -> ChaosReport {
    backend_fault_scenario(
        "worker-panic",
        backend_fault_spec("chaos-panic", "backend-panic"),
        true,
    )
}

/// Backend error storm: `forward_batch` returns typed errors for a
/// stretch of batches; clients see `ExecutionFailed` only, and the
/// stream heals bit-identically.
pub fn error_storm_recovers() -> ChaosReport {
    backend_fault_scenario(
        "error-storm",
        backend_fault_spec("chaos-storm", "backend-error"),
        false,
    )
}

/// Replica kill and restart under load, behind the router: one replica
/// of a three-replica in-process fleet is drained mid-hammer; the
/// router's failover masks it (zero client-visible failures), the
/// prober ejects the corpse and readmits the restarted replica, and a
/// routed request after heal is bit-identical to one from before the
/// kill.
pub fn replica_kill_mid_drain_masked() -> ChaosReport {
    const MODEL: &str = "chaos-fleet";
    let descriptor = serving_descriptor(MODEL, 10, 4, 6);
    let config = fleet_config();
    let (mut servers, router, front) = testkit::bind_fleet(
        3,
        manual_probe_options(RoutingPolicy::LeastLoaded),
        MODEL,
        &descriptor,
        &config,
    );
    let front_addr = front.local_addr();
    let input = vec![0.25f32; 10 * 10 * 4];

    let probe = |n: usize| {
        for _ in 0..n {
            router.probe_once();
        }
    };
    probe(2);

    let infer = |label: &str| -> Vec<f32> {
        let body = serde_json::to_string(&InferBody {
            input: input.clone(),
            dims: None,
            deadline_ms: None,
        })
        .expect("serialize infer body");
        let (status, reply) = http_request(
            &front_addr,
            "POST",
            &format!("/v1/models/{MODEL}/infer"),
            Some(&body),
        )
        .unwrap_or_else(|e| panic!("replica-kill: {label} infer transport error: {e}"));
        assert_eq!(status, 200, "replica-kill: {label} infer failed: {reply}");
        let reply: InferReply = serde_json::from_str(&reply).expect("parse infer reply");
        reply.output
    };
    let before = infer("pre-kill");

    // Hammer from three clients while a coordinator kills replica 0 the
    // moment the fleet is warm.
    let progress = Arc::new(AtomicU64::new(0));
    let hammers: Vec<_> = (0..3)
        .map(|_| {
            let progress = Arc::clone(&progress);
            let input = input.clone();
            std::thread::spawn(move || hammer(front_addr, MODEL, &input, 60, Some(progress)))
        })
        .collect();
    while progress.load(Ordering::Relaxed) < 30 {
        std::thread::sleep(Duration::from_millis(2));
    }
    let victim_addr = servers[0].local_addr();
    drain_replica(servers.remove(0));

    let mut ok = 0u64;
    for handle in hammers {
        let report = handle.join().expect("hammer thread");
        assert_eq!(
            report.failures, 0,
            "replica-kill: client-visible failure while a replica died: {:?}",
            report.first_failure
        );
        ok += report.ok;
    }
    assert_eq!(ok, 180, "replica-kill: every hammered request must answer");

    // The prober notices the corpse (eject_after = 2 consecutive probe
    // failures), then readmits the restarted replica.
    probe(2);
    let metrics = router.metrics();
    assert_eq!(
        metrics.ejections_total, 1,
        "replica-kill: prober must eject the killed replica"
    );
    servers.insert(
        0,
        testkit::bind_replica(&victim_addr.to_string(), MODEL, &descriptor, config.clone()),
    );
    probe(2);
    let metrics = router.metrics();
    assert!(
        metrics.replicas.iter().all(|r| r.healthy),
        "replica-kill: restarted replica must be readmitted: {metrics:?}"
    );

    let after = infer("post-heal");
    assert_eq!(
        before, after,
        "replica-kill: post-heal output drifted from pre-kill"
    );

    router.stop();
    front.stop();
    for server in servers {
        drain_replica(server);
    }
    ChaosReport {
        scenario: "replica-kill",
        requests: 182,
        typed_failures: 0,
        outcome: format!(
            "180 hammered + 2 probes answered across kill/restart, {} failover(s)",
            metrics.failovers_total
        ),
    }
}

/// An [`HttpHandler`] that stalls every request — health probes included —
/// by the armed duration before delegating to the stock registry route
/// table. The HTTP-level analogue of [`FaultInjector::arm_delays`]
/// (`crate::fault::FaultInjector`): that models a slow *backend* inside
/// one engine, this models a slow *replica* as the router observes one.
struct SlowHandler {
    registry: Arc<ModelRegistry>,
    stall_ms: AtomicU64,
}

impl HttpHandler for SlowHandler {
    fn handle(&self, method: &str, path: &str, body: &str) -> RoutedResponse {
        let stall = self.stall_ms.load(Ordering::SeqCst);
        if stall > 0 {
            std::thread::sleep(Duration::from_millis(stall));
        }
        route_full(&self.registry, method, path, body)
    }
}

/// Slow-replica brown-out behind the router: one replica of a
/// three-replica fleet starts stalling every request — its health probe
/// included — well past the prober's timeout. Nothing dies and nothing
/// errors, so this pins ejection on *latency alone*: the prober must
/// count timed-out probes as failed sweeps and eject at `eject_after`,
/// routed traffic must come back fast and bit-identical from the healthy
/// pair, and once the stall clears the replica must be readmitted.
pub fn slow_replica_ejected_on_latency() -> ChaosReport {
    const MODEL: &str = "chaos-slow";
    let descriptor = serving_descriptor(MODEL, 10, 4, 6);
    let config = fleet_config();

    // Replica 0 binds through the stalling handler so the brown-out
    // covers the whole HTTP surface — a backend-level delay fault would
    // leave `/healthz` fast and the prober blind to it.
    let slow_registry = ModelRegistry::new(2);
    slow_registry
        .register(MODEL, &descriptor, config.clone())
        .expect("register slow replica");
    let slow = Arc::new(SlowHandler {
        registry: Arc::new(slow_registry),
        stall_ms: AtomicU64::new(0),
    });
    let slow_server = HttpServer::bind_with_handler("127.0.0.1:0", Arc::clone(&slow) as _)
        .expect("bind slow replica");

    let healthy: Vec<HttpServer> = (0..2)
        .map(|_| testkit::bind_replica("127.0.0.1:0", MODEL, &descriptor, config.clone()))
        .collect();
    let mut addrs = vec![slow_server.local_addr()];
    addrs.extend(healthy.iter().map(|s| s.local_addr()));
    let options = manual_probe_options(RoutingPolicy::LeastLoaded);
    let probe_timeout = options.probe_timeout;
    let router = Arc::new(Router::new(&addrs, options));
    let front = HttpServer::bind_with_handler("127.0.0.1:0", Arc::clone(&router) as _)
        .expect("bind router front end");
    let front_addr = front.local_addr();

    let probe = |n: usize| {
        for _ in 0..n {
            router.probe_once();
        }
    };
    probe(2);
    assert!(
        router.metrics().replicas.iter().all(|r| r.healthy),
        "slow-replica: the fleet must start healthy"
    );

    let input = vec![0.75f32; 10 * 10 * 4];
    let infer = |label: &str| -> Vec<f32> {
        let body = serde_json::to_string(&InferBody {
            input: input.clone(),
            dims: None,
            deadline_ms: None,
        })
        .expect("serialize infer body");
        let (status, reply) = http_request(
            &front_addr,
            "POST",
            &format!("/v1/models/{MODEL}/infer"),
            Some(&body),
        )
        .unwrap_or_else(|e| panic!("slow-replica: {label} infer transport error: {e}"));
        assert_eq!(status, 200, "slow-replica: {label} infer failed: {reply}");
        let reply: InferReply = serde_json::from_str(&reply).expect("parse infer reply");
        reply.output
    };
    let before = infer("pre-stall");

    // The brown-out: every request to replica 0 now stalls for three
    // probe timeouts. Two sweeps (eject_after) later it must be out.
    slow.stall_ms
        .store(probe_timeout.as_millis() as u64 * 3, Ordering::SeqCst);
    probe(2);
    let metrics = router.metrics();
    assert_eq!(
        metrics.ejections_total, 1,
        "slow-replica: latency alone must eject: {metrics:?}"
    );
    assert!(
        !metrics.replicas[0].healthy,
        "slow-replica: the stalled replica must leave the rotation"
    );

    // The healthy pair carries routed traffic — fast (the stalled
    // replica is no longer a candidate) and bit-identical.
    let started = std::time::Instant::now();
    let during = infer("mid-stall");
    assert!(
        started.elapsed() < probe_timeout,
        "slow-replica: routed traffic still touches the stalled replica"
    );
    assert_eq!(
        before, during,
        "slow-replica: failover output drifted from pre-stall"
    );

    // Heal: the stall clears and readmit_after clean sweeps readmit.
    slow.stall_ms.store(0, Ordering::SeqCst);
    probe(2);
    let metrics = router.metrics();
    assert_eq!(
        metrics.readmissions_total, 1,
        "slow-replica: the healed replica must be readmitted: {metrics:?}"
    );
    assert!(
        metrics.replicas.iter().all(|r| r.healthy),
        "slow-replica: fleet not fully healthy after the heal"
    );
    let after = infer("post-heal");
    assert_eq!(
        before, after,
        "slow-replica: post-heal output drifted from pre-stall"
    );

    router.stop();
    front.stop();
    for server in healthy {
        drain_replica(server);
    }
    slow_server.stop();
    let slow = Arc::try_unwrap(slow).unwrap_or_else(|_| panic!("slow handler still shared"));
    let registry =
        Arc::try_unwrap(slow.registry).unwrap_or_else(|_| panic!("slow registry still shared"));
    registry.shutdown();

    ChaosReport {
        scenario: "slow-replica",
        requests: 3,
        typed_failures: 0,
        outcome: format!(
            "ejected on probe latency after 2 sweeps, served bit-identically \
             from the healthy pair, readmitted after heal ({} failover(s))",
            metrics.failovers_total
        ),
    }
}

/// Plan spill-directory loss: the plan cache's spill tier disappears
/// mid-serve (disk wiped, permissions revoked). Serving must not depend
/// on spill-disk health — lookups degrade to memory-only, replans still
/// hot-swap, new models still register.
pub fn spill_dir_loss_survives() -> ChaosReport {
    let spill_dir = std::env::temp_dir().join(format!("tdc-lab-spill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spill_dir);
    let cache = PlanCache::new(4)
        .with_spill_dir(&spill_dir)
        .expect("create spill dir");
    let registry = ModelRegistry::with_cache(cache);

    const MODEL: &str = "chaos-spill";
    let descriptor = serving_descriptor(MODEL, 8, 4, 4);
    registry
        .register(MODEL, &descriptor, ModelConfig::default())
        .expect("register with live spill dir");
    let input = || Tensor::from_vec(vec![8, 8, 4], vec![0.5; 8 * 8 * 4]).expect("input");
    let before = registry.infer(MODEL, input()).expect("pre-loss infer");

    // The chaos event: the spill tier vanishes out from under the cache.
    std::fs::remove_dir_all(&spill_dir).expect("remove spill dir");

    // Serving continues...
    let during = registry.infer(MODEL, input()).expect("post-loss infer");
    assert_eq!(
        before.output.data(),
        during.output.data(),
        "spill-loss: output drifted after the spill dir vanished"
    );

    // ...replans (which compute + try to spill a fresh plan) still work...
    registry
        .replan(
            MODEL,
            PlanningOptions {
                budget: 0.45,
                ..PlanningOptions::default()
            },
        )
        .expect("replan without spill dir");
    let replanned = registry.infer(MODEL, input()).expect("post-replan infer");
    assert_eq!(
        replanned.output.dims(),
        before.output.dims(),
        "spill-loss: replanned output shape drifted"
    );

    // ...and new registrations still land.
    registry
        .register(
            "chaos-spill-b",
            &serving_descriptor("chaos-spill-b", 8, 4, 4),
            ModelConfig::default(),
        )
        .expect("register after spill loss");
    registry
        .infer("chaos-spill-b", input())
        .expect("infer on post-loss registration");

    let totals = reconcile(&registry).expect("reconcile");
    assert_eq!(totals.rejected, 0, "spill-loss: nothing should shed");
    let stats = registry.cache_stats();
    drop(registry.shutdown());
    ChaosReport {
        scenario: "spill-dir-loss",
        requests: 4,
        typed_failures: 0,
        outcome: format!(
            "served across spill loss, replan and new registration \
             (cache: {} memory hits, {} misses)",
            stats.memory_hits, stats.misses
        ),
    }
}

/// Admission-queue saturation: a flood past `max_queue_depth` sheds with
/// typed `Overloaded` carrying the configured limit, admitted work still
/// completes, and the engine's books balance — overload never corrupts
/// accounting or takes the engine down.
pub fn queue_saturation_sheds_typed() -> ChaosReport {
    const MODEL: &str = "chaos-flood";
    let registry = ModelRegistry::new(2);
    registry
        .register(
            MODEL,
            &serving_descriptor(MODEL, 8, 4, 4),
            ModelConfig {
                batching: BatchingOptions {
                    max_batch_size: 8,
                    // A long batching window pins admitted requests in
                    // batch formation, so the flood below deterministically
                    // overruns the two-slot queue.
                    max_batch_delay: Duration::from_millis(400),
                    max_queue_depth: 2,
                    ..BatchingOptions::default()
                },
                ..ModelConfig::default()
            },
        )
        .expect("register flood model");
    let input = || Tensor::from_vec(vec![8, 8, 4], vec![0.25; 8 * 8 * 4]).expect("input");

    let mut admitted = Vec::new();
    let mut shed = 0u64;
    for i in 0..8 {
        match registry.submit(MODEL, input()) {
            Ok(handle) => admitted.push(handle),
            Err(ServeError::Overloaded { limit }) => {
                assert_eq!(limit, 2, "saturation: Overloaded must carry the bound");
                shed += 1;
            }
            Err(other) => panic!("saturation: untyped admission failure at {i}: {other}"),
        }
    }
    assert!(shed > 0, "saturation: the flood never overran the queue");
    assert!(
        !admitted.is_empty(),
        "saturation: the queue must admit up to its bound"
    );

    let admitted_count = admitted.len() as u64;
    for handle in admitted {
        handle.wait().expect("admitted request completes");
    }

    // Post-saturation health plus reconciliation.
    registry.infer(MODEL, input()).expect("post-flood infer");
    let totals = reconcile(&registry).expect("reconcile");
    assert_eq!(totals.submitted, admitted_count + 1);
    assert_eq!(totals.completed, admitted_count + 1);
    assert_eq!(totals.rejected, shed, "saturation: shed count disagrees");
    drop(registry.shutdown());
    ChaosReport {
        scenario: "queue-saturation",
        requests: 9,
        typed_failures: shed,
        outcome: format!("{shed} typed Overloaded sheds, {admitted_count} admitted all served"),
    }
}
