//! Workload specifications: the JSON format describing a reproducible
//! serving workload.
//!
//! A [`WorkloadSpec`] composes
//!
//! * a **model zoo** — one [`ModelSpec`] per served model, with optional
//!   per-model QoS class and deadline;
//! * a **model mix** — stationary sampling weights over the zoo;
//! * a **request-size mix** — fixed or bounded-Pareto (heavy-tailed)
//!   samples per request;
//! * **phases** — consecutive segments, each with its own [`Arrival`]
//!   process (open-loop uniform / Poisson, diurnal sine, square-wave
//!   burst);
//! * **faults** — scripted [`FaultSpec`] events fired at trace
//!   timestamps by the replay runner.
//!
//! Parsing is hand-rolled over [`serde_json::Value`] (same style as the
//! serve tier's admin bodies) so malformed specs produce pinpointed
//! errors instead of a generic deserialization failure, and so optional
//! fields and enum-ish `kind` tags stay readable in the JSON.

use serde_json::{parse_value, Value};
use tdc_serve::{ModelRegistry, QosClass};

/// One served model in the workload's zoo.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelSpec {
    /// Registry name for the model.
    pub name: String,
    /// Spatial extent of the serving descriptor (square feature maps).
    pub spatial: usize,
    /// Base channel count of the serving descriptor.
    pub base_channels: usize,
    /// Classifier output width of the serving descriptor.
    pub classes: usize,
    /// QoS class label (`interactive` / `standard` / `batch`), if pinned.
    pub qos: Option<QosClass>,
    /// Per-request deadline applied to every request for this model.
    pub deadline_ms: Option<u64>,
}

/// An arrival process for one phase. All rates are open-loop: the trace
/// fixes timestamps up front and the runner dispatches on that clock
/// regardless of how the system under test responds.
#[derive(Debug, Clone, PartialEq)]
pub enum Arrival {
    /// Evenly spaced arrivals at `rate_hz`.
    Uniform {
        /// Requests per second.
        rate_hz: f64,
    },
    /// Poisson process: exponential inter-arrival gaps at `rate_hz`.
    Poisson {
        /// Mean requests per second.
        rate_hz: f64,
    },
    /// Diurnal sine: rate(t) = base + amplitude * sin(2πt / period).
    Sine {
        /// Mean requests per second.
        base_hz: f64,
        /// Peak deviation from the base rate (must stay below it).
        amplitude_hz: f64,
        /// Period of one full oscillation.
        period_ms: u64,
    },
    /// Square-wave burst: `high_hz` for the first half of each period,
    /// `low_hz` for the second half.
    Square {
        /// Off-burst requests per second.
        low_hz: f64,
        /// On-burst requests per second.
        high_hz: f64,
        /// Period of one burst cycle.
        period_ms: u64,
    },
}

/// One consecutive segment of the workload.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseSpec {
    /// Human-readable phase label (shows up in artifacts).
    pub label: String,
    /// Phase length in trace (virtual) milliseconds.
    pub duration_ms: u64,
    /// Arrival process active during this phase.
    pub arrival: Arrival,
}

/// Samples-per-request distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum SizeMix {
    /// Every request carries exactly `samples` inputs.
    Fixed {
        /// Samples per request.
        samples: usize,
    },
    /// Bounded Pareto on `[min, max]` with tail exponent `alpha`: most
    /// requests are small, a heavy tail is large — the classic serving
    /// size mix.
    BoundedPareto {
        /// Tail exponent (> 0; smaller is heavier-tailed).
        alpha: f64,
        /// Smallest request size in samples.
        min: usize,
        /// Largest request size in samples.
        max: usize,
    },
}

/// What a scripted fault does when it fires.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultAction {
    /// Panic inside the model's `forward_batch` for the next `count`
    /// batches.
    BackendPanic {
        /// Target model name.
        model: String,
        /// Number of consecutive batches to kill.
        count: u32,
    },
    /// Return typed `ExecutionFailed` errors from the model's
    /// `forward_batch` for the next `count` batches.
    BackendError {
        /// Target model name.
        model: String,
        /// Number of consecutive batches to fail.
        count: u32,
    },
    /// Stall the model's `forward_batch` for `delay_ms` on each of the
    /// next `count` batches — a brown-out: outputs stay bit-correct,
    /// only measured latency degrades.
    BackendDelay {
        /// Target model name.
        model: String,
        /// Number of consecutive batches to stall.
        count: u32,
        /// Stall per batch, in milliseconds.
        delay_ms: u64,
    },
}

/// One scripted fault event, fired when the trace clock passes `at_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultSpec {
    /// Trace timestamp at which the fault arms.
    pub at_ms: u64,
    /// What the fault does.
    pub action: FaultAction,
}

/// A complete, self-contained workload description. Together with the
/// seed it determines the trace byte-for-byte — see [`crate::trace`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadSpec {
    /// Workload name (recorded in artifacts).
    pub name: String,
    /// PRNG seed; same seed + same spec ⇒ byte-identical trace.
    pub seed: u64,
    /// The model zoo.
    pub models: Vec<ModelSpec>,
    /// Sampling weight per model (same length as `models`, sums > 0).
    pub model_mix: Vec<f64>,
    /// Samples-per-request distribution.
    pub size_mix: SizeMix,
    /// Consecutive workload phases.
    pub phases: Vec<PhaseSpec>,
    /// Scripted fault events, sorted by `at_ms`.
    pub faults: Vec<FaultSpec>,
}

fn field<'v>(value: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    value
        .get(key)
        .filter(|v| !matches!(v, Value::Null))
        .ok_or_else(|| format!("{ctx}: missing field {key:?}"))
}

fn string(value: &Value, key: &str, ctx: &str) -> Result<String, String> {
    field(value, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: field {key:?} must be a string"))
}

fn number(value: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    let raw = field(value, key, ctx)?
        .as_f64()
        .ok_or_else(|| format!("{ctx}: field {key:?} must be a number"))?;
    if !raw.is_finite() {
        return Err(format!("{ctx}: field {key:?} must be finite"));
    }
    Ok(raw)
}

fn unsigned(value: &Value, key: &str, ctx: &str) -> Result<u64, String> {
    let raw = number(value, key, ctx)?;
    if raw < 0.0 || raw.fract() != 0.0 {
        return Err(format!(
            "{ctx}: field {key:?} must be a non-negative integer"
        ));
    }
    Ok(raw as u64)
}

fn positive(value: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    let raw = number(value, key, ctx)?;
    if raw <= 0.0 {
        return Err(format!("{ctx}: field {key:?} must be positive"));
    }
    Ok(raw)
}

fn array<'v>(value: &'v Value, key: &str, ctx: &str) -> Result<&'v [Value], String> {
    field(value, key, ctx)?
        .as_array()
        .ok_or_else(|| format!("{ctx}: field {key:?} must be an array"))
}

impl Arrival {
    fn parse(value: &Value, ctx: &str) -> Result<Self, String> {
        let kind = string(value, "kind", ctx)?;
        match kind.as_str() {
            "uniform" => Ok(Arrival::Uniform {
                rate_hz: positive(value, "rate_hz", ctx)?,
            }),
            "poisson" => Ok(Arrival::Poisson {
                rate_hz: positive(value, "rate_hz", ctx)?,
            }),
            "sine" => {
                let base_hz = positive(value, "base_hz", ctx)?;
                let amplitude_hz = number(value, "amplitude_hz", ctx)?;
                if amplitude_hz < 0.0 || amplitude_hz >= base_hz {
                    return Err(format!(
                        "{ctx}: amplitude_hz must satisfy 0 <= amplitude_hz < base_hz \
                         (the rate must stay positive at the trough)"
                    ));
                }
                let period_ms = unsigned(value, "period_ms", ctx)?;
                if period_ms == 0 {
                    return Err(format!("{ctx}: period_ms must be positive"));
                }
                Ok(Arrival::Sine {
                    base_hz,
                    amplitude_hz,
                    period_ms,
                })
            }
            "square" => {
                let low_hz = positive(value, "low_hz", ctx)?;
                let high_hz = positive(value, "high_hz", ctx)?;
                if high_hz < low_hz {
                    return Err(format!("{ctx}: high_hz must be >= low_hz"));
                }
                let period_ms = unsigned(value, "period_ms", ctx)?;
                if period_ms == 0 {
                    return Err(format!("{ctx}: period_ms must be positive"));
                }
                Ok(Arrival::Square {
                    low_hz,
                    high_hz,
                    period_ms,
                })
            }
            other => Err(format!(
                "{ctx}: unknown arrival kind {other:?} \
                 (expected uniform, poisson, sine or square)"
            )),
        }
    }
}

impl SizeMix {
    fn parse(value: Option<&Value>) -> Result<Self, String> {
        let value = match value {
            None | Some(Value::Null) => return Ok(SizeMix::Fixed { samples: 1 }),
            Some(v) => v,
        };
        let ctx = "size_mix";
        let kind = string(value, "kind", ctx)?;
        match kind.as_str() {
            "fixed" => {
                let samples = unsigned(value, "samples", ctx)? as usize;
                if samples == 0 {
                    return Err(format!("{ctx}: samples must be >= 1"));
                }
                Ok(SizeMix::Fixed { samples })
            }
            "bounded-pareto" => {
                let alpha = positive(value, "alpha", ctx)?;
                let min = unsigned(value, "min", ctx)? as usize;
                let max = unsigned(value, "max", ctx)? as usize;
                if min == 0 || max < min {
                    return Err(format!("{ctx}: need 1 <= min <= max"));
                }
                Ok(SizeMix::BoundedPareto { alpha, min, max })
            }
            other => Err(format!(
                "{ctx}: unknown size mix kind {other:?} (expected fixed or bounded-pareto)"
            )),
        }
    }
}

impl FaultSpec {
    fn parse(value: &Value, ctx: &str) -> Result<Self, String> {
        let at_ms = unsigned(value, "at_ms", ctx)?;
        let kind = string(value, "kind", ctx)?;
        let model = string(value, "model", ctx)?;
        let count = unsigned(value, "count", ctx)? as u32;
        if count == 0 {
            return Err(format!("{ctx}: count must be >= 1"));
        }
        let action = match kind.as_str() {
            "backend-panic" => FaultAction::BackendPanic { model, count },
            "backend-error" => FaultAction::BackendError { model, count },
            "backend-delay" => {
                let delay_ms = unsigned(value, "delay_ms", ctx)?;
                if delay_ms == 0 {
                    return Err(format!("{ctx}: delay_ms must be >= 1"));
                }
                FaultAction::BackendDelay {
                    model,
                    count,
                    delay_ms,
                }
            }
            other => Err(format!(
                "{ctx}: unknown fault kind {other:?} \
                 (expected backend-panic, backend-error or backend-delay)"
            ))?,
        };
        Ok(FaultSpec { at_ms, action })
    }
}

impl FaultAction {
    /// The model this fault targets.
    pub fn model(&self) -> &str {
        match self {
            FaultAction::BackendPanic { model, .. }
            | FaultAction::BackendError { model, .. }
            | FaultAction::BackendDelay { model, .. } => model,
        }
    }
}

impl WorkloadSpec {
    /// Parse and validate a workload spec from JSON text.
    pub fn parse(text: &str) -> Result<Self, String> {
        let value = parse_value(text).map_err(|e| format!("workload spec: {}", e.message))?;
        Self::from_value(&value)
    }

    /// Read, parse and validate a workload spec from a file.
    pub fn load(path: &std::path::Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("workload spec {}: {e}", path.display()))?;
        Self::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Parse and validate a workload spec from an already-parsed value.
    pub fn from_value(value: &Value) -> Result<Self, String> {
        let ctx = "workload spec";
        let name = string(value, "name", ctx)?;
        let seed = unsigned(value, "seed", ctx)?;

        let mut models = Vec::new();
        for (i, entry) in array(value, "models", ctx)?.iter().enumerate() {
            let ctx = format!("models[{i}]");
            let name = string(entry, "name", &ctx)?;
            if !ModelRegistry::is_valid_name(&name) {
                return Err(format!("{ctx}: {name:?} is not a valid registry name"));
            }
            let spatial = unsigned(entry, "spatial", &ctx)? as usize;
            let base_channels = unsigned(entry, "base_channels", &ctx)? as usize;
            let classes = unsigned(entry, "classes", &ctx)? as usize;
            if spatial == 0 || base_channels == 0 || classes == 0 {
                return Err(format!(
                    "{ctx}: spatial, base_channels and classes must be positive"
                ));
            }
            let qos = match entry.get("qos").filter(|v| !matches!(v, Value::Null)) {
                None => None,
                Some(v) => {
                    let label = v
                        .as_str()
                        .ok_or_else(|| format!("{ctx}: field \"qos\" must be a string"))?;
                    Some(
                        QosClass::parse(label)
                            .ok_or_else(|| format!("{ctx}: unknown QoS class {label:?}"))?,
                    )
                }
            };
            let deadline_ms = match entry
                .get("deadline_ms")
                .filter(|v| !matches!(v, Value::Null))
            {
                None => None,
                Some(_) => Some(unsigned(entry, "deadline_ms", &ctx)?),
            };
            models.push(ModelSpec {
                name,
                spatial,
                base_channels,
                classes,
                qos,
                deadline_ms,
            });
        }
        if models.is_empty() {
            return Err(format!("{ctx}: need at least one model"));
        }
        for i in 1..models.len() {
            if models[..i].iter().any(|m| m.name == models[i].name) {
                return Err(format!("{ctx}: duplicate model name {:?}", models[i].name));
            }
        }

        let model_mix = match value.get("model_mix").filter(|v| !matches!(v, Value::Null)) {
            None => vec![1.0; models.len()],
            Some(_) => {
                let entries = array(value, "model_mix", ctx)?;
                if entries.len() != models.len() {
                    return Err(format!(
                        "{ctx}: model_mix has {} weights for {} models",
                        entries.len(),
                        models.len()
                    ));
                }
                let mut weights = Vec::with_capacity(entries.len());
                for (i, entry) in entries.iter().enumerate() {
                    let w = entry
                        .as_f64()
                        .filter(|w| w.is_finite() && *w >= 0.0)
                        .ok_or_else(|| {
                            format!("{ctx}: model_mix[{i}] must be a non-negative number")
                        })?;
                    weights.push(w);
                }
                if weights.iter().sum::<f64>() <= 0.0 {
                    return Err(format!("{ctx}: model_mix weights must sum to > 0"));
                }
                weights
            }
        };

        let size_mix = SizeMix::parse(value.get("size_mix"))?;

        let mut phases = Vec::new();
        for (i, entry) in array(value, "phases", ctx)?.iter().enumerate() {
            let ctx = format!("phases[{i}]");
            let label = string(entry, "label", &ctx)?;
            let duration_ms = unsigned(entry, "duration_ms", &ctx)?;
            if duration_ms == 0 {
                return Err(format!("{ctx}: duration_ms must be positive"));
            }
            let arrival = Arrival::parse(field(entry, "arrival", &ctx)?, &ctx)?;
            phases.push(PhaseSpec {
                label,
                duration_ms,
                arrival,
            });
        }
        if phases.is_empty() {
            return Err(format!("{ctx}: need at least one phase"));
        }

        let mut faults = Vec::new();
        if let Some(v) = value.get("faults").filter(|v| !matches!(v, Value::Null)) {
            let entries = v
                .as_array()
                .ok_or_else(|| format!("{ctx}: field \"faults\" must be an array"))?;
            for (i, entry) in entries.iter().enumerate() {
                let ctx = format!("faults[{i}]");
                let fault = FaultSpec::parse(entry, &ctx)?;
                if !models.iter().any(|m| m.name == fault.action.model()) {
                    return Err(format!(
                        "{ctx}: fault targets unknown model {:?}",
                        fault.action.model()
                    ));
                }
                faults.push(fault);
            }
            faults.sort_by_key(|f| f.at_ms);
        }

        Ok(WorkloadSpec {
            name,
            seed,
            models,
            model_mix,
            size_mix,
            phases,
            faults,
        })
    }

    /// Total trace duration across all phases, in virtual milliseconds.
    pub fn duration_ms(&self) -> u64 {
        self.phases.iter().map(|p| p.duration_ms).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SPEC: &str = r#"{
        "name": "unit",
        "seed": 42,
        "models": [
            {"name": "hot", "spatial": 10, "base_channels": 4, "classes": 6,
             "qos": "interactive", "deadline_ms": 250},
            {"name": "bulk", "spatial": 12, "base_channels": 8, "classes": 10}
        ],
        "model_mix": [0.8, 0.2],
        "size_mix": {"kind": "bounded-pareto", "alpha": 1.5, "min": 1, "max": 8},
        "phases": [
            {"label": "ramp", "duration_ms": 200,
             "arrival": {"kind": "uniform", "rate_hz": 100}},
            {"label": "wave", "duration_ms": 400,
             "arrival": {"kind": "sine", "base_hz": 150, "amplitude_hz": 100,
                         "period_ms": 200}},
            {"label": "burst", "duration_ms": 200,
             "arrival": {"kind": "square", "low_hz": 40, "high_hz": 300,
                         "period_ms": 100}},
            {"label": "tail", "duration_ms": 200,
             "arrival": {"kind": "poisson", "rate_hz": 120}}
        ],
        "faults": [
            {"at_ms": 300, "kind": "backend-panic", "model": "hot", "count": 2}
        ]
    }"#;

    #[test]
    fn parses_full_spec() {
        let spec = WorkloadSpec::parse(SPEC).expect("parse");
        assert_eq!(spec.name, "unit");
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.models.len(), 2);
        assert_eq!(spec.models[0].qos, Some(QosClass::Interactive));
        assert_eq!(spec.models[0].deadline_ms, Some(250));
        assert_eq!(spec.models[1].qos, None);
        assert_eq!(spec.model_mix, vec![0.8, 0.2]);
        assert_eq!(
            spec.size_mix,
            SizeMix::BoundedPareto {
                alpha: 1.5,
                min: 1,
                max: 8
            }
        );
        assert_eq!(spec.phases.len(), 4);
        assert_eq!(spec.duration_ms(), 1000);
        assert_eq!(spec.faults.len(), 1);
        assert_eq!(spec.faults[0].at_ms, 300);
    }

    #[test]
    fn defaults_mix_and_sizes() {
        let spec = WorkloadSpec::parse(
            r#"{"name": "d", "seed": 1,
                "models": [{"name": "m", "spatial": 8, "base_channels": 4, "classes": 4}],
                "phases": [{"label": "p", "duration_ms": 100,
                            "arrival": {"kind": "uniform", "rate_hz": 50}}]}"#,
        )
        .expect("parse");
        assert_eq!(spec.model_mix, vec![1.0]);
        assert_eq!(spec.size_mix, SizeMix::Fixed { samples: 1 });
        assert!(spec.faults.is_empty());
    }

    #[test]
    fn rejects_malformed_specs() {
        for (broken, needle) in [
            (r#"{"seed": 1}"#, "missing field \"name\""),
            (
                r#"{"name": "x", "seed": 1, "models": [], "phases": []}"#,
                "at least one model",
            ),
            (
                r#"{"name": "x", "seed": 1,
                    "models": [{"name": "m", "spatial": 8, "base_channels": 4, "classes": 4},
                               {"name": "m", "spatial": 8, "base_channels": 4, "classes": 4}],
                    "phases": [{"label": "p", "duration_ms": 100,
                                "arrival": {"kind": "uniform", "rate_hz": 50}}]}"#,
                "duplicate model name",
            ),
            (
                r#"{"name": "x", "seed": 1,
                    "models": [{"name": "m", "spatial": 8, "base_channels": 4, "classes": 4}],
                    "model_mix": [0.5, 0.5],
                    "phases": [{"label": "p", "duration_ms": 100,
                                "arrival": {"kind": "uniform", "rate_hz": 50}}]}"#,
                "model_mix has 2 weights",
            ),
            (
                r#"{"name": "x", "seed": 1,
                    "models": [{"name": "m", "spatial": 8, "base_channels": 4, "classes": 4}],
                    "phases": [{"label": "p", "duration_ms": 100,
                                "arrival": {"kind": "sine", "base_hz": 50,
                                            "amplitude_hz": 60, "period_ms": 100}}]}"#,
                "amplitude_hz",
            ),
            (
                r#"{"name": "x", "seed": 1,
                    "models": [{"name": "m", "spatial": 8, "base_channels": 4, "classes": 4}],
                    "phases": [{"label": "p", "duration_ms": 100,
                                "arrival": {"kind": "warp", "rate_hz": 50}}]}"#,
                "unknown arrival kind",
            ),
            (
                r#"{"name": "x", "seed": 1,
                    "models": [{"name": "m", "spatial": 8, "base_channels": 4, "classes": 4}],
                    "phases": [{"label": "p", "duration_ms": 100,
                                "arrival": {"kind": "uniform", "rate_hz": 50}}],
                    "faults": [{"at_ms": 10, "kind": "backend-panic",
                                "model": "ghost", "count": 1}]}"#,
                "unknown model",
            ),
            (
                r#"{"name": "x", "seed": 1,
                    "models": [{"name": "m", "spatial": 8, "base_channels": 4,
                                "classes": 4, "qos": "platinum"}],
                    "phases": [{"label": "p", "duration_ms": 100,
                                "arrival": {"kind": "uniform", "rate_hz": 50}}]}"#,
                "unknown QoS class",
            ),
        ] {
            let err = WorkloadSpec::parse(broken).expect_err("must fail");
            assert!(
                err.contains(needle),
                "error {err:?} does not mention {needle:?}"
            );
        }
    }
}
