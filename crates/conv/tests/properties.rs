//! Property-based tests for the convolution crate: algorithm agreement on
//! randomly drawn shapes, layout round trips and cost-model sanity.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tdc_conv::cost::{algorithm_latency_ms, ConvAlgorithm};
use tdc_conv::{direct, im2col, layout, tdc_scheme, tvm_scheme, ConvShape, Tiling};
use tdc_gpu_sim::DeviceSpec;
use tdc_tensor::init;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn im2col_agrees_with_direct_for_any_small_config(
        c in 1usize..5, n in 1usize..5, h in 3usize..9, w in 3usize..9,
        r in 1usize..4, pad in 0usize..2, stride in 1usize..3, seed in 0u64..1000
    ) {
        let shape = ConvShape::new(c, n, h.max(r), w.max(r), r, r, pad, stride);
        prop_assume!(shape.is_valid());
        let mut rng = StdRng::seed_from_u64(seed);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let a = direct::conv2d(&input, &kernel, &shape).unwrap();
        let b = im2col::conv2d(&input, &kernel, &shape).unwrap();
        prop_assert!(a.relative_error(&b).unwrap() < 1e-3);
    }

    #[test]
    fn tdc_and_tvm_schemes_agree_with_direct_for_any_tiling(
        c in 1usize..6, n in 1usize..6, hw in 5usize..10,
        th in 1usize..6, tw in 1usize..6, tc in 1usize..6, seed in 0u64..1000
    ) {
        let shape = ConvShape::same3x3(c, n, hw, hw);
        let mut rng = StdRng::seed_from_u64(seed);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let reference = direct::conv2d(&input, &kernel, &shape).unwrap();

        let tiling = Tiling::new(th.min(shape.out_h()), tw.min(shape.out_w()), tc.min(c));
        let crsn = layout::cnrs_to_crsn(&kernel).unwrap();
        let ours = tdc_scheme::run(&input, &crsn, &shape, &tiling).unwrap();
        prop_assert!(ours.relative_error(&reference).unwrap() < 1e-3);

        let tvm_tile = tvm_scheme::TvmTile::new(th.min(shape.out_h()), tw.min(shape.out_w()));
        let tvm_out = tvm_scheme::run(&input, &kernel, &shape, &tvm_tile).unwrap();
        prop_assert!(tvm_out.relative_error(&reference).unwrap() < 1e-3);
    }

    #[test]
    fn kernel_layout_conversions_round_trip(c in 1usize..8, n in 1usize..8, seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = init::uniform(vec![c, n, 3, 3], -1.0, 1.0, &mut rng);
        let crsn = layout::cnrs_to_crsn(&k).unwrap();
        prop_assert_eq!(layout::crsn_to_cnrs(&crsn).unwrap(), k.clone());
        let ncrs = layout::cnrs_to_ncrs(&k).unwrap();
        prop_assert_eq!(layout::ncrs_to_cnrs(&ncrs).unwrap(), k);
    }

    #[test]
    fn cost_models_give_finite_positive_latencies_for_warp_multiple_shapes(
        c in 1usize..7, n in 1usize..7, hw_idx in 0usize..4
    ) {
        let hw = [7usize, 14, 28, 56][hw_idx];
        let shape = ConvShape::same3x3(c * 32, n * 32, hw, hw);
        let device = DeviceSpec::rtx2080ti();
        for alg in [
            ConvAlgorithm::CudnnGemm,
            ConvAlgorithm::CudnnWinograd,
            ConvAlgorithm::CudnnFft,
            ConvAlgorithm::Tvm,
        ] {
            let ms = algorithm_latency_ms(alg, &shape, &device);
            prop_assert!(ms.is_finite() && ms > 0.0, "{:?} gave {}", alg, ms);
        }
    }
}
