//! Kernel and activation data layouts.
//!
//! The TDC kernel's key memory optimisation (Section 5.2) is storing the
//! convolution weights in `CRSN` order so that the loads issued by the `N`
//! threads of a block — one output channel each — touch consecutive addresses
//! and fully coalesce. The conversion is done offline, once, exactly as the
//! paper describes; this module provides it together with the more common
//! layouts used by the reference implementations.

use crate::shapes::ConvShape;
use crate::{ConvError, Result};
use tdc_tensor::Tensor;

/// Supported weight layouts for a 4-D convolution kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelLayout {
    /// `(C, N, R, S)` — the paper's mathematical notation (Eq. 1).
    Cnrs,
    /// `(N, C, R, S)` — the PyTorch / cuDNN default.
    Ncrs,
    /// `(C, R, S, N)` — TDC's coalescing-friendly layout (Section 5.2).
    Crsn,
}

/// Validate that a kernel tensor matches the CNRS dims implied by `shape`.
pub fn check_kernel_cnrs(kernel: &Tensor, shape: &ConvShape) -> Result<()> {
    let expected = shape.kernel_dims();
    if kernel.dims() != expected.as_slice() {
        return Err(ConvError::BadKernel {
            expected,
            actual: kernel.dims().to_vec(),
        });
    }
    Ok(())
}

/// Validate that an input tensor matches the HWC dims implied by `shape`.
pub fn check_input_hwc(input: &Tensor, shape: &ConvShape) -> Result<()> {
    let expected = shape.input_dims();
    if input.dims() != expected.as_slice() {
        return Err(ConvError::BadInput {
            expected,
            actual: input.dims().to_vec(),
        });
    }
    Ok(())
}

/// Convert a CNRS kernel to CRSN layout (the offline conversion of Section 5.2).
pub fn cnrs_to_crsn(kernel: &Tensor) -> Result<Tensor> {
    if kernel.rank() != 4 {
        return Err(ConvError::BadKernel {
            expected: vec![0, 0, 0, 0],
            actual: kernel.dims().to_vec(),
        });
    }
    // (C, N, R, S) -> (C, R, S, N)
    Ok(kernel.permute(&[0, 2, 3, 1])?)
}

/// Convert a CRSN kernel back to CNRS layout.
pub fn crsn_to_cnrs(kernel: &Tensor) -> Result<Tensor> {
    if kernel.rank() != 4 {
        return Err(ConvError::BadKernel {
            expected: vec![0, 0, 0, 0],
            actual: kernel.dims().to_vec(),
        });
    }
    // (C, R, S, N) -> (C, N, R, S)
    Ok(kernel.permute(&[0, 3, 1, 2])?)
}

/// Convert a CNRS kernel to RSCN layout: for each kernel tap `(r, s)` the
/// `C × N` weight block is contiguous with `n` fastest, which is what the
/// vectorised direct-convolution kernel
/// ([`crate::direct::conv2d_rscn_into`]) streams.
pub fn cnrs_to_rscn(kernel: &Tensor) -> Result<Tensor> {
    if kernel.rank() != 4 {
        return Err(ConvError::BadKernel {
            expected: vec![0, 0, 0, 0],
            actual: kernel.dims().to_vec(),
        });
    }
    // (C, N, R, S) -> (R, S, C, N)
    Ok(kernel.permute(&[2, 3, 0, 1])?)
}

/// Convert a CNRS kernel to NCRS (PyTorch-style) layout.
pub fn cnrs_to_ncrs(kernel: &Tensor) -> Result<Tensor> {
    if kernel.rank() != 4 {
        return Err(ConvError::BadKernel {
            expected: vec![0, 0, 0, 0],
            actual: kernel.dims().to_vec(),
        });
    }
    Ok(kernel.permute(&[1, 0, 2, 3])?)
}

/// Convert an NCRS kernel to CNRS layout.
pub fn ncrs_to_cnrs(kernel: &Tensor) -> Result<Tensor> {
    cnrs_to_ncrs(kernel)
}

/// Zero-pad an HWC input tensor symmetrically in both spatial dimensions.
pub fn pad_hwc(input: &Tensor, pad: usize) -> Result<Tensor> {
    if input.rank() != 3 {
        return Err(ConvError::BadInput {
            expected: vec![0, 0, 0],
            actual: input.dims().to_vec(),
        });
    }
    if pad == 0 {
        return Ok(input.clone());
    }
    let (h, w, c) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let (ph, pw) = (h + 2 * pad, w + 2 * pad);
    let mut out = Tensor::zeros(vec![ph, pw, c]);
    for y in 0..h {
        for x in 0..w {
            for ch in 0..c {
                out.set(&[y + pad, x + pad, ch], input.get(&[y, x, ch]));
            }
        }
    }
    Ok(out)
}

/// Convert an HWC activation tensor to CHW layout.
pub fn hwc_to_chw(t: &Tensor) -> Result<Tensor> {
    if t.rank() != 3 {
        return Err(ConvError::BadInput {
            expected: vec![0, 0, 0],
            actual: t.dims().to_vec(),
        });
    }
    Ok(t.permute(&[2, 0, 1])?)
}

/// Convert a CHW activation tensor to HWC layout.
pub fn chw_to_hwc(t: &Tensor) -> Result<Tensor> {
    if t.rank() != 3 {
        return Err(ConvError::BadInput {
            expected: vec![0, 0, 0],
            actual: t.dims().to_vec(),
        });
    }
    Ok(t.permute(&[1, 2, 0])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn crsn_round_trip() {
        let mut rng = StdRng::seed_from_u64(1);
        let k = init::uniform(vec![8, 16, 3, 3], -1.0, 1.0, &mut rng);
        let crsn = cnrs_to_crsn(&k).unwrap();
        assert_eq!(crsn.dims(), &[8, 3, 3, 16]);
        let back = crsn_to_cnrs(&crsn).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    fn crsn_puts_output_channel_contiguous() {
        let k = Tensor::from_fn(vec![2, 4, 3, 3], |i| (i[1]) as f32); // value = output channel
        let crsn = cnrs_to_crsn(&k).unwrap();
        // For fixed (c, r, s) the last axis enumerates output channels — the
        // values 0..N must be adjacent in memory.
        let base = &crsn.data()[0..4];
        assert_eq!(base, &[0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn ncrs_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let k = init::uniform(vec![8, 16, 3, 3], -1.0, 1.0, &mut rng);
        let ncrs = cnrs_to_ncrs(&k).unwrap();
        assert_eq!(ncrs.dims(), &[16, 8, 3, 3]);
        let back = ncrs_to_cnrs(&ncrs).unwrap();
        assert_eq!(back, k);
    }

    #[test]
    fn layout_conversions_reject_wrong_rank() {
        let bad = Tensor::zeros(vec![3, 3, 3]);
        assert!(cnrs_to_crsn(&bad).is_err());
        assert!(crsn_to_cnrs(&bad).is_err());
        assert!(cnrs_to_ncrs(&bad).is_err());
    }

    #[test]
    fn padding_preserves_interior_and_zeroes_border() {
        let x = Tensor::from_fn(vec![2, 2, 1], |i| (i[0] * 2 + i[1] + 1) as f32);
        let p = pad_hwc(&x, 1).unwrap();
        assert_eq!(p.dims(), &[4, 4, 1]);
        assert_eq!(p.get(&[1, 1, 0]), 1.0);
        assert_eq!(p.get(&[2, 2, 0]), 4.0);
        assert_eq!(p.get(&[0, 0, 0]), 0.0);
        assert_eq!(p.get(&[3, 3, 0]), 0.0);
        // pad = 0 is a no-op clone
        assert_eq!(pad_hwc(&x, 0).unwrap(), x);
    }

    #[test]
    fn hwc_chw_round_trip() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = init::uniform(vec![5, 7, 3], -1.0, 1.0, &mut rng);
        let chw = hwc_to_chw(&x).unwrap();
        assert_eq!(chw.dims(), &[3, 5, 7]);
        assert_eq!(chw_to_hwc(&chw).unwrap(), x);
    }

    #[test]
    fn shape_validators() {
        let shape = ConvShape::same3x3(3, 8, 10, 10);
        let good_in = Tensor::zeros(vec![10, 10, 3]);
        let bad_in = Tensor::zeros(vec![3, 10, 10]);
        assert!(check_input_hwc(&good_in, &shape).is_ok());
        assert!(check_input_hwc(&bad_in, &shape).is_err());
        let good_k = Tensor::zeros(vec![3, 8, 3, 3]);
        let bad_k = Tensor::zeros(vec![8, 3, 3, 3]);
        assert!(check_kernel_cnrs(&good_k, &shape).is_ok());
        assert!(check_kernel_cnrs(&bad_k, &shape).is_err());
    }
}
