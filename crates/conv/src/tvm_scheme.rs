//! The TVM convolution scheme (paper Listing 1).
//!
//! Section 5.1 characterises the scheme TVM's auto-tuned templates produce for
//! direct convolution: the output is split over height and width only (not
//! over input channels), every thread owns one output position, the block
//! stages both the input tile and the weights in shared memory, and the
//! per-input-channel loop performs **two** block-wide synchronisations per
//! iteration. The paper's criticism — and the reason the TDC scheme exists —
//! is that for Tucker-core convolutions, whose channel counts are small, this
//! leaves most of the GPU idle and pays `2·C` synchronisations.
//!
//! As with the TDC scheme, both a CPU emulation (correctness) and an analytical
//! cost model (latency on the simulator) are provided, along with the
//! exhaustive tile search that stands in for TVM's ML-based auto-tuning.

use crate::layout::{check_input_hwc, check_kernel_cnrs, pad_hwc};
use crate::shapes::ConvShape;
use crate::{ConvError, Result};
use serde::{Deserialize, Serialize};
use tdc_gpu_sim::{DeviceSpec, KernelLaunch, LatencyModel};
use tdc_tensor::Tensor;

/// Spatial tile assigned to one thread block in the TVM scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TvmTile {
    /// Tile height (threads along the output height dimension).
    pub th: usize,
    /// Tile width (threads along the output width dimension).
    pub tw: usize,
}

impl TvmTile {
    /// Create a tile; components are clamped to at least 1.
    pub fn new(th: usize, tw: usize) -> Self {
        TvmTile {
            th: th.max(1),
            tw: tw.max(1),
        }
    }

    /// Threads per block: one output position per thread.
    pub fn threads(&self) -> usize {
        self.th * self.tw
    }

    /// Blocks in the grid: `⌈H'/TH⌉ · ⌈W'/TW⌉` — no split over input channels.
    pub fn grid_blocks(&self, shape: &ConvShape) -> usize {
        shape.out_h().div_ceil(self.th) * shape.out_w().div_ceil(self.tw)
    }

    /// Shared-memory bytes: the input tile (with halo) for one channel plus
    /// one channel's weights for all output channels, both re-staged every
    /// iteration of the C loop (Listing 1 keeps exactly these two buffers).
    pub fn shared_mem_bytes(&self, shape: &ConvShape) -> usize {
        let input_tile = (self.th + shape.r - 1) * (self.tw + shape.s - 1);
        let kernel_tile = shape.r * shape.s * shape.n;
        (input_tile + kernel_tile) * 4
    }

    /// FLOPs per block: each of the `TH·TW` threads computes all `N` outputs
    /// for its position over all `C` channels.
    pub fn flops_per_block(&self, shape: &ConvShape) -> f64 {
        2.0 * (self.th * self.tw) as f64
            * shape.c as f64
            * shape.n as f64
            * (shape.r * shape.s) as f64
    }

    /// Build the launch descriptor for the scheme.
    pub fn kernel_launch(&self, shape: &ConvShape, device: &DeviceSpec) -> KernelLaunch {
        let grid = self.grid_blocks(shape);
        // Global traffic: every block re-reads its (overlapping) input tile for
        // every channel, reads the whole weight tensor once, and writes its
        // outputs once.
        let input_tile = ((self.th + shape.r - 1) * (self.tw + shape.s - 1)) as f64;
        let input_bytes = grid as f64 * shape.c as f64 * input_tile * 4.0;
        let kernel_bytes = grid as f64 * shape.params() as f64 * 4.0;
        let output_bytes = shape.output_elems() as f64 * 4.0;
        // Divergence: ragged tiles at the right/bottom edge leave threads idle.
        let full = (self.th * self.tw * grid) as f64;
        let useful = (shape.out_h() * shape.out_w()) as f64;
        let divergence = (1.0 - (useful / full).min(1.0)) * 0.5;
        let _ = device;
        KernelLaunch::new("tvm_direct_conv", grid, self.threads())
            .with_shared_mem(self.shared_mem_bytes(shape))
            .with_regs(48)
            .with_flops_per_block(self.flops_per_block(shape))
            .with_global_traffic(input_bytes + kernel_bytes, output_bytes)
            // Listing 1: two __syncthreads per input-channel iteration.
            .with_syncs(2 * shape.c)
            .with_divergence(divergence)
    }

    /// Whether the tile can be launched on the device.
    pub fn is_launchable(&self, shape: &ConvShape, device: &DeviceSpec) -> bool {
        self.th <= shape.out_h()
            && self.tw <= shape.out_w()
            && self.threads() <= device.max_threads_per_block
            && self.kernel_launch(shape, device).validate(device).is_ok()
    }

    /// Candidate tile edge lengths used by the auto-tuning stand-in.
    pub fn candidate_values(dim: usize) -> Vec<usize> {
        let mut vals: Vec<usize> = vec![1, 2, 4, 7, 8, 14, 16, 28, 32, 56, 64];
        vals.retain(|&v| v <= dim);
        if !vals.contains(&dim) && dim <= 64 {
            vals.push(dim);
        }
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Exhaustive tile search standing in for TVM's auto-tuner: picks the tile
    /// with the lowest modelled latency on the device.
    pub fn autotune(shape: &ConvShape, device: &DeviceSpec) -> TvmTile {
        let model = LatencyModel::new(device.clone());
        let mut best = TvmTile::new(1, 1);
        let mut best_ms = f64::INFINITY;
        for &th in &Self::candidate_values(shape.out_h()) {
            for &tw in &Self::candidate_values(shape.out_w()) {
                let tile = TvmTile::new(th, tw);
                if !tile.is_launchable(shape, device) {
                    continue;
                }
                if let Ok(lat) = model.kernel_latency(&tile.kernel_launch(shape, device)) {
                    if lat.total_ms < best_ms {
                        best_ms = lat.total_ms;
                        best = tile;
                    }
                }
            }
        }
        best
    }
}

impl std::fmt::Display for TvmTile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(TH={}, TW={})", self.th, self.tw)
    }
}

/// CPU emulation of the TVM scheme's loop structure (Listing 1): spatial tiles
/// per block, a sequential C loop staging one channel of input and weights at
/// a time, and an inner N loop per thread. Produces the same output as the
/// direct reference; used by correctness tests.
pub fn run(input: &Tensor, kernel: &Tensor, shape: &ConvShape, tile: &TvmTile) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    check_kernel_cnrs(kernel, shape)?;
    if shape.stride != 1 {
        return Err(ConvError::Unsupported {
            algorithm: "tvm_scheme",
            reason: "the modelled TVM direct-conv template targets stride 1".into(),
        });
    }
    let padded = pad_hwc(input, shape.pad)?;
    let (ph, pw) = (shape.h + 2 * shape.pad, shape.w + 2 * shape.pad);
    let (out_h, out_w, n, c) = (shape.out_h(), shape.out_w(), shape.n, shape.c);
    let (r, s) = (shape.r, shape.s);
    let x = padded.data();

    let mut out = Tensor::zeros(vec![out_h, out_w, n]);
    let tiles_h = out_h.div_ceil(tile.th);
    let tiles_w = out_w.div_ceil(tile.tw);
    for ty in 0..tiles_h {
        for tx in 0..tiles_w {
            // The C loop with its two "synchronisations": stage one channel of
            // input and weights, then let every thread accumulate.
            for ch in 0..c {
                // shared_input for this channel and tile (with halo).
                let halo_h = tile.th + r - 1;
                let halo_w = tile.tw + s - 1;
                let mut shared_input = vec![0.0f32; halo_h * halo_w];
                for hy in 0..halo_h {
                    for wx in 0..halo_w {
                        let gy = ty * tile.th + hy;
                        let gx = tx * tile.tw + wx;
                        shared_input[hy * halo_w + wx] = if gy < ph && gx < pw {
                            x[(gy * pw + gx) * c + ch]
                        } else {
                            0.0
                        };
                    }
                }
                // shared_kernel: this channel's weights for all N outputs.
                // (Indexed directly from the CNRS tensor below.)
                for lth in 0..tile.th {
                    for ltw in 0..tile.tw {
                        let oy = ty * tile.th + lth;
                        let ox = tx * tile.tw + ltw;
                        if oy >= out_h || ox >= out_w {
                            continue; // idle (diverged) thread
                        }
                        for on in 0..n {
                            let mut acc = out.get(&[oy, ox, on]);
                            for rr in 0..r {
                                for ss in 0..s {
                                    acc += shared_input[(lth + rr) * halo_w + (ltw + ss)]
                                        * kernel.get(&[ch, on, rr, ss]);
                                }
                            }
                            out.set(&[oy, ox, on], acc);
                        }
                    }
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn geometry_and_flops() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        let t = TvmTile::new(14, 14);
        assert_eq!(t.threads(), 196);
        assert_eq!(t.grid_blocks(&shape), 4);
        let launch = t.kernel_launch(&shape, &DeviceSpec::a100());
        assert_eq!(launch.syncs_per_block, 2 * 64);
        assert!((t.flops_per_block(&shape) - 2.0 * 196.0 * 64.0 * 32.0 * 9.0).abs() < 1.0);
    }

    #[test]
    fn no_channel_split_means_few_blocks_for_small_spatial_shapes() {
        // The paper's core criticism: a (192, 160, 7, 7) Tucker core conv gives
        // TVM at most 49 units of block-level parallelism.
        let shape = ConvShape::same3x3(192, 160, 7, 7);
        let best = TvmTile::autotune(&shape, &DeviceSpec::a100());
        assert!(best.grid_blocks(&shape) <= 49);
    }

    #[test]
    fn emulation_matches_direct() {
        let mut rng = StdRng::seed_from_u64(61);
        let cases = [
            (ConvShape::core(3, 4, 8, 8), TvmTile::new(3, 3)),
            (ConvShape::same3x3(5, 6, 9, 7), TvmTile::new(4, 4)),
            (ConvShape::same3x3(4, 3, 6, 6), TvmTile::new(6, 6)),
        ];
        for (shape, tile) in cases {
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let ours = run(&input, &kernel, &shape, &tile).unwrap();
            let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
            assert!(
                ours.relative_error(&reference).unwrap() < 1e-4,
                "mismatch for {shape} with {tile}"
            );
        }
    }

    #[test]
    fn autotune_picks_a_launchable_tile() {
        let dev = DeviceSpec::rtx2080ti();
        for shape in [
            ConvShape::same3x3(64, 32, 28, 28),
            ConvShape::same3x3(64, 32, 224, 224),
        ] {
            let best = TvmTile::autotune(&shape, &dev);
            assert!(
                best.is_launchable(&shape, &dev),
                "{best} not launchable for {shape}"
            );
        }
    }

    #[test]
    fn rejects_strided_shapes_and_bad_tensors() {
        let shape = ConvShape::new(3, 4, 8, 8, 3, 3, 1, 2);
        let input = Tensor::zeros(vec![8, 8, 3]);
        let kernel = Tensor::zeros(vec![3, 4, 3, 3]);
        assert!(run(&input, &kernel, &shape, &TvmTile::new(2, 2)).is_err());
        let shape = ConvShape::same3x3(3, 4, 8, 8);
        let bad_kernel = Tensor::zeros(vec![4, 3, 3, 3]);
        assert!(run(&input, &bad_kernel, &shape, &TvmTile::new(2, 2)).is_err());
    }

    #[test]
    fn sync_count_scales_with_input_channels() {
        let dev = DeviceSpec::a100();
        let small_c = TvmTile::new(7, 7).kernel_launch(&ConvShape::same3x3(32, 32, 14, 14), &dev);
        let big_c = TvmTile::new(7, 7).kernel_launch(&ConvShape::same3x3(192, 32, 14, 14), &dev);
        assert_eq!(small_c.syncs_per_block, 64);
        assert_eq!(big_c.syncs_per_block, 384);
    }
}
