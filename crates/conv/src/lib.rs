//! # tdc-conv
//!
//! Convolution algorithms for the TDC reproduction.
//!
//! The paper compares its hand-designed Tucker-core convolution kernel against
//! cuDNN's three algorithm families (implicit GEMM, Winograd, FFT) and against
//! the scheme TVM's code generator produces (paper Listing 1). This crate
//! provides, for each of those algorithm families:
//!
//! * a **CPU reference implementation** operating on [`tdc_tensor::Tensor`]s
//!   (used for correctness testing and by the training substrate), and
//! * a **GPU cost model** that translates a convolution shape plus scheme
//!   parameters into [`tdc_gpu_sim::KernelLaunch`] descriptors so the
//!   simulator can estimate latency on the A100 / RTX 2080 Ti device models.
//!
//! Data conventions follow the paper's notation (Table 1): the input is
//! `X ∈ R^{H×W×C}` (HWC, batch size 1 — the latency-critical inference case),
//! the kernel is `K ∈ R^{C×N×R×S}` and the output is `Y ∈ R^{H'×W'×N}`.
//!
//! Modules:
//!
//! * [`shapes`] — convolution shape descriptors, FLOP/parameter counts, and
//!   the 18 evaluation shapes of Figures 6/7.
//! * [`layout`] — kernel layout conversions, in particular the `CRSN` layout
//!   the TDC kernel uses for coalesced weight loads.
//! * [`mod@dispatch`] — the single typed surface ([`dispatch::dispatch`]) through
//!   which backends select a CPU algorithm.
//! * [`direct`] — direct (naive but parallel) convolution, the correctness
//!   reference for everything else.
//! * [`im2col`] — im2col + GEMM convolution (cuDNN IMPLICIT_GEMM analogue).
//! * [`winograd`] — Winograd F(2×2, 3×3) convolution.
//! * [`fft`] — FFT-based convolution.
//! * [`tvm_scheme`] — the TVM convolution scheme of paper Listing 1 (CPU
//!   emulation + cost model).
//! * [`tdc_scheme`] — the TDC convolution scheme of paper Listing 2 (CPU
//!   emulation + cost model), parameterised by the `(TH, TW, TC)` tiling.
//! * [`cost`] — the common cost-model trait and the cuDNN-algorithm cost
//!   models.

pub mod cost;
pub mod direct;
pub mod dispatch;
pub mod fft;
pub mod im2col;
pub mod layout;
pub mod shapes;
pub mod tdc_scheme;
pub mod tvm_scheme;
pub mod winograd;

pub use cost::{ConvAlgorithm, ConvCostModel};
pub use dispatch::{dispatch, CpuConvAlgorithm};
pub use shapes::ConvShape;
pub use tdc_scheme::Tiling;

/// Errors produced by convolution routines.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ConvError {
    /// The input tensor's shape is inconsistent with the convolution shape.
    BadInput {
        expected: Vec<usize>,
        actual: Vec<usize>,
    },
    /// The kernel tensor's shape is inconsistent with the convolution shape.
    BadKernel {
        expected: Vec<usize>,
        actual: Vec<usize>,
    },
    /// The algorithm does not support this configuration (e.g. Winograd with
    /// stride 2).
    Unsupported {
        algorithm: &'static str,
        reason: String,
    },
    /// A tiling parameter is invalid for the shape.
    BadTiling { reason: String },
    /// An underlying tensor operation failed.
    Tensor(tdc_tensor::TensorError),
}

impl std::fmt::Display for ConvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConvError::BadInput { expected, actual } => {
                write!(f, "bad input shape: expected {expected:?}, got {actual:?}")
            }
            ConvError::BadKernel { expected, actual } => {
                write!(f, "bad kernel shape: expected {expected:?}, got {actual:?}")
            }
            ConvError::Unsupported { algorithm, reason } => {
                write!(
                    f,
                    "{algorithm} does not support this configuration: {reason}"
                )
            }
            ConvError::BadTiling { reason } => write!(f, "bad tiling: {reason}"),
            ConvError::Tensor(e) => write!(f, "tensor error: {e}"),
        }
    }
}

impl std::error::Error for ConvError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ConvError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<tdc_tensor::TensorError> for ConvError {
    fn from(e: tdc_tensor::TensorError) -> Self {
        ConvError::Tensor(e)
    }
}

/// Result alias for convolution routines.
pub type Result<T> = std::result::Result<T, ConvError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = ConvError::Unsupported {
            algorithm: "winograd",
            reason: "stride 2".into(),
        };
        assert!(e.to_string().contains("winograd"));
        let e: ConvError = tdc_tensor::TensorError::NotAMatrix { rank: 3 }.into();
        assert!(e.to_string().contains("tensor error"));
    }

    #[test]
    fn error_source_chains_to_the_wrapped_error() {
        use std::error::Error as _;
        let e: ConvError = tdc_tensor::TensorError::NotAMatrix { rank: 3 }.into();
        assert!(e
            .source()
            .expect("tensor source")
            .to_string()
            .contains("rank"));
        assert!(ConvError::BadTiling { reason: "x".into() }
            .source()
            .is_none());
    }
}
