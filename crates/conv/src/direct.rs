//! Direct convolution — the correctness reference.
//!
//! Straightforward seven-loop cross-correlation over an HWC input and a CNRS
//! kernel, parallelised over output rows with rayon. Every other algorithm in
//! the crate is tested against this implementation.

use crate::layout::{check_input_hwc, check_kernel_cnrs};
use crate::shapes::ConvShape;
use crate::{ConvError, Result};
use rayon::prelude::*;
use tdc_tensor::Tensor;

/// Compute `Y(h', w', n) = Σ_{c,r,s} X(h'·stride + r − pad, w'·stride + s − pad, c) · K(c, n, r, s)`.
///
/// Input is HWC, kernel is CNRS, output is H'W'N. Out-of-bounds taps (from
/// padding) contribute zero.
pub fn conv2d(input: &Tensor, kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    check_kernel_cnrs(kernel, shape)?;
    if !shape.is_valid() {
        return Err(ConvError::Unsupported {
            algorithm: "direct",
            reason: format!("invalid shape {shape}"),
        });
    }

    let (out_h, out_w, n) = (shape.out_h(), shape.out_w(), shape.n);
    let mut out = vec![0.0f32; out_h * out_w * n];
    conv2d_into(input.data(), kernel.data(), &mut out, shape);
    Ok(Tensor::from_vec(vec![out_h, out_w, n], out)?)
}

/// Slice-level form of [`conv2d`] writing into a caller-provided buffer, so
/// the serving hot path can stage outputs in a scratch arena instead of
/// allocating. `out` must be **zeroed** and exactly `H'·W'·N` long; the loop
/// structure (and therefore the f32 accumulation order) is identical to what
/// [`conv2d`] has always done, keeping results bit-stable.
pub fn conv2d_into(x: &[f32], k: &[f32], out: &mut [f32], shape: &ConvShape) {
    let (h, w, c) = (shape.h as isize, shape.w as isize, shape.c);
    let (out_h, out_w, n) = (shape.out_h(), shape.out_w(), shape.n);
    let (r, s) = (shape.r, shape.s);
    let (pad, stride) = (shape.pad as isize, shape.stride as isize);
    assert_eq!(x.len(), shape.h * shape.w * c, "input has wrong length");
    assert_eq!(k.len(), c * n * r * s, "kernel has wrong length");
    assert_eq!(out.len(), out_h * out_w * n, "output has wrong length");

    // Kernel strides for CNRS layout.
    let k_c_stride = shape.n * r * s;
    let k_n_stride = r * s;

    out.par_chunks_mut(out_w * n)
        .enumerate()
        .for_each(|(oy, row)| {
            for ox in 0..out_w {
                let acc = &mut row[ox * n..(ox + 1) * n];
                for rr in 0..r {
                    let iy = oy as isize * stride + rr as isize - pad;
                    if iy < 0 || iy >= h {
                        continue;
                    }
                    for ss in 0..s {
                        let ix = ox as isize * stride + ss as isize - pad;
                        if ix < 0 || ix >= w {
                            continue;
                        }
                        let x_base = (iy as usize * shape.w + ix as usize) * c;
                        for ch in 0..c {
                            let xv = x[x_base + ch];
                            if xv == 0.0 {
                                continue;
                            }
                            let k_base = ch * k_c_stride + rr * s + ss;
                            for on in 0..n {
                                acc[on] += xv * k[k_base + on * k_n_stride];
                            }
                        }
                    }
                }
            }
        });
}

/// [`conv2d_into`] against a kernel pre-permuted to RSCN layout (see
/// [`crate::layout::cnrs_to_rscn`]): for each tap `(r, s)` the `C × N` weight
/// block is contiguous with `n` fastest, so the innermost loop is an
/// unstrided, branch-free `n`-wide multiply-add that vectorises.
///
/// Per output element the f32 additions happen in the identical
/// `(r, s, c)` order as [`conv2d_into`] — only the kernel's memory layout
/// differs — and there is deliberately no `x == 0.0` skip: on finite inputs
/// `acc += ±0.0 · w` never changes a +0.0-seeded f32 accumulator, so the
/// unconditional form is bit-identical to the skipping one (the serving
/// arena path is pinned bitwise against [`conv2d`] by test). `out` must be
/// **zeroed** and exactly `H'·W'·N` long.
pub fn conv2d_rscn_into(x: &[f32], k_rscn: &[f32], out: &mut [f32], shape: &ConvShape) {
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    assert_eq!(
        x.len(),
        shape.h * shape.w * shape.c,
        "input has wrong length"
    );
    assert_eq!(
        k_rscn.len(),
        shape.r * shape.s * shape.c * shape.n,
        "kernel has wrong length"
    );
    assert_eq!(
        out.len(),
        out_h * out_w * shape.n,
        "output has wrong length"
    );

    // Monomorphise the common rank widths so the N-wide accumulator is a
    // fixed-size register block instead of a memory-resident slice — the
    // decisive difference for the tiny `C × N` blocks of a Tucker rank-space
    // conv. Dispatching on the width cannot change results: every
    // instantiation runs the identical loop nest.
    match shape.n {
        2 => rscn_body::<2>(x, k_rscn, out, shape),
        4 => rscn_body::<4>(x, k_rscn, out, shape),
        8 => rscn_body::<8>(x, k_rscn, out, shape),
        16 => rscn_body::<16>(x, k_rscn, out, shape),
        n => rscn_body_dyn(x, k_rscn, out, shape, n),
    }
}

/// [`conv2d_rscn_into`]'s loop nest for a compile-time output width.
fn rscn_body<const N: usize>(x: &[f32], k_rscn: &[f32], out: &mut [f32], shape: &ConvShape) {
    let (h, w, c) = (shape.h as isize, shape.w as isize, shape.c);
    let out_w = shape.out_w();
    let (r, s) = (shape.r, shape.s);
    let (pad, stride) = (shape.pad as isize, shape.stride as isize);

    out.par_chunks_mut(out_w * N)
        .enumerate()
        .for_each(|(oy, row)| {
            // The valid tap ranges only depend on the output coordinate, so
            // hoist them: `rr` bounds once per row, `ss` bounds once per
            // column. Inside them every tap is in bounds and the loops run
            // branch-free; the *contributing* taps — and their order — are
            // exactly those the bounds-checked form visits.
            let rr_lo = (pad - oy as isize * stride).max(0) as usize;
            let rr_hi = (h + pad - oy as isize * stride).min(r as isize).max(0) as usize;
            for (ox, acc_out) in row.chunks_exact_mut(N).enumerate() {
                let ss_lo = (pad - ox as isize * stride).max(0) as usize;
                let ss_hi = (w + pad - ox as isize * stride).min(s as isize).max(0) as usize;
                let mut acc = [0.0f32; N];
                for rr in rr_lo..rr_hi {
                    let iy = (oy as isize * stride + rr as isize - pad) as usize;
                    for ss in ss_lo..ss_hi {
                        let ix = (ox as isize * stride + ss as isize - pad) as usize;
                        let x_base = (iy * shape.w + ix) * c;
                        let tap = &k_rscn[(rr * s + ss) * c * N..(rr * s + ss + 1) * c * N];
                        for ch in 0..c {
                            let xv = x[x_base + ch];
                            let wrow = &tap[ch * N..(ch + 1) * N];
                            for (a, &wv) in acc.iter_mut().zip(wrow) {
                                *a += xv * wv;
                            }
                        }
                    }
                }
                acc_out.copy_from_slice(&acc);
            }
        });
}

/// [`conv2d_rscn_into`]'s loop nest for a runtime output width (uncommon
/// ranks); accumulates directly into the output row.
fn rscn_body_dyn(x: &[f32], k_rscn: &[f32], out: &mut [f32], shape: &ConvShape, n: usize) {
    let (h, w, c) = (shape.h as isize, shape.w as isize, shape.c);
    let out_w = shape.out_w();
    let (r, s) = (shape.r, shape.s);
    let (pad, stride) = (shape.pad as isize, shape.stride as isize);

    out.par_chunks_mut(out_w * n)
        .enumerate()
        .for_each(|(oy, row)| {
            let rr_lo = (pad - oy as isize * stride).max(0) as usize;
            let rr_hi = (h + pad - oy as isize * stride).min(r as isize).max(0) as usize;
            for (ox, acc) in row.chunks_exact_mut(n).enumerate() {
                let ss_lo = (pad - ox as isize * stride).max(0) as usize;
                let ss_hi = (w + pad - ox as isize * stride).min(s as isize).max(0) as usize;
                for rr in rr_lo..rr_hi {
                    let iy = (oy as isize * stride + rr as isize - pad) as usize;
                    for ss in ss_lo..ss_hi {
                        let ix = (ox as isize * stride + ss as isize - pad) as usize;
                        let x_base = (iy * shape.w + ix) * c;
                        let tap = &k_rscn[(rr * s + ss) * c * n..(rr * s + ss + 1) * c * n];
                        for ch in 0..c {
                            let xv = x[x_base + ch];
                            let wrow = &tap[ch * n..(ch + 1) * n];
                            for (a, &wv) in acc.iter_mut().zip(wrow) {
                                *a += xv * wv;
                            }
                        }
                    }
                }
            }
        });
}

/// Scalar (non-parallel, non-optimised) reference kept deliberately naive for
/// differential testing of [`conv2d`] itself. Gated behind `cfg(test)` / the
/// `reference` feature so it can never be picked up on the serving path.
#[cfg(any(test, feature = "reference"))]
pub fn conv2d_naive(input: &Tensor, kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    check_kernel_cnrs(kernel, shape)?;
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let mut out = Tensor::zeros(vec![out_h, out_w, shape.n]);
    for oy in 0..out_h {
        for ox in 0..out_w {
            for on in 0..shape.n {
                let mut acc = 0.0f64;
                for ch in 0..shape.c {
                    for rr in 0..shape.r {
                        for ss in 0..shape.s {
                            let iy = (oy * shape.stride + rr) as isize - shape.pad as isize;
                            let ix = (ox * shape.stride + ss) as isize - shape.pad as isize;
                            if iy < 0 || iy >= shape.h as isize || ix < 0 || ix >= shape.w as isize
                            {
                                continue;
                            }
                            acc += input.get(&[iy as usize, ix as usize, ch]) as f64
                                * kernel.get(&[ch, on, rr, ss]) as f64;
                        }
                    }
                }
                out.set(&[oy, ox, on], acc as f32);
            }
        }
    }
    Ok(out)
}

/// Pointwise (1×1) convolution specialisation: a plain `(H·W) × C` by `C × N`
/// matrix product. The two channel-mixing stages of a Tucker-format layer are
/// exactly this operation.
pub fn conv1x1(input: &Tensor, weights: &Tensor) -> Result<Tensor> {
    if input.rank() != 3 {
        return Err(ConvError::BadInput {
            expected: vec![0, 0, 0],
            actual: input.dims().to_vec(),
        });
    }
    if weights.rank() != 2 || weights.dims()[0] != input.dims()[2] {
        return Err(ConvError::BadKernel {
            expected: vec![input.dims()[2], 0],
            actual: weights.dims().to_vec(),
        });
    }
    let (h, w, c) = (input.dims()[0], input.dims()[1], input.dims()[2]);
    let n = weights.dims()[1];
    let flat = input.clone().reshape(vec![h * w, c])?;
    let out = tdc_tensor::matmul::matmul(&flat, weights)?;
    Ok(out.reshape(vec![h, w, n])?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn identity_kernel_reproduces_input_channel() {
        // 1x1 kernel that copies channel 0 to the single output channel.
        let shape = ConvShape::new(2, 1, 4, 4, 1, 1, 0, 1);
        let input = Tensor::from_fn(vec![4, 4, 2], |i| {
            if i[2] == 0 {
                (i[0] * 4 + i[1]) as f32
            } else {
                99.0
            }
        });
        let mut kernel = Tensor::zeros(vec![2, 1, 1, 1]);
        kernel.set(&[0, 0, 0, 0], 1.0);
        let out = conv2d(&input, &kernel, &shape).unwrap();
        for y in 0..4 {
            for x in 0..4 {
                assert_eq!(out.get(&[y, x, 0]), (y * 4 + x) as f32);
            }
        }
    }

    #[test]
    fn hand_computed_3x3_example() {
        // 3x3 all-ones input, 3x3 all-ones kernel, valid conv -> single output = 9.
        let shape = ConvShape::core(1, 1, 3, 3);
        let input = Tensor::ones(vec![3, 3, 1]);
        let kernel = Tensor::ones(vec![1, 1, 3, 3]);
        let out = conv2d(&input, &kernel, &shape).unwrap();
        assert_eq!(out.dims(), &[1, 1, 1]);
        assert_eq!(out.get(&[0, 0, 0]), 9.0);
    }

    #[test]
    fn padding_produces_same_size_output() {
        let shape = ConvShape::same3x3(1, 1, 4, 4);
        let input = Tensor::ones(vec![4, 4, 1]);
        let kernel = Tensor::ones(vec![1, 1, 3, 3]);
        let out = conv2d(&input, &kernel, &shape).unwrap();
        assert_eq!(out.dims(), &[4, 4, 1]);
        // Corner sees a 2x2 window, edge 2x3, centre 3x3.
        assert_eq!(out.get(&[0, 0, 0]), 4.0);
        assert_eq!(out.get(&[0, 1, 0]), 6.0);
        assert_eq!(out.get(&[1, 1, 0]), 9.0);
    }

    #[test]
    fn stride_two_subsamples() {
        let shape = ConvShape::new(1, 1, 5, 5, 1, 1, 0, 2);
        let input = Tensor::from_fn(vec![5, 5, 1], |i| (i[0] * 5 + i[1]) as f32);
        let kernel = Tensor::ones(vec![1, 1, 1, 1]);
        let out = conv2d(&input, &kernel, &shape).unwrap();
        assert_eq!(out.dims(), &[3, 3, 1]);
        assert_eq!(out.get(&[0, 0, 0]), 0.0);
        assert_eq!(out.get(&[0, 1, 0]), 2.0);
        assert_eq!(out.get(&[1, 0, 0]), 10.0);
        assert_eq!(out.get(&[2, 2, 0]), 24.0);
    }

    #[test]
    fn parallel_matches_naive_on_random_shapes() {
        let mut rng = StdRng::seed_from_u64(99);
        let shapes = [
            ConvShape::core(3, 5, 9, 11),
            ConvShape::same3x3(4, 8, 7, 7),
            ConvShape::new(5, 6, 12, 10, 5, 3, 2, 2),
            ConvShape::pointwise(7, 9, 6, 6),
        ];
        for shape in shapes {
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let fast = conv2d(&input, &kernel, &shape).unwrap();
            let slow = conv2d_naive(&input, &kernel, &shape).unwrap();
            assert!(
                fast.relative_error(&slow).unwrap() < 1e-4,
                "mismatch for {shape}"
            );
        }
    }

    #[test]
    fn conv1x1_matches_direct_pointwise() {
        let mut rng = StdRng::seed_from_u64(5);
        let shape = ConvShape::pointwise(6, 10, 8, 8);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let full = conv2d(&input, &kernel, &shape).unwrap();
        // Express the same kernel as a C x N matrix.
        let weights = Tensor::from_fn(vec![6, 10], |i| kernel.get(&[i[0], i[1], 0, 0]));
        let fast = conv1x1(&input, &weights).unwrap();
        assert!(fast.relative_error(&full).unwrap() < 1e-5);
    }

    #[test]
    fn rejects_mismatched_tensors() {
        let shape = ConvShape::core(3, 4, 8, 8);
        let input = Tensor::zeros(vec![8, 8, 2]); // wrong channels
        let kernel = Tensor::zeros(vec![3, 4, 3, 3]);
        assert!(conv2d(&input, &kernel, &shape).is_err());
        let input = Tensor::zeros(vec![8, 8, 3]);
        let kernel = Tensor::zeros(vec![4, 3, 3, 3]); // transposed channels
        assert!(conv2d(&input, &kernel, &shape).is_err());
        let bad_weights = Tensor::zeros(vec![5, 7]);
        assert!(conv1x1(&input, &bad_weights).is_err());
    }

    #[test]
    fn linearity_in_the_input() {
        let mut rng = StdRng::seed_from_u64(13);
        let shape = ConvShape::same3x3(3, 4, 6, 6);
        let a = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let b = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let k = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let sum = tdc_tensor::ops::add(&a, &b).unwrap();
        let conv_sum = conv2d(&sum, &k, &shape).unwrap();
        let sum_conv = tdc_tensor::ops::add(
            &conv2d(&a, &k, &shape).unwrap(),
            &conv2d(&b, &k, &shape).unwrap(),
        )
        .unwrap();
        assert!(conv_sum.relative_error(&sum_conv).unwrap() < 1e-4);
    }
}
