//! Winograd F(2×2, 3×3) convolution — the cuDNN `WINOGRAD` analogue.
//!
//! For 3×3, stride-1 filters, the Winograd minimal filtering algorithm
//! computes each 2×2 output tile from a 4×4 input tile with 16 elementwise
//! multiplies instead of 36 multiply-adds, at the price of small input/kernel/
//! output transforms. This is the algorithm family cuDNN selects for most 3×3
//! layers, so the paper uses it as one of its baselines.
//!
//! The implementation follows the standard matrices
//! `B^T (4×4)`, `G (4×3)`, `A^T (2×4)` from Lavin & Gray, applied per
//! `(input-channel, output-channel)` pair and accumulated over input channels.

use crate::layout::{check_input_hwc, check_kernel_cnrs, pad_hwc};
use crate::shapes::ConvShape;
use crate::{ConvError, Result};
use rayon::prelude::*;
use tdc_tensor::Tensor;

/// Output tile size `m` of F(m×m, 3×3).
pub const TILE_OUT: usize = 2;
/// Input tile size `m + r - 1`.
pub const TILE_IN: usize = 4;

// B^T: input transform (4x4).
const BT: [[f32; 4]; 4] = [
    [1.0, 0.0, -1.0, 0.0],
    [0.0, 1.0, 1.0, 0.0],
    [0.0, -1.0, 1.0, 0.0],
    [0.0, 1.0, 0.0, -1.0],
];

// G: kernel transform (4x3).
const G: [[f32; 3]; 4] = [
    [1.0, 0.0, 0.0],
    [0.5, 0.5, 0.5],
    [0.5, -0.5, 0.5],
    [0.0, 0.0, 1.0],
];

// A^T: output transform (2x4).
const AT: [[f32; 4]; 2] = [[1.0, 1.0, 1.0, 0.0], [0.0, 1.0, -1.0, -1.0]];

/// Transform one 3×3 kernel tile: `U = G g G^T` (4×4).
fn transform_kernel(g: &[[f32; 3]; 3]) -> [[f32; 4]; 4] {
    // tmp = G (4x3) * g (3x3) -> 4x3
    let mut tmp = [[0.0f32; 3]; 4];
    for i in 0..4 {
        for j in 0..3 {
            for k in 0..3 {
                tmp[i][j] += G[i][k] * g[k][j];
            }
        }
    }
    // U = tmp (4x3) * G^T (3x4) -> 4x4
    let mut u = [[0.0f32; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..3 {
                u[i][j] += tmp[i][k] * G[j][k];
            }
        }
    }
    u
}

/// Transform one 4×4 input tile: `V = B^T d B` (4×4).
fn transform_input(d: &[[f32; 4]; 4]) -> [[f32; 4]; 4] {
    let mut tmp = [[0.0f32; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                tmp[i][j] += BT[i][k] * d[k][j];
            }
        }
    }
    let mut v = [[0.0f32; 4]; 4];
    for i in 0..4 {
        for j in 0..4 {
            for k in 0..4 {
                v[i][j] += tmp[i][k] * BT[j][k];
            }
        }
    }
    v
}

/// Inverse transform of the elementwise product: `Y = A^T m A` (2×2).
fn transform_output(m: &[[f32; 4]; 4]) -> [[f32; 2]; 2] {
    let mut tmp = [[0.0f32; 4]; 2];
    for i in 0..2 {
        for j in 0..4 {
            for k in 0..4 {
                tmp[i][j] += AT[i][k] * m[k][j];
            }
        }
    }
    let mut y = [[0.0f32; 2]; 2];
    for i in 0..2 {
        for j in 0..2 {
            for k in 0..4 {
                y[i][j] += tmp[i][k] * AT[j][k];
            }
        }
    }
    y
}

/// Winograd F(2×2, 3×3) convolution. Requires `r = s = 3` and `stride = 1`;
/// any padding is handled by materialising the padded input first.
// Index-symmetric numeric kernel: explicit indices mirror the math.
#[allow(clippy::needless_range_loop)]
pub fn conv2d(input: &Tensor, kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    check_kernel_cnrs(kernel, shape)?;
    if shape.r != 3 || shape.s != 3 {
        return Err(ConvError::Unsupported {
            algorithm: "winograd",
            reason: format!(
                "only 3x3 filters are supported, got {}x{}",
                shape.r, shape.s
            ),
        });
    }
    if shape.stride != 1 {
        return Err(ConvError::Unsupported {
            algorithm: "winograd",
            reason: format!("only stride 1 is supported, got {}", shape.stride),
        });
    }

    let padded = pad_hwc(input, shape.pad)?;
    let ph = shape.h + 2 * shape.pad;
    let pw = shape.w + 2 * shape.pad;
    let (out_h, out_w, n, c) = (shape.out_h(), shape.out_w(), shape.n, shape.c);

    // Pre-transform all kernels: U[c][n] is 4x4.
    let transformed: Vec<[[f32; 4]; 4]> = (0..c * n)
        .into_par_iter()
        .map(|idx| {
            let ch = idx / n;
            let on = idx % n;
            let mut g = [[0.0f32; 3]; 3];
            for rr in 0..3 {
                for ss in 0..3 {
                    g[rr][ss] = kernel.get(&[ch, on, rr, ss]);
                }
            }
            transform_kernel(&g)
        })
        .collect();

    let tiles_y = out_h.div_ceil(TILE_OUT);
    let tiles_x = out_w.div_ceil(TILE_OUT);
    let x = padded.data();

    let mut out = vec![0.0f32; out_h * out_w * n];
    // Parallelise over tile rows; each worker owns disjoint output rows.
    let tile_rows: Vec<Vec<f32>> = (0..tiles_y)
        .into_par_iter()
        .map(|ty| {
            let mut local = vec![0.0f32; TILE_OUT * out_w * n];
            for tx in 0..tiles_x {
                let oy0 = ty * TILE_OUT;
                let ox0 = tx * TILE_OUT;
                for on in 0..n {
                    let mut m_acc = [[0.0f32; 4]; 4];
                    for ch in 0..c {
                        // Gather the 4x4 input tile (zero beyond the padded bounds).
                        let mut d = [[0.0f32; 4]; 4];
                        for dy in 0..TILE_IN {
                            for dx in 0..TILE_IN {
                                let iy = oy0 + dy;
                                let ix = ox0 + dx;
                                d[dy][dx] = if iy < ph && ix < pw {
                                    x[(iy * pw + ix) * c + ch]
                                } else {
                                    0.0
                                };
                            }
                        }
                        let v = transform_input(&d);
                        let u = &transformed[ch * n + on];
                        for i in 0..4 {
                            for j in 0..4 {
                                m_acc[i][j] += u[i][j] * v[i][j];
                            }
                        }
                    }
                    let y = transform_output(&m_acc);
                    for dy in 0..TILE_OUT {
                        for dx in 0..TILE_OUT {
                            let oy = oy0 + dy;
                            let ox = ox0 + dx;
                            if oy < out_h && ox < out_w {
                                local[(dy * out_w + ox) * n + on] = y[dy][dx];
                            }
                        }
                    }
                }
            }
            local
        })
        .collect();

    for (ty, local) in tile_rows.into_iter().enumerate() {
        let oy0 = ty * TILE_OUT;
        for dy in 0..TILE_OUT {
            let oy = oy0 + dy;
            if oy >= out_h {
                continue;
            }
            let dst = &mut out[oy * out_w * n..(oy + 1) * out_w * n];
            dst.copy_from_slice(&local[dy * out_w * n..(dy + 1) * out_w * n]);
        }
    }

    Ok(Tensor::from_vec(vec![out_h, out_w, n], out)?)
}

/// Multiplication count of F(2×2, 3×3) relative to direct convolution:
/// 36 multiplies per 2×2 output tile become 16, a 2.25× reduction.
pub fn flop_reduction_factor() -> f64 {
    36.0 / 16.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn kernel_transform_of_identity_tap() {
        // A kernel with a single centre tap convolves as identity; its Winograd
        // transform must reproduce that behaviour end to end.
        let mut g = [[0.0f32; 3]; 3];
        g[1][1] = 1.0;
        let u = transform_kernel(&g);
        // Sanity: transform is finite and not all zeros.
        assert!(u.iter().flatten().any(|&v| v != 0.0));
    }

    #[test]
    fn matches_direct_on_even_sizes() {
        let mut rng = StdRng::seed_from_u64(21);
        for &(c, n, h, w) in &[
            (1usize, 1usize, 6usize, 6usize),
            (3, 4, 8, 8),
            (5, 2, 10, 6),
        ] {
            let shape = ConvShape::core(c, n, h, w);
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let wino = conv2d(&input, &kernel, &shape).unwrap();
            let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
            assert!(
                wino.relative_error(&reference).unwrap() < 1e-4,
                "mismatch for {shape}: {}",
                wino.relative_error(&reference).unwrap()
            );
        }
    }

    #[test]
    fn matches_direct_with_same_padding_and_odd_sizes() {
        let mut rng = StdRng::seed_from_u64(22);
        for &(c, n, h, w) in &[
            (2usize, 3usize, 7usize, 7usize),
            (4, 4, 9, 11),
            (3, 2, 5, 13),
        ] {
            let shape = ConvShape::same3x3(c, n, h, w);
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let wino = conv2d(&input, &kernel, &shape).unwrap();
            let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
            assert!(
                wino.relative_error(&reference).unwrap() < 1e-4,
                "mismatch for {shape}"
            );
        }
    }

    #[test]
    fn rejects_unsupported_configurations() {
        let input = Tensor::zeros(vec![8, 8, 2]);
        let k5 = Tensor::zeros(vec![2, 2, 5, 5]);
        let shape5 = ConvShape::new(2, 2, 8, 8, 5, 5, 0, 1);
        assert!(conv2d(&input, &k5, &shape5).is_err());

        let k3 = Tensor::zeros(vec![2, 2, 3, 3]);
        let strided = ConvShape::new(2, 2, 8, 8, 3, 3, 0, 2);
        assert!(conv2d(&input, &k3, &strided).is_err());
    }

    #[test]
    fn flop_reduction_is_2_25x() {
        assert!((flop_reduction_factor() - 2.25).abs() < 1e-12);
    }
}
