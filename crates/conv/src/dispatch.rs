//! Single typed dispatch surface over the CPU convolution entrypoints.
//!
//! Backends and the serving layer historically selected an algorithm by
//! calling module paths (`direct::conv2d`, `im2col::conv2d`, `fft::conv2d`)
//! directly; [`dispatch`] collapses those into one function keyed by
//! [`CpuConvAlgorithm`], so a backend's algorithm choice is a plain enum
//! value it can parse from configuration, log, and record in artifacts.
//!
//! Note the distinction from [`crate::ConvAlgorithm`]: that enum names the
//! *GPU cost-model* families the paper compares against (cuDNN GEMM /
//! Winograd / FFT, TVM, TDC), while this one names the concrete CPU
//! implementations in this crate.

use crate::shapes::ConvShape;
use crate::{direct, fft, im2col, winograd, Result};
use tdc_tensor::Tensor;

/// A concrete CPU convolution implementation in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuConvAlgorithm {
    /// Seven-loop direct cross-correlation ([`direct::conv2d`]).
    Direct,
    /// im2col + blocked GEMM ([`im2col::conv2d`]).
    Im2col,
    /// Winograd F(2×2, 3×3) ([`winograd::conv2d`]).
    Winograd,
    /// FFT-based convolution ([`fft::conv2d`]).
    Fft,
}

impl CpuConvAlgorithm {
    /// Stable lower-case label, the inverse of [`CpuConvAlgorithm::parse`].
    pub fn label(&self) -> &'static str {
        match self {
            CpuConvAlgorithm::Direct => "direct",
            CpuConvAlgorithm::Im2col => "im2col",
            CpuConvAlgorithm::Winograd => "winograd",
            CpuConvAlgorithm::Fft => "fft",
        }
    }

    /// Parse a label produced by [`CpuConvAlgorithm::label`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "direct" => Some(CpuConvAlgorithm::Direct),
            "im2col" => Some(CpuConvAlgorithm::Im2col),
            "winograd" => Some(CpuConvAlgorithm::Winograd),
            "fft" => Some(CpuConvAlgorithm::Fft),
            _ => None,
        }
    }

    /// Every dispatchable algorithm, in declaration order.
    pub fn all() -> [CpuConvAlgorithm; 4] {
        [
            CpuConvAlgorithm::Direct,
            CpuConvAlgorithm::Im2col,
            CpuConvAlgorithm::Winograd,
            CpuConvAlgorithm::Fft,
        ]
    }
}

impl std::fmt::Display for CpuConvAlgorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Run one convolution through the selected CPU implementation.
///
/// All implementations take an HWC input, a CNRS kernel and a [`ConvShape`]
/// and produce the same `H'×W'×N` output; algorithm-specific restrictions
/// (e.g. Winograd requiring 3×3 stride-1) surface as
/// [`crate::ConvError::Unsupported`].
pub fn dispatch(
    algorithm: CpuConvAlgorithm,
    input: &Tensor,
    kernel: &Tensor,
    shape: &ConvShape,
) -> Result<Tensor> {
    match algorithm {
        CpuConvAlgorithm::Direct => direct::conv2d(input, kernel, shape),
        CpuConvAlgorithm::Im2col => im2col::conv2d(input, kernel, shape),
        CpuConvAlgorithm::Winograd => winograd::conv2d(input, kernel, shape),
        CpuConvAlgorithm::Fft => fft::conv2d(input, kernel, shape),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn labels_round_trip() {
        for alg in CpuConvAlgorithm::all() {
            assert_eq!(CpuConvAlgorithm::parse(alg.label()), Some(alg));
            assert_eq!(alg.to_string(), alg.label());
        }
        assert_eq!(CpuConvAlgorithm::parse("cudnn_gemm"), None);
    }

    #[test]
    fn every_algorithm_agrees_with_direct_on_a_3x3_shape() {
        let mut rng = StdRng::seed_from_u64(41);
        let shape = ConvShape::same3x3(3, 5, 8, 8);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let reference = dispatch(CpuConvAlgorithm::Direct, &input, &kernel, &shape).unwrap();
        for alg in [
            CpuConvAlgorithm::Im2col,
            CpuConvAlgorithm::Winograd,
            CpuConvAlgorithm::Fft,
        ] {
            let got = dispatch(alg, &input, &kernel, &shape).unwrap();
            assert!(
                got.relative_error(&reference).unwrap() < 1e-3,
                "{alg} diverged from direct"
            );
        }
    }

    #[test]
    fn dispatch_surfaces_algorithm_restrictions() {
        // Winograd requires 3x3 stride-1 kernels; a 5x5 shape must error
        // through the same typed surface.
        let shape = ConvShape::new(2, 3, 10, 12, 5, 5, 2, 2);
        let input = Tensor::zeros(shape.input_dims());
        let kernel = Tensor::zeros(shape.kernel_dims());
        let err = dispatch(CpuConvAlgorithm::Winograd, &input, &kernel, &shape).unwrap_err();
        assert!(matches!(err, crate::ConvError::Unsupported { .. }));
    }
}
