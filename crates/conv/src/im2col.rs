//! im2col + GEMM convolution — the cuDNN `IMPLICIT_GEMM` analogue.
//!
//! The convolution is lowered to a single matrix product: each output position
//! becomes a row of the patch matrix (`H'·W'` rows, `C·R·S` columns), the
//! kernel becomes a `C·R·S × N` matrix, and the product is the `H'·W' × N`
//! output. cuDNN's implicit-GEMM algorithm performs this lowering on the fly
//! inside the kernel; the CPU reference materialises the patch matrix because
//! correctness, not footprint, is what it is for.

use crate::layout::{check_input_hwc, check_kernel_cnrs};
use crate::shapes::ConvShape;
use crate::Result;
use rayon::prelude::*;
use tdc_tensor::{matmul, Tensor};

/// Materialise the im2col patch matrix: `(H'·W') × (C·R·S)`.
///
/// Column ordering is `(c, r, s)` row-major, matching [`kernel_matrix`].
pub fn im2col(input: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let cols = shape.c * shape.r * shape.s;
    let mut out = vec![0.0f32; out_h * out_w * cols];
    im2col_into(input.data(), &mut out, shape);
    Ok(Tensor::from_vec(vec![out_h * out_w, cols], out)?)
}

/// Slice-level form of [`im2col`] writing into a caller-provided buffer of
/// exactly `(H'·W')·(C·R·S)` elements, so the serving hot path can stage the
/// patch matrix in a scratch arena instead of allocating. Every element of
/// `out` is written (padding taps store literal `0.0`), so the buffer does
/// not need to be zeroed first.
pub fn im2col_into(x: &[f32], out: &mut [f32], shape: &ConvShape) {
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let cols = shape.c * shape.r * shape.s;
    let (h, w, c) = (shape.h as isize, shape.w as isize, shape.c);
    assert_eq!(x.len(), shape.h * shape.w * c, "input has wrong length");
    assert_eq!(out.len(), out_h * out_w * cols, "patch buffer wrong length");

    let taps = shape.r * shape.s;
    out.par_chunks_mut(cols).enumerate().for_each(|(pos, row)| {
        let oy = pos / out_w;
        let ox = pos % out_w;
        // Resolve each of the R·S kernel taps once per output position —
        // `None` marks a padding tap — instead of re-deriving indices and
        // bounds per element. `bases[t] + ch` then addresses the input for
        // tap `t`, and a position's row is written in `(c, r, s)`-contiguous
        // runs of `taps` elements per channel.
        let mut bases = [None::<usize>; 32];
        let bases = if taps <= bases.len() {
            &mut bases[..taps]
        } else {
            // Kernels larger than 5x5 spill the tap table; unreachable for
            // every shape the serving tree runs but kept correct.
            return im2col_row_generic(x, row, shape, oy, ox);
        };
        for rr in 0..shape.r {
            let iy = (oy * shape.stride + rr) as isize - shape.pad as isize;
            for ss in 0..shape.s {
                let ix = (ox * shape.stride + ss) as isize - shape.pad as isize;
                bases[rr * shape.s + ss] = if iy < 0 || iy >= h || ix < 0 || ix >= w {
                    None
                } else {
                    Some((iy as usize * shape.w + ix as usize) * c)
                };
            }
        }
        for (ch, run) in row.chunks_exact_mut(taps).enumerate() {
            for (slot, base) in run.iter_mut().zip(bases.iter()) {
                *slot = match base {
                    Some(b) => x[b + ch],
                    None => 0.0,
                };
            }
        }
    });
}

/// Per-element fallback for [`im2col_into`] rows whose kernel has more taps
/// than the stack table holds. Identical output to the fast path.
fn im2col_row_generic(x: &[f32], row: &mut [f32], shape: &ConvShape, oy: usize, ox: usize) {
    let (h, w, c) = (shape.h as isize, shape.w as isize, shape.c);
    for ch in 0..c {
        for rr in 0..shape.r {
            for ss in 0..shape.s {
                let iy = (oy * shape.stride + rr) as isize - shape.pad as isize;
                let ix = (ox * shape.stride + ss) as isize - shape.pad as isize;
                let col = (ch * shape.r + rr) * shape.s + ss;
                row[col] = if iy < 0 || iy >= h || ix < 0 || ix >= w {
                    0.0
                } else {
                    x[(iy as usize * shape.w + ix as usize) * c + ch]
                };
            }
        }
    }
}

/// Reshape a CNRS kernel into the `(C·R·S) × N` GEMM operand with the same
/// `(c, r, s)` row ordering as [`im2col`].
pub fn kernel_matrix(kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    check_kernel_cnrs(kernel, shape)?;
    let rows = shape.c * shape.r * shape.s;
    let mut out = vec![0.0f32; rows * shape.n];
    for ch in 0..shape.c {
        for on in 0..shape.n {
            for rr in 0..shape.r {
                for ss in 0..shape.s {
                    let row = (ch * shape.r + rr) * shape.s + ss;
                    out[row * shape.n + on] = kernel.get(&[ch, on, rr, ss]);
                }
            }
        }
    }
    Ok(Tensor::from_vec(vec![rows, shape.n], out)?)
}

/// im2col + GEMM convolution. Produces the same `H'×W'×N` output as
/// [`crate::direct::conv2d`]. The product runs through the register-tiled
/// [`matmul::gemm_blocked_into`] kernel.
pub fn conv2d(input: &Tensor, kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    let patches = im2col(input, shape)?;
    let kmat = kernel_matrix(kernel, shape)?;
    let (m, n) = (shape.out_h() * shape.out_w(), shape.n);
    let k = shape.c * shape.r * shape.s;
    let mut flat = vec![0.0f32; m * n];
    matmul::gemm_blocked_into(patches.data(), kmat.data(), &mut flat, m, k, n);
    Ok(Tensor::from_vec(shape.output_dims(), flat)?)
}

/// Gradient of the convolution with respect to its input, computed by the
/// transposed GEMM and col2im scatter. Used by the training substrate.
pub fn conv2d_input_grad(
    grad_output: &Tensor,
    kernel: &Tensor,
    shape: &ConvShape,
) -> Result<Tensor> {
    // grad_patches = grad_out_flat (H'W' x N) * Kmat^T (N x CRS)
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let grad_flat = grad_output.clone().reshape(vec![out_h * out_w, shape.n])?;
    let kmat = kernel_matrix(kernel, shape)?;
    let grad_patches = matmul::matmul_a_bt(&grad_flat, &kmat)?; // (H'W', CRS)

    // col2im: scatter-add each patch column back to the input location.
    let mut grad_input = Tensor::zeros(shape.input_dims());
    let (h, w, c) = (shape.h as isize, shape.w as isize, shape.c);
    for pos in 0..out_h * out_w {
        let oy = pos / out_w;
        let ox = pos % out_w;
        for ch in 0..c {
            for rr in 0..shape.r {
                for ss in 0..shape.s {
                    let iy = (oy * shape.stride + rr) as isize - shape.pad as isize;
                    let ix = (ox * shape.stride + ss) as isize - shape.pad as isize;
                    if iy < 0 || iy >= h || ix < 0 || ix >= w {
                        continue;
                    }
                    let col = (ch * shape.r + rr) * shape.s + ss;
                    let v = grad_patches.get(&[pos, col]);
                    let idx = [iy as usize, ix as usize, ch];
                    grad_input.set(&idx, grad_input.get(&idx) + v);
                }
            }
        }
    }
    Ok(grad_input)
}

/// Gradient of the convolution with respect to its kernel (CNRS layout).
pub fn conv2d_kernel_grad(
    input: &Tensor,
    grad_output: &Tensor,
    shape: &ConvShape,
) -> Result<Tensor> {
    // gradKmat = patches^T (CRS x H'W') * grad_out_flat (H'W' x N)
    let patches = im2col(input, shape)?;
    let (out_h, out_w) = (shape.out_h(), shape.out_w());
    let grad_flat = grad_output.clone().reshape(vec![out_h * out_w, shape.n])?;
    let grad_kmat = matmul::matmul_at_b(&patches, &grad_flat)?; // (CRS, N)

    // Un-reshape back to CNRS.
    let mut out = Tensor::zeros(shape.kernel_dims());
    for ch in 0..shape.c {
        for on in 0..shape.n {
            for rr in 0..shape.r {
                for ss in 0..shape.s {
                    let row = (ch * shape.r + rr) * shape.s + ss;
                    out.set(&[ch, on, rr, ss], grad_kmat.get(&[row, on]));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn im2col_dimensions_and_content() {
        let shape = ConvShape::core(2, 1, 3, 3);
        let input = Tensor::from_fn(vec![3, 3, 2], |i| (i[0] * 6 + i[1] * 2 + i[2]) as f32);
        let patches = im2col(&input, &shape).unwrap();
        assert_eq!(patches.dims(), &[1, 18]);
        // First column block is channel 0 over the 3x3 window.
        assert_eq!(patches.get(&[0, 0]), input.get(&[0, 0, 0]));
        assert_eq!(patches.get(&[0, 8]), input.get(&[2, 2, 0]));
        assert_eq!(patches.get(&[0, 9]), input.get(&[0, 0, 1]));
    }

    #[test]
    fn matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(7);
        let shapes = [
            ConvShape::core(3, 5, 8, 8),
            ConvShape::same3x3(4, 6, 9, 7),
            ConvShape::new(2, 3, 10, 12, 5, 5, 2, 2),
            ConvShape::pointwise(8, 4, 5, 5),
        ];
        for shape in shapes {
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let gemm = conv2d(&input, &kernel, &shape).unwrap();
            let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
            assert!(
                gemm.relative_error(&reference).unwrap() < 1e-4,
                "shape {shape}"
            );
        }
    }

    #[test]
    fn input_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(11);
        let shape = ConvShape::same3x3(2, 3, 5, 5);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -0.5, 0.5, &mut rng);
        // Loss = sum(conv output); dL/dY = ones.
        let grad_out = Tensor::ones(shape.output_dims());
        let analytic = conv2d_input_grad(&grad_out, &kernel, &shape).unwrap();

        let eps = 1e-2f32;
        for &probe in &[[0usize, 0, 0], [2, 3, 1], [4, 4, 0]] {
            let mut plus = input.clone();
            plus.set(&probe, plus.get(&probe) + eps);
            let mut minus = input.clone();
            minus.set(&probe, minus.get(&probe) - eps);
            let f_plus = direct::conv2d(&plus, &kernel, &shape).unwrap().sum();
            let f_minus = direct::conv2d(&minus, &kernel, &shape).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let got = analytic.get(&probe);
            assert!(
                (numeric - got).abs() < 2e-2,
                "probe {probe:?}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn kernel_gradient_matches_finite_difference() {
        let mut rng = StdRng::seed_from_u64(13);
        let shape = ConvShape::core(2, 2, 5, 5);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -0.5, 0.5, &mut rng);
        let grad_out = Tensor::ones(shape.output_dims());
        let analytic = conv2d_kernel_grad(&input, &grad_out, &shape).unwrap();

        let eps = 1e-2f32;
        for &probe in &[[0usize, 0, 0, 0], [1, 1, 2, 2], [0, 1, 1, 0]] {
            let mut plus = kernel.clone();
            plus.set(&probe, plus.get(&probe) + eps);
            let mut minus = kernel.clone();
            minus.set(&probe, minus.get(&probe) - eps);
            let f_plus = direct::conv2d(&input, &plus, &shape).unwrap().sum();
            let f_minus = direct::conv2d(&input, &minus, &shape).unwrap().sum();
            let numeric = (f_plus - f_minus) / (2.0 * eps);
            let got = analytic.get(&probe);
            assert!(
                (numeric - got).abs() < 2e-2,
                "probe {probe:?}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn kernel_matrix_round_trips_values() {
        let mut rng = StdRng::seed_from_u64(3);
        let shape = ConvShape::core(3, 4, 6, 6);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let kmat = kernel_matrix(&kernel, &shape).unwrap();
        assert_eq!(kmat.dims(), &[3 * 9, 4]);
        assert_eq!(kmat.get(&[0, 0]), kernel.get(&[0, 0, 0, 0]));
        assert_eq!(
            kmat.get(&[(2 * 3 + 1) * 3 + 2, 3]),
            kernel.get(&[2, 3, 1, 2])
        );
    }
}
