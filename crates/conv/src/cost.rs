//! GPU cost models for the baseline convolution algorithms.
//!
//! Figures 6–9 of the paper compare the TDC kernel against cuDNN's three
//! algorithm families and TVM. cuDNN is closed source, so we model each family
//! by the launch geometry and traffic its algorithm class implies — a generic,
//! shape-agnostic library kernel — and evaluate it on the same simulated
//! device as the TDC kernel. The absolute milliseconds are estimates; what the
//! models need to capture (and what the tests assert) is the *relative*
//! behaviour: generic tile sizes waste most of a small Tucker-core problem,
//! FFT pays transform overhead that 3×3 filters cannot amortise, and the TVM
//! scheme loses parallelism by not splitting the channel dimension.

use crate::shapes::ConvShape;
use crate::tdc_scheme::Tiling;
use crate::tvm_scheme::TvmTile;
use serde::{Deserialize, Serialize};
use tdc_gpu_sim::{DeviceSpec, KernelLaunch, LatencyModel};

/// The convolution implementations compared in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConvAlgorithm {
    /// cuDNN `IMPLICIT_GEMM`.
    CudnnGemm,
    /// cuDNN `WINOGRAD`.
    CudnnWinograd,
    /// cuDNN `FFT`.
    CudnnFft,
    /// The TVM direct-convolution scheme (Listing 1), auto-tuned.
    Tvm,
    /// The TDC scheme (Listing 2) with a caller-supplied tiling.
    Tdc,
}

impl ConvAlgorithm {
    /// Human-readable name matching the labels used in the paper's figures.
    pub fn label(&self) -> &'static str {
        match self {
            ConvAlgorithm::CudnnGemm => "cuDNN-GEMM",
            ConvAlgorithm::CudnnWinograd => "cuDNN-WINOGRAD",
            ConvAlgorithm::CudnnFft => "cuDNN-FFT",
            ConvAlgorithm::Tvm => "TVM",
            ConvAlgorithm::Tdc => "TDC",
        }
    }

    /// All cuDNN algorithm variants.
    pub fn cudnn_variants() -> [ConvAlgorithm; 3] {
        [
            ConvAlgorithm::CudnnGemm,
            ConvAlgorithm::CudnnWinograd,
            ConvAlgorithm::CudnnFft,
        ]
    }
}

/// A cost model maps a convolution shape to the kernel launches it would
/// execute on the device; latency comes from the shared simulator.
pub trait ConvCostModel {
    /// Display name.
    fn name(&self) -> &'static str;

    /// Kernel launches executed for one forward convolution.
    fn launches(&self, shape: &ConvShape, device: &DeviceSpec) -> Vec<KernelLaunch>;

    /// Modelled latency in milliseconds on the device.
    fn latency_ms(&self, shape: &ConvShape, device: &DeviceSpec) -> f64 {
        let model = LatencyModel::new(device.clone());
        let launches = self.launches(shape, device);
        model.sequence_latency(&launches).unwrap_or(f64::INFINITY)
    }
}

fn evenly(total_flops: f64, grid: usize) -> f64 {
    total_flops / grid.max(1) as f64
}

/// cuDNN `IMPLICIT_GEMM`: the convolution is one big GEMM of the
/// `(H'·W') × (C·R·S)` patch matrix against the `(C·R·S) × N` filter matrix,
/// processed in fixed 64×64 output tiles by 256-thread blocks. Small `N`
/// (exactly the Tucker-core case) leaves most of each tile's work as padding.
#[derive(Debug, Clone, Copy, Default)]
pub struct CudnnGemmCost;

impl ConvCostModel for CudnnGemmCost {
    fn name(&self) -> &'static str {
        "cuDNN-GEMM"
    }

    fn launches(&self, shape: &ConvShape, _device: &DeviceSpec) -> Vec<KernelLaunch> {
        const TILE_M: usize = 64;
        const TILE_N: usize = 64;
        let m = shape.out_h() * shape.out_w();
        let n = shape.n;
        let k = shape.c * shape.r * shape.s;
        let grid = m.div_ceil(TILE_M) * n.div_ceil(TILE_N);
        // Full-tile FLOPs regardless of how much of the tile is padding: this
        // is where the generic library loses on small-channel problems.
        let flops = 2.0 * (grid * TILE_M * TILE_N) as f64 * k as f64;
        // The A panel (implicit im2col) is re-read once per N-tile column; the
        // B panel once per M-tile row; C written once.
        let read_a = n.div_ceil(TILE_N) as f64 * (m * k) as f64 * 4.0;
        let read_b = m.div_ceil(TILE_M) as f64 * (k * n) as f64 * 4.0;
        let write_c = (m * n) as f64 * 4.0;
        vec![KernelLaunch::new("cudnn_implicit_gemm", grid, 256)
            .with_shared_mem(32 * 1024)
            .with_regs(96)
            .with_flops_per_block(evenly(flops, grid))
            .with_global_traffic(read_a + read_b, write_c)
            .with_syncs(k.div_ceil(16))]
    }
}

/// cuDNN `WINOGRAD`: F(2×2, 3×3) tiles, 2.25× fewer multiplies than direct
/// convolution but extra input/kernel/output transforms. Blocks of 256 threads
/// each own a 16×16 output patch for 32 output channels.
#[derive(Debug, Clone, Copy, Default)]
pub struct CudnnWinogradCost;

impl ConvCostModel for CudnnWinogradCost {
    fn name(&self) -> &'static str {
        "cuDNN-WINOGRAD"
    }

    fn launches(&self, shape: &ConvShape, _device: &DeviceSpec) -> Vec<KernelLaunch> {
        const TILE_HW: usize = 16;
        const TILE_N: usize = 32;
        let grid = shape.out_h().div_ceil(TILE_HW)
            * shape.out_w().div_ceil(TILE_HW)
            * shape.n.div_ceil(TILE_N);
        // Effective multiplies: padded tile volume / 2.25, plus ~35% transform
        // overhead (input BtdB, kernel GgGt, output AtmA).
        let padded_outputs = (grid * TILE_HW * TILE_HW * TILE_N) as f64;
        let flops =
            2.0 * padded_outputs * shape.c as f64 * (shape.r * shape.s) as f64 / 2.25 * 1.35;
        let read_input = shape.n.div_ceil(TILE_N) as f64 * shape.input_elems() as f64 * 4.0;
        // Transformed filters (4x4 per (c, n) pair) are re-read by every spatial tile.
        let spatial_tiles =
            (shape.out_h().div_ceil(TILE_HW) * shape.out_w().div_ceil(TILE_HW)) as f64;
        let read_filters = spatial_tiles * (shape.c * shape.n * 16) as f64 * 4.0;
        let write = shape.output_elems() as f64 * 4.0;
        vec![KernelLaunch::new("cudnn_winograd", grid, 256)
            .with_shared_mem(34 * 1024)
            .with_regs(128)
            .with_flops_per_block(evenly(flops, grid))
            .with_global_traffic(read_input + read_filters, write)
            .with_syncs(shape.c.div_ceil(8))]
    }
}

/// cuDNN `FFT`: tiled 32×32 FFTs, a complex pointwise product accumulated over
/// input channels, and inverse transforms. The transforms dominate for 3×3
/// filters, which is why this is the slowest family on most shapes.
#[derive(Debug, Clone, Copy, Default)]
pub struct CudnnFftCost;

impl ConvCostModel for CudnnFftCost {
    fn name(&self) -> &'static str {
        "cuDNN-FFT"
    }

    fn launches(&self, shape: &ConvShape, _device: &DeviceSpec) -> Vec<KernelLaunch> {
        // 32x32 FFT tiles with a usable interior of 32 - (R - 1).
        const L: usize = 32;
        let usable_h = L - (shape.r - 1);
        let usable_w = L - (shape.s - 1);
        let tiles = shape.out_h().div_ceil(usable_h) * shape.out_w().div_ceil(usable_w);
        let plane = (L * L) as f64;
        let fft_plane_flops = 5.0 * plane * (plane.log2());
        let (c, n) = (shape.c as f64, shape.n as f64);

        // Kernel 1: forward FFT of every (tile, channel) plane.
        let k1_grid = tiles * shape.c;
        let k1_flops = tiles as f64 * c * fft_plane_flops;
        let k1 = KernelLaunch::new("cudnn_fft_forward", k1_grid, 256)
            .with_shared_mem(2 * L * L * 8)
            .with_regs(64)
            .with_flops_per_block(evenly(k1_flops, k1_grid))
            .with_global_traffic(
                tiles as f64 * c * plane * 4.0,
                tiles as f64 * c * plane * 8.0,
            )
            .with_syncs(10);

        // Kernel 2: filter FFTs plus the complex pointwise product accumulated
        // over input channels for every (tile, output-channel) pair.
        let k2_grid = (tiles * shape.n).max(1);
        let filter_fft_flops = c * n * fft_plane_flops;
        let pointwise_flops = tiles as f64 * plane * c * n * 8.0;
        let k2_flops = filter_fft_flops + pointwise_flops;
        let k2_read =
            tiles as f64 * c * plane * 8.0 * n.min(4.0) + c * n * (shape.r * shape.s) as f64 * 4.0;
        let k2_write = tiles as f64 * n * plane * 8.0;
        let k2 = KernelLaunch::new("cudnn_fft_pointwise", k2_grid, 256)
            .with_shared_mem(2 * L * L * 8)
            .with_regs(72)
            .with_flops_per_block(evenly(k2_flops, k2_grid))
            .with_global_traffic(k2_read, k2_write)
            .with_syncs(shape.c);

        // Kernel 3: inverse FFT of every (tile, output-channel) plane and crop.
        let k3_grid = (tiles * shape.n).max(1);
        let k3_flops = tiles as f64 * n * fft_plane_flops;
        let k3 = KernelLaunch::new("cudnn_fft_inverse", k3_grid, 256)
            .with_shared_mem(2 * L * L * 8)
            .with_regs(64)
            .with_flops_per_block(evenly(k3_flops, k3_grid))
            .with_global_traffic(
                tiles as f64 * n * plane * 8.0,
                shape.output_elems() as f64 * 4.0,
            )
            .with_syncs(10);

        vec![k1, k2, k3]
    }
}

/// The TVM scheme, auto-tuned per shape (Listing 1 + exhaustive tile search).
#[derive(Debug, Clone, Copy, Default)]
pub struct TvmCost;

impl ConvCostModel for TvmCost {
    fn name(&self) -> &'static str {
        "TVM"
    }

    fn launches(&self, shape: &ConvShape, device: &DeviceSpec) -> Vec<KernelLaunch> {
        let tile = TvmTile::autotune(shape, device);
        vec![tile.kernel_launch(shape, device)]
    }
}

/// The TDC scheme with an explicit tiling (selection of the tiling lives in
/// the `tdc` crate's performance model).
#[derive(Debug, Clone, Copy)]
pub struct TdcCost {
    /// The `(TH, TW, TC)` tiling to cost.
    pub tiling: Tiling,
}

impl ConvCostModel for TdcCost {
    fn name(&self) -> &'static str {
        "TDC"
    }

    fn launches(&self, shape: &ConvShape, device: &DeviceSpec) -> Vec<KernelLaunch> {
        vec![self.tiling.kernel_launch(shape, device)]
    }
}

/// Latency of the named algorithm on a shape/device, using the default tiling
/// search for TDC (smallest modelled latency over all candidate tilings).
pub fn algorithm_latency_ms(alg: ConvAlgorithm, shape: &ConvShape, device: &DeviceSpec) -> f64 {
    match alg {
        ConvAlgorithm::CudnnGemm => CudnnGemmCost.latency_ms(shape, device),
        ConvAlgorithm::CudnnWinograd => CudnnWinogradCost.latency_ms(shape, device),
        ConvAlgorithm::CudnnFft => CudnnFftCost.latency_ms(shape, device),
        ConvAlgorithm::Tvm => TvmCost.latency_ms(shape, device),
        ConvAlgorithm::Tdc => {
            let model = LatencyModel::new(device.clone());
            Tiling::enumerate(shape, device)
                .into_iter()
                .filter_map(|t| {
                    model
                        .kernel_latency(&t.kernel_launch(shape, device))
                        .ok()
                        .map(|l| l.total_ms)
                })
                .fold(f64::INFINITY, f64::min)
        }
    }
}

/// The best (lowest-latency) cuDNN algorithm for a shape — the paper fixes
/// IMPLICIT_GEMM for end-to-end runs because it wins among the cuDNN variants
/// on their hardware; this helper lets tests check the analogous choice here.
pub fn best_cudnn_latency_ms(shape: &ConvShape, device: &DeviceSpec) -> (ConvAlgorithm, f64) {
    ConvAlgorithm::cudnn_variants()
        .into_iter()
        .map(|a| (a, algorithm_latency_ms(a, shape, device)))
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
        .expect("non-empty cuDNN variant list")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shapes::figure6_shapes;

    #[test]
    fn all_models_produce_valid_launches() {
        let dev = DeviceSpec::a100();
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        for launches in [
            CudnnGemmCost.launches(&shape, &dev),
            CudnnWinogradCost.launches(&shape, &dev),
            CudnnFftCost.launches(&shape, &dev),
            TvmCost.launches(&shape, &dev),
        ] {
            assert!(!launches.is_empty());
            for l in launches {
                l.validate(&dev).unwrap_or_else(|e| panic!("{e}"));
            }
        }
    }

    #[test]
    fn latencies_are_finite_and_positive() {
        let dev = DeviceSpec::a100();
        let shape = ConvShape::same3x3(96, 64, 28, 28);
        for alg in [
            ConvAlgorithm::CudnnGemm,
            ConvAlgorithm::CudnnWinograd,
            ConvAlgorithm::CudnnFft,
            ConvAlgorithm::Tvm,
            ConvAlgorithm::Tdc,
        ] {
            let ms = algorithm_latency_ms(alg, &shape, &dev);
            assert!(ms.is_finite() && ms > 0.0, "{alg:?} -> {ms}");
        }
    }

    #[test]
    fn tdc_beats_every_baseline_on_typical_tucker_core_shapes() {
        // The headline claim of Figures 6/7 for the medium/small spatial shapes.
        let dev = DeviceSpec::a100();
        for shape in [
            ConvShape::same3x3(64, 32, 28, 28),
            ConvShape::same3x3(160, 96, 28, 28),
            ConvShape::same3x3(128, 96, 14, 14),
            ConvShape::same3x3(96, 64, 7, 7),
        ] {
            let tdc = algorithm_latency_ms(ConvAlgorithm::Tdc, &shape, &dev);
            for alg in [
                ConvAlgorithm::CudnnGemm,
                ConvAlgorithm::CudnnWinograd,
                ConvAlgorithm::CudnnFft,
                ConvAlgorithm::Tvm,
            ] {
                let other = algorithm_latency_ms(alg, &shape, &dev);
                assert!(
                    tdc < other,
                    "TDC ({tdc:.4} ms) should beat {alg:?} ({other:.4} ms) on {shape}"
                );
            }
        }
    }

    #[test]
    fn tdc_loses_or_ties_on_the_large_vgg_shapes() {
        // Figures 6/7 note TDC is slower than or similar to TVM/cuDNN on the
        // (64, 32, 224, 224) and (64, 32, 112, 112) shapes.
        let dev = DeviceSpec::a100();
        let shape = ConvShape::same3x3(64, 32, 224, 224);
        let tdc = algorithm_latency_ms(ConvAlgorithm::Tdc, &shape, &dev);
        let tvm = algorithm_latency_ms(ConvAlgorithm::Tvm, &shape, &dev);
        let wino = algorithm_latency_ms(ConvAlgorithm::CudnnWinograd, &shape, &dev);
        assert!(
            tdc > 0.5 * tvm.min(wino),
            "TDC should not dominate on the large VGG shape (tdc={tdc:.4}, tvm={tvm:.4}, wino={wino:.4})"
        );
    }

    #[test]
    fn fft_is_slower_than_winograd_on_small_filters() {
        let dev = DeviceSpec::rtx2080ti();
        let shape = ConvShape::same3x3(96, 64, 28, 28);
        let fft = algorithm_latency_ms(ConvAlgorithm::CudnnFft, &shape, &dev);
        let wino = algorithm_latency_ms(ConvAlgorithm::CudnnWinograd, &shape, &dev);
        assert!(
            fft > wino,
            "FFT ({fft:.4}) should lose to Winograd ({wino:.4}) on 3x3 filters"
        );
    }

    #[test]
    fn best_cudnn_picks_the_minimum() {
        let dev = DeviceSpec::a100();
        let shape = ConvShape::same3x3(64, 64, 56, 56);
        let (alg, ms) = best_cudnn_latency_ms(&shape, &dev);
        for other in ConvAlgorithm::cudnn_variants() {
            assert!(ms <= algorithm_latency_ms(other, &shape, &dev) + 1e-12);
        }
        assert!(ConvAlgorithm::cudnn_variants().contains(&alg));
    }

    #[test]
    fn every_figure6_shape_is_costable_by_every_algorithm() {
        let dev = DeviceSpec::a100();
        for shape in figure6_shapes() {
            for alg in [
                ConvAlgorithm::CudnnGemm,
                ConvAlgorithm::CudnnWinograd,
                ConvAlgorithm::CudnnFft,
                ConvAlgorithm::Tvm,
            ] {
                let ms = algorithm_latency_ms(alg, &shape, &dev);
                assert!(ms.is_finite() && ms > 0.0, "{alg:?} failed on {shape}");
            }
        }
    }

    #[test]
    fn labels_match_paper_terminology() {
        assert_eq!(ConvAlgorithm::CudnnGemm.label(), "cuDNN-GEMM");
        assert_eq!(ConvAlgorithm::Tvm.label(), "TVM");
        assert_eq!(ConvAlgorithm::Tdc.label(), "TDC");
    }
}
