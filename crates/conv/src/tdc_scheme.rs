//! The TDC convolution scheme (paper Listing 2).
//!
//! The input is tiled over height, width **and input channel** with tile sizes
//! `(TH, TW, TC)`; each tile maps to one thread block with `N` threads (one
//! per output channel). A block stages its `(TH+R−1)×(TW+S−1)×TC` input cube
//! in shared memory with a single `__syncthreads`, every thread accumulates a
//! `TH×TW` output patch in registers while streaming the `CRSN`-layout weights,
//! and the partial results from the `C/TC` channel-tiles are combined with
//! `atomicAdd`.
//!
//! Two things are provided here:
//!
//! * [`run`] — a CPU emulation of that exact blocking/accumulation structure
//!   (used to show the scheme computes the same thing as the direct reference,
//!   including the cross-block atomic accumulation), and
//! * [`Tiling::kernel_launch`] — the analytical descriptor used by the
//!   simulator and by the tiling-selection model in the `tdc` crate.

use crate::layout::{check_input_hwc, pad_hwc};
use crate::shapes::ConvShape;
use crate::{ConvError, Result};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use tdc_gpu_sim::{DeviceSpec, KernelLaunch};
use tdc_tensor::Tensor;

/// Tile sizes `(TH, TW, TC)` of the TDC core-convolution kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Tile height.
    pub th: usize,
    /// Tile width.
    pub tw: usize,
    /// Input-channel tile depth.
    pub tc: usize,
}

impl Tiling {
    /// Create a tiling; all components must be at least 1.
    pub fn new(th: usize, tw: usize, tc: usize) -> Self {
        Tiling {
            th: th.max(1),
            tw: tw.max(1),
            tc: tc.max(1),
        }
    }

    /// Check the tiling against a convolution shape.
    pub fn validate(&self, shape: &ConvShape) -> Result<()> {
        if self.th > shape.out_h() || self.tw > shape.out_w() {
            return Err(ConvError::BadTiling {
                reason: format!(
                    "tile {}x{} larger than output {}x{}",
                    self.th,
                    self.tw,
                    shape.out_h(),
                    shape.out_w()
                ),
            });
        }
        if self.tc > shape.c {
            return Err(ConvError::BadTiling {
                reason: format!("channel tile {} larger than C={}", self.tc, shape.c),
            });
        }
        Ok(())
    }

    /// Number of thread blocks this tiling produces for a shape:
    /// `⌈H'/TH⌉ · ⌈W'/TW⌉ · ⌈C/TC⌉`.
    pub fn grid_blocks(&self, shape: &ConvShape) -> usize {
        shape.out_h().div_ceil(self.th)
            * shape.out_w().div_ceil(self.tw)
            * shape.c.div_ceil(self.tc)
    }

    /// Shared-memory bytes one block needs: the input cube
    /// `(TH+R−1)·(TW+S−1)·TC` in fp32.
    pub fn shared_mem_bytes(&self, shape: &ConvShape) -> usize {
        (self.th + shape.r - 1) * (self.tw + shape.s - 1) * self.tc * 4
    }

    /// Register estimate per thread: the `TH×TW` accumulator patch plus the
    /// `R×S` staged weights plus bookkeeping.
    pub fn regs_per_thread(&self, shape: &ConvShape) -> usize {
        self.th * self.tw + shape.r * shape.s + 24
    }

    /// FLOPs one block performs (paper Section 5.3):
    /// `2 · (TH+R−1) · (TW+S−1) · TC · N · R · S`.
    pub fn flops_per_block(&self, shape: &ConvShape) -> f64 {
        2.0 * (self.th + shape.r - 1) as f64
            * (self.tw + shape.s - 1) as f64
            * self.tc as f64
            * shape.n as f64
            * shape.r as f64
            * shape.s as f64
    }

    /// Global-memory traffic in bytes `(input, kernel, output)` following the
    /// structure of Eq. (16)–(18). Unlike the paper's Eq. (16) we include the
    /// `R·S` factor in the kernel volume, since each block physically streams
    /// `TC·R·S·N` weights; the omission in the paper reads as a typo and the
    /// selection behaviour is unaffected (see DESIGN.md).
    pub fn traffic_bytes(&self, shape: &ConvShape) -> (f64, f64, f64) {
        let tiles_hw = (shape.out_h().div_ceil(self.th) * shape.out_w().div_ceil(self.tw)) as f64;
        let halo = ((self.th + shape.r - 1) * (self.tw + shape.s - 1)) as f64;
        let input = tiles_hw * shape.c as f64 * halo * 4.0;
        let kernel = tiles_hw * shape.c as f64 * shape.n as f64 * (shape.r * shape.s) as f64 * 4.0;
        let output = (shape.out_h() * shape.out_w() * shape.n) as f64
            * shape.c.div_ceil(self.tc) as f64
            * 4.0;
        (input, kernel, output)
    }

    /// Build the kernel-launch descriptor for this tiling on a device.
    pub fn kernel_launch(&self, shape: &ConvShape, device: &DeviceSpec) -> KernelLaunch {
        let (inp, ker, out) = self.traffic_bytes(shape);
        // Boundary threads skip taps that fall outside the tile; the wasted
        // issue slots appear as divergence. The waste fraction is the halo
        // area that contributes no output relative to the full sliding window.
        let window = ((self.th + shape.r - 1) * (self.tw + shape.s - 1)) as f64;
        let useful = (self.th * self.tw) as f64;
        let divergence = (1.0 - useful / window) * 0.5;
        let _ = device;
        KernelLaunch::new("tdc_core_conv", self.grid_blocks(shape), shape.n)
            .with_shared_mem(self.shared_mem_bytes(shape))
            .with_regs(self.regs_per_thread(shape).min(255))
            .with_flops_per_block(self.flops_per_block(shape))
            .with_global_traffic(inp + ker, out)
            .with_syncs(1)
            .with_divergence(divergence)
    }

    /// Whether this tiling can be launched at all on the device (thread count,
    /// shared memory, registers within limits).
    pub fn is_launchable(&self, shape: &ConvShape, device: &DeviceSpec) -> bool {
        self.validate(shape).is_ok() && self.kernel_launch(shape, device).validate(device).is_ok()
    }

    /// Candidate tile values used by both the oracle (exhaustive) and the
    /// analytical search. The paper searches every value in `1..=dim`; to keep
    /// the simulator-based search tractable we enumerate every value up to 32
    /// and then only divisors or powers of two beyond that, which always
    /// contains the paper's preferred configurations.
    pub fn candidate_values(dim: usize) -> Vec<usize> {
        let mut vals: Vec<usize> = (1..=dim.min(32)).collect();
        let mut v = 64;
        while v <= dim {
            vals.push(v);
            v *= 2;
        }
        for d in [48usize, 56, 112, 224] {
            if d <= dim && dim.is_multiple_of(d) {
                vals.push(d);
            }
        }
        vals.sort_unstable();
        vals.dedup();
        vals
    }

    /// Enumerate every candidate tiling for a shape that can launch on the device.
    pub fn enumerate(shape: &ConvShape, device: &DeviceSpec) -> Vec<Tiling> {
        let ths = Self::candidate_values(shape.out_h());
        let tws = Self::candidate_values(shape.out_w());
        let tcs = Self::candidate_values(shape.c);
        let mut out = Vec::new();
        for &th in &ths {
            for &tw in &tws {
                for &tc in &tcs {
                    let t = Tiling::new(th, tw, tc);
                    if t.is_launchable(shape, device) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Tiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(TH={}, TW={}, TC={})", self.th, self.tw, self.tc)
    }
}

/// CPU emulation of the TDC scheme: identical blocking, per-thread register
/// accumulation and atomic cross-block combination as Listing 2, so tests can
/// verify the scheme computes exactly what the direct reference computes.
///
/// The kernel must be supplied in `CRSN` layout
/// (see [`crate::layout::cnrs_to_crsn`]); stride must be 1.
pub fn run(
    input: &Tensor,
    kernel_crsn: &Tensor,
    shape: &ConvShape,
    tiling: &Tiling,
) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    if shape.stride != 1 {
        return Err(ConvError::Unsupported {
            algorithm: "tdc_scheme",
            reason: "the TDC core kernel targets stride-1 core convolutions".into(),
        });
    }
    let expected_kernel = vec![shape.c, shape.r, shape.s, shape.n];
    if kernel_crsn.dims() != expected_kernel.as_slice() {
        return Err(ConvError::BadKernel {
            expected: expected_kernel,
            actual: kernel_crsn.dims().to_vec(),
        });
    }
    tiling.validate(shape)?;

    let padded = pad_hwc(input, shape.pad)?;
    let pw = shape.w + 2 * shape.pad;
    let ph = shape.h + 2 * shape.pad;
    let (out_h, out_w, n, c) = (shape.out_h(), shape.out_w(), shape.n, shape.c);
    let (r, s) = (shape.r, shape.s);
    let (th, tw, tc) = (tiling.th, tiling.tw, tiling.tc);
    let tiles_h = out_h.div_ceil(th);
    let tiles_w = out_w.div_ceil(tw);
    let tiles_c = c.div_ceil(tc);

    let x = padded.data();
    let k = kernel_crsn.data();

    // Each (tile_h, tile_w) owns a disjoint output region; channel-tiles are
    // partial sums into the same region (the atomicAdd of Listing 2), so we
    // parallelise over spatial tiles and keep the channel-tile loop sequential
    // inside — same arithmetic, deterministic order.
    let mut out = vec![0.0f32; out_h * out_w * n];
    let blocks: Vec<(usize, usize)> = (0..tiles_h)
        .flat_map(|y| (0..tiles_w).map(move |x| (y, x)))
        .collect();

    let tile_results: Vec<(usize, usize, Vec<f32>)> = blocks
        .par_iter()
        .map(|&(ty, tx)| {
            let oy0 = ty * th;
            let ox0 = tx * tw;
            let eff_th = th.min(out_h - oy0);
            let eff_tw = tw.min(out_w - ox0);
            let mut tile_out = vec![0.0f32; th * tw * n];
            for tcb in 0..tiles_c {
                let c0 = tcb * tc;
                let c1 = (c0 + tc).min(c);
                // "shared memory": the input cube for this block.
                let cube_h = eff_th + r - 1;
                let cube_w = eff_tw + s - 1;
                let mut cube = vec![0.0f32; cube_h * cube_w * (c1 - c0)];
                for (ci, ch) in (c0..c1).enumerate() {
                    for hy in 0..cube_h {
                        for wx in 0..cube_w {
                            let gy = oy0 + hy;
                            let gx = ox0 + wx;
                            cube[(ci * cube_h + hy) * cube_w + wx] = if gy < ph && gx < pw {
                                x[(gy * pw + gx) * c + ch]
                            } else {
                                0.0
                            };
                        }
                    }
                }
                // One "thread" per output channel: scatter each input element
                // into the register accumulator exactly as Listing 2 does.
                for on in 0..n {
                    let mut temp = vec![0.0f32; th * tw];
                    for (ci, ch) in (c0..c1).enumerate() {
                        for hy in 0..cube_h {
                            for wx in 0..cube_w {
                                let v = cube[(ci * cube_h + hy) * cube_w + wx];
                                if v == 0.0 {
                                    continue;
                                }
                                for rr in 0..r {
                                    if hy < rr {
                                        continue;
                                    }
                                    let y_out = hy - rr;
                                    if y_out >= eff_th {
                                        continue;
                                    }
                                    for ss in 0..s {
                                        if wx < ss {
                                            continue;
                                        }
                                        let x_out = wx - ss;
                                        if x_out >= eff_tw {
                                            continue;
                                        }
                                        // CRSN layout: ((ch * R + rr) * S + ss) * N + on
                                        let kv = k[((ch * r + rr) * s + ss) * n + on];
                                        temp[y_out * tw + x_out] += v * kv;
                                    }
                                }
                            }
                        }
                    }
                    // atomicAdd(Y[...], temp) — accumulate the channel-tile
                    // partial sum into the block's output patch.
                    for y_out in 0..eff_th {
                        for x_out in 0..eff_tw {
                            tile_out[(y_out * tw + x_out) * n + on] += temp[y_out * tw + x_out];
                        }
                    }
                }
            }
            (ty, tx, tile_out)
        })
        .collect();

    for (ty, tx, tile_out) in tile_results {
        let oy0 = ty * th;
        let ox0 = tx * tw;
        for dy in 0..th {
            let oy = oy0 + dy;
            if oy >= out_h {
                continue;
            }
            for dx in 0..tw {
                let ox = ox0 + dx;
                if ox >= out_w {
                    continue;
                }
                for on in 0..n {
                    out[(oy * out_w + ox) * n + on] += tile_out[(dy * tw + dx) * n + on];
                }
            }
        }
    }

    Ok(Tensor::from_vec(vec![out_h, out_w, n], out)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use crate::layout::cnrs_to_crsn;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn tiling_geometry() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        let t = Tiling::new(7, 7, 16);
        assert_eq!(t.grid_blocks(&shape), 4 * 4 * 4);
        assert_eq!(t.shared_mem_bytes(&shape), 9 * 9 * 16 * 4);
        let flops = t.flops_per_block(&shape);
        assert!((flops - 2.0 * 81.0 * 16.0 * 32.0 * 9.0).abs() < 1.0);
    }

    #[test]
    fn tiling_validation() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        assert!(Tiling::new(7, 7, 16).validate(&shape).is_ok());
        assert!(Tiling::new(29, 7, 16).validate(&shape).is_err());
        assert!(Tiling::new(7, 7, 128).validate(&shape).is_err());
        // Zero components are clamped to 1 by the constructor.
        assert_eq!(Tiling::new(0, 0, 0), Tiling::new(1, 1, 1));
    }

    #[test]
    fn kernel_launch_respects_device_limits() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        let dev = DeviceSpec::a100();
        let t = Tiling::new(4, 4, 8);
        assert!(t.is_launchable(&shape, &dev));
        let launch = t.kernel_launch(&shape, &dev);
        assert_eq!(launch.threads_per_block, 32);
        assert_eq!(launch.syncs_per_block, 1);
        // An absurd tile blows the register or shared-memory budget.
        let huge = Tiling::new(28, 28, 64);
        assert!(!huge.is_launchable(&shape, &dev));
    }

    #[test]
    fn traffic_matches_eqs_16_to_18_structure() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        let t = Tiling::new(7, 7, 16);
        let (inp, ker, out) = t.traffic_bytes(&shape);
        // 16 spatial tiles, halo 9x9.
        assert!((inp - 16.0 * 64.0 * 81.0 * 4.0).abs() < 1.0);
        assert!((ker - 16.0 * 64.0 * 32.0 * 9.0 * 4.0).abs() < 1.0);
        // 4 channel tiles each rewrite the full output.
        assert!((out - (28.0 * 28.0 * 32.0) * 4.0 * 4.0).abs() < 1.0);
        // Larger TC means fewer output rewrites.
        let (_, _, out_big_tc) = Tiling::new(7, 7, 64).traffic_bytes(&shape);
        assert!(out_big_tc < out);
    }

    #[test]
    fn candidate_enumeration_is_bounded_and_launchable() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        let dev = DeviceSpec::a100();
        let all = Tiling::enumerate(&shape, &dev);
        assert!(!all.is_empty());
        assert!(all.len() < 40_000);
        assert!(all.iter().all(|t| t.is_launchable(&shape, &dev)));
    }

    #[test]
    fn scheme_matches_direct_reference() {
        let mut rng = StdRng::seed_from_u64(51);
        let cases = [
            (ConvShape::core(4, 6, 10, 10), Tiling::new(3, 3, 2)),
            (ConvShape::same3x3(8, 5, 9, 9), Tiling::new(4, 5, 3)),
            (ConvShape::same3x3(6, 8, 12, 7), Tiling::new(12, 7, 6)),
            (ConvShape::core(3, 4, 8, 8), Tiling::new(1, 1, 1)),
        ];
        for (shape, tiling) in cases {
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let crsn = cnrs_to_crsn(&kernel).unwrap();
            let ours = run(&input, &crsn, &shape, &tiling).unwrap();
            let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
            assert!(
                ours.relative_error(&reference).unwrap() < 1e-4,
                "mismatch for {shape} with {tiling}: {}",
                ours.relative_error(&reference).unwrap()
            );
        }
    }

    #[test]
    fn scheme_rejects_bad_inputs() {
        let shape = ConvShape::core(4, 6, 10, 10);
        let input = Tensor::zeros(shape.input_dims());
        let kernel_cnrs = Tensor::zeros(shape.kernel_dims());
        // Forgetting the CRSN conversion is an error, not silent garbage.
        assert!(run(&input, &kernel_cnrs, &shape, &Tiling::new(2, 2, 2)).is_err());
        let strided = ConvShape::new(4, 6, 10, 10, 3, 3, 0, 2);
        let crsn = Tensor::zeros(vec![4, 3, 3, 6]);
        assert!(run(&input, &crsn, &strided, &Tiling::new(2, 2, 2)).is_err());
    }

    #[test]
    fn divergence_shrinks_with_larger_tiles() {
        let shape = ConvShape::same3x3(64, 32, 28, 28);
        let dev = DeviceSpec::a100();
        let small = Tiling::new(1, 1, 8).kernel_launch(&shape, &dev);
        let large = Tiling::new(14, 14, 8).kernel_launch(&shape, &dev);
        assert!(small.divergence_waste > large.divergence_waste);
    }
}
