//! FFT-based convolution — the cuDNN `FFT` analogue.
//!
//! The convolution theorem turns spatial convolution into a pointwise product
//! in the frequency domain. For the small 3×3 filters that dominate modern
//! CNNs this is rarely the fastest choice (the transforms dominate), which is
//! exactly why cuDNN-FFT is the slowest baseline in the paper's Figures 6/7 —
//! but it is part of the comparison, so it is implemented here from scratch:
//! an iterative radix-2 Cooley–Tukey FFT, a 2-D transform built from row and
//! column passes, and a correlation wrapper that matches the direct reference.

use crate::layout::{check_input_hwc, check_kernel_cnrs, pad_hwc};
use crate::shapes::ConvShape;
use crate::{ConvError, Result};
use rayon::prelude::*;
use tdc_tensor::Tensor;

/// A dense complex matrix stored as separate real/imaginary planes.
#[derive(Debug, Clone)]
pub struct ComplexPlane {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Real parts, row-major.
    pub re: Vec<f64>,
    /// Imaginary parts, row-major.
    pub im: Vec<f64>,
}

impl ComplexPlane {
    /// All-zero plane.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        ComplexPlane {
            rows,
            cols,
            re: vec![0.0; rows * cols],
            im: vec![0.0; rows * cols],
        }
    }

    /// Pointwise complex multiply-accumulate: `self += a ⊙ b`.
    pub fn add_product(&mut self, a: &ComplexPlane, b: &ComplexPlane) {
        debug_assert_eq!(self.rows, a.rows);
        debug_assert_eq!(self.cols, b.cols);
        for i in 0..self.re.len() {
            let (ar, ai) = (a.re[i], a.im[i]);
            let (br, bi) = (b.re[i], b.im[i]);
            self.re[i] += ar * br - ai * bi;
            self.im[i] += ar * bi + ai * br;
        }
    }
}

/// Smallest power of two ≥ `n`.
pub fn next_pow2(n: usize) -> usize {
    let mut p = 1;
    while p < n {
        p <<= 1;
    }
    p
}

/// In-place iterative radix-2 FFT of a length-power-of-two complex vector.
/// `inverse = true` computes the unscaled inverse transform (caller divides by N).
fn fft_1d(re: &mut [f64], im: &mut [f64], inverse: bool) {
    let n = re.len();
    debug_assert!(n.is_power_of_two(), "fft length must be a power of two");
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            re.swap(i, j);
            im.swap(i, j);
        }
    }
    // Butterflies.
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (ang.cos(), ang.sin());
        let mut i = 0;
        while i < n {
            let (mut cur_r, mut cur_i) = (1.0f64, 0.0f64);
            for k in 0..len / 2 {
                let (ur, ui) = (re[i + k], im[i + k]);
                let (vr, vi) = (
                    re[i + k + len / 2] * cur_r - im[i + k + len / 2] * cur_i,
                    re[i + k + len / 2] * cur_i + im[i + k + len / 2] * cur_r,
                );
                re[i + k] = ur + vr;
                im[i + k] = ui + vi;
                re[i + k + len / 2] = ur - vr;
                im[i + k + len / 2] = ui - vi;
                let next_r = cur_r * wr - cur_i * wi;
                cur_i = cur_r * wi + cur_i * wr;
                cur_r = next_r;
            }
            i += len;
        }
        len <<= 1;
    }
}

/// 2-D FFT of a plane whose dimensions are powers of two.
pub fn fft_2d(plane: &mut ComplexPlane, inverse: bool) {
    let (rows, cols) = (plane.rows, plane.cols);
    // Row transforms.
    for r in 0..rows {
        fft_1d(
            &mut plane.re[r * cols..(r + 1) * cols],
            &mut plane.im[r * cols..(r + 1) * cols],
            inverse,
        );
    }
    // Column transforms via transpose-free strided gather.
    let mut col_re = vec![0.0f64; rows];
    let mut col_im = vec![0.0f64; rows];
    for c in 0..cols {
        for r in 0..rows {
            col_re[r] = plane.re[r * cols + c];
            col_im[r] = plane.im[r * cols + c];
        }
        fft_1d(&mut col_re, &mut col_im, inverse);
        for r in 0..rows {
            plane.re[r * cols + c] = col_re[r];
            plane.im[r * cols + c] = col_im[r];
        }
    }
    if inverse {
        let scale = 1.0 / (rows * cols) as f64;
        for v in plane.re.iter_mut() {
            *v *= scale;
        }
        for v in plane.im.iter_mut() {
            *v *= scale;
        }
    }
}

/// FFT-based convolution matching [`crate::direct::conv2d`]. Supports any
/// stride ≥ 1 (stride > 1 is handled by computing the stride-1 result and
/// subsampling, which is also how FFT libraries handle it).
// Index-symmetric numeric kernel: explicit indices mirror the math.
#[allow(clippy::needless_range_loop)]
pub fn conv2d(input: &Tensor, kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
    check_input_hwc(input, shape)?;
    check_kernel_cnrs(kernel, shape)?;
    if !shape.is_valid() {
        return Err(ConvError::Unsupported {
            algorithm: "fft",
            reason: format!("invalid shape {shape}"),
        });
    }

    let padded = pad_hwc(input, shape.pad)?;
    let ph = shape.h + 2 * shape.pad;
    let pw = shape.w + 2 * shape.pad;
    let (c, n, r, s) = (shape.c, shape.n, shape.r, shape.s);
    let lh = next_pow2(ph + r - 1);
    let lw = next_pow2(pw + s - 1);

    // Forward transforms of each input channel.
    let x = padded.data();
    let input_spectra: Vec<ComplexPlane> = (0..c)
        .into_par_iter()
        .map(|ch| {
            let mut plane = ComplexPlane::zeros(lh, lw);
            for y in 0..ph {
                for xx in 0..pw {
                    plane.re[y * lw + xx] = x[(y * pw + xx) * c + ch] as f64;
                }
            }
            fft_2d(&mut plane, false);
            plane
        })
        .collect();

    // For each output channel: accumulate spectra of (flipped kernel) * input,
    // inverse-transform, and crop the "valid-correlation" window.
    let full_out_h = ph - r + 1;
    let full_out_w = pw - s + 1;
    let (out_h, out_w) = (shape.out_h(), shape.out_w());

    let per_channel: Vec<Vec<f32>> = (0..n)
        .into_par_iter()
        .map(|on| {
            let mut acc = ComplexPlane::zeros(lh, lw);
            for ch in 0..c {
                let mut kplane = ComplexPlane::zeros(lh, lw);
                // Flip the kernel so that linear convolution performs correlation.
                for rr in 0..r {
                    for ss in 0..s {
                        kplane.re[(r - 1 - rr) * lw + (s - 1 - ss)] =
                            kernel.get(&[ch, on, rr, ss]) as f64;
                    }
                }
                fft_2d(&mut kplane, false);
                acc.add_product(&input_spectra[ch], &kplane);
            }
            fft_2d(&mut acc, true);
            // The correlation result lives at offset (r-1, s-1) of the full
            // linear convolution.
            let mut out = vec![0.0f32; out_h * out_w];
            for oy in 0..out_h {
                for ox in 0..out_w {
                    let fy = oy * shape.stride;
                    let fx = ox * shape.stride;
                    debug_assert!(fy < full_out_h && fx < full_out_w);
                    out[oy * out_w + ox] = acc.re[(fy + r - 1) * lw + (fx + s - 1)] as f32;
                }
            }
            out
        })
        .collect();

    let mut out = vec![0.0f32; out_h * out_w * n];
    for on in 0..n {
        for pos in 0..out_h * out_w {
            out[pos * n + on] = per_channel[on][pos];
        }
    }
    Ok(Tensor::from_vec(vec![out_h, out_w, n], out)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use rand::{rngs::StdRng, SeedableRng};
    use tdc_tensor::init;

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(3), 4);
        assert_eq!(next_pow2(17), 32);
        assert_eq!(next_pow2(64), 64);
    }

    #[test]
    fn fft_round_trip_recovers_signal() {
        let n = 16;
        let mut re: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut im = vec![0.0f64; n];
        let orig = re.clone();
        fft_1d(&mut re, &mut im, false);
        fft_1d(&mut re, &mut im, true);
        for i in 0..n {
            assert!((re[i] / n as f64 - orig[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn fft2d_of_impulse_is_flat() {
        let mut p = ComplexPlane::zeros(8, 8);
        p.re[0] = 1.0;
        fft_2d(&mut p, false);
        for i in 0..64 {
            assert!((p.re[i] - 1.0).abs() < 1e-9);
            assert!(p.im[i].abs() < 1e-9);
        }
    }

    #[test]
    fn matches_direct_convolution() {
        let mut rng = StdRng::seed_from_u64(31);
        let shapes = [
            ConvShape::core(1, 1, 6, 6),
            ConvShape::core(3, 4, 8, 8),
            ConvShape::same3x3(2, 3, 7, 9),
            ConvShape::new(2, 2, 9, 9, 5, 5, 2, 1),
        ];
        for shape in shapes {
            let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
            let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
            let fft_out = conv2d(&input, &kernel, &shape).unwrap();
            let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
            assert!(
                fft_out.relative_error(&reference).unwrap() < 1e-4,
                "mismatch for {shape}: {}",
                fft_out.relative_error(&reference).unwrap()
            );
        }
    }

    #[test]
    fn strided_fft_conv_matches_direct() {
        let mut rng = StdRng::seed_from_u64(37);
        let shape = ConvShape::new(2, 3, 9, 9, 3, 3, 1, 2);
        let input = init::uniform(shape.input_dims(), -1.0, 1.0, &mut rng);
        let kernel = init::uniform(shape.kernel_dims(), -1.0, 1.0, &mut rng);
        let fft_out = conv2d(&input, &kernel, &shape).unwrap();
        let reference = direct::conv2d(&input, &kernel, &shape).unwrap();
        assert!(fft_out.relative_error(&reference).unwrap() < 1e-4);
    }

    #[test]
    fn impulse_kernel_shifts_input() {
        // Kernel with a single 1 at (0, 0): output(oy, ox) = input(oy, ox).
        let shape = ConvShape::core(1, 1, 5, 5);
        let input = Tensor::from_fn(vec![5, 5, 1], |i| (i[0] * 5 + i[1]) as f32);
        let mut kernel = Tensor::zeros(vec![1, 1, 3, 3]);
        kernel.set(&[0, 0, 0, 0], 1.0);
        let out = conv2d(&input, &kernel, &shape).unwrap();
        for oy in 0..3 {
            for ox in 0..3 {
                assert!((out.get(&[oy, ox, 0]) - input.get(&[oy, ox, 0])).abs() < 1e-4);
            }
        }
    }
}
