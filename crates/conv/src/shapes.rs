//! Convolution shape descriptors and the paper's evaluation shapes.

use serde::{Deserialize, Serialize};

/// A single 2-D convolution problem, batch size 1, following the paper's
/// notation: `C` input channels, `N` output channels, `H×W` input spatial
/// size, `R×S` filter size, plus padding and stride.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConvShape {
    /// Input channels.
    pub c: usize,
    /// Output channels.
    pub n: usize,
    /// Input height.
    pub h: usize,
    /// Input width.
    pub w: usize,
    /// Filter height.
    pub r: usize,
    /// Filter width.
    pub s: usize,
    /// Symmetric zero padding applied to both spatial dimensions.
    pub pad: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
}

impl ConvShape {
    /// A 3×3, stride-1, unpadded ("valid") convolution — the configuration the
    /// paper's core-convolution kernels are evaluated with.
    pub fn core(c: usize, n: usize, h: usize, w: usize) -> Self {
        ConvShape {
            c,
            n,
            h,
            w,
            r: 3,
            s: 3,
            pad: 0,
            stride: 1,
        }
    }

    /// A 3×3, stride-1 convolution with "same" padding (pad = 1).
    pub fn same3x3(c: usize, n: usize, h: usize, w: usize) -> Self {
        ConvShape {
            c,
            n,
            h,
            w,
            r: 3,
            s: 3,
            pad: 1,
            stride: 1,
        }
    }

    /// A 1×1 (pointwise) convolution — the channel-mixing layers a
    /// Tucker-format convolution adds before and after the core convolution.
    pub fn pointwise(c: usize, n: usize, h: usize, w: usize) -> Self {
        ConvShape {
            c,
            n,
            h,
            w,
            r: 1,
            s: 1,
            pad: 0,
            stride: 1,
        }
    }

    /// General constructor.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        c: usize,
        n: usize,
        h: usize,
        w: usize,
        r: usize,
        s: usize,
        pad: usize,
        stride: usize,
    ) -> Self {
        ConvShape {
            c,
            n,
            h,
            w,
            r,
            s,
            pad,
            stride,
        }
    }

    /// Output height `H'`.
    pub fn out_h(&self) -> usize {
        (self.h + 2 * self.pad).saturating_sub(self.r) / self.stride + 1
    }

    /// Output width `W'`.
    pub fn out_w(&self) -> usize {
        (self.w + 2 * self.pad).saturating_sub(self.s) / self.stride + 1
    }

    /// Whether the shape produces a non-empty output.
    pub fn is_valid(&self) -> bool {
        self.c > 0
            && self.n > 0
            && self.r > 0
            && self.s > 0
            && self.stride > 0
            && self.h + 2 * self.pad >= self.r
            && self.w + 2 * self.pad >= self.s
    }

    /// Number of multiply-accumulate FLOPs (counting one MAC as 2 FLOPs):
    /// `2 · H' · W' · R · S · C · N`.
    pub fn flops(&self) -> f64 {
        2.0 * self.out_h() as f64
            * self.out_w() as f64
            * self.r as f64
            * self.s as f64
            * self.c as f64
            * self.n as f64
    }

    /// Number of kernel parameters: `C · N · R · S`.
    pub fn params(&self) -> usize {
        self.c * self.n * self.r * self.s
    }

    /// Number of input elements `H · W · C`.
    pub fn input_elems(&self) -> usize {
        self.h * self.w * self.c
    }

    /// Number of output elements `H' · W' · N`.
    pub fn output_elems(&self) -> usize {
        self.out_h() * self.out_w() * self.n
    }

    /// Expected input tensor dims in HWC layout.
    pub fn input_dims(&self) -> Vec<usize> {
        vec![self.h, self.w, self.c]
    }

    /// Expected kernel tensor dims in CNRS layout.
    pub fn kernel_dims(&self) -> Vec<usize> {
        vec![self.c, self.n, self.r, self.s]
    }

    /// Expected output tensor dims in HWC layout.
    pub fn output_dims(&self) -> Vec<usize> {
        vec![self.out_h(), self.out_w(), self.n]
    }

    /// The shape of the Tucker *core* convolution obtained by replacing the
    /// channel counts with the Tucker ranks `(D1, D2)` (paper Section 6).
    pub fn with_ranks(&self, d1: usize, d2: usize) -> ConvShape {
        ConvShape {
            c: d1,
            n: d2,
            ..*self
        }
    }
}

impl std::fmt::Display for ConvShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "(C={}, N={}, H={}, W={}, {}x{}, pad={}, stride={})",
            self.c, self.n, self.h, self.w, self.r, self.s, self.pad, self.stride
        )
    }
}

/// The 18 core-convolution shapes `(C, N, H, W)` evaluated in Figures 6 and 7,
/// in the order the paper plots them. All use 3×3 filters and batch size 1.
pub fn figure6_shapes() -> Vec<ConvShape> {
    const RAW: [(usize, usize, usize, usize); 18] = [
        (64, 32, 224, 224),
        (64, 32, 112, 112),
        (32, 32, 56, 56),
        (64, 32, 56, 56),
        (64, 64, 56, 56),
        (32, 32, 28, 28),
        (64, 32, 28, 28),
        (96, 64, 28, 28),
        (160, 96, 28, 28),
        (192, 96, 28, 28),
        (32, 32, 14, 14),
        (64, 32, 14, 14),
        (128, 96, 14, 14),
        (192, 96, 14, 14),
        (32, 32, 7, 7),
        (64, 32, 7, 7),
        (96, 64, 7, 7),
        (192, 160, 7, 7),
    ];
    RAW.iter()
        .map(|&(c, n, h, w)| ConvShape::same3x3(c, n, h, w))
        .collect()
}

/// The two shape families swept in Figure 4 (latency staircase): input channels
/// fixed at 64, output channels swept from 32 to 256 in steps of 32, at
/// 28×28 and 14×14 spatial sizes.
pub fn figure4_sweep() -> Vec<(ConvShape, &'static str)> {
    let mut out = Vec::new();
    for n in (32..=256).step_by(32) {
        out.push((ConvShape::same3x3(64, n, 28, 28), "28x28"));
    }
    for n in (32..=256).step_by(32) {
        out.push((ConvShape::same3x3(64, n, 14, 14), "14x14"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_dims_valid_and_same_padding() {
        let valid = ConvShape::core(16, 32, 14, 14);
        assert_eq!(valid.out_h(), 12);
        assert_eq!(valid.out_w(), 12);
        let same = ConvShape::same3x3(16, 32, 14, 14);
        assert_eq!(same.out_h(), 14);
        assert_eq!(same.out_w(), 14);
    }

    #[test]
    fn strided_output_dims() {
        let s = ConvShape::new(3, 64, 224, 224, 7, 7, 3, 2);
        // (224 + 6 - 7) / 2 + 1 = 112 (ResNet stem).
        assert_eq!(s.out_h(), 112);
        assert_eq!(s.out_w(), 112);
    }

    #[test]
    fn pointwise_preserves_spatial_dims() {
        let p = ConvShape::pointwise(64, 16, 28, 28);
        assert_eq!(p.out_h(), 28);
        assert_eq!(p.out_w(), 28);
        assert_eq!(p.params(), 64 * 16);
    }

    #[test]
    fn flops_formula_matches_paper() {
        // 2 * H'W' * RS * C * N
        let s = ConvShape::same3x3(64, 32, 28, 28);
        let expected = 2.0 * 28.0 * 28.0 * 9.0 * 64.0 * 32.0;
        assert!((s.flops() - expected).abs() < 1.0);
    }

    #[test]
    fn params_formula() {
        let s = ConvShape::same3x3(64, 32, 28, 28);
        assert_eq!(s.params(), 64 * 32 * 9);
    }

    #[test]
    fn validity_checks() {
        assert!(ConvShape::core(1, 1, 3, 3).is_valid());
        assert!(!ConvShape::core(1, 1, 2, 2).is_valid()); // 3x3 filter on 2x2 input, no pad
        assert!(!ConvShape::new(0, 1, 8, 8, 3, 3, 0, 1).is_valid());
        assert!(!ConvShape::new(1, 1, 8, 8, 3, 3, 0, 0).is_valid());
    }

    #[test]
    fn figure6_shape_list() {
        let shapes = figure6_shapes();
        assert_eq!(shapes.len(), 18);
        assert_eq!(shapes[0], ConvShape::same3x3(64, 32, 224, 224));
        assert_eq!(shapes[17], ConvShape::same3x3(192, 160, 7, 7));
        assert!(shapes.iter().all(|s| s.r == 3 && s.s == 3 && s.is_valid()));
    }

    #[test]
    fn figure4_sweep_covers_both_spatial_sizes() {
        let sweep = figure4_sweep();
        assert_eq!(sweep.len(), 16);
        assert!(sweep.iter().filter(|(_, label)| *label == "28x28").count() == 8);
        assert!(sweep.iter().all(|(s, _)| s.c == 64));
        assert_eq!(sweep[0].0.n, 32);
        assert_eq!(sweep[7].0.n, 256);
    }

    #[test]
    fn with_ranks_replaces_channels() {
        let s = ConvShape::same3x3(256, 512, 14, 14);
        let core = s.with_ranks(64, 96);
        assert_eq!(core.c, 64);
        assert_eq!(core.n, 96);
        assert_eq!(core.h, s.h);
        assert!(core.flops() < s.flops());
    }

    #[test]
    fn display_is_readable() {
        let s = ConvShape::same3x3(64, 32, 28, 28);
        let text = s.to_string();
        assert!(text.contains("C=64"));
        assert!(text.contains("N=32"));
    }
}
