//! Occupancy calculation.
//!
//! The paper's Eq. (14) scales the device's resident-thread capacity by an
//! occupancy factor that "can be estimated by the hardware metrics such as
//! shared memory size, register file size along with the given tiling sizes".
//! This module implements exactly that estimate: the number of blocks an SM
//! can hold simultaneously is the minimum over the thread limit, the shared
//! memory limit, the register-file limit and the hardware block-slot limit;
//! occupancy is the resulting resident-thread fraction.

use crate::device::DeviceSpec;
use crate::kernel::KernelLaunch;
use crate::Result;
use serde::{Deserialize, Serialize};

/// The resource that ends up limiting how many blocks fit on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LimitingResource {
    /// Resident-thread limit per SM.
    Threads,
    /// Shared-memory capacity per SM.
    SharedMemory,
    /// Register-file capacity per SM.
    Registers,
    /// Hardware cap on resident blocks per SM.
    BlockSlots,
}

/// Result of an occupancy query for one kernel on one device.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyResult {
    /// Blocks that can be resident on a single SM at once.
    pub blocks_per_sm: usize,
    /// Resident threads per SM implied by `blocks_per_sm`.
    pub active_threads_per_sm: usize,
    /// `active_threads_per_sm / max_threads_per_sm`, in (0, 1].
    pub occupancy: f64,
    /// Which resource was the binding constraint.
    pub limited_by: LimitingResource,
    /// Blocks the whole device can execute concurrently (one "wave").
    pub blocks_per_wave: usize,
}

/// Compute the achievable occupancy of `kernel` on `device`.
///
/// Returns an error if the kernel cannot be launched at all (a single block
/// exceeds a per-block hardware limit).
pub fn occupancy(device: &DeviceSpec, kernel: &KernelLaunch) -> Result<OccupancyResult> {
    kernel.validate(device)?;

    // Limit 1: resident threads.
    let by_threads = device.max_threads_per_sm / kernel.threads_per_block;

    // Limit 2: shared memory. A kernel using no shared memory is unconstrained.
    let by_smem = device
        .shared_mem_per_sm
        .checked_div(kernel.shared_mem_per_block)
        .unwrap_or(usize::MAX);

    // Limit 3: registers.
    let regs_per_block = kernel.regs_per_thread * kernel.threads_per_block;
    let by_regs = device
        .registers_per_sm
        .checked_div(regs_per_block)
        .unwrap_or(usize::MAX);

    // Limit 4: hardware block slots.
    let by_slots = device.max_blocks_per_sm;

    let blocks_per_sm = by_threads.min(by_smem).min(by_regs).min(by_slots).max(1);

    // Record the binding constraint (ties resolved in the order the hardware
    // documentation lists them: threads, shared memory, registers, slots).
    let limited_by = if blocks_per_sm == by_threads {
        LimitingResource::Threads
    } else if blocks_per_sm == by_smem {
        LimitingResource::SharedMemory
    } else if blocks_per_sm == by_regs {
        LimitingResource::Registers
    } else {
        LimitingResource::BlockSlots
    };

    let active_threads_per_sm =
        (blocks_per_sm * kernel.threads_per_block).min(device.max_threads_per_sm);
    let occupancy = active_threads_per_sm as f64 / device.max_threads_per_sm as f64;
    let blocks_per_wave = blocks_per_sm * device.sm_count;

    Ok(OccupancyResult {
        blocks_per_sm,
        active_threads_per_sm,
        occupancy,
        limited_by,
        blocks_per_wave,
    })
}

/// Number of waves needed to run the whole grid: ⌈grid_blocks / blocks_per_wave⌉.
/// This is the `comp_waves` quantity of Eq. (14).
pub fn waves(device: &DeviceSpec, kernel: &KernelLaunch) -> Result<usize> {
    let occ = occupancy(device, kernel)?;
    Ok(kernel.grid_blocks.div_ceil(occ.blocks_per_wave))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_blocks_hit_the_slot_or_thread_limit() {
        let dev = DeviceSpec::a100();
        // 64-thread blocks, no smem: thread limit allows 32, slot limit is 32.
        let k = KernelLaunch::new("k", 1000, 64).with_regs(16);
        let occ = occupancy(&dev, &k).unwrap();
        assert_eq!(occ.blocks_per_sm, 32);
        assert_eq!(occ.active_threads_per_sm, 2048);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shared_memory_limits_occupancy() {
        let dev = DeviceSpec::rtx2080ti(); // 64 KB per SM
        let k = KernelLaunch::new("k", 1000, 128)
            .with_shared_mem(40 * 1024)
            .with_regs(16);
        let occ = occupancy(&dev, &k).unwrap();
        // Only one 40 KB block fits in 64 KB.
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limited_by, LimitingResource::SharedMemory);
        assert!(occ.occupancy < 0.2);
    }

    #[test]
    fn registers_limit_occupancy() {
        let dev = DeviceSpec::a100();
        // 1024 threads * 64 regs = 65536 regs: exactly one block per SM.
        let k = KernelLaunch::new("k", 10, 1024).with_regs(64);
        let occ = occupancy(&dev, &k).unwrap();
        assert_eq!(occ.blocks_per_sm, 1);
        // Thread limit would also allow 2 blocks, so registers are binding.
        assert_eq!(occ.limited_by, LimitingResource::Registers);
    }

    #[test]
    fn thread_limit_binds_for_large_blocks() {
        let dev = DeviceSpec::a100();
        let k = KernelLaunch::new("k", 10, 1024).with_regs(16);
        let occ = occupancy(&dev, &k).unwrap();
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.limited_by, LimitingResource::Threads);
        assert!((occ.occupancy - 1.0).abs() < 1e-12);
    }

    #[test]
    fn waves_follow_eq14() {
        let dev = DeviceSpec::a100();
        let k = KernelLaunch::new("k", 1, 256).with_regs(16);
        assert_eq!(waves(&dev, &k).unwrap(), 1);

        // blocks_per_sm = min(2048/256=8, slots=32) = 8 -> 864 blocks per wave.
        let occ = occupancy(&dev, &KernelLaunch::new("k", 1, 256).with_regs(16)).unwrap();
        assert_eq!(occ.blocks_per_wave, 8 * 108);

        let k = KernelLaunch::new("k", 8 * 108, 256).with_regs(16);
        assert_eq!(waves(&dev, &k).unwrap(), 1);
        let k = KernelLaunch::new("k", 8 * 108 + 1, 256).with_regs(16);
        assert_eq!(waves(&dev, &k).unwrap(), 2);
        let k = KernelLaunch::new("k", 3 * 8 * 108, 256).with_regs(16);
        assert_eq!(waves(&dev, &k).unwrap(), 3);
    }

    #[test]
    fn occupancy_always_at_least_one_block() {
        // A block that uses almost all shared memory still runs (one at a time).
        let dev = DeviceSpec::rtx2080ti();
        let k = KernelLaunch::new("k", 5, 1024)
            .with_shared_mem(48 * 1024)
            .with_regs(32);
        let occ = occupancy(&dev, &k).unwrap();
        assert_eq!(occ.blocks_per_sm, 1);
    }

    #[test]
    fn invalid_launch_is_rejected() {
        let dev = DeviceSpec::a100();
        let k = KernelLaunch::new("k", 0, 256);
        assert!(occupancy(&dev, &k).is_err());
    }

    #[test]
    fn smaller_tiles_raise_occupancy() {
        // The co-design story: shrinking the shared-memory tile raises occupancy.
        let dev = DeviceSpec::rtx2080ti();
        let big = KernelLaunch::new("big", 100, 128)
            .with_shared_mem(32 * 1024)
            .with_regs(16);
        let small = KernelLaunch::new("small", 100, 128)
            .with_shared_mem(8 * 1024)
            .with_regs(16);
        let occ_big = occupancy(&dev, &big).unwrap();
        let occ_small = occupancy(&dev, &small).unwrap();
        assert!(occ_small.occupancy > occ_big.occupancy);
    }
}
