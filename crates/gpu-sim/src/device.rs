//! GPU device specifications.
//!
//! The two devices used by the paper's evaluation — NVIDIA A100 (Ampere,
//! enterprise) and NVIDIA GeForce RTX 2080 Ti (Turing, consumer) — are
//! modelled by their published hardware limits. These numbers feed the
//! occupancy calculator, the wave model of Eq. (14) and the bandwidth model.

use crate::{Result, SimError};
use serde::{Deserialize, Serialize};

/// Static description of a GPU.
///
/// All capacities are per-device unless the name says otherwise. Only the
/// quantities the paper's analytical model actually consumes are included;
/// this is not a full micro-architectural model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Human-readable device name.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub sm_count: usize,
    /// Maximum resident threads per SM.
    pub max_threads_per_sm: usize,
    /// Maximum threads in a single thread block.
    pub max_threads_per_block: usize,
    /// Threads per warp (32 on every CUDA GPU).
    pub warp_size: usize,
    /// Shared memory available per SM, in bytes.
    pub shared_mem_per_sm: usize,
    /// Maximum shared memory a single block may request, in bytes.
    pub shared_mem_per_block: usize,
    /// 32-bit registers per SM.
    pub registers_per_sm: usize,
    /// Maximum resident blocks per SM (hardware scheduler limit).
    pub max_blocks_per_sm: usize,
    /// FP32 execution lanes (CUDA cores) per SM. Together with the peak
    /// throughput this bounds how fast a *single* thread can possibly issue
    /// FLOPs, which matters for modelling under-occupied kernels.
    pub fp32_lanes_per_sm: usize,
    /// Peak single-precision throughput in GFLOP/s.
    pub peak_fp32_gflops: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbs: f64,
    /// L2 cache size in bytes (used only for reporting).
    pub l2_cache_bytes: usize,
    /// Fixed kernel launch overhead in microseconds. This matters for the
    /// paper's θ-threshold: Tucker decomposition adds two extra 1×1 kernels
    /// whose launch cost can cancel the FLOP savings on tiny layers.
    pub kernel_launch_overhead_us: f64,
}

impl DeviceSpec {
    /// NVIDIA A100-SXM4-80GB (Ampere, GA100): 108 SMs, 2048 threads/SM,
    /// 164 KB shared memory/SM, 19.5 TFLOP/s FP32, ~2039 GB/s HBM2e.
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100 80GB".to_string(),
            sm_count: 108,
            max_threads_per_sm: 2048,
            max_threads_per_block: 1024,
            warp_size: 32,
            shared_mem_per_sm: 164 * 1024,
            shared_mem_per_block: 163 * 1024,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 32,
            fp32_lanes_per_sm: 64,
            peak_fp32_gflops: 19_500.0,
            dram_bandwidth_gbs: 2039.0,
            l2_cache_bytes: 40 * 1024 * 1024,
            kernel_launch_overhead_us: 3.0,
        }
    }

    /// NVIDIA GeForce RTX 2080 Ti (Turing, TU102): 68 SMs, 1024 threads/SM,
    /// 64 KB shared memory/SM, 13.45 TFLOP/s FP32, 616 GB/s GDDR6.
    pub fn rtx2080ti() -> Self {
        DeviceSpec {
            name: "NVIDIA GeForce RTX 2080 Ti".to_string(),
            sm_count: 68,
            max_threads_per_sm: 1024,
            max_threads_per_block: 1024,
            warp_size: 32,
            shared_mem_per_sm: 64 * 1024,
            shared_mem_per_block: 48 * 1024,
            registers_per_sm: 65_536,
            max_blocks_per_sm: 16,
            fp32_lanes_per_sm: 64,
            peak_fp32_gflops: 13_450.0,
            dram_bandwidth_gbs: 616.0,
            l2_cache_bytes: 5_632 * 1024,
            kernel_launch_overhead_us: 5.0,
        }
    }

    /// Total resident threads the whole device can hold
    /// (`GPU_ths` in the paper's Eq. 14).
    pub fn total_threads(&self) -> usize {
        self.sm_count * self.max_threads_per_sm
    }

    /// Peak FLOP/s of the whole device, as f64 FLOPs per second.
    pub fn peak_flops(&self) -> f64 {
        self.peak_fp32_gflops * 1e9
    }

    /// DRAM bandwidth in bytes per second.
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        self.dram_bandwidth_gbs * 1e9
    }

    /// Peak FLOP/s of one SM.
    pub fn sm_peak_flops(&self) -> f64 {
        self.peak_flops() / self.sm_count as f64
    }

    /// Maximum FLOP/s a single thread can issue (one FMA per lane per cycle):
    /// `peak / (sm_count · fp32_lanes_per_sm)`. This caps the benefit a
    /// low-occupancy kernel can extract from an otherwise idle SM.
    pub fn per_thread_peak_flops(&self) -> f64 {
        self.peak_flops() / (self.sm_count * self.fp32_lanes_per_sm.max(1)) as f64
    }

    /// Kernel launch overhead in milliseconds.
    pub fn launch_overhead_ms(&self) -> f64 {
        self.kernel_launch_overhead_us / 1000.0
    }

    /// Validate internal consistency.
    pub fn validate(&self) -> Result<()> {
        if self.sm_count == 0 {
            return Err(SimError::InvalidDevice {
                reason: "sm_count must be > 0".into(),
            });
        }
        if self.warp_size == 0 || !self.max_threads_per_block.is_multiple_of(self.warp_size) {
            return Err(SimError::InvalidDevice {
                reason: "max_threads_per_block must be a positive multiple of warp_size".into(),
            });
        }
        if self.max_threads_per_sm < self.max_threads_per_block {
            return Err(SimError::InvalidDevice {
                reason: "an SM must be able to hold at least one maximal block".into(),
            });
        }
        if self.shared_mem_per_block > self.shared_mem_per_sm {
            return Err(SimError::InvalidDevice {
                reason: "per-block shared memory cannot exceed per-SM shared memory".into(),
            });
        }
        if self.peak_fp32_gflops <= 0.0 || self.dram_bandwidth_gbs <= 0.0 {
            return Err(SimError::InvalidDevice {
                reason: "throughput figures must be positive".into(),
            });
        }
        if self.fp32_lanes_per_sm == 0 {
            return Err(SimError::InvalidDevice {
                reason: "fp32_lanes_per_sm must be > 0".into(),
            });
        }
        Ok(())
    }

    /// Machine balance in FLOPs per byte: the arithmetic intensity above which
    /// a kernel on this device is compute bound (roofline knee).
    pub fn machine_balance(&self) -> f64 {
        self.peak_flops() / self.bandwidth_bytes_per_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_devices_are_valid() {
        DeviceSpec::a100().validate().unwrap();
        DeviceSpec::rtx2080ti().validate().unwrap();
    }

    #[test]
    fn a100_headline_numbers() {
        let d = DeviceSpec::a100();
        assert_eq!(d.sm_count, 108);
        assert_eq!(d.total_threads(), 108 * 2048);
        assert!((d.peak_flops() - 19.5e12).abs() < 1e9);
        assert!(d.machine_balance() > 5.0); // A100 is strongly compute-rich
    }

    #[test]
    fn rtx2080ti_headline_numbers() {
        let d = DeviceSpec::rtx2080ti();
        assert_eq!(d.sm_count, 68);
        assert_eq!(d.total_threads(), 68 * 1024);
        assert!(d.dram_bandwidth_gbs < DeviceSpec::a100().dram_bandwidth_gbs);
        assert!(d.peak_fp32_gflops < DeviceSpec::a100().peak_fp32_gflops);
    }

    #[test]
    fn a100_has_more_parallelism_than_2080ti() {
        // The paper's whole co-design premise: the enterprise GPU has far more
        // resident-thread capacity, so the same problem needs fewer waves.
        assert!(DeviceSpec::a100().total_threads() > 3 * DeviceSpec::rtx2080ti().total_threads());
    }

    #[test]
    fn validate_catches_inconsistencies() {
        let mut d = DeviceSpec::a100();
        d.sm_count = 0;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.max_threads_per_block = 33;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.shared_mem_per_block = d.shared_mem_per_sm + 1;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.peak_fp32_gflops = 0.0;
        assert!(d.validate().is_err());

        let mut d = DeviceSpec::a100();
        d.max_threads_per_sm = 512;
        assert!(d.validate().is_err());
    }

    #[test]
    fn per_thread_peak_is_reasonable() {
        // One thread can issue at most one FMA per cycle: ~2.8 GFLOP/s on A100.
        let d = DeviceSpec::a100();
        let pt = d.per_thread_peak_flops();
        assert!(pt > 2.0e9 && pt < 4.0e9, "per-thread peak {pt}");
        // Full residency brings the per-thread share far below the issue cap.
        assert!(d.peak_flops() / d.total_threads() as f64 * 10.0 < pt);
        assert!((d.sm_peak_flops() * d.sm_count as f64 - d.peak_flops()).abs() < 1.0);
    }

    #[test]
    fn launch_overhead_conversion() {
        let d = DeviceSpec::a100();
        assert!((d.launch_overhead_ms() - 0.003).abs() < 1e-9);
    }

    #[test]
    fn clone_and_eq() {
        let d = DeviceSpec::a100();
        let d2 = d.clone();
        assert_eq!(d, d2);
        assert_ne!(d, DeviceSpec::rtx2080ti());
    }
}
