//! Kernel launch descriptors.
//!
//! A [`KernelLaunch`] captures everything the latency model needs to know
//! about a GPU kernel: how many blocks, how many threads per block, how much
//! shared memory and how many registers each block consumes, how much
//! arithmetic each block performs, and how much global-memory traffic the
//! whole kernel generates. Convolution schemes in `tdc-conv` translate a
//! convolution shape plus tiling parameters into one of these descriptors.

use crate::device::DeviceSpec;
use crate::{Result, SimError};
use serde::{Deserialize, Serialize};

/// A single kernel launch, described analytically.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelLaunch {
    /// Identifier used in reports (e.g. `"tdc_core_conv"`).
    pub name: String,
    /// Total number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Threads per block.
    pub threads_per_block: usize,
    /// Dynamic + static shared memory requested per block, in bytes.
    pub shared_mem_per_block: usize,
    /// Registers per thread (estimate; used for the occupancy limit).
    pub regs_per_thread: usize,
    /// Useful floating-point operations performed by one block.
    pub flops_per_block: f64,
    /// Bytes read from global memory over the whole kernel (after coalescing
    /// accounting — i.e. bytes actually transferred).
    pub global_read_bytes: f64,
    /// Bytes written to global memory over the whole kernel.
    pub global_write_bytes: f64,
    /// Number of block-wide synchronisations (`__syncthreads`) executed per
    /// block. Each one stalls the block; the TVM scheme's inner-loop syncs
    /// versus the TDC scheme's single sync is one of the paper's key points.
    pub syncs_per_block: usize,
    /// Fraction of issued work lost to warp divergence / idle lanes in
    /// `[0, 1)`; 0 means perfectly converged warps.
    pub divergence_waste: f64,
}

impl KernelLaunch {
    /// Create a launch with the mandatory geometry; cost fields start at zero
    /// and can be filled in with the builder-style methods.
    pub fn new(name: impl Into<String>, grid_blocks: usize, threads_per_block: usize) -> Self {
        KernelLaunch {
            name: name.into(),
            grid_blocks,
            threads_per_block,
            shared_mem_per_block: 0,
            regs_per_thread: 32,
            flops_per_block: 0.0,
            global_read_bytes: 0.0,
            global_write_bytes: 0.0,
            syncs_per_block: 0,
            divergence_waste: 0.0,
        }
    }

    /// Set shared memory per block (bytes).
    pub fn with_shared_mem(mut self, bytes: usize) -> Self {
        self.shared_mem_per_block = bytes;
        self
    }

    /// Set estimated registers per thread.
    pub fn with_regs(mut self, regs: usize) -> Self {
        self.regs_per_thread = regs;
        self
    }

    /// Set per-block FLOPs.
    pub fn with_flops_per_block(mut self, flops: f64) -> Self {
        self.flops_per_block = flops;
        self
    }

    /// Set total global read/write traffic (bytes).
    pub fn with_global_traffic(mut self, read: f64, write: f64) -> Self {
        self.global_read_bytes = read;
        self.global_write_bytes = write;
        self
    }

    /// Set the number of block-wide synchronisations per block.
    pub fn with_syncs(mut self, syncs: usize) -> Self {
        self.syncs_per_block = syncs;
        self
    }

    /// Set the divergence waste fraction.
    pub fn with_divergence(mut self, waste: f64) -> Self {
        self.divergence_waste = waste.clamp(0.0, 0.99);
        self
    }

    /// This launch scaled to a batch of `batch` independent samples: the grid
    /// and the global-memory traffic grow `batch`-fold while the per-block
    /// cost is unchanged (every block still owns one tile of one sample).
    /// Execution layers use this to replay a per-sample kernel plan for a
    /// whole serving batch.
    pub fn scaled_batch(&self, batch: usize) -> KernelLaunch {
        let batch = batch.max(1);
        KernelLaunch {
            grid_blocks: self.grid_blocks * batch,
            global_read_bytes: self.global_read_bytes * batch as f64,
            global_write_bytes: self.global_write_bytes * batch as f64,
            ..self.clone()
        }
    }

    /// Total threads launched.
    pub fn total_threads(&self) -> usize {
        self.grid_blocks * self.threads_per_block
    }

    /// Total useful FLOPs over the whole grid.
    pub fn total_flops(&self) -> f64 {
        self.flops_per_block * self.grid_blocks as f64
    }

    /// Total global memory traffic (read + write) in bytes.
    pub fn total_traffic_bytes(&self) -> f64 {
        self.global_read_bytes + self.global_write_bytes
    }

    /// Arithmetic intensity: FLOPs per byte of global traffic.
    /// Returns infinity for a kernel with no global traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let traffic = self.total_traffic_bytes();
        if traffic <= 0.0 {
            f64::INFINITY
        } else {
            self.total_flops() / traffic
        }
    }

    /// Validate this launch against a device's hard limits.
    pub fn validate(&self, device: &DeviceSpec) -> Result<()> {
        if self.grid_blocks == 0 {
            return Err(SimError::InvalidLaunch {
                reason: format!("{}: zero blocks", self.name),
            });
        }
        if self.threads_per_block == 0 {
            return Err(SimError::InvalidLaunch {
                reason: format!("{}: zero threads per block", self.name),
            });
        }
        if self.threads_per_block > device.max_threads_per_block {
            return Err(SimError::InvalidLaunch {
                reason: format!(
                    "{}: {} threads per block exceeds device limit {}",
                    self.name, self.threads_per_block, device.max_threads_per_block
                ),
            });
        }
        if self.shared_mem_per_block > device.shared_mem_per_block {
            return Err(SimError::InvalidLaunch {
                reason: format!(
                    "{}: {} B shared memory per block exceeds device limit {} B",
                    self.name, self.shared_mem_per_block, device.shared_mem_per_block
                ),
            });
        }
        let regs_per_block = self.regs_per_thread * self.threads_per_block;
        if regs_per_block > device.registers_per_sm {
            return Err(SimError::InvalidLaunch {
                reason: format!(
                    "{}: {} registers per block exceeds the {} available per SM",
                    self.name, regs_per_block, device.registers_per_sm
                ),
            });
        }
        if !(0.0..1.0).contains(&self.divergence_waste) {
            return Err(SimError::InvalidLaunch {
                reason: format!("{}: divergence_waste must be in [0, 1)", self.name),
            });
        }
        Ok(())
    }

    /// Number of warps per block (rounded up to whole warps, since partially
    /// filled warps still occupy a scheduler slot).
    pub fn warps_per_block(&self, device: &DeviceSpec) -> usize {
        self.threads_per_block.div_ceil(device.warp_size)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_sets_fields() {
        let k = KernelLaunch::new("k", 10, 64)
            .with_shared_mem(4096)
            .with_regs(48)
            .with_flops_per_block(1e6)
            .with_global_traffic(1e7, 2e6)
            .with_syncs(2)
            .with_divergence(0.25);
        assert_eq!(k.grid_blocks, 10);
        assert_eq!(k.threads_per_block, 64);
        assert_eq!(k.shared_mem_per_block, 4096);
        assert_eq!(k.regs_per_thread, 48);
        assert_eq!(k.syncs_per_block, 2);
        assert!((k.total_flops() - 1e7).abs() < 1.0);
        assert!((k.total_traffic_bytes() - 1.2e7).abs() < 1.0);
        assert_eq!(k.total_threads(), 640);
    }

    #[test]
    fn batch_scaling_grows_grid_and_traffic_only() {
        let k = KernelLaunch::new("k", 10, 64)
            .with_flops_per_block(1e6)
            .with_global_traffic(1e7, 2e6);
        let b = k.scaled_batch(4);
        assert_eq!(b.grid_blocks, 40);
        assert_eq!(b.threads_per_block, 64);
        assert!((b.flops_per_block - 1e6).abs() < 1.0);
        assert!((b.total_traffic_bytes() - 4.0 * 1.2e7).abs() < 1.0);
        // Degenerate batch sizes are clamped to one sample.
        assert_eq!(k.scaled_batch(0).grid_blocks, 10);
    }

    #[test]
    fn divergence_is_clamped() {
        let k = KernelLaunch::new("k", 1, 32).with_divergence(7.0);
        assert!(k.divergence_waste < 1.0);
        let k = KernelLaunch::new("k", 1, 32).with_divergence(-1.0);
        assert_eq!(k.divergence_waste, 0.0);
    }

    #[test]
    fn arithmetic_intensity() {
        let k = KernelLaunch::new("k", 2, 32)
            .with_flops_per_block(100.0)
            .with_global_traffic(40.0, 10.0);
        assert!((k.arithmetic_intensity() - 4.0).abs() < 1e-12);
        let no_traffic = KernelLaunch::new("k", 2, 32).with_flops_per_block(100.0);
        assert!(no_traffic.arithmetic_intensity().is_infinite());
    }

    #[test]
    fn validate_against_device_limits() {
        let dev = DeviceSpec::rtx2080ti();
        assert!(KernelLaunch::new("ok", 100, 256).validate(&dev).is_ok());
        assert!(KernelLaunch::new("zero blocks", 0, 256)
            .validate(&dev)
            .is_err());
        assert!(KernelLaunch::new("zero threads", 10, 0)
            .validate(&dev)
            .is_err());
        assert!(KernelLaunch::new("too many threads", 10, 2048)
            .validate(&dev)
            .is_err());
        assert!(KernelLaunch::new("too much smem", 10, 256)
            .with_shared_mem(1 << 20)
            .validate(&dev)
            .is_err());
        assert!(KernelLaunch::new("too many regs", 10, 1024)
            .with_regs(255)
            .validate(&dev)
            .is_err());
    }

    #[test]
    fn warps_round_up() {
        let dev = DeviceSpec::a100();
        assert_eq!(KernelLaunch::new("k", 1, 32).warps_per_block(&dev), 1);
        assert_eq!(KernelLaunch::new("k", 1, 33).warps_per_block(&dev), 2);
        assert_eq!(KernelLaunch::new("k", 1, 96).warps_per_block(&dev), 3);
    }
}
