//! # tdc-gpu-sim
//!
//! An analytical + wave-level GPU execution simulator.
//!
//! The TDC paper evaluates its kernels on real NVIDIA A100 and RTX 2080 Ti
//! GPUs. This reproduction cannot assume CUDA hardware, so the entire latency
//! side of the evaluation runs against this simulator instead. The simulator
//! is deliberately built from the *same* analytical quantities the paper's own
//! performance model uses (Section 5.3–5.5):
//!
//! * device specifications — SM count, maximum resident threads, shared memory
//!   and register files, peak FP32 throughput, DRAM bandwidth
//!   ([`device::DeviceSpec`]),
//! * an occupancy calculator that limits resident blocks per SM by threads,
//!   shared memory and registers ([`occupancy`]),
//! * a wave model: a kernel with more blocks than the device can hold executes
//!   in ⌈blocks / (blocks-per-wave)⌉ waves (Eq. 14),
//! * a memory model: global-memory traffic divided by achievable bandwidth
//!   with a coalescing-efficiency factor ([`memory`]),
//! * a wave-level engine that schedules blocks round-robin over SMs and
//!   reports per-SM utilisation and the resulting tail effect
//!   ([`engine::WaveEngine`]).
//!
//! The absolute times it reports are estimates, but the *relative* behaviour —
//! which scheme wins for which convolution shape, where latency staircases
//! appear as the wave count changes, when a kernel is compute- versus
//! memory-bound — follows the same equations the paper derives, which is what
//! the reproduced figures need.

pub mod device;
pub mod engine;
pub mod kernel;
pub mod latency;
pub mod memory;
pub mod occupancy;

pub use device::DeviceSpec;
pub use engine::{ExecStats, SequenceStats, WaveEngine};
pub use kernel::KernelLaunch;
pub use latency::{LatencyBreakdown, LatencyModel};
pub use occupancy::OccupancyResult;

/// Errors produced by the simulator.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A launch parameter is invalid for the target device.
    InvalidLaunch { reason: String },
    /// A device parameter is inconsistent (e.g. zero SMs).
    InvalidDevice { reason: String },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::InvalidLaunch { reason } => write!(f, "invalid kernel launch: {reason}"),
            SimError::InvalidDevice { reason } => write!(f, "invalid device spec: {reason}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        // Both variants are leaves; none wraps another error.
        None
    }
}

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, SimError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display() {
        let e = SimError::InvalidLaunch {
            reason: "zero blocks".into(),
        };
        assert!(e.to_string().contains("zero blocks"));
        let e = SimError::InvalidDevice {
            reason: "no SMs".into(),
        };
        assert!(e.to_string().contains("no SMs"));
    }
}
