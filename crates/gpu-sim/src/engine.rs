//! Wave-level execution engine.
//!
//! [`LatencyModel`] answers "how long does this
//! launch take" with a closed-form estimate. `WaveEngine` goes one level
//! deeper: it actually schedules every block of the grid onto simulated SMs,
//! wave by wave, and measures the resulting per-SM load. That exposes the
//! *tail effect* — a final partial wave where most SMs idle — which is exactly
//! the under-utilisation the paper blames for Tucker-format convolutions being
//! slow under generic libraries (small grids → a fraction of one wave → most
//! of the GPU idle). Blocks resident in the same wave run concurrently, each
//! at its thread-share of peak throughput; a wave completes when its slowest
//! block does.
//!
//! Block simulation is embarrassingly parallel, so the engine fans the
//! per-block cost evaluation out over a rayon parallel iterator.

use crate::device::DeviceSpec;
use crate::kernel::KernelLaunch;
use crate::latency::LatencyModel;
use crate::occupancy::occupancy;
use crate::Result;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Execution statistics produced by [`WaveEngine::run`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExecStats {
    /// Kernel name.
    pub kernel: String,
    /// Number of scheduling waves executed.
    pub waves: usize,
    /// Blocks resident per SM in a full wave.
    pub blocks_per_sm: usize,
    /// Total simulated kernel time in milliseconds (excludes launch overhead).
    pub kernel_ms: f64,
    /// Kernel time plus launch overhead, in milliseconds.
    pub total_ms: f64,
    /// Average fraction of SMs doing useful work over the kernel's lifetime.
    pub sm_utilization: f64,
    /// Fraction of the last wave's SM slots that were actually filled —
    /// 1.0 means a perfectly full final wave, small values mean a bad tail.
    pub tail_efficiency: f64,
    /// Total useful FLOPs executed.
    pub total_flops: f64,
    /// Achieved FLOP/s as a fraction of device peak.
    pub achieved_peak_fraction: f64,
}

/// Aggregate view of a dependent kernel sequence produced by
/// [`WaveEngine::run_sequence_stats`] — the per-kernel stats plus the totals
/// an execution backend reports per batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SequenceStats {
    /// Per-kernel execution statistics, in launch order.
    pub per_kernel: Vec<ExecStats>,
    /// Sum of every kernel's `total_ms` (kernel time + launch overhead).
    pub total_ms: f64,
    /// Sum of every kernel's `kernel_ms` (launch overhead excluded).
    pub kernel_ms: f64,
    /// Time-weighted mean SM utilisation across the sequence.
    pub mean_sm_utilization: f64,
}

/// Block-granular wave simulator for a single device.
#[derive(Debug, Clone)]
pub struct WaveEngine {
    device: DeviceSpec,
    model: LatencyModel,
}

impl WaveEngine {
    /// Create an engine for the given device.
    pub fn new(device: DeviceSpec) -> Self {
        let model = LatencyModel::new(device.clone());
        WaveEngine { device, model }
    }

    /// The underlying closed-form latency model.
    pub fn model(&self) -> &LatencyModel {
        &self.model
    }

    /// The simulated device.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Simulate one kernel launch block-by-block.
    pub fn run(&self, kernel: &KernelLaunch) -> Result<ExecStats> {
        let occ = occupancy(&self.device, kernel)?;
        let slots_per_wave = occ.blocks_per_wave;
        let waves = kernel.grid_blocks.div_ceil(slots_per_wave);

        // Cost of one block on the compute side. All blocks of a dense
        // convolution are identical, but we still evaluate them individually
        // (in parallel) so fault-injection tests can perturb single blocks and
        // future schemes can have non-uniform block costs.
        let block_ms = self.model.block_compute_latency_ms(kernel, &occ)
            + kernel.syncs_per_block as f64 * crate::latency::SYNC_STALL_US / 1000.0;
        let block_costs: Vec<f64> = (0..kernel.grid_blocks)
            .into_par_iter()
            .map(|_blk| block_ms)
            .collect();

        // Schedule blocks onto resident slots, wave by wave. Blocks resident in
        // the same wave execute concurrently, each progressing at its
        // thread-share of the machine (the paper's blk_peak = GPU_peak *
        // N / GPU_ths), so a wave finishes when its slowest block finishes.
        let mut compute_ms = 0.0f64;
        let mut weighted_resident = 0.0f64;
        let mut last_wave_fill = 1.0f64;
        for wave in 0..waves {
            let start = wave * slots_per_wave;
            let end = ((wave + 1) * slots_per_wave).min(kernel.grid_blocks);
            let wave_blocks = &block_costs[start..end];
            let wave_time = wave_blocks.iter().copied().fold(0.0, f64::max);
            compute_ms += wave_time;
            let resident_fraction = ((wave_blocks.len() * kernel.threads_per_block) as f64
                / self.device.total_threads() as f64)
                .min(1.0);
            weighted_resident += wave_time * resident_fraction;
            if wave + 1 == waves {
                last_wave_fill = wave_blocks.len() as f64 / slots_per_wave as f64;
            }
        }

        // Memory side and overlap identical to the closed-form model.
        let memory_ms = kernel.total_traffic_bytes() / self.device.bandwidth_bytes_per_s() * 1e3;
        let longer = compute_ms.max(memory_ms);
        let shorter = compute_ms.min(memory_ms);
        let kernel_ms = longer + crate::latency::DEFAULT_OVERLAP_PENALTY * shorter;
        let total_ms = kernel_ms + self.device.launch_overhead_ms();

        let sm_utilization = if compute_ms > 0.0 {
            (weighted_resident / compute_ms).min(1.0)
        } else {
            0.0
        };
        let total_flops = kernel.total_flops();
        let achieved = if kernel_ms > 0.0 {
            (total_flops / (kernel_ms / 1e3)) / self.device.peak_flops()
        } else {
            0.0
        };

        Ok(ExecStats {
            kernel: kernel.name.clone(),
            waves,
            blocks_per_sm: occ.blocks_per_sm,
            kernel_ms,
            total_ms,
            sm_utilization,
            tail_efficiency: last_wave_fill,
            total_flops,
            achieved_peak_fraction: achieved.min(1.0),
        })
    }

    /// Simulate a sequence of dependent kernel launches (single stream).
    pub fn run_sequence(&self, kernels: &[KernelLaunch]) -> Result<Vec<ExecStats>> {
        kernels.iter().map(|k| self.run(k)).collect()
    }

    /// Total time of a dependent kernel sequence in milliseconds.
    pub fn sequence_total_ms(&self, kernels: &[KernelLaunch]) -> Result<f64> {
        Ok(self.run_sequence(kernels)?.iter().map(|s| s.total_ms).sum())
    }

    /// Simulate a dependent kernel sequence and aggregate it into
    /// [`SequenceStats`].
    pub fn run_sequence_stats(&self, kernels: &[KernelLaunch]) -> Result<SequenceStats> {
        let per_kernel = self.run_sequence(kernels)?;
        let total_ms: f64 = per_kernel.iter().map(|s| s.total_ms).sum();
        let kernel_ms: f64 = per_kernel.iter().map(|s| s.kernel_ms).sum();
        let weighted_util: f64 = per_kernel
            .iter()
            .map(|s| s.sm_utilization * s.kernel_ms)
            .sum();
        Ok(SequenceStats {
            per_kernel,
            total_ms,
            kernel_ms,
            mean_sm_utilization: if kernel_ms > 0.0 {
                weighted_util / kernel_ms
            } else {
                0.0
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel(blocks: usize, threads: usize, flops: f64) -> KernelLaunch {
        KernelLaunch::new("k", blocks, threads)
            .with_regs(32)
            .with_flops_per_block(flops)
            .with_global_traffic(1e6, 1e5)
    }

    #[test]
    fn engine_agrees_with_model_on_wave_count() {
        let dev = DeviceSpec::a100();
        let engine = WaveEngine::new(dev.clone());
        let model = LatencyModel::new(dev);
        for &blocks in &[1usize, 100, 1000, 5000] {
            let k = kernel(blocks, 256, 1e6);
            let stats = engine.run(&k).unwrap();
            let breakdown = model.kernel_latency(&k).unwrap();
            assert_eq!(stats.waves, breakdown.waves, "blocks={blocks}");
        }
    }

    #[test]
    fn small_grids_underutilize_the_gpu() {
        // The paper's motivation: a Tucker-core conv with a small grid leaves
        // most SMs idle. 10 blocks on a 108-SM A100 => low utilisation.
        let engine = WaveEngine::new(DeviceSpec::a100());
        let small = engine.run(&kernel(10, 256, 1e7)).unwrap();
        let large = engine.run(&kernel(5000, 256, 1e7)).unwrap();
        assert!(small.sm_utilization < 0.15);
        assert!(large.sm_utilization > 0.8);
        assert!(small.achieved_peak_fraction < large.achieved_peak_fraction);
    }

    #[test]
    fn tail_efficiency_reflects_partial_last_wave() {
        let dev = DeviceSpec::a100();
        let engine = WaveEngine::new(dev.clone());
        let occ = occupancy(&dev, &kernel(1, 256, 1e6)).unwrap();
        let full = engine.run(&kernel(occ.blocks_per_wave, 256, 1e6)).unwrap();
        assert!((full.tail_efficiency - 1.0).abs() < 1e-9);
        let ragged = engine
            .run(&kernel(occ.blocks_per_wave + 1, 256, 1e6))
            .unwrap();
        assert!(ragged.tail_efficiency < 0.01);
    }

    #[test]
    fn total_includes_launch_overhead() {
        let engine = WaveEngine::new(DeviceSpec::rtx2080ti());
        let stats = engine.run(&kernel(10, 64, 1e5)).unwrap();
        assert!(stats.total_ms > stats.kernel_ms);
        assert!(
            (stats.total_ms - stats.kernel_ms - DeviceSpec::rtx2080ti().launch_overhead_ms()).abs()
                < 1e-12
        );
    }

    #[test]
    fn sequence_accumulates() {
        let engine = WaveEngine::new(DeviceSpec::a100());
        let ks = vec![
            kernel(10, 64, 1e5),
            kernel(20, 64, 1e5),
            kernel(30, 64, 1e5),
        ];
        let seq = engine.run_sequence(&ks).unwrap();
        assert_eq!(seq.len(), 3);
        let total = engine.sequence_total_ms(&ks).unwrap();
        let sum: f64 = seq.iter().map(|s| s.total_ms).sum();
        assert!((total - sum).abs() < 1e-12);
    }

    #[test]
    fn sequence_stats_aggregate_the_per_kernel_runs() {
        let engine = WaveEngine::new(DeviceSpec::a100());
        let ks = vec![kernel(10, 64, 1e5), kernel(5000, 256, 1e6)];
        let stats = engine.run_sequence_stats(&ks).unwrap();
        assert_eq!(stats.per_kernel.len(), 2);
        let total: f64 = stats.per_kernel.iter().map(|s| s.total_ms).sum();
        assert!((stats.total_ms - total).abs() < 1e-12);
        assert!(
            stats.kernel_ms < stats.total_ms,
            "overhead must be excluded"
        );
        // The time-weighted utilisation sits between the two kernels' own.
        let (lo, hi) = (
            stats
                .per_kernel
                .iter()
                .map(|s| s.sm_utilization)
                .fold(f64::INFINITY, f64::min),
            stats
                .per_kernel
                .iter()
                .map(|s| s.sm_utilization)
                .fold(0.0, f64::max),
        );
        assert!(stats.mean_sm_utilization >= lo && stats.mean_sm_utilization <= hi);
        // A batch-scaled grid takes longer but uses the machine at least as well.
        let batched = engine
            .run_sequence_stats(&[ks[0].scaled_batch(8), ks[1].scaled_batch(8)])
            .unwrap();
        assert!(batched.total_ms > stats.total_ms);
        let empty = engine.run_sequence_stats(&[]).unwrap();
        assert_eq!(empty.total_ms, 0.0);
        assert_eq!(empty.mean_sm_utilization, 0.0);
    }

    #[test]
    fn engine_and_closed_form_are_close_for_uniform_blocks() {
        // For a dense kernel with identical blocks the engine's max-over-SMs
        // computation collapses to the closed-form waves * block_cost.
        let dev = DeviceSpec::a100();
        let engine = WaveEngine::new(dev.clone());
        let model = LatencyModel::new(dev);
        let k = kernel(3000, 256, 5e6);
        let stats = engine.run(&k).unwrap();
        let breakdown = model.kernel_latency(&k).unwrap();
        let rel = (stats.total_ms - breakdown.total_ms).abs() / breakdown.total_ms;
        assert!(
            rel < 0.25,
            "engine {} vs model {}",
            stats.total_ms,
            breakdown.total_ms
        );
    }

    #[test]
    fn invalid_launch_errors() {
        let engine = WaveEngine::new(DeviceSpec::a100());
        assert!(engine.run(&KernelLaunch::new("bad", 0, 64)).is_err());
    }
}
