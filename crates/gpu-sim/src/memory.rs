//! Global-memory traffic and coalescing model.
//!
//! The TDC kernel stores its weights in `CRSN` order specifically so that the
//! per-thread weight loads of consecutive threads (consecutive output channels
//! `n`) are adjacent in memory and coalesce into full transactions
//! (Section 5.2). This module models that effect: an access pattern is
//! described by the element stride between consecutive threads of a warp, and
//! the model reports how many 32-byte sectors each warp-level request touches
//! and the resulting efficiency factor.

use serde::{Deserialize, Serialize};

/// Size of a DRAM sector / minimum transaction in bytes on modern NVIDIA GPUs.
pub const SECTOR_BYTES: usize = 32;

/// Size of one `f32` element in bytes.
pub const F32_BYTES: usize = 4;

/// How consecutive threads in a warp address global memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Thread `i` reads element `base + i` — fully coalesced.
    Unit,
    /// Thread `i` reads element `base + i * stride` (stride in elements).
    Strided { stride: usize },
    /// All threads of the warp read the same element (broadcast); served by
    /// one sector and usually cached.
    Broadcast,
}

/// Number of 32-byte sectors one warp-wide request touches under the pattern.
pub fn sectors_per_warp_request(
    pattern: AccessPattern,
    warp_size: usize,
    elem_bytes: usize,
) -> usize {
    match pattern {
        AccessPattern::Unit => {
            // warp_size consecutive elements.
            (warp_size * elem_bytes).div_ceil(SECTOR_BYTES)
        }
        AccessPattern::Broadcast => 1,
        AccessPattern::Strided { stride } => {
            if stride == 0 {
                return 1;
            }
            if stride * elem_bytes >= SECTOR_BYTES {
                // Every lane lands in its own sector.
                warp_size
            } else {
                // Several lanes share a sector.
                (warp_size * stride * elem_bytes).div_ceil(SECTOR_BYTES)
            }
        }
    }
}

/// Coalescing efficiency in `(0, 1]`: useful bytes divided by transferred bytes.
pub fn coalescing_efficiency(pattern: AccessPattern, warp_size: usize, elem_bytes: usize) -> f64 {
    let useful = (warp_size * elem_bytes) as f64;
    let sectors = sectors_per_warp_request(pattern, warp_size, elem_bytes) as f64;
    let transferred = sectors * SECTOR_BYTES as f64;
    match pattern {
        // A broadcast is fully useful even though only one element is unique.
        AccessPattern::Broadcast => 1.0,
        _ => (useful / transferred).min(1.0),
    }
}

/// Description of one logical global-memory stream of a kernel (e.g. "input
/// tile loads" or "kernel weight loads").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficStream {
    /// Name used in reports.
    pub name: String,
    /// Useful bytes the kernel needs from this stream.
    pub useful_bytes: f64,
    /// Access pattern of the stream.
    pub pattern: AccessPattern,
}

impl TrafficStream {
    /// Create a stream carrying `useful_bytes` with the given pattern.
    pub fn new(name: impl Into<String>, useful_bytes: f64, pattern: AccessPattern) -> Self {
        TrafficStream {
            name: name.into(),
            useful_bytes,
            pattern,
        }
    }

    /// Bytes actually moved across the DRAM interface after coalescing waste.
    pub fn transferred_bytes(&self, warp_size: usize) -> f64 {
        let eff = coalescing_efficiency(self.pattern, warp_size, F32_BYTES);
        self.useful_bytes / eff.max(1e-6)
    }
}

/// Aggregate the effective (post-coalescing) traffic of several streams.
pub fn total_transferred_bytes(streams: &[TrafficStream], warp_size: usize) -> f64 {
    streams.iter().map(|s| s.transferred_bytes(warp_size)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_stride_f32_uses_four_sectors_per_warp() {
        // 32 threads * 4 B = 128 B = 4 sectors.
        assert_eq!(sectors_per_warp_request(AccessPattern::Unit, 32, 4), 4);
        assert!((coalescing_efficiency(AccessPattern::Unit, 32, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn large_stride_wastes_bandwidth() {
        let p = AccessPattern::Strided { stride: 64 };
        assert_eq!(sectors_per_warp_request(p, 32, 4), 32);
        let eff = coalescing_efficiency(p, 32, 4);
        assert!((eff - 0.125).abs() < 1e-9, "eff = {eff}");
    }

    #[test]
    fn small_stride_partially_coalesces() {
        let p = AccessPattern::Strided { stride: 2 };
        // 32 lanes * 2 elements * 4 B = 256 B = 8 sectors.
        assert_eq!(sectors_per_warp_request(p, 32, 4), 8);
        let eff = coalescing_efficiency(p, 32, 4);
        assert!((eff - 0.5).abs() < 1e-9);
    }

    #[test]
    fn stride_one_equals_unit() {
        assert_eq!(
            sectors_per_warp_request(AccessPattern::Strided { stride: 1 }, 32, 4),
            sectors_per_warp_request(AccessPattern::Unit, 32, 4)
        );
    }

    #[test]
    fn broadcast_is_cheap() {
        assert_eq!(sectors_per_warp_request(AccessPattern::Broadcast, 32, 4), 1);
        assert!((coalescing_efficiency(AccessPattern::Broadcast, 32, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_stride_treated_as_broadcast() {
        assert_eq!(
            sectors_per_warp_request(AccessPattern::Strided { stride: 0 }, 32, 4),
            1
        );
    }

    #[test]
    fn stream_transferred_bytes_reflect_efficiency() {
        let coalesced = TrafficStream::new("in", 1000.0, AccessPattern::Unit);
        let strided = TrafficStream::new("w", 1000.0, AccessPattern::Strided { stride: 64 });
        assert!((coalesced.transferred_bytes(32) - 1000.0).abs() < 1e-6);
        assert!((strided.transferred_bytes(32) - 8000.0).abs() < 1e-3);
        let total = total_transferred_bytes(&[coalesced, strided], 32);
        assert!((total - 9000.0).abs() < 1e-3);
    }

    #[test]
    fn crsn_vs_ncrs_layout_story() {
        // The paper's point: with CRSN layout, consecutive threads (output
        // channels) read consecutive weights -> unit stride. With the naive
        // NCRS layout each thread is R*S*C elements apart -> heavily strided.
        let crsn = coalescing_efficiency(AccessPattern::Unit, 32, 4);
        let ncrs = coalescing_efficiency(AccessPattern::Strided { stride: 9 * 64 }, 32, 4);
        assert!(crsn / ncrs >= 4.0);
    }
}
