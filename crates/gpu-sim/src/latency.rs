//! The kernel latency model (paper Eq. 14–19).
//!
//! Latency of a launch is modelled as the combination of
//!
//! * **compute latency** — per-block FLOPs divided by the per-block share of
//!   peak throughput, multiplied by the number of waves (Eq. 15), inflated by
//!   warp-divergence waste and per-sync stall cost;
//! * **memory latency** — total post-coalescing global traffic divided by the
//!   DRAM bandwidth (Section 5.4);
//! * **launch overhead** — a fixed per-kernel cost, which is what makes
//!   decomposing very small layers unprofitable (the θ threshold of Section 6).
//!
//! Compute and memory are partially overlapped: the modelled kernel time is
//! `max(compute, memory) + overlap_penalty * min(compute, memory)`, with a
//! small penalty factor representing imperfect latency hiding. The paper notes
//! (citing prior work) that dense convolution is usually compute bound, which
//! this model reproduces for the evaluated shapes.

use crate::device::DeviceSpec;
use crate::kernel::KernelLaunch;
use crate::occupancy::{occupancy, OccupancyResult};
use crate::Result;
use serde::{Deserialize, Serialize};

/// Fraction of the shorter of (compute, memory) that is *not* hidden behind
/// the longer one. 0 would be perfect overlap, 1 would be full serialisation.
pub const DEFAULT_OVERLAP_PENALTY: f64 = 0.2;

/// Cost of one block-wide `__syncthreads`, expressed in microseconds of stall
/// per executed sync per wave. Calibrated so that the TVM scheme's per-channel
/// double sync visibly hurts small Tucker-core convolutions, as reported in
/// Section 5.1.
pub const SYNC_STALL_US: f64 = 0.15;

/// Detailed latency decomposition for one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    /// Kernel name copied from the launch descriptor.
    pub kernel: String,
    /// Number of full waves the grid needs (Eq. 14).
    pub waves: usize,
    /// Occupancy used for the wave computation.
    pub occupancy: f64,
    /// Compute-side latency in milliseconds (Eq. 15 plus divergence and syncs).
    pub compute_ms: f64,
    /// Memory-side latency in milliseconds.
    pub memory_ms: f64,
    /// Fixed launch overhead in milliseconds.
    pub launch_overhead_ms: f64,
    /// Final modelled latency in milliseconds.
    pub total_ms: f64,
    /// True when compute latency exceeds memory latency.
    pub compute_bound: bool,
}

/// Latency model bound to one device.
#[derive(Debug, Clone)]
pub struct LatencyModel {
    device: DeviceSpec,
    overlap_penalty: f64,
}

impl LatencyModel {
    /// Create a model for the given device with the default overlap penalty.
    pub fn new(device: DeviceSpec) -> Self {
        LatencyModel {
            device,
            overlap_penalty: DEFAULT_OVERLAP_PENALTY,
        }
    }

    /// Override the overlap penalty (0 = perfect overlap, 1 = serial).
    pub fn with_overlap_penalty(mut self, penalty: f64) -> Self {
        self.overlap_penalty = penalty.clamp(0.0, 1.0);
        self
    }

    /// The device this model simulates.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// Per-block compute latency in milliseconds (the paper's
    /// `comp_latency_blk`).
    ///
    /// The paper expresses the per-block peak as
    /// `blk_peak = GPU_peak · N / GPU_ths`, i.e. a block with `N` threads gets
    /// an `N / GPU_ths` share of the machine. That is exact when the device is
    /// fully occupied, but it over-penalises under-occupied kernels: on real
    /// hardware a lone warp still issues at up to one FMA per lane per cycle.
    /// The model therefore computes the block's rate from the threads actually
    /// co-resident on its SM:
    ///
    /// * each thread can issue at most
    ///   [`DeviceSpec::per_thread_peak_flops`](crate::device::DeviceSpec::per_thread_peak_flops),
    /// * the SM's aggregate rate is capped at its share of device peak,
    ///   divided fairly among the blocks resident on it.
    ///
    /// With the SM fully resident this reduces exactly to the paper's formula;
    /// with a single resident block it approaches the per-thread issue cap.
    pub fn block_compute_latency_ms(&self, kernel: &KernelLaunch, occ: &OccupancyResult) -> f64 {
        if kernel.flops_per_block <= 0.0 {
            return 0.0;
        }
        // Idle lanes from divergence occupy issue slots without doing useful work.
        let useful_threads = kernel.threads_per_block as f64 * (1.0 - kernel.divergence_waste);
        let per_thread_max = self.device.per_thread_peak_flops();

        // Blocks actually co-resident on one SM: bounded by the occupancy
        // limit and by how many blocks the grid can even supply per SM.
        let grid_per_sm = kernel.grid_blocks.div_ceil(self.device.sm_count);
        let resident_blocks = occ.blocks_per_sm.min(grid_per_sm).max(1);
        let resident_threads = (resident_blocks * kernel.threads_per_block) as f64;

        // Demand if every resident thread issued at its cap, versus SM supply.
        let sm_demand = resident_threads * per_thread_max;
        let sm_peak = self.device.sm_peak_flops();
        let scale = (sm_peak / sm_demand).min(1.0);

        let block_rate = useful_threads * per_thread_max * scale;
        kernel.flops_per_block / block_rate.max(1.0) * 1e3
    }

    /// Full latency decomposition for a kernel launch.
    pub fn kernel_latency(&self, kernel: &KernelLaunch) -> Result<LatencyBreakdown> {
        let occ = occupancy(&self.device, kernel)?;
        let waves = kernel.grid_blocks.div_ceil(occ.blocks_per_wave);

        // Compute side: waves * per-block latency (Eq. 15), plus sync stalls.
        let block_ms = self.block_compute_latency_ms(kernel, &occ);
        let sync_ms = kernel.syncs_per_block as f64 * SYNC_STALL_US / 1000.0;
        let compute_ms = waves as f64 * (block_ms + sync_ms);

        // Memory side: total effective traffic over device bandwidth.
        let memory_ms = kernel.total_traffic_bytes() / self.device.bandwidth_bytes_per_s() * 1e3;

        let longer = compute_ms.max(memory_ms);
        let shorter = compute_ms.min(memory_ms);
        let launch_overhead_ms = self.device.launch_overhead_ms();
        let total_ms = longer + self.overlap_penalty * shorter + launch_overhead_ms;

        Ok(LatencyBreakdown {
            kernel: kernel.name.clone(),
            waves,
            occupancy: occ.occupancy,
            compute_ms,
            memory_ms,
            launch_overhead_ms,
            total_ms,
            compute_bound: compute_ms >= memory_ms,
        })
    }

    /// Latency of a sequence of kernels executed back to back (one CUDA
    /// stream): the sum of the individual latencies.
    pub fn sequence_latency(&self, kernels: &[KernelLaunch]) -> Result<f64> {
        let mut total = 0.0;
        for k in kernels {
            total += self.kernel_latency(k)?.total_ms;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple_kernel(blocks: usize, threads: usize, flops_per_block: f64) -> KernelLaunch {
        KernelLaunch::new("test", blocks, threads)
            .with_regs(32)
            .with_flops_per_block(flops_per_block)
            .with_global_traffic(1e6, 1e5)
    }

    #[test]
    fn more_flops_means_more_latency() {
        let m = LatencyModel::new(DeviceSpec::a100());
        let small = m.kernel_latency(&simple_kernel(100, 256, 1e6)).unwrap();
        let big = m.kernel_latency(&simple_kernel(100, 256, 1e8)).unwrap();
        assert!(big.total_ms > small.total_ms);
        assert!(big.compute_ms > small.compute_ms);
    }

    #[test]
    fn latency_is_monotone_in_waves_staircase() {
        // Fixing per-block work and growing the grid past a wave boundary
        // produces the staircase the paper shows in Figure 4.
        let dev = DeviceSpec::a100();
        let m = LatencyModel::new(dev.clone());
        let k_one_wave = simple_kernel(10, 256, 1e7);
        let occ = occupancy(&dev, &k_one_wave).unwrap();
        let per_wave = occ.blocks_per_wave;

        let a = m
            .kernel_latency(&simple_kernel(per_wave, 256, 1e7))
            .unwrap();
        let b = m
            .kernel_latency(&simple_kernel(per_wave + 1, 256, 1e7))
            .unwrap();
        let c = m
            .kernel_latency(&simple_kernel(2 * per_wave, 256, 1e7))
            .unwrap();
        assert_eq!(a.waves, 1);
        assert_eq!(b.waves, 2);
        assert_eq!(c.waves, 2);
        assert!(b.compute_ms > a.compute_ms);
        // Same wave count => same compute latency (the staircase plateau).
        assert!((c.compute_ms - b.compute_ms).abs() < 1e-12);
    }

    #[test]
    fn memory_bound_kernels_are_detected() {
        let m = LatencyModel::new(DeviceSpec::a100());
        let k = KernelLaunch::new("copy", 1000, 256)
            .with_regs(16)
            .with_flops_per_block(10.0)
            .with_global_traffic(1e9, 1e9);
        let lat = m.kernel_latency(&k).unwrap();
        assert!(!lat.compute_bound);
        assert!(lat.memory_ms > lat.compute_ms);
    }

    #[test]
    fn divergence_increases_compute_latency() {
        let m = LatencyModel::new(DeviceSpec::a100());
        let base = simple_kernel(100, 256, 1e7);
        let diverged = simple_kernel(100, 256, 1e7).with_divergence(0.5);
        let a = m.kernel_latency(&base).unwrap();
        let b = m.kernel_latency(&diverged).unwrap();
        assert!(b.compute_ms > a.compute_ms * 1.5);
    }

    #[test]
    fn syncs_add_stall_time() {
        let m = LatencyModel::new(DeviceSpec::a100());
        let no_sync = simple_kernel(100, 256, 1e6);
        let synced = simple_kernel(100, 256, 1e6).with_syncs(64);
        let a = m.kernel_latency(&no_sync).unwrap();
        let b = m.kernel_latency(&synced).unwrap();
        assert!(b.compute_ms > a.compute_ms);
    }

    #[test]
    fn launch_overhead_is_included() {
        let m = LatencyModel::new(DeviceSpec::rtx2080ti());
        let tiny = KernelLaunch::new("tiny", 1, 32)
            .with_regs(16)
            .with_flops_per_block(10.0);
        let lat = m.kernel_latency(&tiny).unwrap();
        assert!(lat.total_ms >= lat.launch_overhead_ms);
        assert!(lat.launch_overhead_ms > 0.0);
    }

    #[test]
    fn sequence_latency_is_sum() {
        let m = LatencyModel::new(DeviceSpec::a100());
        let k1 = simple_kernel(10, 128, 1e6);
        let k2 = simple_kernel(20, 128, 1e6);
        let s = m.sequence_latency(&[k1.clone(), k2.clone()]).unwrap();
        let a = m.kernel_latency(&k1).unwrap().total_ms;
        let b = m.kernel_latency(&k2).unwrap().total_ms;
        assert!((s - (a + b)).abs() < 1e-12);
    }

    #[test]
    fn a100_is_faster_than_2080ti_for_the_same_kernel() {
        let k = simple_kernel(2000, 256, 1e8);
        let a100 = LatencyModel::new(DeviceSpec::a100())
            .kernel_latency(&k)
            .unwrap();
        let ti = LatencyModel::new(DeviceSpec::rtx2080ti())
            .kernel_latency(&k)
            .unwrap();
        assert!(a100.total_ms < ti.total_ms);
    }

    #[test]
    fn overlap_penalty_is_clamped_and_affects_total() {
        let k = simple_kernel(100, 256, 1e7);
        let serial = LatencyModel::new(DeviceSpec::a100()).with_overlap_penalty(5.0);
        let overlapped = LatencyModel::new(DeviceSpec::a100()).with_overlap_penalty(0.0);
        let a = serial.kernel_latency(&k).unwrap();
        let b = overlapped.kernel_latency(&k).unwrap();
        assert!(a.total_ms >= b.total_ms);
    }
}
