//! # tdc-exec — the fleet-wide work-stealing batch executor
//!
//! One worker pool shared by every serving engine in the process, replacing
//! the per-engine statically sized pools that let a hot model starve while
//! idle models held threads. Work arrives as *sources* (anything
//! implementing [`BatchSource`], e.g. one engine's batch queue); the
//! executor schedules **tokens** — lightweight dispatch rights for one
//! source — through three structures:
//!
//! * a **sharded injector queue per QoS band** ([`QosClass::Interactive`] >
//!   [`QosClass::Standard`] > [`QosClass::Batch`]): the global, fair end.
//!   A source holds at most `ceil(pending / weight)` tokens (clamped to the
//!   pool size), and a token that still has work after its quantum goes back
//!   to the *tail* of its band — deficit-round-robin between sources, so a
//!   flooded source cannot push a sibling's token arbitrarily far back;
//! * a **per-worker local deque** (the compat `rayon::deque` primitive):
//!   ramp-up tokens for a backlogged source land here so the worker that
//!   observed the backlog keeps serving it without a trip through the
//!   global queue;
//! * **work stealing**: an idle worker first sweeps the injector bands in
//!   priority order (with a periodic lowest-first sweep so `Batch` work
//!   cannot starve), then its own deque, then steals the oldest token from
//!   a sibling's deque — capacity follows load.
//!
//! Each token dispatch runs up to `weight` batches (`weight` is the
//! source's fair-share quantum, what `RuntimeOptions::workers` became).
//! Sources never block a worker: a source whose next batch is still
//! forming returns [`SourceState::NotReady`] with a poll instant, and the
//! executor re-arms the token on a timer instead of parking a thread in
//! the batcher.
//!
//! # Example
//!
//! ```
//! use std::sync::atomic::{AtomicUsize, Ordering};
//! use std::sync::Arc;
//! use tdc_exec::{BatchSource, Executor, ExecutorOptions, QosClass, SourceState};
//!
//! struct Countdown(AtomicUsize);
//! impl BatchSource for Countdown {
//!     fn run_one(&self) -> SourceState {
//!         match self.0.fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| n.checked_sub(1)) {
//!             Ok(_) => SourceState::Ran,
//!             Err(_) => SourceState::Idle,
//!         }
//!     }
//!     fn pending(&self) -> usize {
//!         self.0.load(Ordering::SeqCst)
//!     }
//! }
//!
//! let exec = Executor::new(ExecutorOptions {
//!     workers: 2,
//!     ..ExecutorOptions::default()
//! })
//! .unwrap();
//! let work = Arc::new(Countdown(AtomicUsize::new(8)));
//! let handle = exec.register("demo", 2, QosClass::Interactive, work.clone());
//! handle.notify(); // a token is queued; workers drain the source
//! while work.pending() > 0 {
//!     std::thread::sleep(std::time::Duration::from_millis(1));
//! }
//! exec.shutdown();
//! ```

use rayon::deque::{Injector, Steal, Stealer, Worker};
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Longest an idle worker parks before re-checking for work; notifies and
/// due timers cut the park short.
const IDLE_PARK: Duration = Duration::from_millis(20);

/// Every `ANTI_STARVATION_PERIOD`-th dispatch of a worker sweeps the QoS
/// bands lowest-priority-first, bounding how long `Batch` work can wait
/// behind a sustained `Interactive` flood.
const ANTI_STARVATION_PERIOD: u64 = 4;

/// Scheduling priority class of a source, chosen at registration.
///
/// Workers sweep injector bands in `Interactive` → `Standard` → `Batch`
/// order (with a periodic reversed sweep for anti-starvation), and the
/// admission-shed knob ([`ExecutorOptions::batch_shed_backlog`]) only ever
/// sheds `Batch`-class work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum QosClass {
    /// Latency-sensitive traffic; always swept first.
    Interactive,
    /// The default class.
    #[default]
    Standard,
    /// Throughput traffic that tolerates waiting behind the other classes
    /// and may be shed at admission under interactive backlog.
    Batch,
}

impl QosClass {
    /// Every class, in band (priority) order.
    pub const ALL: [QosClass; 3] = [QosClass::Interactive, QosClass::Standard, QosClass::Batch];

    /// Index of this class's injector band (0 is highest priority).
    pub fn band(self) -> usize {
        match self {
            QosClass::Interactive => 0,
            QosClass::Standard => 1,
            QosClass::Batch => 2,
        }
    }

    /// Stable wire label (`"interactive"`, `"standard"`, `"batch"`).
    pub fn label(self) -> &'static str {
        match self {
            QosClass::Interactive => "interactive",
            QosClass::Standard => "standard",
            QosClass::Batch => "batch",
        }
    }

    /// Parse a wire label back into a class.
    pub fn parse(label: &str) -> Option<QosClass> {
        match label {
            "interactive" => Some(QosClass::Interactive),
            "standard" => Some(QosClass::Standard),
            "batch" => Some(QosClass::Batch),
            _ => None,
        }
    }
}

impl std::fmt::Display for QosClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What one [`BatchSource::run_one`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceState {
    /// A batch was executed (or otherwise disposed of); the source made
    /// progress and may be polled again.
    Ran,
    /// Nothing is queued; the token is released until the next
    /// [`SourceHandle::notify`].
    Idle,
    /// Work is queued but its batch is still forming (waiting for
    /// batch-mates); poll again at `retry_at`. The executor re-arms the
    /// token on a timer instead of blocking a worker.
    NotReady {
        /// When the pending batch becomes releasable.
        retry_at: Instant,
    },
    /// The source is shut down; drop its tokens.
    Closed,
}

/// A producer of batch work the executor can drive.
///
/// `run_one` must be safe to call from any worker thread, concurrently up
/// to the source's token count, and must **never block waiting for more
/// work to arrive** — return [`SourceState::NotReady`] with a poll instant
/// instead.
pub trait BatchSource: Send + Sync {
    /// Take and execute at most one batch.
    fn run_one(&self) -> SourceState;

    /// Work items currently awaiting dispatch (for this crate's scheduling
    /// and telemetry; for a serving engine this is the request queue depth).
    fn pending(&self) -> usize;
}

/// Pool construction options.
#[derive(Debug, Clone)]
pub struct ExecutorOptions {
    /// Worker threads in the shared pool.
    pub workers: usize,
    /// Injector shards per QoS band (pushes round-robin across shards).
    pub injector_shards: usize,
    /// Admission-shed knob: when the summed `pending()` of
    /// `Interactive`/`Standard` sources exceeds this, [`SourceHandle::
    /// should_shed`](SourceHandle::should_shed) turns true for
    /// `Batch`-class sources so callers can reject their work at admission.
    /// `usize::MAX` (the default) disables shedding.
    pub batch_shed_backlog: usize,
    /// Start with every worker quiesced (as if [`Executor::pause`] had been
    /// called); used by deterministic scheduling tests.
    pub start_paused: bool,
}

impl Default for ExecutorOptions {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        ExecutorOptions {
            workers,
            injector_shards: 2,
            batch_shed_backlog: usize::MAX,
            start_paused: false,
        }
    }
}

/// Per-source telemetry snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SourceMetrics {
    /// Registration label (the model name for serving engines).
    pub label: String,
    /// QoS class wire label.
    pub qos: String,
    /// Fair-share weight (batches per token dispatch).
    pub weight: usize,
    /// Work items awaiting dispatch right now.
    pub queued: usize,
    /// Token dispatches currently executing on workers.
    pub running: usize,
    /// Batches executed from tokens a worker stole off a sibling's deque.
    pub stolen_batches: u64,
    /// Batches executed in total by the pool for this source.
    pub executed_batches: u64,
}

/// Per-QoS-band telemetry snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BandMetrics {
    /// QoS class wire label.
    pub qos: String,
    /// Summed `pending()` of the band's sources (work items).
    pub queued: usize,
    /// Dispatch tokens currently queued in the band's injector shards.
    pub tokens: usize,
}

/// Pool-wide telemetry snapshot.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ExecutorMetrics {
    /// Worker threads in the pool.
    pub workers: usize,
    /// Tokens taken from sibling deques since start.
    pub steals_total: u64,
    /// Fraction of pool time spent dispatching since start, `0.0..=1.0`.
    pub utilization: f64,
    /// One entry per QoS band, priority order.
    pub bands: Vec<BandMetrics>,
    /// One entry per registered source.
    pub sources: Vec<SourceMetrics>,
}

type Token = Arc<SourceEntry>;

struct SourceEntry {
    id: u64,
    label: String,
    weight: usize,
    qos: QosClass,
    source: Arc<dyn BatchSource>,
    /// Tokens in flight (queued, parked on a timer, or dispatching).
    outstanding: AtomicUsize,
    /// The token is parked on the formation timer; a notify or the timer
    /// firing claims it (CAS to false) and re-queues it.
    parked: AtomicBool,
    closed: AtomicBool,
    running: AtomicUsize,
    executed: AtomicU64,
    stolen: AtomicU64,
}

struct Band {
    shards: Vec<Injector<Token>>,
    next: AtomicUsize,
}

impl Band {
    fn queued_tokens(&self) -> usize {
        self.shards.iter().map(|s| s.len()).sum()
    }
}

/// Min-heap entry (via reversed `Ord`) for parked formation timers.
struct TimerEntry {
    at: Instant,
    token: Token,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.token.id == other.token.id
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest deadline.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.token.id.cmp(&self.token.id))
    }
}

struct SignalState {
    seq: u64,
    paused: bool,
    shutdown: bool,
    paused_workers: usize,
}

struct Inner {
    bands: [Band; 3],
    stealers: Vec<Stealer<Token>>,
    sources: Mutex<Vec<Token>>,
    timers: Mutex<BinaryHeap<TimerEntry>>,
    signal: Mutex<SignalState>,
    cond: Condvar,
    steals_total: AtomicU64,
    busy_ns: Vec<AtomicU64>,
    started_at: Instant,
    worker_count: usize,
    batch_shed_backlog: usize,
    next_source_id: AtomicU64,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    match mutex.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl Inner {
    /// Bump the wake sequence and wake every parked worker.
    fn wake_all(&self) {
        let mut st = lock(&self.signal);
        st.seq = st.seq.wrapping_add(1);
        self.cond.notify_all();
    }

    fn push_token_to_band(&self, token: Token) {
        let band = &self.bands[token.qos.band()];
        let shard = band.next.fetch_add(1, Ordering::Relaxed) % band.shards.len();
        band.shards[shard].push(token);
    }

    /// Top the source's token count up toward `ceil(pending / weight)`
    /// (clamped to the pool size), re-checking `pending()` *after* any
    /// `outstanding` decrement so a push racing a finishing dispatch can
    /// never be stranded without a token. The first token goes to the
    /// source's QoS band (the fair tail position); ramp-up extras go to the
    /// calling worker's local deque where idle siblings can steal them.
    fn replenish(&self, entry: &Token, local: Option<&Worker<Token>>) {
        let pending = entry.source.pending();
        if pending == 0 || entry.closed.load(Ordering::Acquire) {
            return;
        }
        let quantum = entry.weight.max(1);
        let target = pending.div_ceil(quantum).clamp(1, self.worker_count);
        let mut added = false;
        let mut first = true;
        loop {
            let current = entry.outstanding.load(Ordering::Acquire);
            if current >= target {
                break;
            }
            if entry
                .outstanding
                .compare_exchange(current, current + 1, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                match (first, local) {
                    (false, Some(local)) => local.push(entry.clone()),
                    _ => self.push_token_to_band(entry.clone()),
                }
                added = true;
                first = false;
            }
        }
        if added {
            self.wake_all();
        }
    }

    /// Move parked tokens whose formation timer has come due back to their
    /// QoS band. Stale heap entries (token already claimed by a notify)
    /// are skipped.
    fn fire_due_timers(&self) {
        let now = Instant::now();
        let mut due = Vec::new();
        {
            let mut timers = lock(&self.timers);
            while timers.peek().is_some_and(|t| t.at <= now) {
                due.push(timers.pop().expect("peeked").token);
            }
        }
        let mut woke = false;
        for token in due {
            if token
                .parked
                .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                self.push_token_to_band(token);
                woke = true;
            }
        }
        if woke {
            self.wake_all();
        }
    }

    fn next_timer_at(&self) -> Option<Instant> {
        lock(&self.timers).peek().map(|t| t.at)
    }

    /// One worker's token acquisition: QoS bands priority-first (with the
    /// periodic reversed sweep), then the local deque, then steal from a
    /// sibling.
    fn find_token(
        &self,
        local: &Worker<Token>,
        index: usize,
        dispatches: u64,
    ) -> Option<(Token, bool)> {
        let order: [usize; 3] = if dispatches % ANTI_STARVATION_PERIOD == ANTI_STARVATION_PERIOD - 1
        {
            [2, 1, 0]
        } else {
            [0, 1, 2]
        };
        for band_index in order {
            let band = &self.bands[band_index];
            let shard_count = band.shards.len();
            // Rotate the shard starting point per dispatch: a token
            // re-enqueued into one shard must not shadow a sibling's token
            // sitting in another.
            for offset in 0..shard_count {
                let shard = &band.shards[(index + dispatches as usize + offset) % shard_count];
                if let Steal::Success(token) = shard.steal() {
                    return Some((token, false));
                }
            }
        }
        if let Some(token) = local.pop() {
            return Some((token, false));
        }
        for offset in 1..self.stealers.len() {
            let victim = (index + offset) % self.stealers.len();
            if let Steal::Success(token) = self.stealers[victim].steal() {
                self.steals_total.fetch_add(1, Ordering::Relaxed);
                return Some((token, true));
            }
        }
        None
    }

    /// Run one token: up to `weight` batches, then hand the token back to
    /// the band tail (or park it on the formation timer, or drop it).
    fn dispatch(&self, index: usize, entry: &Token, local: &Worker<Token>, via_steal: bool) {
        if entry.closed.load(Ordering::Acquire) {
            entry.outstanding.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let quantum = entry.weight.max(1);
        let started = Instant::now();
        entry.running.fetch_add(1, Ordering::AcqRel);
        let mut ran = 0u64;
        let mut retry_at = None;
        while (ran as usize) < quantum {
            match entry.source.run_one() {
                SourceState::Ran => ran += 1,
                SourceState::Idle => break,
                SourceState::NotReady { retry_at: at } => {
                    retry_at = Some(at);
                    break;
                }
                SourceState::Closed => {
                    entry.closed.store(true, Ordering::Release);
                    break;
                }
            }
        }
        entry.running.fetch_sub(1, Ordering::AcqRel);
        entry.executed.fetch_add(ran, Ordering::Relaxed);
        if via_steal {
            entry.stolen.fetch_add(ran, Ordering::Relaxed);
        }
        self.busy_ns[index].fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        if entry.closed.load(Ordering::Acquire) {
            entry.outstanding.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        if let Some(at) = retry_at {
            // The batch is still forming. A forming batch needs exactly one
            // poller: the first token to get here parks on the timer (still
            // holding its outstanding slot); any sibling token observing the
            // same NotReady is redundant and releases its slot — otherwise
            // two parked tokens would share the single `parked` flag and the
            // loser's slot would leak, starving the source of tokens for
            // good. A notify() racing the successful park simply re-polls
            // the source early — run_one is idempotent on a not-ready batch.
            if entry
                .parked
                .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                lock(&self.timers).push(TimerEntry {
                    at,
                    token: entry.clone(),
                });
            } else {
                entry.outstanding.fetch_sub(1, Ordering::AcqRel);
            }
            return;
        }
        entry.outstanding.fetch_sub(1, Ordering::AcqRel);
        self.replenish(entry, Some(local));
    }
}

fn worker_loop(inner: Arc<Inner>, index: usize, local: Worker<Token>) {
    let mut dispatches: u64 = 0;
    loop {
        let seen = {
            let mut st = lock(&inner.signal);
            if st.paused && !st.shutdown {
                st.paused_workers += 1;
                inner.cond.notify_all();
                while st.paused && !st.shutdown {
                    st = match inner.cond.wait(st) {
                        Ok(guard) => guard,
                        Err(poisoned) => poisoned.into_inner(),
                    };
                }
                st.paused_workers -= 1;
            }
            if st.shutdown {
                return;
            }
            st.seq
        };
        inner.fire_due_timers();
        if let Some((token, via_steal)) = inner.find_token(&local, index, dispatches) {
            dispatches += 1;
            inner.dispatch(index, &token, &local, via_steal);
            continue;
        }
        let timeout = inner
            .next_timer_at()
            .map(|at| at.saturating_duration_since(Instant::now()))
            .unwrap_or(IDLE_PARK)
            .min(IDLE_PARK)
            .max(Duration::from_micros(100));
        let st = lock(&inner.signal);
        if st.seq == seen && !st.shutdown && !st.paused {
            let _ = inner.cond.wait_timeout(st, timeout);
        }
    }
}

/// The shared worker pool. See the crate docs for the scheduling model.
pub struct Executor {
    inner: Arc<Inner>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl Executor {
    /// Spawn the pool. Fails only if a worker thread cannot be spawned.
    pub fn new(options: ExecutorOptions) -> std::io::Result<Executor> {
        let workers = options.workers.max(1);
        let shards = options.injector_shards.max(1);
        let locals: Vec<Worker<Token>> = (0..workers).map(|_| Worker::new_fifo()).collect();
        let stealers = locals.iter().map(|w| w.stealer()).collect();
        let make_band = || Band {
            shards: (0..shards).map(|_| Injector::new()).collect(),
            next: AtomicUsize::new(0),
        };
        let inner = Arc::new(Inner {
            bands: [make_band(), make_band(), make_band()],
            stealers,
            sources: Mutex::new(Vec::new()),
            timers: Mutex::new(BinaryHeap::new()),
            signal: Mutex::new(SignalState {
                seq: 0,
                paused: options.start_paused,
                shutdown: false,
                paused_workers: 0,
            }),
            cond: Condvar::new(),
            steals_total: AtomicU64::new(0),
            busy_ns: (0..workers).map(|_| AtomicU64::new(0)).collect(),
            started_at: Instant::now(),
            worker_count: workers,
            batch_shed_backlog: options.batch_shed_backlog,
            next_source_id: AtomicU64::new(0),
        });
        let mut handles = Vec::with_capacity(workers);
        for (index, local) in locals.into_iter().enumerate() {
            let worker_inner = Arc::clone(&inner);
            let spawned = std::thread::Builder::new()
                .name(format!("tdc-exec-worker-{index}"))
                .spawn(move || worker_loop(worker_inner, index, local));
            match spawned {
                Ok(handle) => handles.push(handle),
                Err(e) => {
                    // Unwind cleanly: stop the workers already running.
                    {
                        let mut st = lock(&inner.signal);
                        st.shutdown = true;
                        inner.cond.notify_all();
                    }
                    for handle in handles {
                        let _ = handle.join();
                    }
                    return Err(e);
                }
            }
        }
        Ok(Executor {
            inner,
            handles: Mutex::new(handles),
        })
    }

    /// Worker threads in the pool.
    pub fn workers(&self) -> usize {
        self.inner.worker_count
    }

    /// Register a source under `label` with fair-share `weight` (batches
    /// per token dispatch) and QoS class. The returned handle is the
    /// source's scheduling interface; dropping it deregisters the source.
    pub fn register(
        &self,
        label: impl Into<String>,
        weight: usize,
        qos: QosClass,
        source: Arc<dyn BatchSource>,
    ) -> SourceHandle {
        let entry = Arc::new(SourceEntry {
            id: self.inner.next_source_id.fetch_add(1, Ordering::Relaxed),
            label: label.into(),
            weight: weight.max(1),
            qos,
            source,
            outstanding: AtomicUsize::new(0),
            parked: AtomicBool::new(false),
            closed: AtomicBool::new(false),
            running: AtomicUsize::new(0),
            executed: AtomicU64::new(0),
            stolen: AtomicU64::new(0),
        });
        lock(&self.inner.sources).push(Arc::clone(&entry));
        SourceHandle {
            inner: Arc::clone(&self.inner),
            entry,
        }
    }

    /// Quiesce the pool: every worker finishes its current dispatch and
    /// parks; queued tokens stay queued. Returns once all workers are
    /// parked. Used by deterministic scheduling tests.
    pub fn pause(&self) {
        let mut st = lock(&self.inner.signal);
        st.paused = true;
        st.seq = st.seq.wrapping_add(1);
        self.inner.cond.notify_all();
        while st.paused_workers < self.inner.worker_count && !st.shutdown {
            st = match self.inner.cond.wait_timeout(st, Duration::from_millis(5)) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
    }

    /// Restart a paused pool.
    pub fn resume(&self) {
        let mut st = lock(&self.inner.signal);
        st.paused = false;
        st.seq = st.seq.wrapping_add(1);
        self.inner.cond.notify_all();
    }

    /// Pool-wide telemetry snapshot.
    pub fn metrics(&self) -> ExecutorMetrics {
        let sources: Vec<Token> = lock(&self.inner.sources).clone();
        let mut bands: Vec<BandMetrics> = QosClass::ALL
            .iter()
            .map(|qos| BandMetrics {
                qos: qos.label().to_string(),
                queued: 0,
                tokens: self.inner.bands[qos.band()].queued_tokens(),
            })
            .collect();
        let source_metrics: Vec<SourceMetrics> = sources
            .iter()
            .map(|entry| {
                let queued = entry.source.pending();
                bands[entry.qos.band()].queued += queued;
                SourceMetrics {
                    label: entry.label.clone(),
                    qos: entry.qos.label().to_string(),
                    weight: entry.weight,
                    queued,
                    running: entry.running.load(Ordering::Relaxed),
                    stolen_batches: entry.stolen.load(Ordering::Relaxed),
                    executed_batches: entry.executed.load(Ordering::Relaxed),
                }
            })
            .collect();
        let busy_ns: u64 = self
            .inner
            .busy_ns
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum();
        let elapsed_ns =
            self.inner.started_at.elapsed().as_nanos() as f64 * self.inner.worker_count as f64;
        ExecutorMetrics {
            workers: self.inner.worker_count,
            steals_total: self.inner.steals_total.load(Ordering::Relaxed),
            utilization: if elapsed_ns > 0.0 {
                (busy_ns as f64 / elapsed_ns).clamp(0.0, 1.0)
            } else {
                0.0
            },
            bands,
            sources: source_metrics,
        }
    }

    /// Stop and join every worker. Idempotent; sources should be drained
    /// first (any still-queued tokens are dropped).
    pub fn shutdown(&self) {
        {
            let mut st = lock(&self.inner.signal);
            if st.shutdown {
                return;
            }
            st.shutdown = true;
            st.seq = st.seq.wrapping_add(1);
            self.inner.cond.notify_all();
        }
        for handle in lock(&self.handles).drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Executor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One registered source's scheduling interface: notify on new work, query
/// counters, consult the admission-shed knob. Dropping the handle
/// deregisters the source (outstanding tokens are discarded as workers
/// encounter them).
pub struct SourceHandle {
    inner: Arc<Inner>,
    entry: Token,
}

impl SourceHandle {
    /// Tell the pool the source has (possibly) new work: unparks a token
    /// waiting on the formation timer, or tops the token count up toward
    /// the source's backlog-proportional target. Call after every enqueue
    /// — and after closing the source's queue, so drains are dispatched
    /// promptly.
    pub fn notify(&self) {
        if self
            .entry
            .parked
            .compare_exchange(true, false, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
        {
            // The parked batch may have just become full (or the queue
            // closed): poll now instead of at the formation timer.
            self.inner.push_token_to_band(Arc::clone(&self.entry));
            self.inner.wake_all();
            return;
        }
        self.inner.replenish(&self.entry, None);
    }

    /// QoS class the source registered under.
    pub fn qos(&self) -> QosClass {
        self.entry.qos
    }

    /// Fair-share weight the source registered under.
    pub fn weight(&self) -> usize {
        self.entry.weight
    }

    /// Batches executed from stolen tokens.
    pub fn stolen_batches(&self) -> u64 {
        self.entry.stolen.load(Ordering::Relaxed)
    }

    /// Batches executed in total.
    pub fn executed_batches(&self) -> u64 {
        self.entry.executed.load(Ordering::Relaxed)
    }

    /// Token dispatches currently executing.
    pub fn running(&self) -> usize {
        self.entry.running.load(Ordering::Relaxed)
    }

    /// Telemetry snapshot for this source.
    pub fn metrics(&self) -> SourceMetrics {
        SourceMetrics {
            label: self.entry.label.clone(),
            qos: self.entry.qos.label().to_string(),
            weight: self.entry.weight,
            queued: self.entry.source.pending(),
            running: self.entry.running.load(Ordering::Relaxed),
            stolen_batches: self.entry.stolen.load(Ordering::Relaxed),
            executed_batches: self.entry.executed.load(Ordering::Relaxed),
        }
    }

    /// Admission-shed check for `Batch`-class sources: true when the pool's
    /// higher-priority backlog (summed `Interactive`/`Standard` `pending()`)
    /// exceeds [`ExecutorOptions::batch_shed_backlog`]. Always false for
    /// the other classes and when shedding is disabled.
    pub fn should_shed(&self) -> bool {
        if self.entry.qos != QosClass::Batch {
            return false;
        }
        let limit = self.inner.batch_shed_backlog;
        if limit == usize::MAX {
            return false;
        }
        let higher: usize = lock(&self.inner.sources)
            .iter()
            .filter(|s| s.qos.band() < QosClass::Batch.band())
            .map(|s| s.source.pending())
            .sum();
        higher > limit
    }

    /// The configured [`ExecutorOptions::batch_shed_backlog`].
    pub fn shed_backlog_limit(&self) -> usize {
        self.inner.batch_shed_backlog
    }
}

impl Drop for SourceHandle {
    fn drop(&mut self) {
        self.entry.closed.store(true, Ordering::Release);
        let id = self.entry.id;
        lock(&self.inner.sources).retain(|s| s.id != id);
        self.inner.wake_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A source that pops closures off a queue; `NotReady`/`Closed` can be
    /// scripted by the closure return.
    struct ScriptSource {
        queue: Mutex<std::collections::VecDeque<Box<dyn FnOnce() -> SourceState + Send>>>,
        closed: AtomicBool,
    }

    impl ScriptSource {
        fn new() -> Self {
            ScriptSource {
                queue: Mutex::new(std::collections::VecDeque::new()),
                closed: AtomicBool::new(false),
            }
        }

        fn push(&self, step: impl FnOnce() -> SourceState + Send + 'static) {
            lock(&self.queue).push_back(Box::new(step));
        }
    }

    impl BatchSource for ScriptSource {
        fn run_one(&self) -> SourceState {
            if self.closed.load(Ordering::Acquire) {
                return SourceState::Closed;
            }
            match lock(&self.queue).pop_front() {
                Some(step) => step(),
                None => SourceState::Idle,
            }
        }
        fn pending(&self) -> usize {
            lock(&self.queue).len()
        }
    }

    fn wait_until(deadline_ms: u64, mut done: impl FnMut() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_millis(deadline_ms);
        while Instant::now() < deadline {
            if done() {
                return true;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        done()
    }

    #[test]
    fn drains_multiple_sources_completely() {
        let exec = Executor::new(ExecutorOptions {
            workers: 3,
            ..ExecutorOptions::default()
        })
        .unwrap();
        let counter = Arc::new(AtomicUsize::new(0));
        let sources: Vec<_> = (0..3)
            .map(|i| {
                let src = Arc::new(ScriptSource::new());
                for _ in 0..20 {
                    let counter = Arc::clone(&counter);
                    src.push(move || {
                        counter.fetch_add(1, Ordering::SeqCst);
                        SourceState::Ran
                    });
                }
                let handle = exec.register(
                    format!("src-{i}"),
                    1 + i,
                    QosClass::ALL[i],
                    src.clone() as Arc<dyn BatchSource>,
                );
                handle.notify();
                (src, handle)
            })
            .collect();
        assert!(
            wait_until(5000, || counter.load(Ordering::SeqCst) == 60),
            "all 60 batches must run, got {}",
            counter.load(Ordering::SeqCst)
        );
        let executed: u64 = sources.iter().map(|(_, h)| h.executed_batches()).sum();
        assert_eq!(executed, 60);
        let m = exec.metrics();
        assert_eq!(m.workers, 3);
        assert_eq!(m.sources.len(), 3);
        assert!(m.utilization >= 0.0 && m.utilization <= 1.0);
        assert!(m.bands.iter().all(|b| b.queued == 0));
        exec.shutdown();
    }

    #[test]
    fn weighted_round_robin_interleaves_a_flood_with_a_sibling() {
        // One worker and one injector shard, paused while the queues fill:
        // dispatch order is then purely the scheduler's, so the assertion
        // is deterministic.
        let exec = Executor::new(ExecutorOptions {
            workers: 1,
            injector_shards: 1,
            start_paused: true,
            ..ExecutorOptions::default()
        })
        .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let make = |tag: char, n: usize| {
            let src = Arc::new(ScriptSource::new());
            for _ in 0..n {
                let order = Arc::clone(&order);
                src.push(move || {
                    lock(&order).push(tag);
                    SourceState::Ran
                });
            }
            src
        };
        let flood = make('a', 6);
        let sibling = make('b', 2);
        let flood_handle = exec.register(
            "flood",
            1,
            QosClass::Standard,
            flood.clone() as Arc<dyn BatchSource>,
        );
        let sibling_handle = exec.register(
            "sibling",
            1,
            QosClass::Standard,
            sibling.clone() as Arc<dyn BatchSource>,
        );
        flood_handle.notify();
        sibling_handle.notify();
        exec.resume();
        assert!(wait_until(5000, || lock(&order).len() == 8));
        let observed: String = lock(&order).iter().collect();
        // Tokens alternate off the band tail: the sibling's two batches run
        // at positions 2 and 4, not behind the whole flood.
        assert_eq!(observed, "ababaaaa");
        exec.shutdown();
    }

    #[test]
    fn qos_bands_are_swept_in_priority_order() {
        let exec = Executor::new(ExecutorOptions {
            workers: 1,
            start_paused: true,
            ..ExecutorOptions::default()
        })
        .unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        let make = |tag: char| {
            let src = Arc::new(ScriptSource::new());
            let order = Arc::clone(&order);
            src.push(move || {
                lock(&order).push(tag);
                SourceState::Ran
            });
            src
        };
        let batch = make('b');
        let interactive = make('i');
        // Batch-class work is enqueued *first*…
        let batch_handle = exec.register(
            "bulk",
            1,
            QosClass::Batch,
            batch.clone() as Arc<dyn BatchSource>,
        );
        batch_handle.notify();
        let interactive_handle = exec.register(
            "hot",
            1,
            QosClass::Interactive,
            interactive.clone() as Arc<dyn BatchSource>,
        );
        interactive_handle.notify();
        exec.resume();
        assert!(wait_until(5000, || lock(&order).len() == 2));
        // …but the interactive band is swept first.
        assert_eq!(*lock(&order), vec!['i', 'b']);
        exec.shutdown();
    }

    #[test]
    fn formation_timer_re_polls_a_not_ready_source() {
        let exec = Executor::new(ExecutorOptions {
            workers: 1,
            ..ExecutorOptions::default()
        })
        .unwrap();
        let src = Arc::new(ScriptSource::new());
        let ran = Arc::new(AtomicBool::new(false));
        {
            let ran = Arc::clone(&ran);
            src.push(move || {
                ran.store(true, Ordering::SeqCst);
                SourceState::Ran
            });
        }
        // First poll reports the batch still forming for 20 ms; the
        // executor must come back on its own, with no further notify.
        let retry_at = Instant::now() + Duration::from_millis(20);
        let not_ready_seen = Arc::new(AtomicBool::new(false));
        let handle = {
            struct Gated {
                inner: Arc<ScriptSource>,
                retry_at: Instant,
                armed: AtomicBool,
                seen: Arc<AtomicBool>,
            }
            impl BatchSource for Gated {
                fn run_one(&self) -> SourceState {
                    if self
                        .armed
                        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok()
                    {
                        self.seen.store(true, Ordering::SeqCst);
                        return SourceState::NotReady {
                            retry_at: self.retry_at,
                        };
                    }
                    self.inner.run_one()
                }
                fn pending(&self) -> usize {
                    self.inner.pending()
                }
            }
            exec.register(
                "gated",
                1,
                QosClass::Standard,
                Arc::new(Gated {
                    inner: src.clone(),
                    retry_at,
                    armed: AtomicBool::new(false),
                    seen: Arc::clone(&not_ready_seen),
                }) as Arc<dyn BatchSource>,
            )
        };
        handle.notify();
        assert!(wait_until(5000, || ran.load(Ordering::SeqCst)));
        assert!(not_ready_seen.load(Ordering::SeqCst));
        assert!(
            Instant::now() >= retry_at,
            "the batch ran only after the timer"
        );
        exec.shutdown();
    }

    #[test]
    fn batch_class_sheds_under_interactive_backlog() {
        let exec = Executor::new(ExecutorOptions {
            workers: 1,
            batch_shed_backlog: 4,
            start_paused: true,
            ..ExecutorOptions::default()
        })
        .unwrap();
        let hot = Arc::new(ScriptSource::new());
        for _ in 0..8 {
            hot.push(|| SourceState::Ran);
        }
        let _hot_handle = exec.register(
            "hot",
            1,
            QosClass::Interactive,
            hot.clone() as Arc<dyn BatchSource>,
        );
        let bulk = Arc::new(ScriptSource::new());
        let bulk_handle = exec.register(
            "bulk",
            1,
            QosClass::Batch,
            bulk.clone() as Arc<dyn BatchSource>,
        );
        assert!(
            bulk_handle.should_shed(),
            "8 interactive pending > limit 4 must shed batch admission"
        );
        assert_eq!(bulk_handle.shed_backlog_limit(), 4);
        // Drain the interactive backlog; shedding stops.
        _hot_handle.notify();
        exec.resume();
        assert!(wait_until(5000, || hot.pending() == 0
            && _hot_handle.executed_batches() == 8));
        assert!(!bulk_handle.should_shed());
        exec.shutdown();
    }

    #[test]
    fn dropping_the_handle_deregisters_and_discards_tokens() {
        let exec = Executor::new(ExecutorOptions {
            workers: 1,
            start_paused: true,
            ..ExecutorOptions::default()
        })
        .unwrap();
        let src = Arc::new(ScriptSource::new());
        src.push(|| SourceState::Ran);
        let handle = exec.register(
            "gone",
            1,
            QosClass::Standard,
            src.clone() as Arc<dyn BatchSource>,
        );
        handle.notify();
        drop(handle);
        assert_eq!(exec.metrics().sources.len(), 0);
        exec.resume();
        // The queued token is discarded: the work never runs.
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(src.pending(), 1);
        exec.shutdown();
    }

    #[test]
    fn pause_quiesces_until_resume() {
        let exec = Executor::new(ExecutorOptions {
            workers: 2,
            ..ExecutorOptions::default()
        })
        .unwrap();
        exec.pause();
        let src = Arc::new(ScriptSource::new());
        let ran = Arc::new(AtomicBool::new(false));
        {
            let ran = Arc::clone(&ran);
            src.push(move || {
                ran.store(true, Ordering::SeqCst);
                SourceState::Ran
            });
        }
        let handle = exec.register(
            "paused",
            1,
            QosClass::Standard,
            src.clone() as Arc<dyn BatchSource>,
        );
        handle.notify();
        std::thread::sleep(Duration::from_millis(30));
        assert!(!ran.load(Ordering::SeqCst), "paused pool must not dispatch");
        exec.resume();
        assert!(wait_until(5000, || ran.load(Ordering::SeqCst)));
        exec.shutdown();
    }

    #[test]
    fn qos_class_labels_round_trip() {
        for qos in QosClass::ALL {
            assert_eq!(QosClass::parse(qos.label()), Some(qos));
            assert_eq!(qos.to_string(), qos.label());
        }
        assert_eq!(QosClass::parse("bogus"), None);
        assert_eq!(QosClass::default(), QosClass::Standard);
        assert!(QosClass::Interactive.band() < QosClass::Batch.band());
    }
}
