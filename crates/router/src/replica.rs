//! Replica endpoints and routing policies.
//!
//! A [`Replica`] is one backend `serve_http` process as seen from the
//! router: an address, a health flag flipped by the prober, per-replica
//! traffic counters, and a small pool of keep-alive [`HttpClient`]
//! connections. [`candidates`] orders the current replica set for a given
//! model under a [`RoutingPolicy`] — consistent hashing (stable per-model
//! placement, deterministic failover order) or least-loaded (router-local
//! in-flight count) — always healthy replicas first.

use std::io;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use tdc_serve::http::HttpResponseParts;
use tdc_serve::HttpClient;

/// Cap on pooled keep-alive connections per replica; excess connections are
/// simply dropped after use.
const POOL_LIMIT: usize = 8;

/// Virtual nodes per replica on the consistent-hash ring. More vnodes smooth
/// the per-model placement distribution across small fleets.
const VNODES: usize = 16;

/// How requests pick a replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// FNV-1a consistent hashing of the model name onto a vnode ring:
    /// a model sticks to one replica (warm plan cache, stable batching)
    /// and the ring walk gives every model a deterministic failover order.
    ConsistentHash,
    /// Pick the replica with the fewest router-observed in-flight requests
    /// (ties broken by replica id). Spreads a single hot model evenly.
    LeastLoaded,
}

impl RoutingPolicy {
    /// Parse a CLI label (`hash` / `least-loaded`).
    pub fn parse(label: &str) -> Option<RoutingPolicy> {
        match label {
            "hash" | "consistent-hash" => Some(RoutingPolicy::ConsistentHash),
            "least-loaded" | "least_loaded" => Some(RoutingPolicy::LeastLoaded),
            _ => None,
        }
    }

    /// The canonical CLI/metrics label.
    pub fn label(&self) -> &'static str {
        match self {
            RoutingPolicy::ConsistentHash => "consistent-hash",
            RoutingPolicy::LeastLoaded => "least-loaded",
        }
    }
}

/// 64-bit FNV-1a — the same cheap, dependency-free hash the plan cache's
/// spill filenames use. Stable across processes, unlike `DefaultHasher`.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// One backend `serve_http` endpoint plus the router's view of it.
pub struct Replica {
    id: usize,
    addr: SocketAddr,
    healthy: AtomicBool,
    probe_failures: AtomicU32,
    probe_successes: AtomicU32,
    inflight: AtomicU64,
    forwarded: AtomicU64,
    data_errors: AtomicU64,
    ejections: AtomicU64,
    readmissions: AtomicU64,
    probe_models: AtomicU64,
    probe_epoch: AtomicU64,
    probe_queue_depth: AtomicU64,
    pool: Mutex<Vec<HttpClient>>,
}

impl Replica {
    /// A new replica, assumed healthy until the prober says otherwise.
    pub fn new(id: usize, addr: SocketAddr) -> Replica {
        Replica {
            id,
            addr,
            healthy: AtomicBool::new(true),
            probe_failures: AtomicU32::new(0),
            probe_successes: AtomicU32::new(0),
            inflight: AtomicU64::new(0),
            forwarded: AtomicU64::new(0),
            data_errors: AtomicU64::new(0),
            ejections: AtomicU64::new(0),
            readmissions: AtomicU64::new(0),
            probe_models: AtomicU64::new(0),
            probe_epoch: AtomicU64::new(0),
            probe_queue_depth: AtomicU64::new(0),
            pool: Mutex::new(Vec::new()),
        }
    }

    /// Stable replica id (assigned in registration order).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The backend's socket address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Is the replica currently admitted for routing?
    pub fn healthy(&self) -> bool {
        self.healthy.load(Ordering::SeqCst)
    }

    /// Router-local in-flight request count (the least-loaded signal).
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Requests successfully forwarded to this replica.
    pub fn forwarded_total(&self) -> u64 {
        self.forwarded.load(Ordering::SeqCst)
    }

    /// Data-path I/O errors (connect failures, resets, timeouts).
    pub fn data_errors_total(&self) -> u64 {
        self.data_errors.load(Ordering::SeqCst)
    }

    /// Times the prober ejected this replica.
    pub fn ejections_total(&self) -> u64 {
        self.ejections.load(Ordering::SeqCst)
    }

    /// Times the prober re-admitted this replica after recovery.
    pub fn readmissions_total(&self) -> u64 {
        self.readmissions.load(Ordering::SeqCst)
    }

    /// Model count reported by the replica's last successful health probe.
    pub fn probe_models(&self) -> u64 {
        self.probe_models.load(Ordering::SeqCst)
    }

    /// Registry table epoch from the last successful health probe.
    pub fn probe_epoch(&self) -> u64 {
        self.probe_epoch.load(Ordering::SeqCst)
    }

    /// Aggregate queue depth from the last successful health probe.
    pub fn probe_queue_depth(&self) -> u64 {
        self.probe_queue_depth.load(Ordering::SeqCst)
    }

    /// Record a successful readiness probe. Returns `true` when this success
    /// crosses `readmit_after` consecutive successes on an ejected replica —
    /// i.e. the replica was just re-admitted.
    pub fn note_probe_success(
        &self,
        models: u64,
        epoch: u64,
        queue_depth: u64,
        readmit_after: u32,
    ) -> bool {
        self.probe_models.store(models, Ordering::SeqCst);
        self.probe_epoch.store(epoch, Ordering::SeqCst);
        self.probe_queue_depth.store(queue_depth, Ordering::SeqCst);
        self.probe_failures.store(0, Ordering::SeqCst);
        let successes = self.probe_successes.fetch_add(1, Ordering::SeqCst) + 1;
        if !self.healthy() && successes >= readmit_after {
            self.healthy.store(true, Ordering::SeqCst);
            self.readmissions.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Record a failed readiness probe. Returns `true` when this failure
    /// crosses `eject_after` consecutive failures on a healthy replica —
    /// i.e. the replica was just ejected.
    pub fn note_probe_failure(&self, eject_after: u32) -> bool {
        self.probe_successes.store(0, Ordering::SeqCst);
        let failures = self.probe_failures.fetch_add(1, Ordering::SeqCst) + 1;
        if self.healthy() && failures >= eject_after {
            self.healthy.store(false, Ordering::SeqCst);
            self.ejections.fetch_add(1, Ordering::SeqCst);
            return true;
        }
        false
    }

    /// Record a successful data-path forward.
    pub fn note_forwarded(&self) {
        self.forwarded.fetch_add(1, Ordering::SeqCst);
    }

    /// Record a data-path I/O error.
    pub fn note_data_error(&self) {
        self.data_errors.fetch_add(1, Ordering::SeqCst);
    }

    /// RAII in-flight marker: increments the least-loaded signal for the
    /// duration of one forwarded request.
    pub fn begin(self: &Arc<Self>) -> InflightGuard {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        InflightGuard {
            replica: Arc::clone(self),
        }
    }

    /// Issue one HTTP request to this replica with a per-request timeout,
    /// reusing a pooled keep-alive connection when one is available.
    ///
    /// A non-timeout failure on a *pooled* connection is retried once on a
    /// fresh connection: the overwhelmingly likely cause is the backend
    /// closing an idle keep-alive socket, which surfaces as an immediate
    /// EOF/reset before the request was processed. Timeouts are never
    /// retried here — the request may be mid-execution on the backend and
    /// retrying would double-submit work (the router's failover layer
    /// decides what happens next).
    pub fn request(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        timeout: Duration,
    ) -> io::Result<HttpResponseParts> {
        let pooled = self
            .pool
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .pop();
        if let Some(mut client) = pooled {
            client.set_request_timeout(Some(timeout))?;
            match client.request_with_headers(method, path, body) {
                Ok(parts) => {
                    self.release(client);
                    return Ok(parts);
                }
                Err(error) if tdc_serve::http::is_timeout(&error) => return Err(error),
                Err(_) => {
                    // Stale keep-alive socket; fall through to a fresh one.
                }
            }
        }
        let mut client = HttpClient::connect_with_timeout(&self.addr, timeout)?;
        let parts = client.request_with_headers(method, path, body)?;
        self.release(client);
        Ok(parts)
    }

    fn release(&self, client: HttpClient) {
        let mut pool = self
            .pool
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        if pool.len() < POOL_LIMIT {
            pool.push(client);
        }
    }
}

impl std::fmt::Debug for Replica {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replica")
            .field("id", &self.id)
            .field("addr", &self.addr)
            .field("healthy", &self.healthy())
            .field("inflight", &self.inflight())
            .finish()
    }
}

/// RAII guard returned by [`Replica::begin`]; decrements the in-flight
/// counter on drop.
pub struct InflightGuard {
    replica: Arc<Replica>,
}

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.replica.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Order the replica set for one request: the policy's preference order,
/// partitioned so healthy replicas come first (relative order preserved).
/// Unhealthy replicas stay at the tail as a last resort — if every replica
/// is ejected the router still tries rather than shedding outright.
pub fn candidates(
    replicas: &[Arc<Replica>],
    model: &str,
    policy: RoutingPolicy,
) -> Vec<Arc<Replica>> {
    if replicas.is_empty() {
        return Vec::new();
    }
    let order: Vec<Arc<Replica>> = match policy {
        RoutingPolicy::ConsistentHash => hash_order(replicas, model),
        RoutingPolicy::LeastLoaded => {
            let mut sorted: Vec<Arc<Replica>> = replicas.to_vec();
            sorted.sort_by_key(|replica| (replica.inflight(), replica.id()));
            sorted
        }
    };
    let (healthy, unhealthy): (Vec<_>, Vec<_>) =
        order.into_iter().partition(|replica| replica.healthy());
    healthy.into_iter().chain(unhealthy).collect()
}

/// Walk the vnode ring clockwise from the model's hash point, collecting
/// each distinct replica the first time one of its vnodes appears. The
/// resulting order is the model's stable placement plus its deterministic
/// failover sequence.
fn hash_order(replicas: &[Arc<Replica>], model: &str) -> Vec<Arc<Replica>> {
    let mut ring: Vec<(u64, usize)> = Vec::with_capacity(replicas.len() * VNODES);
    for (index, replica) in replicas.iter().enumerate() {
        for vnode in 0..VNODES {
            let point = fnv1a(format!("replica-{}-vnode-{vnode}", replica.id()).as_bytes());
            ring.push((point, index));
        }
    }
    ring.sort_unstable();
    let hash = fnv1a(model.as_bytes());
    let start = ring.partition_point(|(point, _)| *point < hash) % ring.len();
    let mut seen = vec![false; replicas.len()];
    let mut order = Vec::with_capacity(replicas.len());
    for step in 0..ring.len() {
        let (_, index) = ring[(start + step) % ring.len()];
        if !seen[index] {
            seen[index] = true;
            order.push(Arc::clone(&replicas[index]));
            if order.len() == replicas.len() {
                break;
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<Arc<Replica>> {
        (0..n)
            .map(|id| {
                Arc::new(Replica::new(
                    id,
                    format!("127.0.0.1:{}", 9000 + id).parse().unwrap(),
                ))
            })
            .collect()
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 64-bit test vectors.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn hash_order_is_deterministic_and_complete() {
        let replicas = fleet(4);
        let first = candidates(&replicas, "resnet", RoutingPolicy::ConsistentHash);
        let second = candidates(&replicas, "resnet", RoutingPolicy::ConsistentHash);
        let ids: Vec<usize> = first.iter().map(|r| r.id()).collect();
        let again: Vec<usize> = second.iter().map(|r| r.id()).collect();
        assert_eq!(ids, again);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            vec![0, 1, 2, 3],
            "every replica appears exactly once"
        );
    }

    #[test]
    fn hash_order_spreads_models_across_replicas() {
        let replicas = fleet(4);
        let mut owners = std::collections::HashSet::new();
        for model in ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"] {
            let order = candidates(&replicas, model, RoutingPolicy::ConsistentHash);
            owners.insert(order[0].id());
        }
        assert!(
            owners.len() >= 2,
            "six models should not all land on one replica: {owners:?}"
        );
    }

    #[test]
    fn least_loaded_orders_by_inflight_then_id() {
        let replicas = fleet(3);
        let _busy = replicas[0].begin();
        let _busier_a = replicas[1].begin();
        let _busier_b = replicas[1].begin();
        let order = candidates(&replicas, "any", RoutingPolicy::LeastLoaded);
        let ids: Vec<usize> = order.iter().map(|r| r.id()).collect();
        assert_eq!(ids, vec![2, 0, 1]);
    }

    #[test]
    fn unhealthy_replicas_sink_to_the_tail() {
        let replicas = fleet(3);
        let order = candidates(&replicas, "m", RoutingPolicy::ConsistentHash);
        let preferred = order[0].id();
        // Eject the preferred replica; it must drop to the back.
        assert!(!replicas[preferred].note_probe_failure(2));
        assert!(replicas[preferred].note_probe_failure(2));
        let after = candidates(&replicas, "m", RoutingPolicy::ConsistentHash);
        assert_eq!(after.last().unwrap().id(), preferred);
        assert!(after[0].healthy());
    }

    #[test]
    fn probe_thresholds_gate_ejection_and_readmission() {
        let replica = Arc::new(Replica::new(0, "127.0.0.1:9000".parse().unwrap()));
        assert!(replica.healthy());
        assert!(!replica.note_probe_failure(3));
        assert!(!replica.note_probe_failure(3));
        assert!(replica.note_probe_failure(3), "third failure ejects");
        assert!(!replica.healthy());
        assert_eq!(replica.ejections_total(), 1);
        // One success is not enough to re-admit at readmit_after=2.
        assert!(!replica.note_probe_success(2, 7, 0, 2));
        assert!(!replica.healthy());
        assert!(
            replica.note_probe_success(2, 7, 0, 2),
            "second success re-admits"
        );
        assert!(replica.healthy());
        assert_eq!(replica.readmissions_total(), 1);
        assert_eq!(replica.probe_models(), 2);
        assert_eq!(replica.probe_epoch(), 7);
        // A failure mid-recovery resets the success streak.
        replica.note_probe_failure(2);
        replica.note_probe_failure(2);
        assert!(!replica.healthy());
        assert!(!replica.note_probe_success(2, 8, 0, 2));
        assert!(!replica.note_probe_failure(2), "already ejected");
        assert!(!replica.note_probe_success(2, 8, 0, 2), "streak was reset");
        assert!(replica.note_probe_success(2, 8, 0, 2));
    }

    #[test]
    fn inflight_guard_is_raii() {
        let replicas = fleet(1);
        assert_eq!(replicas[0].inflight(), 0);
        {
            let _a = replicas[0].begin();
            let _b = replicas[0].begin();
            assert_eq!(replicas[0].inflight(), 2);
        }
        assert_eq!(replicas[0].inflight(), 0);
    }

    #[test]
    fn policy_labels_round_trip() {
        for policy in [RoutingPolicy::ConsistentHash, RoutingPolicy::LeastLoaded] {
            assert_eq!(RoutingPolicy::parse(policy.label()), Some(policy));
        }
        assert_eq!(
            RoutingPolicy::parse("hash"),
            Some(RoutingPolicy::ConsistentHash)
        );
        assert_eq!(RoutingPolicy::parse("bogus"), None);
    }
}
