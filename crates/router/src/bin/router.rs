//! The fleet router daemon: one process fronting N `serve_http` replicas
//! behind the identical public HTTP API.
//!
//! Replicas come from `--replicas HOST:PORT,...` (front an existing fleet)
//! or `--spawn N` (self-spawn N `serve_http` children on ephemeral ports —
//! a one-command local fleet; children are drained via `POST
//! /admin/shutdown` when the router exits). `--spill-dir DIR` is forwarded
//! to spawned children so they share one plan-spill directory: the first
//! replica to plan a model spills it, its siblings warm from disk.
//!
//! With `--smoke` the process runs the end-to-end fleet self-test CI uses:
//! spawn 3 replicas, register a model fleet-wide, verify routed inference
//! is bit-identical to a direct in-process engine, hammer the router while
//! one replica is shut down mid-load (zero client-visible failures, the
//! prober ejects it), restart the replica on the same port (the prober
//! re-admits it), run a rolling replan under the same hammer, retire the
//! model, and tear the fleet down — exiting non-zero on any failure.
//!
//! Usage:
//!
//! ```text
//! router [--addr HOST:PORT] [--replicas HOST:PORT,...] [--spawn N]
//!        [--policy hash|least-loaded] [--spill-dir DIR] [--smoke]
//! ```
//!
//! Environment fallbacks: `ROUTER_ADDR` (default `127.0.0.1:7979`;
//! `--smoke` defaults to an ephemeral port), `ROUTER_POLICY`,
//! `TDC_SERVE_HTTP_BIN` (path to the `serve_http` binary for `--spawn`;
//! defaults to a sibling of this executable).

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use tdc_router::testkit::{
    await_metrics, hammer, router_metrics, shutdown_replica, spawn_replica, ChildReplica,
};
use tdc_router::{Router, RouterHealthReply, RouterOptions, RoutingPolicy};
use tdc_serve::http::{
    http_request, BatchInferBody, BatchInferReply, InferBody, InferReply, RegisterBody,
};
use tdc_serve::{serving_descriptor, BatchingOptions, HttpServer, PlanningOptions, ServeEngine};

struct Flags {
    addr: String,
    replicas: Vec<SocketAddr>,
    spawn: usize,
    policy: RoutingPolicy,
    spill_dir: Option<String>,
    smoke: bool,
}

fn parse_flags() -> Flags {
    let mut addr = std::env::var("ROUTER_ADDR").ok();
    let mut replicas = Vec::new();
    let mut spawn = 0usize;
    let mut policy = std::env::var("ROUTER_POLICY")
        .ok()
        .and_then(|label| RoutingPolicy::parse(&label));
    let mut spill_dir = None;
    let mut smoke = false;
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    let value_for = |i: &mut usize, flag: &str| -> String {
        *i += 1;
        match args.get(*i) {
            Some(value) => value.clone(),
            None => {
                eprintln!("router: {flag} needs a value");
                std::process::exit(2);
            }
        }
    };
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => addr = Some(value_for(&mut i, "--addr")),
            "--replicas" => {
                for part in value_for(&mut i, "--replicas").split(',') {
                    match part.trim().parse() {
                        Ok(parsed) => replicas.push(parsed),
                        Err(_) => {
                            eprintln!("router: --replicas entry {part:?} is not HOST:PORT");
                            std::process::exit(2);
                        }
                    }
                }
            }
            "--spawn" => match value_for(&mut i, "--spawn").parse() {
                Ok(n) => spawn = n,
                Err(_) => {
                    eprintln!("router: --spawn needs a positive integer");
                    std::process::exit(2);
                }
            },
            "--policy" => {
                let label = value_for(&mut i, "--policy");
                match RoutingPolicy::parse(&label) {
                    Some(parsed) => policy = Some(parsed),
                    None => {
                        eprintln!("router: unknown --policy {label:?} (hash | least-loaded)");
                        std::process::exit(2);
                    }
                }
            }
            "--spill-dir" => spill_dir = Some(value_for(&mut i, "--spill-dir")),
            "--smoke" => smoke = true,
            other => {
                eprintln!(
                    "router: unknown flag {other:?}; usage: \
                     router [--addr HOST:PORT] [--replicas HOST:PORT,...] [--spawn N] \
                     [--policy hash|least-loaded] [--spill-dir DIR] [--smoke]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    Flags {
        addr: addr.unwrap_or_else(|| {
            if smoke {
                "127.0.0.1:0".to_string()
            } else {
                "127.0.0.1:7979".to_string()
            }
        }),
        replicas,
        spawn,
        policy: policy.unwrap_or(RoutingPolicy::ConsistentHash),
        spill_dir,
        smoke,
    }
}

/// The end-to-end fleet self-test. See the module docs for the scenario.
fn smoke(
    server: &HttpServer,
    router: &Arc<Router>,
    children: &mut Vec<ChildReplica>,
    spill_dir: &str,
) -> Result<(), String> {
    let addr = server.local_addr();
    let check = |expect_status: u16, method: &str, path: &str, body: Option<&str>| {
        let (status, reply) = http_request(&addr, method, path, body)
            .map_err(|e| format!("{method} {path} failed: {e}"))?;
        if status != expect_status {
            return Err(format!("{method} {path}: status {status}, body {reply}"));
        }
        Ok(reply)
    };

    // Readiness: the router reports its fleet.
    let health = check(200, "GET", "/healthz", None)?;
    let parsed: RouterHealthReply = serde_json::from_str(&health)
        .map_err(|e| format!("GET /healthz: bad body: {}", e.message))?;
    if !parsed.ready || parsed.replicas != 3 {
        return Err(format!("GET /healthz: fleet not ready: {health}"));
    }
    println!("  GET /healthz          -> 200 {health}");

    // The replica surface is proxied transparently.
    let models = check(200, "GET", "/v1/models", None)?;
    if !models.contains("svc-") {
        return Err(format!("GET /v1/models missing the stock models: {models}"));
    }
    println!(
        "  GET /v1/models        -> 200 ({} bytes, proxied)",
        models.len()
    );

    // Fleet-wide register: every replica learns the model.
    let descriptor = serving_descriptor("smoke-hot", 10, 4, 6);
    let register = serde_json::to_string(&RegisterBody {
        backend: Some("cpu".to_string()),
        max_batch_size: Some(4),
        max_batch_delay_ms: Some(1),
        ..RegisterBody::for_descriptor(descriptor.clone())
    })
    .map_err(|e| format!("serialize register body: {}", e.message))?;
    let reply = check(200, "PUT", "/v1/models/hot", Some(&register))?;
    if !reply.contains("\"ok\":true") {
        return Err(format!("fleet register not ok: {reply}"));
    }
    println!("  PUT /v1/models/hot    -> 200 (fan-out to 3 replicas)");

    // Spill warm-up: the register fan-out is sequential, so the first
    // replica plans `hot` and spills it; its siblings must warm the same
    // plan from the shared directory instead of re-running rank selection.
    let mut disk_hits = 0.0;
    for child in children.iter() {
        let (status, body) = http_request(&child.addr, "GET", "/metrics", None)
            .map_err(|e| format!("replica {} GET /metrics: {e}", child.index))?;
        if status != 200 {
            return Err(format!("replica {} GET /metrics: {status}", child.index));
        }
        let value = serde_json::parse_value(&body)
            .map_err(|e| format!("replica {} metrics: {}", child.index, e.message))?;
        disk_hits += value
            .get("plan_cache")
            .and_then(|cache| cache.get("disk_hits"))
            .and_then(|hits| hits.as_f64())
            .unwrap_or(0.0);
    }
    if disk_hits < 1.0 {
        return Err(format!(
            "expected at least one plan-spill disk hit across the fleet \
             (shared --spill-dir {spill_dir}), saw {disk_hits}"
        ));
    }
    println!("  plan spill            -> {disk_hits} disk hit(s) across the fleet");

    // Routed inference is bit-identical to a direct in-process engine.
    let input = vec![0.5f32; 10 * 10 * 4];
    let infer_body = serde_json::to_string(&InferBody {
        input: input.clone(),
        dims: None,
        deadline_ms: None,
    })
    .map_err(|e| format!("serialize infer body: {}", e.message))?;
    let reply = check(200, "POST", "/v1/models/hot/infer", Some(&infer_body))?;
    let routed: InferReply = serde_json::from_str(&reply)
        .map_err(|e| format!("routed infer: bad reply: {}", e.message))?;
    let direct = |budget: f64| -> Result<Vec<f32>, String> {
        let engine = ServeEngine::builder(&descriptor)
            .planning(PlanningOptions {
                budget,
                ..PlanningOptions::default()
            })
            .batching(BatchingOptions {
                max_batch_size: 4,
                max_batch_delay: Duration::from_millis(1),
                ..BatchingOptions::default()
            })
            .build()
            .map_err(|e| format!("direct engine: {e}"))?;
        let response = engine
            .infer(tdc_tensor::Tensor::from_vec(vec![10, 10, 4], input.clone()).unwrap())
            .map_err(|e| format!("direct infer: {e}"))?;
        Ok(response.output.data().to_vec())
    };
    if routed.output != direct(0.5)? {
        return Err("routed inference diverged from the direct engine call".to_string());
    }
    println!("  POST /v1/models/hot/infer -> 200 (bit-identical to a direct engine)");

    // The batched form rides through the router unchanged.
    let batch_body = serde_json::to_string(&BatchInferBody {
        inputs: vec![input.clone(); 3],
        dims: None,
        deadline_ms: None,
    })
    .map_err(|e| format!("serialize batch body: {}", e.message))?;
    let reply = check(200, "POST", "/v1/models/hot/infer", Some(&batch_body))?;
    let batched: BatchInferReply = serde_json::from_str(&reply)
        .map_err(|e| format!("batched routed infer: bad reply: {}", e.message))?;
    if batched.count != 3 {
        return Err(format!("batched routed infer: count {}", batched.count));
    }
    println!("  POST /v1/models/hot/infer -> 200 (batched, 3 inputs)");

    // Kill one replica mid-load: clients must see zero failures while the
    // prober ejects the dead replica.
    let victim = children.remove(0);
    let victim_addr = victim.addr;
    let progress = Arc::new(AtomicU64::new(0));
    let hammer_threads: Vec<_> = (0..4)
        .map(|_| {
            let input = input.clone();
            let progress = Arc::clone(&progress);
            std::thread::spawn(move || hammer(addr, "hot", &input, 120, Some(progress)))
        })
        .collect();
    // Kill the victim once the hammer is demonstrably mid-flight — a fixed
    // sleep either fires after a fast hammer already drained (no failovers
    // to observe) or before it ramped. 60/480 done leaves 420 requests to
    // land on a 2-replica fleet.
    let ramp = Instant::now();
    while progress.load(Ordering::Relaxed) < 60 && ramp.elapsed() < Duration::from_secs(10) {
        std::thread::sleep(Duration::from_millis(1));
    }
    shutdown_replica(victim);
    let mut ok = 0u64;
    for thread in hammer_threads {
        let report = thread.join().expect("hammer thread");
        ok += report.ok;
        if report.failures > 0 {
            let (status, body) = report.first_failure.unwrap_or_default();
            return Err(format!(
                "kill-under-load: {} client-visible failure(s), first: {status} {body}",
                report.failures
            ));
        }
    }
    let metrics = await_metrics(&addr, Duration::from_secs(10), |m| m.ejections_total >= 1)?;
    if metrics.failovers_total == 0 {
        return Err("kill-under-load produced no failovers".to_string());
    }
    println!(
        "  kill replica 0 mid-load -> {ok} requests, 0 failures \
         ({} failover(s), ejected after {} probe failures)",
        metrics.failovers_total,
        router.options().eject_after
    );

    // Restart the replica on its old port: the prober must re-admit it.
    let revived = spawn_replica(0, &victim_addr.to_string(), Some(spill_dir))?;
    if revived.addr != victim_addr {
        return Err(format!(
            "revived replica bound {} instead of {victim_addr}",
            revived.addr
        ));
    }
    children.insert(0, revived);
    let metrics = await_metrics(&addr, Duration::from_secs(10), |m| {
        m.readmissions_total >= 1 && m.replicas.iter().all(|r| r.healthy)
    })?;
    println!(
        "  restart replica 0     -> re-admitted ({} readmission(s), fleet healthy)",
        metrics.readmissions_total
    );

    // Catch the revived replica up on fleet state: a fresh process only
    // knows its stock models, so `hot` is re-registered directly against
    // it. The shared spill directory makes this cheap — the plan comes
    // back as a disk hit instead of a fresh rank selection.
    let (status, reply) = http_request(&victim_addr, "PUT", "/v1/models/hot", Some(&register))
        .map_err(|e| format!("re-register on revived replica failed: {e}"))?;
    if status != 200 {
        return Err(format!("re-register on revived replica: {status} {reply}"));
    }
    println!("  PUT replica 0 /v1/models/hot -> 200 (caught up from the shared spill)");

    // Rolling replan under fire: one replica re-plans at a time, so the
    // hammer keeps landing on the other two with zero failures.
    let hammer_threads: Vec<_> = (0..2)
        .map(|_| {
            let input = input.clone();
            std::thread::spawn(move || hammer(addr, "hot", &input, 80, None))
        })
        .collect();
    let reply = check(
        200,
        "POST",
        "/v1/models/hot/replan",
        Some("{\"budget\": 0.9}"),
    )?;
    if !reply.contains("\"ok\":true") {
        return Err(format!("rolling replan not ok: {reply}"));
    }
    for thread in hammer_threads {
        let report = thread.join().expect("hammer thread");
        if report.failures > 0 {
            let (status, body) = report.first_failure.unwrap_or_default();
            return Err(format!(
                "rolling replan: {} client-visible failure(s), first: {status} {body}",
                report.failures
            ));
        }
    }
    // Post-replan inference matches a direct engine at the new budget.
    let reply = check(200, "POST", "/v1/models/hot/infer", Some(&infer_body))?;
    let swapped: InferReply = serde_json::from_str(&reply)
        .map_err(|e| format!("post-replan infer: bad reply: {}", e.message))?;
    if swapped.output != direct(0.9)? {
        return Err("post-replan routed output diverged from the new-budget engine".to_string());
    }
    println!("  POST /v1/models/hot/replan -> 200 (rolling, zero failures under hammer)");

    // Fleet retire: the model disappears everywhere.
    check(200, "DELETE", "/v1/models/hot", None)?;
    check(404, "POST", "/v1/models/hot/infer", Some(&infer_body)).map(|_| ())?;
    println!("  DELETE /v1/models/hot -> 200; later infers -> 404 (fleet-wide)");

    let metrics = router_metrics(&addr)?;
    if metrics.fleet_registers_total != 1
        || metrics.fleet_replans_total != 1
        || metrics.fleet_retires_total != 1
    {
        return Err(format!(
            "fleet counters off: {}",
            serde_json::to_string(&metrics).unwrap_or_default()
        ));
    }
    println!(
        "  GET /metrics          -> 200 ({} forwarded, {} failover(s), \
         {} ejection(s), {} readmission(s))",
        metrics.forwarded_total,
        metrics.failovers_total,
        metrics.ejections_total,
        metrics.readmissions_total
    );
    Ok(())
}

fn main() {
    let flags = parse_flags();
    if flags.replicas.is_empty() && flags.spawn == 0 && !flags.smoke {
        eprintln!("router: need --replicas or --spawn (or --smoke)");
        std::process::exit(2);
    }

    // Smoke always runs the canonical 3-replica topology with fast probes
    // and least-loaded routing (so the kill-under-load path must fail over).
    let spawn = if flags.smoke && flags.spawn == 0 && flags.replicas.is_empty() {
        3
    } else {
        flags.spawn
    };
    let smoke_spill;
    let spill_dir = if flags.smoke && flags.spill_dir.is_none() {
        smoke_spill = std::env::temp_dir().join(format!("tdc-router-smoke-{}", std::process::id()));
        std::fs::create_dir_all(&smoke_spill).expect("create smoke spill dir");
        Some(smoke_spill.to_string_lossy().into_owned())
    } else {
        flags.spill_dir.clone()
    };

    let mut children = Vec::new();
    for index in 0..spawn {
        match spawn_replica(index, "127.0.0.1:0", spill_dir.as_deref()) {
            Ok(child) => {
                println!("router: spawned replica {index} on http://{}", child.addr);
                children.push(child);
            }
            Err(message) => {
                eprintln!("router: {message}");
                for child in children {
                    shutdown_replica(child);
                }
                std::process::exit(1);
            }
        }
    }

    let mut addrs = flags.replicas.clone();
    addrs.extend(children.iter().map(|c| c.addr));
    let options = if flags.smoke {
        RouterOptions {
            policy: RoutingPolicy::LeastLoaded,
            probe_interval: Duration::from_millis(100),
            probe_timeout: Duration::from_millis(250),
            ..RouterOptions::default()
        }
    } else {
        RouterOptions {
            policy: flags.policy,
            ..RouterOptions::default()
        }
    };
    let policy = options.policy;
    let router = Arc::new(Router::new(&addrs, options));
    let signal = router.shutdown_signal();
    let server = HttpServer::bind_with_handler(&flags.addr, Arc::clone(&router) as _)
        .expect("bind router front end");
    let addr = server.local_addr();

    println!(
        "tdc-router fleet router on http://{addr} fronting {} replica(s) [{}]",
        addrs.len(),
        policy.label()
    );
    for (i, replica) in addrs.iter().enumerate() {
        println!("  replica {i}: http://{replica}");
    }

    if flags.smoke {
        println!("\nsmoke mode: exercising the fleet end to end");
        let spill = spill_dir.as_deref().expect("smoke always has a spill dir");
        let outcome = smoke(&server, &router, &mut children, spill);
        router.stop();
        server.stop();
        for child in children.drain(..) {
            shutdown_replica(child);
        }
        match outcome {
            Ok(()) => println!("smoke ok: fleet routed, failed over, replanned and retired"),
            Err(message) => {
                eprintln!("smoke FAILED: {message}");
                std::process::exit(1);
            }
        }
        return;
    }

    // Serve until `POST /admin/shutdown`, then drain the fleet we spawned.
    signal.wait();
    println!("tdc-router: shutdown requested, draining the fleet");
    router.stop();
    server.stop();
    for child in children.drain(..) {
        shutdown_replica(child);
    }
    println!("tdc-router: fleet drained");
}
