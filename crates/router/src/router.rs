//! The router: same public API as one `serve_http` replica, served by a
//! fleet.
//!
//! [`Router`] implements [`HttpHandler`], so it plugs straight into
//! `tdc_serve::HttpServer::bind_with_handler` and speaks the identical
//! HTTP/1.1 surface (`/v1/models/{name}/infer`, `/v1/models`, `/metrics`,
//! `/healthz`, admin `PUT`/`DELETE`, `/replan`, `/autotune`). Data-path
//! requests are forwarded to one replica chosen by the configured
//! [`RoutingPolicy`], with failover on 429/503/connect errors that honours
//! `Retry-After` hints and the request's remaining `deadline_ms` budget.
//! Control-plane requests fan out to the whole fleet — `replan`/`autotune`
//! roll one replica at a time so serving capacity never drops below N−1.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use serde_json::Value;
use tdc_serve::control::EpochSwap;
use tdc_serve::{HealthReply, HttpHandler, RoutedResponse, ShutdownSignal};

use crate::replica::{candidates, Replica, RoutingPolicy};

/// Tuning knobs for a [`Router`]. `Default` values suit a local fleet;
/// tests shrink the probe timings for determinism.
#[derive(Debug, Clone)]
pub struct RouterOptions {
    /// Replica-selection policy for inference traffic.
    pub policy: RoutingPolicy,
    /// Background health-probe period. `Duration::ZERO` disables the
    /// prober thread entirely (drive sweeps manually via
    /// [`Router::probe_once`]).
    pub probe_interval: Duration,
    /// Per-probe connect/read timeout — bounds how long a wedged replica
    /// can stall the sweep.
    pub probe_timeout: Duration,
    /// Per-attempt connect/read timeout on the data path.
    pub request_timeout: Duration,
    /// Consecutive probe failures before a replica is ejected.
    pub eject_after: u32,
    /// Consecutive probe successes before an ejected replica is re-admitted.
    pub readmit_after: u32,
    /// Maximum `Retry-After` wait-and-retry rounds per request (each round
    /// re-tries the full candidate list). Only taken when the request
    /// carries a deadline with room to spare.
    pub retry_rounds: u32,
}

impl Default for RouterOptions {
    fn default() -> Self {
        RouterOptions {
            policy: RoutingPolicy::ConsistentHash,
            probe_interval: Duration::from_millis(500),
            probe_timeout: Duration::from_millis(250),
            request_timeout: Duration::from_secs(10),
            eject_after: 2,
            readmit_after: 2,
            retry_rounds: 2,
        }
    }
}

#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    forwarded: AtomicU64,
    failovers: AtomicU64,
    retry_after_waits: AtomicU64,
    shed: AtomicU64,
    no_healthy: AtomicU64,
    fleet_registers: AtomicU64,
    fleet_retires: AtomicU64,
    fleet_replans: AtomicU64,
    fleet_autotunes: AtomicU64,
    fleet_tunes: AtomicU64,
    fleet_controller_updates: AtomicU64,
}

struct Shared {
    replicas: EpochSwap<Vec<Arc<Replica>>>,
    counters: Counters,
}

/// Per-replica slice of [`RouterMetrics`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReplicaStats {
    /// Stable replica id.
    pub id: u64,
    /// Backend address.
    pub addr: String,
    /// Currently admitted for routing?
    pub healthy: bool,
    /// Router-local in-flight requests.
    pub inflight: u64,
    /// Requests forwarded to this replica.
    pub forwarded_total: u64,
    /// Data-path I/O errors against this replica.
    pub data_errors_total: u64,
    /// Prober ejections of this replica.
    pub ejections_total: u64,
    /// Prober readmissions of this replica.
    pub readmissions_total: u64,
    /// Model count seen by the last successful probe.
    pub probe_models: u64,
    /// Registry table epoch seen by the last successful probe.
    pub probe_epoch: u64,
    /// Aggregate queue depth seen by the last successful probe.
    pub probe_queue_depth: u64,
}

/// `GET /metrics` payload of the router tier.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterMetrics {
    /// Routing policy label (`consistent-hash` / `least-loaded`).
    pub policy: String,
    /// Replica-set epoch (bumps on membership change).
    pub epoch: u64,
    /// Per-replica stats, in id order.
    pub replicas: Vec<ReplicaStats>,
    /// Inference requests accepted by the router.
    pub requests_total: u64,
    /// Inference requests forwarded to a definitive replica answer.
    pub forwarded_total: u64,
    /// Extra attempts beyond the first replica (failovers).
    pub failovers_total: u64,
    /// Times the router slept on a `Retry-After` hint before re-trying.
    pub retry_after_waits_total: u64,
    /// Requests shed after exhausting candidates and retry budget.
    pub shed_total: u64,
    /// Requests routed while zero replicas were healthy.
    pub no_healthy_replica_total: u64,
    /// Prober ejections across the fleet.
    pub ejections_total: u64,
    /// Prober readmissions across the fleet.
    pub readmissions_total: u64,
    /// Fleet-wide register fan-outs.
    pub fleet_registers_total: u64,
    /// Fleet-wide retire fan-outs.
    pub fleet_retires_total: u64,
    /// Rolling replan fan-outs.
    pub fleet_replans_total: u64,
    /// Rolling autotune fan-outs.
    pub fleet_autotunes_total: u64,
    /// Rolling controller-tune fan-outs (`POST .../tune`).
    pub fleet_tunes_total: u64,
    /// Watch-loop config fan-outs (`PUT /v1/controller`).
    pub fleet_controller_updates_total: u64,
}

/// `GET /healthz` payload of the router tier. Mirrors the replica
/// readiness shape: `status` stays `"ok"` while the process is up, `ready`
/// says whether any replica is currently admitted.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RouterHealthReply {
    /// Always `"ok"` while the router process is serving.
    pub status: String,
    /// Total replicas in the set.
    pub replicas: u64,
    /// Replicas currently admitted for routing.
    pub healthy: u64,
    /// Replica-set epoch.
    pub epoch: u64,
    /// Routing policy label.
    pub policy: String,
    /// `true` when at least one replica is admitted.
    pub ready: bool,
}

/// One replica's answer inside a [`FleetReply`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReplicaReply {
    /// Replica id.
    pub id: u64,
    /// Replica address.
    pub addr: String,
    /// HTTP status the replica returned (`0` when unreachable).
    pub status: u16,
    /// Raw response body (JSON from the replica, or an error note).
    pub body: String,
}

/// Aggregated result of a control-plane fan-out (`PUT`/`DELETE`,
/// `/replan`, `/autotune`). The outer HTTP status is 200 only when every
/// reached replica answered 200.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FleetReply {
    /// Did every replica in the fan-out succeed?
    pub ok: bool,
    /// Per-replica outcomes, in application order.
    pub replicas: Vec<FleetReplicaReply>,
}

/// The replica-fleet router. Construct with [`Router::new`], wrap in an
/// `Arc`, and hand to `HttpServer::bind_with_handler`.
pub struct Router {
    shared: Arc<Shared>,
    options: RouterOptions,
    stop: Arc<AtomicBool>,
    prober: Mutex<Option<JoinHandle<()>>>,
    shutdown: ShutdownSignal,
}

impl Router {
    /// Build a router over `addrs` (replica ids follow slice order) and, if
    /// `probe_interval > 0`, start the background health prober.
    pub fn new(addrs: &[std::net::SocketAddr], options: RouterOptions) -> Router {
        let replicas: Vec<Arc<Replica>> = addrs
            .iter()
            .enumerate()
            .map(|(id, addr)| Arc::new(Replica::new(id, *addr)))
            .collect();
        let router = Router {
            shared: Arc::new(Shared {
                replicas: EpochSwap::new(replicas),
                counters: Counters::default(),
            }),
            options,
            stop: Arc::new(AtomicBool::new(false)),
            prober: Mutex::new(None),
            shutdown: ShutdownSignal::new(),
        };
        router.spawn_prober();
        router
    }

    fn spawn_prober(&self) {
        if self.options.probe_interval.is_zero() {
            return;
        }
        let shared = Arc::clone(&self.shared);
        let stop = Arc::clone(&self.stop);
        let options = self.options.clone();
        let handle = std::thread::Builder::new()
            .name("tdc-router-probe".to_string())
            .spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    probe_sweep(&shared, &options);
                    let mut slept = Duration::ZERO;
                    while slept < options.probe_interval && !stop.load(Ordering::SeqCst) {
                        let slice = (options.probe_interval - slept).min(Duration::from_millis(20));
                        std::thread::sleep(slice);
                        slept += slice;
                    }
                }
            })
            .expect("failed to spawn the router health-probe thread");
        *lock(&self.prober) = Some(handle);
    }

    /// Run one synchronous health sweep over every replica — what the
    /// background prober does each period. Tests call this for
    /// deterministic ejection/readmission without racing a timer.
    pub fn probe_once(&self) {
        probe_sweep(&self.shared, &self.options);
    }

    /// Snapshot of the current replica set.
    pub fn replicas(&self) -> Arc<Vec<Arc<Replica>>> {
        self.shared.replicas.load()
    }

    /// Append a replica to the set (next id) and publish the new membership
    /// epoch. Returns the new replica's id.
    pub fn add_replica(&self, addr: std::net::SocketAddr) -> usize {
        let current = self.shared.replicas.load();
        let id = current.iter().map(|r| r.id() + 1).max().unwrap_or(0);
        let mut next: Vec<Arc<Replica>> = current.as_ref().clone();
        next.push(Arc::new(Replica::new(id, addr)));
        self.shared.replicas.store(Arc::new(next));
        id
    }

    /// The options this router was built with.
    pub fn options(&self) -> &RouterOptions {
        &self.options
    }

    /// Signal observed by the hosting process when `POST /admin/shutdown`
    /// arrives.
    pub fn shutdown_signal(&self) -> ShutdownSignal {
        self.shutdown.clone()
    }

    /// Stop the background prober. Also runs on drop.
    pub fn stop(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let handle = lock(&self.prober).take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }

    /// Current router-tier metrics.
    pub fn metrics(&self) -> RouterMetrics {
        let replicas = self.shared.replicas.load();
        let stats: Vec<ReplicaStats> = replicas
            .iter()
            .map(|r| ReplicaStats {
                id: r.id() as u64,
                addr: r.addr().to_string(),
                healthy: r.healthy(),
                inflight: r.inflight(),
                forwarded_total: r.forwarded_total(),
                data_errors_total: r.data_errors_total(),
                ejections_total: r.ejections_total(),
                readmissions_total: r.readmissions_total(),
                probe_models: r.probe_models(),
                probe_epoch: r.probe_epoch(),
                probe_queue_depth: r.probe_queue_depth(),
            })
            .collect();
        let c = &self.shared.counters;
        RouterMetrics {
            policy: self.options.policy.label().to_string(),
            epoch: self.shared.replicas.epoch(),
            ejections_total: stats.iter().map(|s| s.ejections_total).sum(),
            readmissions_total: stats.iter().map(|s| s.readmissions_total).sum(),
            replicas: stats,
            requests_total: c.requests.load(Ordering::SeqCst),
            forwarded_total: c.forwarded.load(Ordering::SeqCst),
            failovers_total: c.failovers.load(Ordering::SeqCst),
            retry_after_waits_total: c.retry_after_waits.load(Ordering::SeqCst),
            shed_total: c.shed.load(Ordering::SeqCst),
            no_healthy_replica_total: c.no_healthy.load(Ordering::SeqCst),
            fleet_registers_total: c.fleet_registers.load(Ordering::SeqCst),
            fleet_retires_total: c.fleet_retires.load(Ordering::SeqCst),
            fleet_replans_total: c.fleet_replans.load(Ordering::SeqCst),
            fleet_autotunes_total: c.fleet_autotunes.load(Ordering::SeqCst),
            fleet_tunes_total: c.fleet_tunes.load(Ordering::SeqCst),
            fleet_controller_updates_total: c.fleet_controller_updates.load(Ordering::SeqCst),
        }
    }

    /// Router-tier readiness payload.
    pub fn health(&self) -> RouterHealthReply {
        let replicas = self.shared.replicas.load();
        let healthy = replicas.iter().filter(|r| r.healthy()).count() as u64;
        RouterHealthReply {
            status: "ok".to_string(),
            replicas: replicas.len() as u64,
            healthy,
            epoch: self.shared.replicas.epoch(),
            policy: self.options.policy.label().to_string(),
            ready: healthy > 0,
        }
    }

    /// Forward an inference request with failover across replicas.
    ///
    /// Per attempt the remaining deadline budget is recomputed and the
    /// request body's `deadline_ms` rewritten, so a replica never batches
    /// against time the router has already spent. 429/503 answers and
    /// connect errors move on to the next candidate; any other status is
    /// definitive and returned as-is. When every candidate sheds, the
    /// smallest `Retry-After` hint plus the remaining deadline decide —
    /// via [`backoff_decision`] — whether to sleep and run another round.
    fn forward_infer(&self, model: &str, path: &str, body: &str) -> RoutedResponse {
        let counters = &self.shared.counters;
        counters.requests.fetch_add(1, Ordering::SeqCst);
        let deadline_ms = deadline_of(body);
        let started = Instant::now();
        let mut attempts: u64 = 0;
        let mut rounds: u32 = 0;
        let mut last_shed: Option<RoutedResponse> = None;
        let mut last_error: Option<std::io::Error> = None;
        loop {
            let snapshot = self.shared.replicas.load();
            let order = candidates(&snapshot, model, self.options.policy);
            if order.is_empty() {
                counters.shed.fetch_add(1, Ordering::SeqCst);
                return RoutedResponse::error(503, "router has no replicas configured");
            }
            if !order[0].healthy() {
                counters.no_healthy.fetch_add(1, Ordering::SeqCst);
            }
            let mut min_hint: Option<u64> = None;
            for replica in &order {
                let send_body: std::borrow::Cow<'_, str> = match deadline_ms {
                    Some(deadline) => {
                        let elapsed = started.elapsed().as_millis() as u64;
                        if elapsed >= deadline {
                            counters.shed.fetch_add(1, Ordering::SeqCst);
                            return RoutedResponse::error(
                                504,
                                format!(
                                    "deadline of {deadline} ms exhausted at the router \
                                     after {attempts} attempt(s)"
                                ),
                            );
                        }
                        match rewrite_deadline(body, deadline - elapsed) {
                            Some(rewritten) => std::borrow::Cow::Owned(rewritten),
                            None => std::borrow::Cow::Borrowed(body),
                        }
                    }
                    None => std::borrow::Cow::Borrowed(body),
                };
                attempts += 1;
                if attempts > 1 {
                    counters.failovers.fetch_add(1, Ordering::SeqCst);
                }
                let guard = replica.begin();
                let result =
                    replica.request("POST", path, Some(&send_body), self.options.request_timeout);
                drop(guard);
                match result {
                    Ok((status, headers, reply)) if status == 429 || status == 503 => {
                        let hint = parse_retry_after(&headers);
                        min_hint = match (min_hint, hint) {
                            (Some(a), Some(b)) => Some(a.min(b)),
                            (a, b) => a.or(b),
                        };
                        last_shed = Some(RoutedResponse {
                            status,
                            body: reply,
                            retry_after: hint,
                        });
                    }
                    Ok((status, _, reply)) => {
                        replica.note_forwarded();
                        counters.forwarded.fetch_add(1, Ordering::SeqCst);
                        return RoutedResponse {
                            status,
                            body: reply,
                            retry_after: None,
                        };
                    }
                    Err(error) => {
                        replica.note_data_error();
                        last_error = Some(error);
                    }
                }
            }
            rounds += 1;
            let remaining = deadline_ms
                .map(|deadline| Duration::from_millis(deadline).saturating_sub(started.elapsed()));
            if rounds <= self.options.retry_rounds {
                if let Some(wait) = backoff_decision(min_hint, remaining) {
                    counters.retry_after_waits.fetch_add(1, Ordering::SeqCst);
                    std::thread::sleep(wait);
                    continue;
                }
            }
            counters.shed.fetch_add(1, Ordering::SeqCst);
            return match (last_shed, last_error) {
                (Some(shed), _) => shed,
                (None, Some(error)) => RoutedResponse {
                    status: 503,
                    body: error_body(format!("no replica reachable: {error}")),
                    retry_after: Some(1),
                },
                (None, None) => RoutedResponse {
                    status: 503,
                    body: error_body("no replica could serve the request"),
                    retry_after: Some(1),
                },
            };
        }
    }

    /// Proxy a read-only GET to the first answering candidate.
    fn forward_read(&self, path: &str) -> RoutedResponse {
        let snapshot = self.shared.replicas.load();
        let order = candidates(&snapshot, "", self.options.policy);
        for replica in &order {
            match replica.request("GET", path, None, self.options.request_timeout) {
                Ok((status, _, body)) if status < 500 => {
                    return RoutedResponse {
                        status,
                        body,
                        retry_after: None,
                    };
                }
                Ok(_) => {}
                Err(_) => replica.note_data_error(),
            }
        }
        RoutedResponse::error(503, format!("no replica answered GET {path}"))
    }

    /// Apply one control-plane request to the fleet, one replica at a time
    /// in id order. With `stop_on_failure` (replan/autotune) the walk halts
    /// at the first non-200 so at most one replica is ever mid-mutation —
    /// the rolling guarantee that keeps ≥ N−1 replicas serving. Without it
    /// (register/retire) every replica is attempted so the fleet converges
    /// even when one member is down.
    fn fleet_apply(
        &self,
        method: &str,
        path: &str,
        body: Option<&str>,
        stop_on_failure: bool,
        counter: &AtomicU64,
    ) -> RoutedResponse {
        counter.fetch_add(1, Ordering::SeqCst);
        let snapshot = self.shared.replicas.load();
        let mut replies = Vec::with_capacity(snapshot.len());
        let mut overall: u16 = 200;
        for replica in snapshot.iter() {
            match replica.request(method, path, body, self.options.request_timeout) {
                Ok((status, _, reply)) => {
                    replies.push(FleetReplicaReply {
                        id: replica.id() as u64,
                        addr: replica.addr().to_string(),
                        status,
                        body: reply,
                    });
                    if status != 200 {
                        if overall == 200 {
                            overall = status;
                        }
                        if stop_on_failure {
                            break;
                        }
                    }
                }
                Err(error) => {
                    replica.note_data_error();
                    replies.push(FleetReplicaReply {
                        id: replica.id() as u64,
                        addr: replica.addr().to_string(),
                        status: 0,
                        body: error_body(format!("replica unreachable: {error}")),
                    });
                    if overall == 200 {
                        overall = 502;
                    }
                    if stop_on_failure {
                        break;
                    }
                }
            }
        }
        let reply = FleetReply {
            ok: overall == 200,
            replicas: replies,
        };
        RoutedResponse::json(overall, &reply)
    }

    /// Aggregate a read-only GET across the whole fleet into a
    /// [`FleetReply`]: every replica is asked (nothing halts the walk) and
    /// each answer rides back verbatim in its replica's row.
    fn fleet_collect(&self, path: &str) -> RoutedResponse {
        let snapshot = self.shared.replicas.load();
        let mut replies = Vec::with_capacity(snapshot.len());
        let mut overall: u16 = 200;
        for replica in snapshot.iter() {
            match replica.request("GET", path, None, self.options.request_timeout) {
                Ok((status, _, reply)) => {
                    if status != 200 && overall == 200 {
                        overall = status;
                    }
                    replies.push(FleetReplicaReply {
                        id: replica.id() as u64,
                        addr: replica.addr().to_string(),
                        status,
                        body: reply,
                    });
                }
                Err(error) => {
                    replica.note_data_error();
                    if overall == 200 {
                        overall = 502;
                    }
                    replies.push(FleetReplicaReply {
                        id: replica.id() as u64,
                        addr: replica.addr().to_string(),
                        status: 0,
                        body: error_body(format!("replica unreachable: {error}")),
                    });
                }
            }
        }
        let reply = FleetReply {
            ok: overall == 200,
            replicas: replies,
        };
        RoutedResponse::json(overall, &reply)
    }
}

impl HttpHandler for Router {
    fn handle(&self, method: &str, path: &str, body: &str) -> RoutedResponse {
        let counters = &self.shared.counters;
        match (method, path) {
            ("GET", "/healthz") => RoutedResponse::json(200, &self.health()),
            ("GET", "/metrics") => RoutedResponse::json(200, &self.metrics()),
            ("GET", "/v1/models") => self.forward_read("/v1/models"),
            // Controller status is aggregated, not proxied: the reply
            // carries every replica's own status block so an operator sees
            // per-replica tuning generations and drift counters side by
            // side.
            ("GET", "/v1/controller") => self.fleet_collect("/v1/controller"),
            ("PUT", "/v1/controller") => self.fleet_apply(
                method,
                path,
                Some(body),
                false,
                &counters.fleet_controller_updates,
            ),
            ("POST", "/admin/shutdown") => {
                self.shutdown.request();
                RoutedResponse::json(200, &ShuttingDown::new())
            }
            ("POST", post_path) => {
                if let Some(model) = action_path(post_path, "/infer") {
                    self.forward_infer(model, post_path, body)
                } else if action_path(post_path, "/replan").is_some() {
                    self.fleet_apply(method, post_path, Some(body), true, &counters.fleet_replans)
                } else if action_path(post_path, "/autotune").is_some() {
                    self.fleet_apply(
                        method,
                        post_path,
                        Some(body),
                        true,
                        &counters.fleet_autotunes,
                    )
                } else if action_path(post_path, "/tune").is_some() {
                    // Controller tunes roll one replica at a time, halting
                    // at the first failure: each replica runs its own
                    // measured-latency-calibrated search and hot-swaps its
                    // own engines, so at most one member is ever
                    // mid-rotation.
                    self.fleet_apply(method, post_path, Some(body), true, &counters.fleet_tunes)
                } else {
                    RoutedResponse::error(404, format!("no route for POST {post_path}"))
                }
            }
            ("PUT", put_path) => match model_path(put_path) {
                Some(_) => self.fleet_apply(
                    method,
                    put_path,
                    Some(body),
                    false,
                    &counters.fleet_registers,
                ),
                None => RoutedResponse::error(404, format!("no route for PUT {put_path}")),
            },
            ("DELETE", delete_path) => match model_path(delete_path) {
                Some(_) => {
                    self.fleet_apply(method, delete_path, None, false, &counters.fleet_retires)
                }
                None => RoutedResponse::error(404, format!("no route for DELETE {delete_path}")),
            },
            ("GET", _) => RoutedResponse::error(404, format!("no route for {method} {path}")),
            _ => RoutedResponse::error(405, format!("method {method} is not supported")),
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Router {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Router")
            .field("policy", &self.options.policy)
            .field("replicas", &self.shared.replicas.load().len())
            .finish()
    }
}

#[derive(Serialize, Deserialize)]
struct ShuttingDown {
    status: String,
}

impl ShuttingDown {
    fn new() -> ShuttingDown {
        ShuttingDown {
            status: "shutting-down".to_string(),
        }
    }
}

fn lock<T>(mutex: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn error_body(message: impl std::fmt::Display) -> String {
    // Same `{"error": "..."}` shape the replicas use.
    RoutedResponse::error(500, message).body
}

/// One probe sweep: `GET /healthz` against every replica, feeding the
/// ejection/readmission thresholds. The readiness body must parse as a
/// [`HealthReply`] with `ready == true` to count as a success — a replica
/// that answers 200 while saturated still counts as up (admission state is
/// surfaced via the probe gauges, not used for ejection).
fn probe_sweep(shared: &Shared, options: &RouterOptions) {
    let replicas = shared.replicas.load();
    for replica in replicas.iter() {
        let outcome = replica.request("GET", "/healthz", None, options.probe_timeout);
        let parsed = match outcome {
            Ok((200, _, body)) => serde_json::from_str::<HealthReply>(&body).ok(),
            _ => None,
        };
        match parsed {
            Some(health) if health.ready => {
                replica.note_probe_success(
                    health.models as u64,
                    health.epoch,
                    health.queue_depth as u64,
                    options.readmit_after,
                );
            }
            _ => {
                replica.note_probe_failure(options.eject_after);
            }
        }
    }
}

/// Decide whether a fully-shed request should sleep and re-try.
///
/// Returns the wait duration, or `None` to give up and propagate the shed
/// response. Retrying requires both a `Retry-After` hint (the fleet told
/// us when to come back) and a request deadline with enough budget left:
/// the router never sleeps past `deadline_ms`, and always leaves at least
/// half the remaining budget for the retried request itself. Requests
/// without a deadline get exactly one pass — the shed response (with its
/// hint) goes back to the client, which owns the retry decision.
pub fn backoff_decision(
    retry_after_secs: Option<u64>,
    remaining: Option<Duration>,
) -> Option<Duration> {
    let hint = Duration::from_secs(retry_after_secs?);
    let remaining = remaining?;
    if hint >= remaining {
        return None;
    }
    let wait = hint.min(remaining / 2);
    if wait.is_zero() {
        None
    } else {
        Some(wait)
    }
}

/// The smallest `Retry-After` value among the response headers, if any.
pub fn parse_retry_after(headers: &[(String, String)]) -> Option<u64> {
    headers
        .iter()
        .filter(|(name, _)| name.eq_ignore_ascii_case("retry-after"))
        .filter_map(|(_, value)| value.trim().parse::<u64>().ok())
        .min()
}

/// Extract `deadline_ms` from an infer request body, when present and
/// parseable.
pub fn deadline_of(body: &str) -> Option<u64> {
    let value = serde_json::parse_value(body).ok()?;
    let deadline = value.get("deadline_ms")?.as_f64()?;
    if deadline.is_finite() && deadline >= 0.0 {
        Some(deadline as u64)
    } else {
        None
    }
}

/// Rewrite the body's `deadline_ms` to the remaining budget, preserving
/// every other field. Returns `None` when the body has no rewritable
/// deadline (caller forwards it untouched).
pub fn rewrite_deadline(body: &str, remaining_ms: u64) -> Option<String> {
    let Ok(Value::Object(fields)) = serde_json::parse_value(body) else {
        return None;
    };
    if !fields.iter().any(|(key, _)| key == "deadline_ms") {
        return None;
    }
    let rewritten: Vec<(String, Value)> = fields
        .into_iter()
        .map(|(key, value)| {
            if key == "deadline_ms" {
                (key, Value::Number(remaining_ms as f64))
            } else {
                (key, value)
            }
        })
        .collect();
    serde_json::to_string(&Value::Object(rewritten)).ok()
}

fn model_path(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/models/")
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

fn action_path<'a>(path: &'a str, action: &str) -> Option<&'a str> {
    path.strip_prefix("/v1/models/")
        .and_then(|rest| rest.strip_suffix(action))
        .filter(|model| !model.is_empty() && !model.contains('/'))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_requires_hint_and_deadline() {
        // No hint → never retry.
        assert_eq!(backoff_decision(None, Some(Duration::from_secs(10))), None);
        // No deadline → client owns the retry.
        assert_eq!(backoff_decision(Some(1), None), None);
        // Hint would blow the deadline → give up now.
        assert_eq!(
            backoff_decision(Some(2), Some(Duration::from_secs(2))),
            None
        );
        assert_eq!(
            backoff_decision(Some(5), Some(Duration::from_secs(2))),
            None
        );
    }

    #[test]
    fn backoff_waits_the_hint_when_budget_allows() {
        assert_eq!(
            backoff_decision(Some(1), Some(Duration::from_secs(10))),
            Some(Duration::from_secs(1))
        );
        // Tight budget: wait is clamped to half the remaining time.
        assert_eq!(
            backoff_decision(Some(1), Some(Duration::from_millis(1500))),
            Some(Duration::from_millis(750))
        );
    }

    #[test]
    fn retry_after_header_parses_case_insensitively() {
        let headers = vec![
            ("Content-Type".to_string(), "application/json".to_string()),
            ("retry-after".to_string(), "3".to_string()),
            ("Retry-After".to_string(), "2".to_string()),
        ];
        assert_eq!(parse_retry_after(&headers), Some(2));
        assert_eq!(parse_retry_after(&[]), None);
        let junk = vec![("Retry-After".to_string(), "soon".to_string())];
        assert_eq!(parse_retry_after(&junk), None);
    }

    #[test]
    fn deadline_extraction_and_rewrite() {
        let body = r#"{"input": [1.0, 2.0], "deadline_ms": 250}"#;
        assert_eq!(deadline_of(body), Some(250));
        let rewritten = rewrite_deadline(body, 120).expect("rewritable");
        assert_eq!(deadline_of(&rewritten), Some(120));
        // Other fields survive the rewrite.
        let value = serde_json::parse_value(&rewritten).unwrap();
        assert!(value.get("input").is_some());
        // No deadline → nothing to rewrite, body forwarded untouched.
        assert_eq!(deadline_of(r#"{"input": [1.0]}"#), None);
        assert_eq!(rewrite_deadline(r#"{"input": [1.0]}"#, 10), None);
        // Unparseable body → forwarded untouched (the replica rejects it).
        assert_eq!(rewrite_deadline("not json", 10), None);
    }

    #[test]
    fn router_paths_match_the_replica_surface() {
        assert_eq!(model_path("/v1/models/hot"), Some("hot"));
        assert_eq!(model_path("/v1/models/"), None);
        assert_eq!(model_path("/v1/models/a/b"), None);
        assert_eq!(action_path("/v1/models/hot/infer", "/infer"), Some("hot"));
        assert_eq!(action_path("/v1/models/hot/replan", "/replan"), Some("hot"));
        assert_eq!(action_path("/v1/models/hot/infer", "/replan"), None);
    }

    #[test]
    fn metrics_serialize_round_trip() {
        let options = RouterOptions {
            probe_interval: Duration::ZERO,
            ..RouterOptions::default()
        };
        let router = Router::new(&["127.0.0.1:9101".parse().unwrap()], options);
        let metrics = router.metrics();
        let text = serde_json::to_string(&metrics).unwrap();
        let back: RouterMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(back.policy, "consistent-hash");
        assert_eq!(back.replicas.len(), 1);
        let health = router.health();
        let text = serde_json::to_string(&health).unwrap();
        let back: RouterHealthReply = serde_json::from_str(&text).unwrap();
        assert!(back.ready);
        assert_eq!(back.replicas, 1);
    }

    #[test]
    fn add_replica_bumps_the_membership_epoch() {
        let options = RouterOptions {
            probe_interval: Duration::ZERO,
            ..RouterOptions::default()
        };
        let router = Router::new(&["127.0.0.1:9102".parse().unwrap()], options);
        assert_eq!(router.metrics().epoch, 0);
        let id = router.add_replica("127.0.0.1:9103".parse().unwrap());
        assert_eq!(id, 1);
        let metrics = router.metrics();
        assert_eq!(metrics.epoch, 1);
        assert_eq!(metrics.replicas.len(), 2);
    }
}
