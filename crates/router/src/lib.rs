//! # tdc-router
//!
//! The horizontal scale-out tier for `tdc-serve`: a std-only HTTP/1.1
//! router process that fronts N replica `serve_http` processes and
//! presents the *exact same* public API — clients cannot tell a routed
//! fleet from a single replica. This is the ROADMAP's
//! "replicated registries behind a router" direction made concrete.
//!
//! ## Pieces
//!
//! * [`replica`] — [`Replica`] endpoints with keep-alive connection
//!   pooling, per-replica counters, and the two [`RoutingPolicy`] orders:
//!   FNV-1a consistent hashing (stable per-model placement + deterministic
//!   failover sequence) and least-loaded (router-local in-flight count).
//! * [`router`] — the [`Router`] itself. It implements
//!   `tdc_serve::HttpHandler`, so `HttpServer::bind_with_handler` hosts it
//!   on the same hand-rolled HTTP stack the replicas use. A background
//!   prober `GET /healthz`s every replica, ejecting after consecutive
//!   failures and re-admitting after consecutive successes; inference
//!   traffic fails over across replicas on 429/503/connect errors,
//!   honouring `Retry-After` hints via [`backoff_decision`] and never
//!   retrying past the request's `deadline_ms`; control-plane calls
//!   (`PUT`/`DELETE /v1/models/{name}`, `/replan`, `/autotune`, `/tune`,
//!   `PUT /v1/controller`) fan out to the fleet, with replan/autotune/tune
//!   applied rolling — one replica at a time — so serving capacity never
//!   drops below N−1; `GET /v1/controller` aggregates every replica's own
//!   controller status block into one [`FleetReply`].
//! * [`testkit`] — shared fleet test support: in-process replica fleets
//!   (`bind_replica` / `bind_fleet` / `drain_replica`), self-spawned
//!   `serve_http` child replicas (`spawn_replica` / `shutdown_replica`),
//!   keep-alive hammer clients and metrics polling. Used by the crate's
//!   integration tests, the `router --smoke` self-test and the `tdc-lab`
//!   chaos harness.
//!
//! ## Bins
//!
//! * `router` — the router process: `--replicas a:p,b:p` to front existing
//!   replicas, `--spawn N` to self-spawn `serve_http` children on
//!   ephemeral ports (one-command local fleet), `--smoke` for the
//!   end-to-end self-test CI runs (fleet register → routed inference
//!   bit-identical to a direct engine call → kill one replica under load
//!   with zero client-visible failures → rolling replan under fire).
//!
//! The serving benchmark (`serve_bench`) lives in `tdc-lab`, one tier up,
//! so it can drive single engines, registries, routed fleets *and* the
//! lab's trace/chaos machinery from one binary.

pub mod replica;
pub mod router;
pub mod testkit;

pub use replica::{candidates, fnv1a, InflightGuard, Replica, RoutingPolicy};
pub use router::{
    backoff_decision, deadline_of, parse_retry_after, rewrite_deadline, FleetReplicaReply,
    FleetReply, ReplicaStats, Router, RouterHealthReply, RouterMetrics, RouterOptions,
};
