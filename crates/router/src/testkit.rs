//! Shared test support for fleet topologies.
//!
//! Spawning a replica fleet, draining it deterministically and hammering it
//! over keep-alive connections used to be re-implemented by every consumer
//! (the crate's integration tests, the `router --smoke` self-test, the
//! serving benchmark's fleet phase). This module is the one copy. It ships
//! in the library proper — not behind `cfg(test)` — because the `router`
//! binary's smoke mode and the `tdc-lab` chaos harness link against it from
//! outside the crate.
//!
//! Two families of helpers:
//!
//! * **in-process fleets** — each replica is a [`ModelRegistry`] behind its
//!   own [`HttpServer`] inside the current process
//!   ([`bind_replica`] / [`bind_fleet`] / [`drain_replica`]): cheap, fully
//!   deterministic teardown, the right shape for tests that kill a replica
//!   mid-load by draining it;
//! * **child-process fleets** — each replica is a spawned `serve_http`
//!   process ([`spawn_replica`] / [`shutdown_replica`]): real processes with
//!   real connection resets, the right shape for the end-to-end smoke.

use std::io::BufRead;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::{Router, RouterMetrics, RouterOptions, RoutingPolicy};
use tdc_nn::models::ModelDescriptor;
use tdc_serve::http::{http_request, InferBody};
use tdc_serve::{
    BatchingOptions, HttpClient, HttpServer, ModelConfig, ModelRegistry, RuntimeOptions,
};

/// The stock fleet-replica model configuration: small batches with a short
/// batching window (so kill-under-load tests see many small dispatch
/// boundaries) on two engine workers.
pub fn fleet_config() -> ModelConfig {
    ModelConfig {
        batching: BatchingOptions {
            max_batch_size: 4,
            max_batch_delay: Duration::from_millis(1),
            ..BatchingOptions::default()
        },
        runtime: RuntimeOptions {
            workers: 2,
            ..RuntimeOptions::default()
        },
        ..ModelConfig::default()
    }
}

/// One in-process replica: a fresh [`ModelRegistry`] serving `model` behind
/// its own HTTP front end bound on `addr` (use `"127.0.0.1:0"` for an
/// ephemeral port, or a previous replica's address to restart "on the same
/// port").
pub fn bind_replica(
    addr: &str,
    model: &str,
    descriptor: &ModelDescriptor,
    config: ModelConfig,
) -> HttpServer {
    let registry = ModelRegistry::new(2);
    registry.set_tune_driver(Arc::new(tdc_ctrl::Controller::new()));
    registry
        .register(model, descriptor, config)
        .expect("register fleet model");
    HttpServer::bind(addr, Arc::new(registry)).expect("bind fleet replica")
}

/// Fully drain one in-process replica: stop its front end, then its engines.
/// Panics if something still holds the replica's registry.
pub fn drain_replica(server: HttpServer) {
    let registry = server.shutdown();
    let registry =
        Arc::try_unwrap(registry).unwrap_or_else(|_| panic!("fleet registry still shared"));
    registry.shutdown();
}

/// An `n`-replica in-process fleet behind a [`Router`] front end: every
/// replica serves `model` with the same `config`, so routed outputs are
/// bit-identical regardless of placement. Returns the replica servers (in
/// replica-id order), the router, and the front-end server hosting it.
pub fn bind_fleet(
    n: usize,
    options: RouterOptions,
    model: &str,
    descriptor: &ModelDescriptor,
    config: &ModelConfig,
) -> (Vec<HttpServer>, Arc<Router>, HttpServer) {
    let servers: Vec<HttpServer> = (0..n)
        .map(|_| bind_replica("127.0.0.1:0", model, descriptor, config.clone()))
        .collect();
    let addrs: Vec<SocketAddr> = servers.iter().map(|s| s.local_addr()).collect();
    let router = Arc::new(Router::new(&addrs, options));
    let front = HttpServer::bind_with_handler("127.0.0.1:0", Arc::clone(&router) as _)
        .expect("bind router front end");
    (servers, router, front)
}

/// Router options with the background prober disabled (`probe_interval`
/// zero): tests drive sweeps deterministically via `Router::probe_once`.
pub fn manual_probe_options(policy: RoutingPolicy) -> RouterOptions {
    RouterOptions {
        policy,
        probe_interval: Duration::ZERO,
        probe_timeout: Duration::from_millis(250),
        ..RouterOptions::default()
    }
}

/// A self-spawned `serve_http` child process and the address it bound.
pub struct ChildReplica {
    /// Replica id within its fleet (stable across a kill/restart).
    pub index: usize,
    /// The child process handle.
    pub child: Child,
    /// The address the child reported binding.
    pub addr: SocketAddr,
}

/// The `serve_http` binary to spawn child replicas from:
/// `TDC_SERVE_HTTP_BIN` if set, else a sibling of the current executable.
pub fn serve_http_bin() -> std::path::PathBuf {
    if let Ok(path) = std::env::var("TDC_SERVE_HTTP_BIN") {
        return path.into();
    }
    let mut path = std::env::current_exe().expect("current executable path");
    path.set_file_name(format!("serve_http{}", std::env::consts::EXE_SUFFIX));
    path
}

/// Spawn one `serve_http` child on an ephemeral port (or at a fixed
/// address — how a smoke restarts a replica on its old port), parse the
/// bound address from its startup line, and leave a thread draining the
/// rest of its stdout so the child never blocks on a full pipe.
pub fn spawn_replica(
    index: usize,
    addr: &str,
    spill_dir: Option<&str>,
) -> Result<ChildReplica, String> {
    let bin = serve_http_bin();
    let mut command = Command::new(&bin);
    command
        .arg("--addr")
        .arg(addr)
        .arg("--models")
        .arg("2")
        .stdout(Stdio::piped())
        .stdin(Stdio::null());
    if let Some(dir) = spill_dir {
        command.arg("--spill-dir").arg(dir);
    }
    let mut child = command
        .spawn()
        .map_err(|e| format!("spawn {} failed: {e}", bin.display()))?;
    let stdout = child.stdout.take().expect("piped child stdout");
    let mut reader = std::io::BufReader::new(stdout);
    let mut line = String::new();
    let bound = loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => {
                let _ = child.kill();
                return Err(format!(
                    "replica {index} exited before printing its address"
                ));
            }
            Ok(_) => {
                if let Some(rest) = line
                    .trim()
                    .strip_prefix("tdc-serve HTTP front end on http://")
                {
                    match rest.parse() {
                        Ok(parsed) => break parsed,
                        Err(_) => {
                            let _ = child.kill();
                            return Err(format!("replica {index}: bad address line {line:?}"));
                        }
                    }
                }
            }
            Err(e) => {
                let _ = child.kill();
                return Err(format!("replica {index}: reading startup line failed: {e}"));
            }
        }
    };
    // Keep the child's pipe drained so it never blocks on a full buffer.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            match reader.read_line(&mut sink) {
                Ok(0) | Err(_) => break,
                Ok(_) => {}
            }
        }
    });
    Ok(ChildReplica {
        index,
        child,
        addr: bound,
    })
}

/// Gracefully drain a child replica via `POST /admin/shutdown`, falling
/// back to a kill if it has not exited within five seconds.
pub fn shutdown_replica(mut replica: ChildReplica) {
    let _ = http_request(&replica.addr, "POST", "/admin/shutdown", None);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        match replica.child.try_wait() {
            Ok(Some(_)) => return,
            Ok(None) if Instant::now() < deadline => std::thread::sleep(Duration::from_millis(25)),
            _ => {
                eprintln!(
                    "testkit: replica {} did not drain in time, killing",
                    replica.index
                );
                let _ = replica.child.kill();
                let _ = replica.child.wait();
                return;
            }
        }
    }
}

/// Outcome of one [`hammer`] run: how many requests answered 200, and the
/// first non-200 (status, body) if any.
pub struct HammerReport {
    /// Requests answered `200 OK`.
    pub ok: u64,
    /// Client-visible failures (non-200 statuses, transport errors).
    pub failures: u64,
    /// The first failure's (status, body); status 0 for transport errors.
    pub first_failure: Option<(u16, String)>,
}

/// Fire `requests` single-sample infers at `addr` from one keep-alive
/// connection (reconnecting if the server drops it), recording any
/// client-visible failure. `progress` (when provided) is bumped once per
/// request so a coordinator can kill a replica mid-flight instead of
/// guessing with a sleep.
pub fn hammer(
    addr: SocketAddr,
    model: &str,
    input: &[f32],
    requests: u64,
    progress: Option<Arc<AtomicU64>>,
) -> HammerReport {
    let path = format!("/v1/models/{model}/infer");
    let body = serde_json::to_string(&InferBody {
        input: input.to_vec(),
        dims: None,
        deadline_ms: None,
    })
    .expect("serialize hammer body");
    let mut report = HammerReport {
        ok: 0,
        failures: 0,
        first_failure: None,
    };
    let mut client: Option<HttpClient> = None;
    for _ in 0..requests {
        if client.is_none() {
            client = HttpClient::connect(&addr).ok();
        }
        let outcome = match client.as_mut() {
            Some(live) => live.request("POST", &path, Some(&body)),
            None => http_request(&addr, "POST", &path, Some(&body)),
        };
        match outcome {
            Ok((200, _)) => report.ok += 1,
            Ok((status, reply)) => {
                report.failures += 1;
                report.first_failure.get_or_insert((status, reply));
                client = None;
            }
            Err(e) => {
                report.failures += 1;
                report
                    .first_failure
                    .get_or_insert((0, format!("transport error: {e}")));
                client = None;
            }
        }
        if let Some(counter) = &progress {
            counter.fetch_add(1, Ordering::Relaxed);
        }
    }
    report
}

/// Fetch and parse a router front end's `GET /metrics`.
pub fn router_metrics(addr: &SocketAddr) -> Result<RouterMetrics, String> {
    let (status, body) =
        http_request(addr, "GET", "/metrics", None).map_err(|e| format!("GET /metrics: {e}"))?;
    if status != 200 {
        return Err(format!("GET /metrics: status {status}"));
    }
    serde_json::from_str(&body).map_err(|e| format!("GET /metrics: bad body: {}", e.message))
}

/// Poll `predicate` over the router metrics until it holds or `wait` runs
/// out.
pub fn await_metrics(
    addr: &SocketAddr,
    wait: Duration,
    predicate: impl Fn(&RouterMetrics) -> bool,
) -> Result<RouterMetrics, String> {
    let deadline = Instant::now() + wait;
    loop {
        let metrics = router_metrics(addr)?;
        if predicate(&metrics) {
            return Ok(metrics);
        }
        if Instant::now() >= deadline {
            return Err(format!(
                "metrics condition not reached within {wait:?}: {}",
                serde_json::to_string(&metrics).unwrap_or_default()
            ));
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}
