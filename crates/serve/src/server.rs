//! The serving engine: planning through the cache, executor materialization,
//! the worker thread pool, and graceful shutdown.

use crate::batcher::{BatchQueue, InferenceRequest, InferenceResponse, PendingResponse};
use crate::metrics::{MetricsRecorder, ServeMetrics};
use crate::model::{CompressedModel, DenseAlgorithm};
use crate::plan_cache::{CacheOutcome, PlanCache, PlanKey};
use crate::{Result, ServeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tdc::inference::Backend;
use tdc::rank_select::RankSelectionConfig;
use tdc::tiling::TilingStrategy;
use tdc::{CompressionPlan, TdcPipeline};
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::models::ModelDescriptor;
use tdc_tensor::Tensor;

/// Configuration of one serving engine.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Target device model for planning and predicted-latency reporting.
    pub device: DeviceSpec,
    /// Tiling strategy used when planning.
    pub strategy: TilingStrategy,
    /// FLOPs-reduction budget for rank selection.
    pub budget: f64,
    /// Rank-candidate step (use small steps for miniature serving models).
    pub rank_step: usize,
    /// θ skip threshold for rank selection (0 decomposes whenever feasible).
    pub theta: f64,
    /// Maximum requests per batch.
    pub max_batch_size: usize,
    /// Longest the oldest queued request may wait for batch-mates.
    pub max_batch_delay: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Seed for weight materialization.
    pub seed: u64,
    /// CPU algorithm for kept (dense) layers.
    pub dense_algorithm: DenseAlgorithm,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            device: DeviceSpec::a100(),
            strategy: TilingStrategy::Model,
            budget: 0.5,
            rank_step: 4,
            theta: 0.0,
            max_batch_size: 8,
            max_batch_delay: Duration::from_millis(2),
            workers: 2,
            seed: 0x7DC,
            dense_algorithm: DenseAlgorithm::Im2col,
        }
    }
}

/// Final report returned by [`ServeEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Aggregated metrics at shutdown.
    pub metrics: ServeMetrics,
    /// How the engine's plan was obtained.
    pub plan_outcome: CacheOutcome,
    /// Fingerprint of the plan served.
    pub plan_fingerprint: u64,
}

/// A running, batched inference service for one compressed model.
pub struct ServeEngine {
    queue: Arc<BatchQueue>,
    metrics: Arc<MetricsRecorder>,
    workers: Vec<JoinHandle<()>>,
    plan: Arc<CompressionPlan>,
    plan_outcome: CacheOutcome,
    model: Arc<CompressedModel>,
    next_id: AtomicU64,
    predicted_gpu_ms_per_sample: f64,
}

impl ServeEngine {
    /// Plan (through `cache`), materialize the executor, and start the
    /// worker pool.
    pub fn start(
        descriptor: &ModelDescriptor,
        config: &ServeConfig,
        cache: &PlanCache,
    ) -> Result<Self> {
        if config.workers == 0 {
            return Err(ServeError::BadConfig {
                reason: "workers must be > 0".into(),
            });
        }
        let cfg = RankSelectionConfig {
            budget: config.budget,
            theta: config.theta,
            strategy: config.strategy,
            rank_step: config.rank_step,
        };
        let key = PlanKey::new(&descriptor.name, &config.device.name, &cfg);
        let (plan, plan_outcome) = cache.get_or_compute(&key, || {
            let pipeline = TdcPipeline::new(config.device.clone(), config.strategy);
            pipeline
                .plan_with_config(descriptor, &cfg)
                .map_err(Into::into)
        })?;
        let model = Arc::new(CompressedModel::materialize_with(
            descriptor,
            &plan,
            config.seed,
            config.dense_algorithm,
        )?);
        // Validate the whole execution chain once with a zero input, so a
        // dense algorithm that cannot run one of the kept layers (e.g.
        // Winograd on a stride-2 layer) fails engine start with a real error
        // instead of silently dropping every request in the workers.
        model.forward(&Tensor::zeros(model.input_dims().to_vec()))?;
        // Predicted GPU latency of one sample under the paper's TDC-model
        // backend; workers scale it by batch size when reporting.
        let predicted_gpu_ms_per_sample = plan
            .report(Backend::TuckerTdcModel)
            .map(|r| r.total_ms)
            .unwrap_or(0.0);

        let queue = Arc::new(BatchQueue::new(
            config.max_batch_size,
            config.max_batch_delay,
        ));
        let metrics = Arc::new(MetricsRecorder::default());
        let workers = (0..config.workers)
            .map(|worker_index| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let model = Arc::clone(&model);
                std::thread::Builder::new()
                    .name(format!("tdc-serve-worker-{worker_index}"))
                    .spawn(move || {
                        worker_loop(&queue, &metrics, &model, predicted_gpu_ms_per_sample)
                    })
                    .expect("spawn serving worker")
            })
            .collect();

        Ok(ServeEngine {
            queue,
            metrics,
            workers,
            plan,
            plan_outcome,
            model,
            next_id: AtomicU64::new(0),
            predicted_gpu_ms_per_sample,
        })
    }

    /// The compression plan this engine serves.
    pub fn plan(&self) -> &CompressionPlan {
        &self.plan
    }

    /// How the plan was obtained from the cache.
    pub fn plan_outcome(&self) -> CacheOutcome {
        self.plan_outcome
    }

    /// The materialized executor.
    pub fn model(&self) -> &CompressedModel {
        &self.model
    }

    /// Predicted GPU latency of a single sample on the planned device, ms.
    pub fn predicted_gpu_ms_per_sample(&self) -> f64 {
        self.predicted_gpu_ms_per_sample
    }

    /// Submit one HWC input; returns a handle to await the response.
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse> {
        if input.dims() != self.model.input_dims() {
            return Err(ServeError::BadInput {
                expected: self.model.input_dims().to_vec(),
                actual: input.dims().to_vec(),
            });
        }
        let (tx, rx) = mpsc::channel();
        let request = InferenceRequest {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            input,
            enqueued_at: Instant::now(),
            responder: tx,
        };
        self.queue.push(request)?;
        Ok(PendingResponse::new(rx))
    }

    /// Submit and block for the response.
    pub fn infer(&self, input: Tensor) -> Result<InferenceResponse> {
        self.submit(input)?.wait()
    }

    /// Metrics snapshot of the work completed so far.
    pub fn metrics(&self) -> ServeMetrics {
        self.metrics.snapshot()
    }

    /// Current queue depth (requests not yet dispatched to a worker).
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Stop accepting requests, drain the queue, join the workers and return
    /// the final report.
    pub fn shutdown(mut self) -> ServeReport {
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        ServeReport {
            metrics: self.metrics.snapshot(),
            plan_outcome: self.plan_outcome,
            plan_fingerprint: self.plan.fingerprint(),
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Belt and braces for engines dropped without `shutdown()`: close the
        // queue so workers terminate instead of blocking forever.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(
    queue: &BatchQueue,
    metrics: &MetricsRecorder,
    model: &CompressedModel,
    predicted_gpu_ms_per_sample: f64,
) {
    while let Some(batch) = queue.next_batch() {
        let batch_size = batch.len();
        let predicted_gpu_batch_ms = predicted_gpu_ms_per_sample * batch_size as f64;
        let exec_started = Instant::now();
        let outputs: Vec<Option<Tensor>> = batch
            .iter()
            .map(|request| model.forward(&request.input).ok())
            .collect();
        let exec_ms = exec_started.elapsed().as_secs_f64() * 1e3;
        metrics.record_batch(batch_size, predicted_gpu_batch_ms);
        let completed_at = Instant::now();
        for (request, output) in batch.into_iter().zip(outputs) {
            // Engine start validates the whole chain with a probe forward and
            // `submit` rejects wrong shapes, so a failure here is a genuine
            // anomaly (e.g. an algorithm panic-adjacent edge); the request is
            // dropped and the client's `wait` surfaces `Closed`.
            let Some(output) = output else { continue };
            let total_ms = completed_at
                .duration_since(request.enqueued_at)
                .as_secs_f64()
                * 1e3;
            let queue_ms = (total_ms - exec_ms).max(0.0);
            metrics.record_request(total_ms, queue_ms, exec_ms);
            let response = InferenceResponse {
                id: request.id,
                output,
                queue_ms,
                exec_ms,
                batch_size,
                predicted_gpu_batch_ms,
            };
            // The client may have given up; that is not the worker's problem.
            let _ = request.responder.send(response);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving_descriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdc_tensor::init;

    fn test_config() -> ServeConfig {
        ServeConfig {
            max_batch_size: 4,
            max_batch_delay: Duration::from_millis(2),
            workers: 2,
            ..ServeConfig::default()
        }
    }

    #[test]
    fn serves_concurrent_requests_and_batches_them() {
        let descriptor = serving_descriptor("engine-test", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = ServeEngine::start(&descriptor, &test_config(), &cache).unwrap();
        assert_eq!(engine.plan_outcome(), CacheOutcome::Miss);

        let mut rng = StdRng::seed_from_u64(1);
        let pending: Vec<_> = (0..16)
            .map(|_| {
                engine
                    .submit(init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng))
                    .unwrap()
            })
            .collect();
        for p in pending {
            let response = p.wait().unwrap();
            assert_eq!(response.output.dims(), &[6]);
            assert!(response.batch_size >= 1);
            assert!(response.predicted_gpu_batch_ms > 0.0);
            assert!(response.total_ms() >= response.exec_ms);
        }
        let report = engine.shutdown();
        assert_eq!(report.metrics.completed_requests, 16);
        assert!(report.metrics.batches <= 16);
        assert!(report.metrics.mean_batch_size >= 1.0);
    }

    #[test]
    fn second_engine_start_hits_the_plan_cache() {
        let descriptor = serving_descriptor("engine-cache", 10, 4, 6);
        let cache = PlanCache::new(2);
        let first = ServeEngine::start(&descriptor, &test_config(), &cache).unwrap();
        let fp = first.plan().fingerprint();
        drop(first);
        let second = ServeEngine::start(&descriptor, &test_config(), &cache).unwrap();
        assert_eq!(second.plan_outcome(), CacheOutcome::MemoryHit);
        assert_eq!(second.plan().fingerprint(), fp);
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn rejects_bad_inputs_and_configs() {
        let descriptor = serving_descriptor("engine-bad", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = ServeEngine::start(&descriptor, &test_config(), &cache).unwrap();
        assert!(engine.submit(Tensor::zeros(vec![3, 3, 3])).is_err());
        drop(engine);
        let bad = ServeConfig {
            workers: 0,
            ..test_config()
        };
        assert!(ServeEngine::start(&descriptor, &bad, &cache).is_err());
    }

    #[test]
    fn start_rejects_a_dense_algorithm_that_cannot_run_a_kept_layer() {
        use crate::model::DenseAlgorithm;
        use tdc_conv::ConvShape;
        use tdc_nn::models::ModelDescriptor;
        // A chain with a pointwise layer: always kept dense, and Winograd
        // cannot execute 1x1 filters. The probe forward at start must catch
        // this instead of letting workers drop every request.
        let descriptor = ModelDescriptor {
            name: "engine-wino".into(),
            convs: vec![
                ConvShape::same3x3(4, 8, 10, 10),
                ConvShape::pointwise(8, 8, 10, 10),
            ],
            fc: vec![(8, 3)],
        };
        let cache = PlanCache::new(2);
        let bad = ServeConfig {
            dense_algorithm: DenseAlgorithm::Winograd,
            ..test_config()
        };
        assert!(matches!(
            ServeEngine::start(&descriptor, &bad, &cache),
            Err(ServeError::Conv(_))
        ));
        // The same descriptor serves fine with the default algorithm.
        let ok = ServeEngine::start(&descriptor, &test_config(), &cache).unwrap();
        drop(ok);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let descriptor = serving_descriptor("engine-close", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = ServeEngine::start(&descriptor, &test_config(), &cache).unwrap();
        let input = Tensor::zeros(vec![10, 10, 4]);
        engine.queue.close();
        assert!(matches!(engine.submit(input), Err(ServeError::Closed)));
    }
}
