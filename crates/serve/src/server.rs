//! The serving engine: typed builder, planning through the cache, backend
//! materialization, batch execution on the fleet executor, and graceful
//! shutdown.
//!
//! Engines are constructed with [`ServeEngine::builder`]: three typed option
//! structs ([`PlanningOptions`], [`BatchingOptions`], [`RuntimeOptions`]) are
//! validated at [`build`](ServeEngineBuilder::build), the plan is obtained
//! through the [`PlanCache`], and execution goes through a pluggable
//! [`ExecutionBackend`] — the real CPU executor or the wave-level GPU
//! simulation. Batches are dispatched by a `tdc-exec` work-stealing pool:
//! attach the process-wide pool with
//! [`executor`](ServeEngineBuilder::executor) (what
//! [`ModelRegistry`](crate::ModelRegistry) does for every model it
//! builds), or let the
//! engine spawn a private pool of [`RuntimeOptions::workers`] threads —
//! the legacy per-engine topology.
//!
//! Execution is zero-allocation in steady state: the engine owns a
//! [`BufferPool`] of recycled f32 buffers, every dispatch checks out a
//! [`ScratchArena`] handle and runs the batch through
//! [`ExecutionBackend::forward_batch_in`], and answered requests recycle
//! their input tensors back into the pool.

use crate::arena::{BufferPool, PoolStats, ScratchArena};
use crate::backend::{
    BackendKind, BackendLatencyReport, BackendWrapper, CpuBackend, ExecutionBackend, SimGpuBackend,
};
use crate::batcher::{BatchQueue, InferenceRequest, InferenceResponse, PendingResponse, TryBatch};
use crate::metrics::{MetricsRecorder, ServeMetrics};
use crate::model::CompressedModel;
use crate::options::{BatchingOptions, PlanningOptions, RuntimeOptions};
use crate::plan_cache::{CacheOutcome, PlanCache, PlanKey};
use crate::{Result, ServeError};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tdc::inference::Backend;
use tdc::{CompressionPlan, TdcPipeline};
use tdc_exec::{BatchSource, Executor, ExecutorOptions, QosClass, SourceHandle, SourceState};
use tdc_nn::models::ModelDescriptor;
use tdc_tensor::Tensor;

/// Final report returned by [`ServeEngine::shutdown`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Identity of the backend that executed the batches.
    pub backend: String,
    /// Aggregated metrics at shutdown.
    pub metrics: ServeMetrics,
    /// How the engine's plan was obtained.
    pub plan_outcome: CacheOutcome,
    /// Fingerprint of the plan served.
    pub plan_fingerprint: u64,
    /// The backend's per-sample (batch 1) latency breakdown.
    pub backend_latency: BackendLatencyReport,
}

/// Typed, validating constructor for [`ServeEngine`].
///
/// Obtained from [`ServeEngine::builder`]. Each option struct can be replaced
/// wholesale; unspecified groups keep their defaults. Validation runs at
/// [`build`](ServeEngineBuilder::build), before any planning work starts.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use tdc_serve::{
///     serving_descriptor, BackendKind, BatchingOptions, PlanCache, PlanningOptions,
///     ServeEngine,
/// };
///
/// let descriptor = serving_descriptor("builder-docs", 8, 4, 4);
/// let cache = PlanCache::new(2);
/// let engine = ServeEngine::builder(&descriptor)
///     .planning(PlanningOptions {
///         budget: 0.4,
///         ..PlanningOptions::default()
///     })
///     .batching(BatchingOptions {
///         max_batch_size: 4,
///         max_batch_delay: Duration::from_millis(1),
///         ..BatchingOptions::default()
///     })
///     .backend(BackendKind::SimGpu)
///     .plan_cache(&cache)
///     .build()
///     .unwrap();
/// let response = engine.infer(tdc_tensor::Tensor::zeros(vec![8, 8, 4])).unwrap();
/// assert_eq!(response.output.dims(), &[4]);
/// assert!(response.simulated_gpu_batch_ms > 0.0);
/// engine.shutdown();
/// ```
pub struct ServeEngineBuilder<'a> {
    descriptor: &'a ModelDescriptor,
    planning: PlanningOptions,
    batching: BatchingOptions,
    runtime: RuntimeOptions,
    cache: Option<&'a PlanCache>,
    executor: Option<Arc<Executor>>,
    wrapper: Option<Arc<dyn BackendWrapper>>,
}

impl<'a> ServeEngineBuilder<'a> {
    fn new(descriptor: &'a ModelDescriptor) -> Self {
        ServeEngineBuilder {
            descriptor,
            planning: PlanningOptions::default(),
            batching: BatchingOptions::default(),
            runtime: RuntimeOptions::default(),
            cache: None,
            executor: None,
            wrapper: None,
        }
    }

    /// Replace the planning options (plan identity: device, strategy, budget,
    /// rank step, θ).
    pub fn planning(mut self, planning: PlanningOptions) -> Self {
        self.planning = planning;
        self
    }

    /// Replace the batching options (batch size and delay).
    pub fn batching(mut self, batching: BatchingOptions) -> Self {
        self.batching = batching;
        self
    }

    /// Replace the runtime options (workers, seed, dense algorithm, backend).
    pub fn runtime(mut self, runtime: RuntimeOptions) -> Self {
        self.runtime = runtime;
        self
    }

    /// Select the execution backend, keeping the other runtime options.
    pub fn backend(mut self, backend: BackendKind) -> Self {
        self.runtime.backend = backend;
        self
    }

    /// Plan through `cache` instead of a private single-entry cache, so
    /// engine restarts skip rank selection.
    pub fn plan_cache(mut self, cache: &'a PlanCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Interpose `wrapper` on the constructed backend (fault injection,
    /// call recording): the engine executes on whatever
    /// [`BackendWrapper::wrap`] returns, and the warmup probe runs through
    /// the wrapped chain. [`ModelConfig`](crate::ModelConfig) can carry a
    /// wrapper so registry rebuilds (replan, autotune) re-apply it.
    pub fn wrap_backend(mut self, wrapper: Arc<dyn BackendWrapper>) -> Self {
        self.wrapper = Some(wrapper);
        self
    }

    /// Run batches on `executor` — the process-wide work-stealing pool —
    /// instead of spawning a private per-engine pool. The engine registers
    /// as one executor source under its fair-share weight
    /// ([`RuntimeOptions::workers`]) and QoS class ([`RuntimeOptions::qos`]);
    /// the registry attaches its fleet executor here for every model.
    pub fn executor(mut self, executor: &Arc<Executor>) -> Self {
        self.executor = Some(Arc::clone(executor));
        self
    }

    /// Validate every option group, obtain the plan (through the cache when
    /// one was attached), materialize the backend, probe it once, and attach
    /// the engine to its executor (shared, or a freshly spawned private
    /// pool).
    pub fn build(self) -> Result<ServeEngine> {
        self.planning.validate()?;
        self.batching.validate()?;
        self.runtime.validate()?;

        let cfg = self.planning.selection_config();
        let key = PlanKey::new(
            &self.descriptor.name,
            &self.planning.device.name,
            self.runtime.backend.label(),
            &cfg,
        );
        let compute = || {
            let pipeline = TdcPipeline::new(self.planning.device.clone(), self.planning.strategy);
            pipeline
                .plan_with_config(self.descriptor, &cfg)
                .map_err(Into::into)
        };
        let local_cache;
        let cache = match self.cache {
            Some(cache) => cache,
            None => {
                local_cache = PlanCache::new(1);
                &local_cache
            }
        };
        let (plan, plan_outcome) = cache.get_or_compute(&key, compute)?;

        let model = Arc::new(CompressedModel::materialize_with(
            self.descriptor,
            &plan,
            self.runtime.seed,
            self.runtime.dense_algorithm,
        )?);
        let backend: Arc<dyn ExecutionBackend> = match self.runtime.backend {
            BackendKind::Cpu => Arc::new(CpuBackend::new(
                Arc::clone(&model),
                Arc::clone(&plan),
                self.planning.device.clone(),
                self.descriptor.fc.clone(),
            )),
            BackendKind::SimGpu => Arc::new(SimGpuBackend::new(
                Arc::clone(&model),
                Arc::clone(&plan),
                self.planning.device.clone(),
                self.descriptor.fc.clone(),
            )),
        };
        // Fault injectors and other harness wrappers interpose here, before
        // the warmup probe, so the probe exercises the wrapped chain.
        let backend = match &self.wrapper {
            Some(wrapper) => wrapper.wrap(backend),
            None => backend,
        };
        // Probe the whole execution chain once, so a backend that cannot run
        // one of the layers (e.g. Winograd on a pointwise layer) fails engine
        // construction with a real error instead of silently dropping every
        // request in the workers.
        backend.warmup()?;
        let latency_report = backend.latency_report(1)?;

        // Predicted GPU latency of one sample under the paper's TDC-model
        // backend; workers scale it by batch size when reporting.
        let predicted_gpu_ms_per_sample = plan
            .report(Backend::TuckerTdcModel)
            .map(|r| r.total_ms)
            .unwrap_or(0.0);

        let core = Arc::new(EngineCore {
            queue: BatchQueue::new(
                self.batching.max_batch_size,
                self.batching.max_batch_delay,
                self.batching.max_queue_depth,
            ),
            metrics: MetricsRecorder::new(backend.name()),
            backend: Arc::clone(&backend),
            predicted_gpu_ms_per_sample,
            pool: Arc::new(BufferPool::new()),
            arenas: Mutex::new(Vec::new()),
            running: Mutex::new(0),
            idle: Condvar::new(),
        });

        // Attach to the shared executor when one was provided; otherwise
        // spawn a private pool sized by `workers` — the legacy per-engine
        // topology, preserved for standalone engines.
        let (executor, private_executor) = match self.executor {
            Some(executor) => (executor, false),
            None => {
                let pool = Executor::new(ExecutorOptions {
                    workers: self.runtime.workers,
                    ..ExecutorOptions::default()
                })
                .map_err(|e| ServeError::Runtime {
                    reason: format!("cannot spawn private engine executor: {e}"),
                })?;
                (Arc::new(pool), true)
            }
        };
        let handle = executor.register(
            &self.descriptor.name,
            self.runtime.fair_share_weight(),
            self.runtime.qos,
            Arc::clone(&core) as Arc<dyn BatchSource>,
        );

        // Estimated full-batch service time, for Retry-After hints: the
        // backend's own latency account at max batch size (memoized on
        // simulating backends, closed-form on the CPU one).
        let estimated_batch_ms = backend
            .latency_report(self.batching.max_batch_size)
            .map(|r| r.total_ms)
            .unwrap_or(latency_report.total_ms * self.batching.max_batch_size as f64);
        // Deadline-aware early release: the batcher releases a forming batch
        // at `deadline − estimated_exec_time`, so the deadline bounds the
        // *answer*, not merely the dequeue. Batch-delay tuning and deadline
        // enforcement thereby share one latency model.
        core.queue
            .set_exec_estimate(Duration::from_secs_f64((estimated_batch_ms / 1e3).max(0.0)));

        Ok(ServeEngine {
            core,
            handle,
            executor,
            private_executor,
            plan,
            plan_outcome,
            model,
            latency_report,
            next_id: AtomicU64::new(0),
            default_deadline: self.batching.default_deadline,
            max_batch_size: self.batching.max_batch_size,
            estimated_batch_ms,
        })
    }
}

/// The engine's executable heart: the batch queue, metrics and backend,
/// shared between the engine handle and the executor's dispatch tokens.
///
/// This is what an engine registers on the executor — [`BatchSource::run_one`]
/// dequeues one batch non-blockingly and runs the full dispatch path
/// (expiry, forward, record, respond). A forming under-full batch parks the
/// source on the executor's timer wheel via [`SourceState::NotReady`] instead
/// of blocking a shared worker.
struct EngineCore {
    queue: BatchQueue,
    metrics: MetricsRecorder,
    backend: Arc<dyn ExecutionBackend>,
    predicted_gpu_ms_per_sample: f64,
    /// Shared f32 buffer pool behind the zero-allocation hot path: dispatch
    /// arenas draw from it, and answered requests recycle their input (and,
    /// at the HTTP layer, output) tensors back into it.
    pool: Arc<BufferPool>,
    /// Checked-in [`ScratchArena`] handles; each dispatch pops one (or
    /// creates one on a cold start) and pushes it back when done, so the pool
    /// of handles tracks the executor's actual dispatch concurrency.
    arenas: Mutex<Vec<ScratchArena>>,
    /// Dispatches currently inside `run_one` past the dequeue point; together
    /// with an empty queue this defines "drained" for retire semantics.
    running: Mutex<usize>,
    idle: Condvar,
}

impl EngineCore {
    /// Block until the queue is empty **and** no executor worker is inside a
    /// dispatch for this engine; `deadline` bounds the wait (`None` waits
    /// without bound, mirroring the old worker-join semantics).
    fn wait_idle(&self, deadline: Option<Instant>) -> bool {
        loop {
            let drained = match deadline {
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return self.is_idle();
                    }
                    self.queue.wait_drained(at - now)
                }
                None => self.queue.wait_drained(Duration::from_secs(3600)),
            };
            if drained {
                break;
            }
            if deadline.is_some() {
                return false;
            }
        }
        let mut running = self.running.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            // A dispatch in flight may respond, and new requests may have
            // been admitted and dequeued meanwhile; idle means both gates
            // observed empty in one pass.
            if *running == 0 && self.queue.depth() == 0 {
                return true;
            }
            match deadline {
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        return false;
                    }
                    let (guard, _) = self
                        .idle
                        .wait_timeout(running, at - now)
                        .unwrap_or_else(|e| e.into_inner());
                    running = guard;
                }
                None => {
                    running = self.idle.wait(running).unwrap_or_else(|e| e.into_inner());
                }
            }
        }
    }

    fn is_idle(&self) -> bool {
        let running = self.running.lock().unwrap_or_else(|e| e.into_inner());
        *running == 0 && self.queue.depth() == 0
    }

    /// Run one dequeued batch end to end: expire, forward, record, respond.
    fn execute(&self, dispatch: crate::batcher::DequeuedBatch) {
        // Deadline checkpoint 1 (dequeue): requests that expired while
        // queued were split out by the batcher and never reach the backend.
        if !dispatch.expired.is_empty() {
            let now = Instant::now();
            for request in dispatch.expired {
                let input = expire_request(request, &self.metrics, now);
                self.pool.give(input.into_data());
            }
        }
        let batch = dispatch.live;
        if batch.is_empty() {
            return;
        }
        let batch_size = batch.len();
        let predicted_gpu_batch_ms = self.predicted_gpu_ms_per_sample * batch_size as f64;
        // Check out a scratch arena for the dispatch (creating one on a cold
        // start); every staging buffer the backend needs comes from it.
        let mut arena = {
            let mut arenas = self.arenas.lock().unwrap_or_else(|e| e.into_inner());
            arenas.pop()
        }
        .unwrap_or_else(|| ScratchArena::new(Arc::clone(&self.pool)));
        let exec_started = Instant::now();
        let inputs: Vec<&Tensor> = batch.iter().map(|r| &r.input).collect();
        // The backend is arbitrary trait-object code (possibly a harness
        // wrapper): a panic inside `forward_batch_in` must not kill a shared
        // executor worker, so it is caught here and folded into the same
        // typed-failure path an `Err` takes.
        let execution = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            self.backend.forward_batch_in(&inputs, &mut arena)
        }));
        let exec_ms = exec_started.elapsed().as_secs_f64() * 1e3;
        {
            let mut arenas = self.arenas.lock().unwrap_or_else(|e| e.into_inner());
            arenas.push(arena);
        }
        let execution = match execution {
            Ok(Ok(execution)) => execution,
            // Engine start probes the whole chain and `submit` rejects wrong
            // shapes, so a failure here is a genuine anomaly — but still an
            // *answered* one: the batch is recorded, every request in it gets
            // a typed `ExecutionFailed`, and the failure is counted. Clients
            // never observe a bare disconnect for an execution failure, and
            // no panic crosses the worker boundary.
            Ok(Err(error)) => {
                self.fail_batch(batch, batch_size, predicted_gpu_batch_ms, error.to_string());
                return;
            }
            Err(payload) => {
                let reason = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "backend panicked".to_string());
                self.fail_batch(
                    batch,
                    batch_size,
                    predicted_gpu_batch_ms,
                    format!("backend panic: {reason}"),
                );
                return;
            }
        };
        self.metrics.record_batch(
            batch_size,
            predicted_gpu_batch_ms,
            execution.simulated_gpu_ms,
        );
        let completed_at = Instant::now();
        for (request, output) in batch.into_iter().zip(execution.outputs) {
            // Deadline checkpoint 3 (delivery): execution finished past the
            // request's deadline — the client contract is "answered within
            // the deadline or a typed error", so the late output is dropped.
            if request.expired_at(completed_at) {
                let input = expire_request(request, &self.metrics, completed_at);
                self.pool.give(input.into_data());
                self.pool.give(output.into_data());
                continue;
            }
            let total_ms = completed_at
                .duration_since(request.enqueued_at)
                .as_secs_f64()
                * 1e3;
            let queue_ms = (total_ms - exec_ms).max(0.0);
            self.metrics.record_request(total_ms, queue_ms, exec_ms);
            let InferenceRequest {
                id,
                input,
                responder,
                ..
            } = request;
            // The answered request's input buffer feeds the next request's
            // parse — the other half of the zero-allocation loop.
            self.pool.give(input.into_data());
            let response = InferenceResponse {
                id,
                output,
                queue_ms,
                exec_ms,
                batch_size,
                predicted_gpu_batch_ms,
                simulated_gpu_batch_ms: execution.simulated_gpu_ms,
            };
            // The client may have given up; that is not the worker's problem.
            let _ = responder.send(Ok(response));
        }
    }

    /// Answer every request of a failed batch with a typed
    /// [`ServeError::ExecutionFailed`] and account the batch. Failures add
    /// no latency samples — like expiries, they must not skew the
    /// percentiles of the traffic that was actually served.
    fn fail_batch(
        &self,
        batch: Vec<InferenceRequest>,
        batch_size: usize,
        predicted_gpu_batch_ms: f64,
        reason: String,
    ) {
        self.metrics
            .record_batch(batch_size, predicted_gpu_batch_ms, 0.0);
        for request in batch {
            self.metrics.record_failed();
            let InferenceRequest {
                input, responder, ..
            } = request;
            self.pool.give(input.into_data());
            let _ = responder.send(Err(ServeError::ExecutionFailed {
                reason: reason.clone(),
            }));
        }
    }
}

impl BatchSource for EngineCore {
    fn run_one(&self) -> SourceState {
        // Count the dispatch as running *before* the batch leaves the queue,
        // so `wait_idle` never observes "queue empty, nothing running" while
        // a batch is actually between dequeue and response.
        {
            let mut running = self.running.lock().unwrap_or_else(|e| e.into_inner());
            *running += 1;
        }
        let state = match self.queue.try_next_batch() {
            TryBatch::Empty => SourceState::Idle,
            TryBatch::Closed => SourceState::Closed,
            TryBatch::NotReady(retry_at) => SourceState::NotReady { retry_at },
            TryBatch::Batch(dispatch) => {
                self.execute(dispatch);
                SourceState::Ran
            }
        };
        let mut running = self.running.lock().unwrap_or_else(|e| e.into_inner());
        *running -= 1;
        if *running == 0 {
            self.idle.notify_all();
        }
        drop(running);
        state
    }

    fn pending(&self) -> usize {
        self.queue.depth()
    }
}

/// A running, batched inference service for one compressed model.
pub struct ServeEngine {
    core: Arc<EngineCore>,
    handle: SourceHandle,
    executor: Arc<Executor>,
    private_executor: bool,
    plan: Arc<CompressionPlan>,
    plan_outcome: CacheOutcome,
    model: Arc<CompressedModel>,
    latency_report: BackendLatencyReport,
    next_id: AtomicU64,
    default_deadline: Option<Duration>,
    max_batch_size: usize,
    estimated_batch_ms: f64,
}

impl ServeEngine {
    /// Start building an engine for `descriptor` with default options.
    pub fn builder(descriptor: &ModelDescriptor) -> ServeEngineBuilder<'_> {
        ServeEngineBuilder::new(descriptor)
    }

    /// The compression plan this engine serves.
    pub fn plan(&self) -> &CompressionPlan {
        &self.plan
    }

    /// How the plan was obtained from the cache.
    pub fn plan_outcome(&self) -> CacheOutcome {
        self.plan_outcome
    }

    /// The materialized model shared by every backend.
    pub fn model(&self) -> &CompressedModel {
        &self.model
    }

    /// Identity of the execution backend running the batches.
    pub fn backend_name(&self) -> &str {
        self.core.backend.name()
    }

    /// The QoS class the engine is registered under on its executor.
    pub fn qos(&self) -> QosClass {
        self.handle.qos()
    }

    /// The engine's fair-share weight on its executor.
    pub fn fair_share_weight(&self) -> usize {
        self.handle.weight()
    }

    /// The engine's scheduling state on its executor: queue depth, running
    /// dispatches, batches stolen across workers, batches executed.
    pub fn executor_source(&self) -> tdc_exec::SourceMetrics {
        self.handle.metrics()
    }

    /// The backend's per-sample (batch 1) latency breakdown, computed at
    /// engine start.
    pub fn backend_latency_report(&self) -> &BackendLatencyReport {
        &self.latency_report
    }

    /// The backend's latency breakdown at an arbitrary batch size.
    pub fn backend_latency_report_at(&self, batch_size: usize) -> Result<BackendLatencyReport> {
        self.core.backend.latency_report(batch_size)
    }

    /// Predicted GPU latency of a single sample on the planned device, ms.
    pub fn predicted_gpu_ms_per_sample(&self) -> f64 {
        self.core.predicted_gpu_ms_per_sample
    }

    /// The default per-request deadline configured at build
    /// ([`BatchingOptions::default_deadline`]); `None` disables enforcement.
    pub fn default_deadline(&self) -> Option<Duration> {
        self.default_deadline
    }

    fn check_input(&self, input: &Tensor) -> Result<()> {
        if input.dims() != self.core.backend.input_dims() {
            return Err(ServeError::BadInput {
                expected: self.core.backend.input_dims().to_vec(),
                actual: input.dims().to_vec(),
            });
        }
        Ok(())
    }

    /// Batch-class admission shed: when the executor reports interactive
    /// backlog above its configured threshold, `Batch`-class submits are
    /// rejected at the door instead of queueing behind traffic that will
    /// always outrank them.
    fn check_shed(&self) -> Result<()> {
        if self.handle.should_shed() {
            return Err(ServeError::Overloaded {
                limit: self.handle.shed_backlog_limit(),
            });
        }
        Ok(())
    }

    fn request_for(
        &self,
        input: Tensor,
        enqueued_at: Instant,
        deadline: Option<Duration>,
    ) -> (InferenceRequest, PendingResponse) {
        let (tx, rx) = mpsc::channel();
        let request = InferenceRequest {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            input,
            enqueued_at,
            deadline: deadline.map(|d| enqueued_at + d),
            responder: tx,
        };
        (request, PendingResponse::new(rx))
    }

    /// Submit one HWC input under the engine's default deadline; returns a
    /// handle to await the response.
    pub fn submit(&self, input: Tensor) -> Result<PendingResponse> {
        self.submit_with_deadline(input, self.default_deadline)
    }

    /// Submit one HWC input with an explicit per-request deadline,
    /// overriding [`BatchingOptions::default_deadline`] (`None` disables
    /// enforcement for this request). If the deadline passes before the
    /// request is served, [`PendingResponse::wait`] fails with
    /// [`ServeError::DeadlineExceeded`]; requests that expire while queued
    /// never reach the executor.
    pub fn submit_with_deadline(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<PendingResponse> {
        self.check_input(&input)?;
        self.check_shed()?;
        let (request, pending) = self.request_for(input, Instant::now(), deadline);
        self.core.queue.push(request)?;
        self.core.metrics.record_submitted(1);
        self.handle.notify();
        Ok(pending)
    }

    /// Submit a group of inputs atomically under one deadline: all inputs
    /// are validated first, then enqueued contiguously in a single queue
    /// operation — so a group no larger than `max_batch_size` rides one
    /// executor batch when the queue is otherwise idle. Admission is
    /// all-or-nothing: a group that would exceed the admission bound is
    /// rejected whole with [`ServeError::Overloaded`]. This is what the
    /// HTTP front end's batched `{"inputs": [[...], ...]}` POST body maps
    /// onto.
    pub fn submit_many(
        &self,
        inputs: Vec<Tensor>,
        deadline: Option<Duration>,
    ) -> Result<Vec<PendingResponse>> {
        for input in &inputs {
            self.check_input(input)?;
        }
        self.check_shed()?;
        let enqueued_at = Instant::now();
        let (requests, handles): (Vec<_>, Vec<_>) = inputs
            .into_iter()
            .map(|input| self.request_for(input, enqueued_at, deadline))
            .unzip();
        let admitted = requests.len() as u64;
        self.core.queue.push_many(requests)?;
        self.core.metrics.record_submitted(admitted);
        self.handle.notify();
        Ok(handles)
    }

    /// Submit and block for the response.
    pub fn infer(&self, input: Tensor) -> Result<InferenceResponse> {
        self.submit(input)?.wait()
    }

    /// Submit with an explicit deadline and block for the response.
    pub fn infer_with_deadline(
        &self,
        input: Tensor,
        deadline: Option<Duration>,
    ) -> Result<InferenceResponse> {
        self.submit_with_deadline(input, deadline)?.wait()
    }

    /// Discard all metrics recorded so far, starting a fresh measurement
    /// window. Benchmarks call this after unmeasured warmup traffic so
    /// steady-state counters and latency percentiles are not skewed by the
    /// ramp (cold buffer pool, first-touch page faults). Buffer-pool
    /// telemetry is deliberately *not* reset — its monotonic counters let a
    /// caller diff snapshots around the measured window instead.
    pub fn reset_metrics(&self) {
        self.core.metrics.reset();
    }

    /// Metrics snapshot of the work completed so far, including how many of
    /// this engine's batches were dispatched via executor work stealing.
    pub fn metrics(&self) -> ServeMetrics {
        let mut snapshot = self.core.metrics.snapshot();
        snapshot.stolen_batches = self.handle.stolen_batches();
        snapshot.early_releases = self.core.queue.early_releases();
        snapshot
    }

    /// How many batches the engine released early at
    /// `deadline − estimated_exec_time` (deadline-aware early release; see
    /// [`BatchQueue::set_exec_estimate`](crate::BatchQueue)).
    pub fn early_releases(&self) -> u64 {
        self.core.queue.early_releases()
    }

    /// Replace the execution-time estimate the deadline-aware early release
    /// subtracts from the earliest deadline. Seeded at build from the
    /// backend's latency report; the SLO controller refreshes it from
    /// *measured* exec latency on watch ticks, so the release point tracks
    /// the deployment rather than the model. Zero disables early release.
    pub fn set_exec_estimate(&self, estimate: Duration) {
        self.core.queue.set_exec_estimate(estimate);
    }

    /// The execution-time estimate currently steering early release.
    pub fn exec_estimate(&self) -> Duration {
        self.core.queue.exec_estimate()
    }

    /// Cumulative telemetry of the engine's f32 buffer pool: fresh
    /// allocations, high-water checkout, and hit rate. A warm steady-state
    /// engine shows `allocated_buffers` and `high_water_f32` frozen while
    /// `hits` climbs — the zero-allocation property `serve_bench` records in
    /// its `kernels` section.
    pub fn pool_stats(&self) -> PoolStats {
        self.core.pool.stats()
    }

    /// The engine's shared f32 buffer pool. The HTTP front end parses
    /// request bodies into pooled buffers and recycles response outputs
    /// through this handle.
    pub fn buffer_pool(&self) -> Arc<BufferPool> {
        Arc::clone(&self.core.pool)
    }

    /// Current queue depth (requests not yet dispatched to a worker).
    pub fn queue_depth(&self) -> usize {
        self.core.queue.depth()
    }

    /// The engine's configured maximum batch size.
    pub fn max_batch_size(&self) -> usize {
        self.max_batch_size
    }

    /// The backend's estimated service time for one full batch, ms (computed
    /// once at build). What the Retry-After hint is derived from.
    pub fn estimated_batch_ms(&self) -> f64 {
        self.estimated_batch_ms
    }

    /// How long a rejected or shed request should wait before retrying:
    /// the batches still ahead in the queue (`⌈depth / max_batch⌉`, at least
    /// one) times the estimated full-batch service time. Clamped to
    /// `[1 s, 1 h]` so the header is always actionable. The estimate is the
    /// backend's *modelled* latency — a heuristic hint, not a promise.
    pub fn retry_after_hint(&self) -> Duration {
        let batches_ahead = self.core.queue.depth().div_ceil(self.max_batch_size).max(1);
        let wait_ms = batches_ahead as f64 * self.estimated_batch_ms.max(0.0);
        let secs = (wait_ms / 1e3).ceil().clamp(1.0, 3600.0);
        Duration::from_secs(secs as u64)
    }

    /// Stop admitting new requests while leaving the queue's contents to
    /// drain: every already-admitted request is still dispatched and
    /// answered, while later [`submit`](ServeEngine::submit)s fail with
    /// [`ServeError::Closed`] (HTTP `503`). The first step of a graceful
    /// retire — the control plane calls this after unrouting the model, then
    /// waits for the drain before freeing the engine.
    pub fn close_admission(&self) {
        self.core.queue.close();
        // Kick the executor: a dispatch token parked on the formation timer
        // must re-poll now so the closed queue's remainder drains promptly.
        self.handle.notify();
    }

    /// Block until every admitted request has been answered, or `timeout`
    /// passes; returns whether the engine fully drained. Unlike the
    /// per-engine-pool era this covers in-flight executor batches too:
    /// "drained" means the queue is empty *and* no shared-pool worker is
    /// inside a dispatch for this engine, so a retire that observes `true`
    /// can free the engine without yanking work out from under the pool.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        self.core.wait_idle(Some(Instant::now() + timeout))
    }

    /// Stop accepting requests, drain every in-flight batch, detach from the
    /// executor and return the final report.
    pub fn shutdown(self) -> ServeReport {
        self.core.queue.close();
        self.handle.notify();
        self.core.wait_idle(None);
        let report = ServeReport {
            backend: self.core.backend.name().to_string(),
            metrics: self.metrics(),
            plan_outcome: self.plan_outcome,
            plan_fingerprint: self.plan.fingerprint(),
            backend_latency: self.latency_report.clone(),
        };
        if self.private_executor {
            self.executor.shutdown();
        }
        report
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        // Belt and braces for engines dropped without `shutdown()`: close the
        // queue and drain in-flight work so responses are not lost, matching
        // the old join-the-workers drop semantics. Dropping `handle` then
        // deregisters the source from the executor; a private pool is shut
        // down explicitly so its threads are joined before the backend goes
        // away.
        self.core.queue.close();
        self.handle.notify();
        self.core.wait_idle(None);
        if self.private_executor {
            self.executor.shutdown();
        }
    }
}

/// Answer one expired request with the typed deadline error and count it.
/// No latency sample is recorded: expired requests must not skew the
/// percentiles of the traffic that was actually served. Returns the
/// request's input tensor so the caller can recycle its buffer.
fn expire_request(request: InferenceRequest, metrics: &MetricsRecorder, now: Instant) -> Tensor {
    metrics.record_deadline_exceeded();
    let waited_ms = now.duration_since(request.enqueued_at).as_secs_f64() * 1e3;
    let InferenceRequest {
        input, responder, ..
    } = request;
    // The client may have given up; that is not the worker's problem.
    let _ = responder.send(Err(ServeError::DeadlineExceeded { waited_ms }));
    input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DenseAlgorithm;
    use crate::serving_descriptor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use tdc_tensor::init;

    fn test_batching() -> BatchingOptions {
        BatchingOptions {
            max_batch_size: 4,
            max_batch_delay: Duration::from_millis(2),
            ..BatchingOptions::default()
        }
    }

    fn test_engine(descriptor: &ModelDescriptor, cache: &PlanCache) -> Result<ServeEngine> {
        ServeEngine::builder(descriptor)
            .batching(test_batching())
            .plan_cache(cache)
            .build()
    }

    #[test]
    fn serves_concurrent_requests_and_batches_them() {
        let descriptor = serving_descriptor("engine-test", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = test_engine(&descriptor, &cache).unwrap();
        assert_eq!(engine.plan_outcome(), CacheOutcome::Miss);
        assert_eq!(engine.backend_name(), "cpu");

        let mut rng = StdRng::seed_from_u64(1);
        let pending: Vec<_> = (0..16)
            .map(|_| {
                engine
                    .submit(init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng))
                    .unwrap()
            })
            .collect();
        for p in pending {
            let response = p.wait().unwrap();
            assert_eq!(response.output.dims(), &[6]);
            assert!(response.batch_size >= 1);
            assert!(response.predicted_gpu_batch_ms > 0.0);
            assert_eq!(
                response.simulated_gpu_batch_ms, 0.0,
                "cpu does not simulate"
            );
            assert!(response.total_ms() >= response.exec_ms);
        }
        let report = engine.shutdown();
        assert_eq!(report.backend, "cpu");
        assert_eq!(report.metrics.backend, "cpu");
        assert_eq!(report.metrics.completed_requests, 16);
        assert!(report.metrics.batches <= 16);
        assert!(report.metrics.mean_batch_size >= 1.0);
        assert_eq!(report.metrics.simulated_gpu_ms_total, 0.0);
    }

    #[test]
    fn sim_gpu_engine_reports_simulated_latency_end_to_end() {
        // Large enough that the planner decomposes at least one layer.
        let descriptor = serving_descriptor("engine-sim", 12, 8, 10);
        let cache = PlanCache::new(2);
        let engine = ServeEngine::builder(&descriptor)
            .batching(test_batching())
            .backend(BackendKind::SimGpu)
            .plan_cache(&cache)
            .build()
            .unwrap();
        assert_eq!(engine.backend_name(), "sim-gpu");
        let per_sample = engine.backend_latency_report();
        assert_eq!(per_sample.batch_size, 1);
        assert!(per_sample.total_ms > 0.0);
        assert!(per_sample.per_layer.iter().any(|l| l.decomposed));

        let mut rng = StdRng::seed_from_u64(2);
        let response = engine
            .infer(init::uniform(vec![12, 12, 8], -1.0, 1.0, &mut rng))
            .unwrap();
        assert!(response.simulated_gpu_batch_ms > 0.0);

        let report = engine.shutdown();
        assert_eq!(report.backend, "sim-gpu");
        assert_eq!(report.metrics.backend, "sim-gpu");
        assert!(report.metrics.simulated_gpu_ms_total > 0.0);
        assert_eq!(report.backend_latency.backend, "sim-gpu");
    }

    #[test]
    fn second_engine_start_hits_the_plan_cache() {
        let descriptor = serving_descriptor("engine-cache", 10, 4, 6);
        let cache = PlanCache::new(2);
        let first = test_engine(&descriptor, &cache).unwrap();
        let fp = first.plan().fingerprint();
        drop(first);
        let second = test_engine(&descriptor, &cache).unwrap();
        assert_eq!(second.plan_outcome(), CacheOutcome::MemoryHit);
        assert_eq!(second.plan().fingerprint(), fp);
        assert_eq!(cache.stats().memory_hits, 1);
    }

    #[test]
    fn backend_identity_splits_the_plan_cache_key() {
        let descriptor = serving_descriptor("engine-key", 10, 4, 6);
        let cache = PlanCache::new(4);
        let cpu = test_engine(&descriptor, &cache).unwrap();
        drop(cpu);
        let sim = ServeEngine::builder(&descriptor)
            .batching(test_batching())
            .backend(BackendKind::SimGpu)
            .plan_cache(&cache)
            .build()
            .unwrap();
        assert_eq!(
            sim.plan_outcome(),
            CacheOutcome::Miss,
            "a different backend must not reuse another backend's cache entry"
        );
        drop(sim);
        assert_eq!(cache.stats().misses, 2);
    }

    #[test]
    fn builder_rejects_invalid_options() {
        let descriptor = serving_descriptor("engine-bad", 10, 4, 6);
        let cache = PlanCache::new(2);
        // Zero workers.
        let err = ServeEngine::builder(&descriptor)
            .runtime(RuntimeOptions {
                workers: 0,
                ..RuntimeOptions::default()
            })
            .plan_cache(&cache)
            .build();
        assert!(matches!(err, Err(ServeError::BadConfig { .. })));
        // Zero batch size.
        let err = ServeEngine::builder(&descriptor)
            .batching(BatchingOptions {
                max_batch_size: 0,
                ..BatchingOptions::default()
            })
            .plan_cache(&cache)
            .build();
        assert!(matches!(err, Err(ServeError::BadConfig { .. })));
        // Non-finite budget.
        let err = ServeEngine::builder(&descriptor)
            .planning(PlanningOptions {
                budget: f64::NAN,
                ..PlanningOptions::default()
            })
            .plan_cache(&cache)
            .build();
        assert!(matches!(err, Err(ServeError::BadConfig { .. })));
        // Nothing was planned for any rejected configuration.
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn impossible_deadlines_expire_without_reaching_the_executor() {
        let descriptor = serving_descriptor("engine-deadline", 10, 4, 6);
        let cache = PlanCache::new(2);
        // A generous batch delay so an under-full batch would normally idle;
        // the 1 ms deadline must release and expire the request long before.
        let engine = ServeEngine::builder(&descriptor)
            .batching(BatchingOptions {
                max_batch_size: 8,
                max_batch_delay: Duration::from_millis(500),
                ..BatchingOptions::default()
            })
            .plan_cache(&cache)
            .build()
            .unwrap();
        let started = Instant::now();
        let err = engine
            .infer_with_deadline(
                Tensor::zeros(vec![10, 10, 4]),
                Some(Duration::from_millis(1)),
            )
            .unwrap_err();
        assert!(
            matches!(err, ServeError::DeadlineExceeded { .. }),
            "expected DeadlineExceeded, got {err}"
        );
        assert!(
            started.elapsed() < Duration::from_millis(400),
            "the deadline did not bound the wait"
        );
        let metrics = engine.metrics();
        assert_eq!(metrics.deadline_exceeded, 1, "exactly one expiry counted");
        assert_eq!(
            metrics.completed_requests, 0,
            "the expired request must never reach the executor"
        );
        assert_eq!(
            metrics.total_latency.count, 0,
            "expired requests must not add latency samples"
        );

        // A later live request is unaffected and still counts normally.
        let response = engine.infer(Tensor::zeros(vec![10, 10, 4])).unwrap();
        assert_eq!(response.output.dims(), &[6]);
        let metrics = engine.metrics();
        assert_eq!(metrics.completed_requests, 1);
        assert_eq!(metrics.deadline_exceeded, 1);
        engine.shutdown();
    }

    #[test]
    fn default_deadline_applies_to_plain_submits_and_can_be_overridden() {
        let descriptor = serving_descriptor("engine-default-deadline", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = ServeEngine::builder(&descriptor)
            .batching(BatchingOptions {
                max_batch_size: 8,
                max_batch_delay: Duration::from_millis(300),
                default_deadline: Some(Duration::from_millis(1)),
                ..BatchingOptions::default()
            })
            .plan_cache(&cache)
            .build()
            .unwrap();
        assert_eq!(engine.default_deadline(), Some(Duration::from_millis(1)));
        // Plain submit inherits the impossible default and expires…
        let err = engine.infer(Tensor::zeros(vec![10, 10, 4])).unwrap_err();
        assert!(matches!(err, ServeError::DeadlineExceeded { .. }));
        // …while an explicit None override disables enforcement entirely.
        let response = engine
            .infer_with_deadline(Tensor::zeros(vec![10, 10, 4]), None)
            .unwrap();
        assert_eq!(response.output.dims(), &[6]);
        engine.shutdown();
    }

    #[test]
    fn submit_many_rides_one_executor_batch_and_matches_single_submits() {
        let descriptor = serving_descriptor("engine-group", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = test_engine(&descriptor, &cache).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let inputs: Vec<Tensor> = (0..4)
            .map(|_| init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng))
            .collect();
        let expected: Vec<Tensor> = inputs
            .iter()
            .map(|x| engine.infer(x.clone()).unwrap().output)
            .collect();
        let handles = engine.submit_many(inputs, None).unwrap();
        for (handle, expected) in handles.into_iter().zip(expected) {
            let response = handle.wait().unwrap();
            assert_eq!(
                response.batch_size, 4,
                "an idle-queue group must ride a single executor batch"
            );
            assert_eq!(response.output, expected, "group output diverged");
        }
        // A group with a bad input is rejected whole before anything queues.
        let bad = engine.submit_many(
            vec![Tensor::zeros(vec![10, 10, 4]), Tensor::zeros(vec![1])],
            None,
        );
        assert!(matches!(bad, Err(ServeError::BadInput { .. })));
        assert_eq!(engine.queue_depth(), 0);
        engine.shutdown();
    }

    #[test]
    fn rejects_bad_inputs() {
        let descriptor = serving_descriptor("engine-input", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = test_engine(&descriptor, &cache).unwrap();
        assert!(matches!(
            engine.submit(Tensor::zeros(vec![3, 3, 3])),
            Err(ServeError::BadInput { .. })
        ));
    }

    #[test]
    fn build_rejects_a_dense_algorithm_that_cannot_run_a_kept_layer() {
        use tdc_conv::ConvShape;
        // A chain with a pointwise layer: always kept dense, and Winograd
        // cannot execute 1x1 filters. The warmup probe at build must catch
        // this instead of letting workers drop every request.
        let descriptor = ModelDescriptor {
            name: "engine-wino".into(),
            convs: vec![
                ConvShape::same3x3(4, 8, 10, 10),
                ConvShape::pointwise(8, 8, 10, 10),
            ],
            fc: vec![(8, 3)],
        };
        let cache = PlanCache::new(2);
        let bad = ServeEngine::builder(&descriptor)
            .runtime(RuntimeOptions {
                dense_algorithm: DenseAlgorithm::Winograd,
                ..RuntimeOptions::default()
            })
            .plan_cache(&cache)
            .build();
        assert!(matches!(bad, Err(ServeError::Conv(_))));
        // The same descriptor serves fine with the default algorithm.
        let ok = test_engine(&descriptor, &cache).unwrap();
        drop(ok);
    }

    #[test]
    fn shutdown_rejects_new_requests() {
        let descriptor = serving_descriptor("engine-close", 10, 4, 6);
        let cache = PlanCache::new(2);
        let engine = test_engine(&descriptor, &cache).unwrap();
        let input = Tensor::zeros(vec![10, 10, 4]);
        engine.close_admission();
        assert!(matches!(engine.submit(input), Err(ServeError::Closed)));
    }

    #[test]
    fn builder_without_a_cache_still_builds() {
        let descriptor = serving_descriptor("engine-nocache", 10, 4, 6);
        let engine = ServeEngine::builder(&descriptor)
            .batching(test_batching())
            .build()
            .unwrap();
        assert_eq!(engine.plan_outcome(), CacheOutcome::Miss);
        drop(engine);
    }
}
