//! Serving metrics: counters, latency percentiles and batch statistics.
//!
//! Latency samples are kept exactly (one `f64` per completed request) and
//! percentiles computed on demand from the sorted sample set — at serving
//! benchmark scales (thousands to low millions of requests) the exact
//! sample set is cheaper than maintaining a quantile sketch, and the
//! percentiles are precise rather than bucketed approximations.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};

/// Percentile summary of one latency series, in milliseconds.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean_ms: f64,
    /// Median.
    pub p50_ms: f64,
    /// 90th percentile.
    pub p90_ms: f64,
    /// 99th percentile.
    pub p99_ms: f64,
    /// Maximum observed.
    pub max_ms: f64,
}

impl LatencySummary {
    fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_ms: 0.0,
            p50_ms: 0.0,
            p90_ms: 0.0,
            p99_ms: 0.0,
            max_ms: 0.0,
        }
    }

    /// Summarize a sample set (order irrelevant).
    pub fn from_samples(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::empty();
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let percentile = |p: f64| {
            // Nearest-rank on the sorted set.
            let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
            sorted[rank.clamp(1, sorted.len()) - 1]
        };
        LatencySummary {
            count: sorted.len(),
            mean_ms: sorted.iter().sum::<f64>() / sorted.len() as f64,
            p50_ms: percentile(50.0),
            p90_ms: percentile(90.0),
            p99_ms: percentile(99.0),
            max_ms: *sorted.last().expect("non-empty"),
        }
    }
}

/// Aggregated metrics for one serving engine.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ServeMetrics {
    /// Identity of the execution backend that produced these metrics.
    pub backend: String,
    /// Requests admitted past the queue door
    /// ([`ServeEngine::submit`](crate::ServeEngine::submit) and friends
    /// returning `Ok`). Rejected
    /// submits (bad input, overload shed, closed queue) are *not* counted —
    /// after a drain every admitted request is accounted for exactly once:
    /// `submitted == completed + deadline_exceeded + failed`.
    pub submitted_requests: u64,
    /// Requests completed.
    pub completed_requests: u64,
    /// Requests answered with a typed
    /// [`ServeError::ExecutionFailed`](crate::ServeError) because their
    /// batch's backend execution returned an error or panicked. Like
    /// expiries, failures add **no** latency samples.
    pub failed_requests: u64,
    /// Requests that expired past their deadline without being served —
    /// dropped at dequeue before executor work, or finished past the
    /// deadline at delivery. Expired requests contribute **no** latency
    /// samples, so a flood of impossible deadlines cannot inflate the
    /// percentiles of the work that was actually served.
    pub deadline_exceeded: u64,
    /// Batches executed.
    pub batches: u64,
    /// Batches dispatched via executor work stealing — the engine's token
    /// was taken from another worker's local deque rather than its own
    /// injector. `0` until the engine's handle fills it in
    /// ([`MetricsRecorder`] itself does not see the executor).
    pub stolen_batches: u64,
    /// Batches released early at `deadline − estimated_exec_time` (the
    /// batcher's deadline-aware early release). `0` until the engine's
    /// handle fills it in from the batch queue ([`MetricsRecorder`] itself
    /// does not see the batcher).
    pub early_releases: u64,
    /// Mean requests per executed batch.
    pub mean_batch_size: f64,
    /// Largest batch executed.
    pub max_batch_size: u64,
    /// End-to-end (queue + execute) latency percentiles.
    pub total_latency: LatencySummary,
    /// Queue-wait latency percentiles.
    pub queue_latency: LatencySummary,
    /// Executor-only latency percentiles.
    pub exec_latency: LatencySummary,
    /// Sum over batches of the predicted GPU latency from `tdc::inference`
    /// (what the planned device model would have spent on this workload), ms.
    pub predicted_gpu_ms_total: f64,
    /// Sum over batches of the simulated GPU latency reported by the
    /// execution backend (wave-level simulation), ms — stays `0.0` on
    /// backends that do not simulate.
    pub simulated_gpu_ms_total: f64,
}

/// Lock-light metric recorder shared by the worker pool.
pub struct MetricsRecorder {
    backend: String,
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    deadline_exceeded: AtomicU64,
    batches: AtomicU64,
    max_batch: AtomicU64,
    /// (total_ms, queue_ms, exec_ms) per completed request.
    samples: Mutex<Vec<(f64, f64, f64)>>,
    /// Predicted GPU milliseconds, accumulated as integer nanoseconds so the
    /// counter can stay atomic.
    predicted_gpu_ns: AtomicU64,
    /// Simulated GPU milliseconds (same integer-nanosecond trick).
    simulated_gpu_ns: AtomicU64,
}

impl Default for MetricsRecorder {
    fn default() -> Self {
        MetricsRecorder::new("")
    }
}

impl MetricsRecorder {
    /// A recorder tagged with the execution backend feeding it.
    pub fn new(backend: impl Into<String>) -> Self {
        MetricsRecorder {
            backend: backend.into(),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            max_batch: AtomicU64::new(0),
            samples: Mutex::new(Vec::new()),
            predicted_gpu_ns: AtomicU64::new(0),
            simulated_gpu_ns: AtomicU64::new(0),
        }
    }

    fn samples(&self) -> MutexGuard<'_, Vec<(f64, f64, f64)>> {
        match self.samples.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Record one executed batch with the predicted and (backend-)simulated
    /// GPU latencies for the whole batch.
    pub fn record_batch(
        &self,
        batch_size: usize,
        predicted_gpu_batch_ms: f64,
        simulated_gpu_batch_ms: f64,
    ) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.max_batch
            .fetch_max(batch_size as u64, Ordering::Relaxed);
        self.predicted_gpu_ns.fetch_add(
            (predicted_gpu_batch_ms * 1e6).round() as u64,
            Ordering::Relaxed,
        );
        self.simulated_gpu_ns.fetch_add(
            (simulated_gpu_batch_ms * 1e6).round() as u64,
            Ordering::Relaxed,
        );
    }

    /// Record one completed request.
    pub fn record_request(&self, total_ms: f64, queue_ms: f64, exec_ms: f64) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.samples().push((total_ms, queue_ms, exec_ms));
    }

    /// Record `count` requests admitted past the queue door, so the drain
    /// invariant `submitted == completed + deadline_exceeded + failed` can
    /// be checked against the engine's own books.
    pub fn record_submitted(&self, count: u64) {
        self.submitted.fetch_add(count, Ordering::Relaxed);
    }

    /// Record one request answered with a typed execution failure. Like
    /// expiries, failures add no latency sample.
    pub fn record_failed(&self) {
        self.failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one request expired past its deadline without being served.
    /// Deliberately adds no latency sample: expired requests must not skew
    /// the percentiles of the served traffic.
    pub fn record_deadline_exceeded(&self) {
        self.deadline_exceeded.fetch_add(1, Ordering::Relaxed);
    }

    /// Requests completed so far.
    pub fn completed(&self) -> u64 {
        self.completed.load(Ordering::Relaxed)
    }

    /// Discard everything recorded so far, starting a fresh measurement
    /// window. Lets a caller run unmeasured warmup traffic (populating
    /// buffer pools, code and page caches) and then measure steady state
    /// without the ramp skewing counters or latency percentiles.
    pub fn reset(&self) {
        self.submitted.store(0, Ordering::Relaxed);
        self.completed.store(0, Ordering::Relaxed);
        self.failed.store(0, Ordering::Relaxed);
        self.deadline_exceeded.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.max_batch.store(0, Ordering::Relaxed);
        self.samples().clear();
        self.predicted_gpu_ns.store(0, Ordering::Relaxed);
        self.simulated_gpu_ns.store(0, Ordering::Relaxed);
    }

    /// Aggregate everything recorded so far.
    pub fn snapshot(&self) -> ServeMetrics {
        let samples = self.samples().clone();
        let total: Vec<f64> = samples.iter().map(|s| s.0).collect();
        let queue: Vec<f64> = samples.iter().map(|s| s.1).collect();
        let exec: Vec<f64> = samples.iter().map(|s| s.2).collect();
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        ServeMetrics {
            backend: self.backend.clone(),
            submitted_requests: self.submitted.load(Ordering::Relaxed),
            completed_requests: completed,
            failed_requests: self.failed.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            batches,
            stolen_batches: 0,
            early_releases: 0,
            mean_batch_size: if batches > 0 {
                completed as f64 / batches as f64
            } else {
                0.0
            },
            max_batch_size: self.max_batch.load(Ordering::Relaxed),
            total_latency: LatencySummary::from_samples(&total),
            queue_latency: LatencySummary::from_samples(&queue),
            exec_latency: LatencySummary::from_samples(&exec),
            predicted_gpu_ms_total: self.predicted_gpu_ns.load(Ordering::Relaxed) as f64 / 1e6,
            simulated_gpu_ms_total: self.simulated_gpu_ns.load(Ordering::Relaxed) as f64 / 1e6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_follow_nearest_rank() {
        let samples: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let s = LatencySummary::from_samples(&samples);
        assert_eq!(s.count, 100);
        assert_eq!(s.p50_ms, 50.0);
        assert_eq!(s.p90_ms, 90.0);
        assert_eq!(s.p99_ms, 99.0);
        assert_eq!(s.max_ms, 100.0);
        assert!((s.mean_ms - 50.5).abs() < 1e-12);
    }

    #[test]
    fn single_sample_and_empty_sets() {
        let s = LatencySummary::from_samples(&[2.5]);
        assert_eq!((s.p50_ms, s.p99_ms, s.max_ms), (2.5, 2.5, 2.5));
        let e = LatencySummary::from_samples(&[]);
        assert_eq!(e.count, 0);
        assert_eq!(e.max_ms, 0.0);
    }

    #[test]
    fn recorder_aggregates_batches_and_requests() {
        let rec = MetricsRecorder::new("sim-gpu");
        rec.record_submitted(4);
        rec.record_submitted(2);
        rec.record_batch(3, 0.9, 1.5);
        rec.record_batch(1, 0.3, 0.5);
        for (t, q, e) in [
            (1.0, 0.4, 0.6),
            (2.0, 1.0, 1.0),
            (3.0, 1.0, 2.0),
            (4.0, 2.0, 2.0),
        ] {
            rec.record_request(t, q, e);
        }
        rec.record_deadline_exceeded();
        rec.record_failed();
        let m = rec.snapshot();
        assert_eq!(m.backend, "sim-gpu");
        assert_eq!(m.submitted_requests, 6);
        assert_eq!(m.completed_requests, 4);
        assert_eq!(m.failed_requests, 1);
        assert_eq!(m.deadline_exceeded, 1);
        assert_eq!(
            m.submitted_requests,
            m.completed_requests + m.deadline_exceeded + m.failed_requests,
            "admitted requests reconcile after a drain"
        );
        assert_eq!(
            m.total_latency.count, 4,
            "expired requests must not add latency samples"
        );
        assert_eq!(m.batches, 2);
        assert_eq!(m.mean_batch_size, 2.0);
        assert_eq!(m.max_batch_size, 3);
        assert_eq!(m.total_latency.count, 4);
        assert!((m.predicted_gpu_ms_total - 1.2).abs() < 1e-9);
        assert!((m.simulated_gpu_ms_total - 2.0).abs() < 1e-9);
        assert_eq!(m.total_latency.max_ms, 4.0);
    }
}
