//! The request queue and dynamic batcher.
//!
//! Requests enter a FIFO protected by a mutex + condvar. Worker threads pull
//! *batches*: a worker blocks until at least one request is queued, then
//! keeps collecting until either `max_batch_size` requests are in hand or
//! the **oldest** request in the batch has been waiting `max_batch_delay`.
//! Small batches therefore cost at most the configured delay in added
//! latency, while bursts immediately fill whole batches with no waiting —
//! the standard dynamic-batching contract of serving systems.
//!
//! Requests may carry a **deadline**. The batcher enforces it twice:
//!
//! * **batch assembly** — a forming batch never waits past the earliest
//!   deadline among the requests it would dispatch, so one urgent request
//!   releases the batch instead of idling out the full delay. When the
//!   engine has published an **execution-time estimate** (the backend's
//!   full-batch `latency_report`, see
//!   [`BatchQueue::set_exec_estimate`]), the release is pulled further in
//!   to `deadline − estimated_exec_time`: the batch ships while there is
//!   still time to *run* it, so a deadline bounds the answer, not merely
//!   the dequeue — deadline enforcement and batch-delay tuning share one
//!   latency model;
//! * **dequeue** — requests whose deadline has already passed are split out
//!   of the dispatched batch ([`DequeuedBatch::expired`]) before any executor
//!   work is spent on them. The worker answers them with
//!   [`ServeError::DeadlineExceeded`](crate::ServeError)
//!   and runs only the live remainder.
//!
//! (The third checkpoint — delivery — lives in the worker loop: a response
//! finishing after its request's deadline is replaced by the typed error.)
//!
//! Shutdown is graceful by construction: closing the queue stops new
//! submissions, but [`BatchQueue::next_batch`] keeps handing out queued
//! requests until the FIFO is drained, and only then returns `None` to
//! terminate the workers.
//!
//! Admission is bounded: the queue holds at most `max_queue_depth` requests,
//! and a push beyond the bound fails with [`ServeError::Overloaded`] instead
//! of growing the FIFO without limit. A service under sustained overload
//! therefore sheds load at the front door with a typed, retryable rejection
//! while requests already admitted keep their bounded batching delay.

use crate::{Result, ServeError};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};
use tdc_tensor::Tensor;

/// One queued inference request.
pub struct InferenceRequest {
    /// Caller-assigned id, echoed in the response.
    pub id: u64,
    /// HWC input sample.
    pub input: Tensor,
    /// When the request entered the queue.
    pub enqueued_at: Instant,
    /// Absolute point after which the request must not be served. `None`
    /// disables deadline enforcement for this request.
    pub deadline: Option<Instant>,
    /// Where the worker sends the response (or the typed error when the
    /// deadline expired before delivery).
    pub responder: Sender<Result<InferenceResponse>>,
}

impl InferenceRequest {
    /// Whether the deadline has passed as of `now`.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|deadline| now >= deadline)
    }
}

/// The answer to one request.
#[derive(Debug, Clone)]
pub struct InferenceResponse {
    /// Id echoed from the request.
    pub id: u64,
    /// Output logits.
    pub output: Tensor,
    /// Time spent waiting in the queue (including batching delay), ms.
    pub queue_ms: f64,
    /// Time spent in the executor for this request's batch, ms.
    pub exec_ms: f64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// Predicted GPU latency for the whole batch on the planned device, ms
    /// (from `tdc::inference`, per-sample latency × batch size).
    pub predicted_gpu_batch_ms: f64,
    /// Simulated GPU latency for the whole batch as measured by the execution
    /// backend's simulator, ms — `0.0` on backends that do not simulate
    /// (e.g. the CPU backend).
    pub simulated_gpu_batch_ms: f64,
}

impl InferenceResponse {
    /// Queue wait plus execution — the end-to-end service latency, ms.
    pub fn total_ms(&self) -> f64 {
        self.queue_ms + self.exec_ms
    }
}

/// One dequeued dispatch: the requests to execute, plus the requests whose
/// deadline passed while they were queued. Expired requests are separated
/// *before* the executor runs so no backend work is wasted on them; the
/// worker answers each with a typed
/// [`ServeError::DeadlineExceeded`](crate::ServeError).
/// At least one of the two sets is non-empty.
pub struct DequeuedBatch {
    /// Requests still inside their deadline (or without one), in FIFO order.
    pub live: Vec<InferenceRequest>,
    /// Requests that expired while queued, in FIFO order.
    pub expired: Vec<InferenceRequest>,
}

/// Outcome of the non-blocking [`BatchQueue::try_next_batch`], the dequeue
/// form the shared executor's workers use (they must never park inside the
/// batcher).
pub enum TryBatch {
    /// A batch was taken (live and/or expired requests).
    Batch(DequeuedBatch),
    /// Nothing is queued; come back on the next push notification.
    Empty,
    /// Nothing is queued and the queue is closed; the source is done.
    Closed,
    /// Requests are queued but the batch is still forming (under-full and
    /// inside its release window); poll again at the contained instant.
    NotReady(Instant),
}

struct QueueState {
    fifo: VecDeque<InferenceRequest>,
    closed: bool,
}

/// The shared request queue with dynamic batch formation.
pub struct BatchQueue {
    state: Mutex<QueueState>,
    not_empty: Condvar,
    /// Notified whenever a dispatch empties the FIFO — what
    /// [`BatchQueue::wait_drained`] blocks on during a graceful retire.
    drained: Condvar,
    max_batch_size: usize,
    max_batch_delay: Duration,
    max_queue_depth: usize,
    /// Estimated execution time of a full batch, nanoseconds. Zero (the
    /// default) disables deadline-aware early release and reproduces the
    /// plain release-at-deadline behavior.
    exec_estimate_ns: AtomicU64,
    /// Dispatches whose release was pulled in to `deadline − est_exec`
    /// while the delay horizon had not yet passed — deadline-aware *early*
    /// releases (plain deadline expiries are not counted).
    early_releases: AtomicU64,
}

/// The release verdict for the currently forming batch: when it must ship,
/// whether a member deadline (minus the execution estimate) pulled that
/// instant in, and the plain delay horizon it was pulled from.
struct ReleaseVerdict {
    at: Instant,
    deadline_pulled: bool,
    delay_horizon: Instant,
}

impl BatchQueue {
    /// Create a queue forming batches of up to `max_batch_size` requests,
    /// holding the oldest request at most `max_batch_delay`, and admitting at
    /// most `max_queue_depth` undispatched requests (`usize::MAX` disables
    /// the bound).
    pub fn new(max_batch_size: usize, max_batch_delay: Duration, max_queue_depth: usize) -> Self {
        BatchQueue {
            state: Mutex::new(QueueState {
                fifo: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            drained: Condvar::new(),
            max_batch_size: max_batch_size.max(1),
            max_batch_delay,
            max_queue_depth: max_queue_depth.max(1),
            exec_estimate_ns: AtomicU64::new(0),
            early_releases: AtomicU64::new(0),
        }
    }

    /// Publish the estimated execution time of a full batch (typically the
    /// backend's `latency_report` at `max_batch_size`). With an estimate in
    /// place, a forming batch with a member deadline releases at
    /// `deadline − estimate` instead of at the deadline itself, so the
    /// batch ships while there is still time to execute it.
    /// [`Duration::ZERO`] disables early release.
    pub fn set_exec_estimate(&self, estimate: Duration) {
        let ns = u64::try_from(estimate.as_nanos()).unwrap_or(u64::MAX);
        self.exec_estimate_ns.store(ns, Ordering::Relaxed);
    }

    /// The published full-batch execution estimate ([`Duration::ZERO`] when
    /// early release is disabled).
    pub fn exec_estimate(&self) -> Duration {
        Duration::from_nanos(self.exec_estimate_ns.load(Ordering::Relaxed))
    }

    /// How many dispatches were released early at `deadline − est_exec`
    /// (while the plain delay horizon had not yet passed).
    pub fn early_releases(&self) -> u64 {
        self.early_releases.load(Ordering::Relaxed)
    }

    fn state(&self) -> MutexGuard<'_, QueueState> {
        match self.state.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Enqueue a request. Fails with [`ServeError::Closed`] after shutdown,
    /// with [`ServeError::Overloaded`] when the queue already holds
    /// `max_queue_depth` undispatched requests, and with
    /// [`ServeError::LockPoisoned`] if a worker panicked while holding the
    /// queue lock — the submission side reports poisoning as an error instead
    /// of panicking or silently enqueueing into a wounded engine. (The drain
    /// side deliberately keeps recovering, so shutdown still empties the
    /// queue.)
    pub fn push(&self, request: InferenceRequest) -> Result<()> {
        let mut state = self.state.lock().map_err(|_| ServeError::LockPoisoned {
            what: "batch queue",
        })?;
        if state.closed {
            return Err(ServeError::Closed);
        }
        if state.fifo.len() >= self.max_queue_depth {
            return Err(ServeError::Overloaded {
                limit: self.max_queue_depth,
            });
        }
        state.fifo.push_back(request);
        drop(state);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Enqueue a group of requests atomically: either every request is
    /// admitted under one lock acquisition — so the group is contiguous in
    /// the FIFO and a group no larger than `max_batch_size` rides a single
    /// executor batch when the queue is otherwise idle — or none is, with
    /// the same typed errors as [`BatchQueue::push`]. A group that would
    /// exceed the remaining admission budget is rejected whole.
    pub fn push_many(&self, requests: Vec<InferenceRequest>) -> Result<()> {
        if requests.is_empty() {
            return Ok(());
        }
        let mut state = self.state.lock().map_err(|_| ServeError::LockPoisoned {
            what: "batch queue",
        })?;
        if state.closed {
            return Err(ServeError::Closed);
        }
        if state.fifo.len() + requests.len() > self.max_queue_depth {
            return Err(ServeError::Overloaded {
                limit: self.max_queue_depth,
            });
        }
        state.fifo.extend(requests);
        drop(state);
        self.not_empty.notify_all();
        Ok(())
    }

    /// Number of queued (not yet dispatched) requests.
    pub fn depth(&self) -> usize {
        self.state().fifo.len()
    }

    /// Stop accepting new requests; queued ones will still be served.
    pub fn close(&self) {
        self.state().closed = true;
        self.not_empty.notify_all();
    }

    /// Whether [`BatchQueue::close`] has been called.
    pub fn is_closed(&self) -> bool {
        self.state().closed
    }

    /// Block until every queued request has been handed to a worker (FIFO
    /// empty) or `timeout` passes; returns whether the queue drained. Used by
    /// a graceful retire after [`BatchQueue::close`]: once this returns
    /// `true`, no admitted request is still waiting for dispatch — only
    /// in-flight executor batches remain, and joining the workers (engine
    /// shutdown) bounds those. Note "drained" means *dispatched*, not
    /// *answered*.
    pub fn wait_drained(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut state = self.state();
        loop {
            if state.fifo.is_empty() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _) = match self
                .drained
                .wait_timeout(state, deadline.saturating_duration_since(now))
            {
                Ok((guard, timeout)) => (guard, timeout),
                Err(poisoned) => poisoned.into_inner(),
            };
            state = guard;
        }
    }

    /// The instant at which the currently forming batch must release: the
    /// oldest request's enqueue time plus `max_batch_delay`, pulled earlier
    /// by any deadline among the requests that would be dispatched (the
    /// first `max_batch_size` in FIFO order) — a batch never waits past its
    /// earliest member's deadline. With a published execution estimate the
    /// deadline pull happens `est_exec` ahead of the deadline, so the batch
    /// ships with enough time left to actually run.
    fn release_verdict(&self, state: &QueueState) -> Option<ReleaseVerdict> {
        let oldest = state.fifo.front()?;
        let estimate = self.exec_estimate();
        let delay_horizon = oldest.enqueued_at + self.max_batch_delay;
        let mut release = delay_horizon;
        let mut deadline_pulled = false;
        for request in state.fifo.iter().take(self.max_batch_size) {
            if let Some(deadline) = request.deadline {
                let ship_by = if estimate.is_zero() {
                    deadline
                } else {
                    // An estimate larger than the deadline's distance into
                    // the monotonic clock means "ship immediately": fall
                    // back to the (already passed) enqueue instant.
                    deadline.checked_sub(estimate).unwrap_or(oldest.enqueued_at)
                };
                if ship_by < release {
                    release = ship_by;
                    deadline_pulled = !estimate.is_zero();
                }
            }
        }
        Some(ReleaseVerdict {
            at: release,
            deadline_pulled,
            delay_horizon,
        })
    }

    fn release_at(&self, state: &QueueState) -> Option<Instant> {
        self.release_verdict(state).map(|verdict| verdict.at)
    }

    /// Count a dispatch as an early release when it ships an under-full
    /// batch on an open queue because a deadline (minus the execution
    /// estimate) pulled the release in ahead of the delay horizon.
    fn note_early_release(&self, state: &QueueState, take: usize, now: Instant) {
        if take >= self.max_batch_size || state.closed {
            return;
        }
        if let Some(verdict) = self.release_verdict(state) {
            if verdict.deadline_pulled && now < verdict.delay_horizon {
                self.early_releases.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Pull the next batch, blocking until one is available. Returns `None`
    /// once the queue is closed **and** drained. Never returns an empty
    /// dispatch: if another worker drains the queue between the wake-up and
    /// the drain (two workers racing on one request), this worker goes back
    /// to waiting. Requests whose deadline passed while queued come back in
    /// [`DequeuedBatch::expired`] instead of the live set.
    pub fn next_batch(&self) -> Option<DequeuedBatch> {
        let mut state = self.state();
        loop {
            // Phase 1: wait for the first request (or shutdown).
            loop {
                if !state.fifo.is_empty() {
                    break;
                }
                if state.closed {
                    return None;
                }
                state = match self.not_empty.wait(state) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
            // Phase 2: batch formation, bounded by the release instant
            // (recomputed each wake-up — a newly arrived request may carry
            // an earlier deadline than anything already queued).
            while state.fifo.len() < self.max_batch_size && !state.closed {
                let Some(release) = self.release_at(&state) else {
                    break;
                };
                let now = Instant::now();
                if now >= release {
                    break;
                }
                let (guard, timeout) =
                    self.timed_wait(state, release.saturating_duration_since(now));
                state = guard;
                if timeout {
                    break;
                }
            }
            let take = state.fifo.len().min(self.max_batch_size);
            if take > 0 {
                let now = Instant::now();
                self.note_early_release(&state, take, now);
                let (expired, live): (Vec<_>, Vec<_>) = state
                    .fifo
                    .drain(..take)
                    .partition(|request| request.expired_at(now));
                if state.fifo.is_empty() {
                    // Wake a retire blocked in `wait_drained`: every admitted
                    // request is now in some worker's hands.
                    self.drained.notify_all();
                }
                return Some(DequeuedBatch { live, expired });
            }
            // A sibling worker took everything while we slept; wait again.
        }
    }

    /// Non-blocking batch take for the shared-executor dispatch path: a
    /// pool worker must never park inside the batcher, so instead of
    /// waiting out batch formation this returns [`TryBatch::NotReady`] with
    /// the release instant (`release_at`'s verdict) and the executor
    /// re-polls on a timer. A full batch, a
    /// reached release instant, or a closed queue dispatches immediately,
    /// exactly as the blocking [`next_batch`](BatchQueue::next_batch)
    /// would.
    pub fn try_next_batch(&self) -> TryBatch {
        let mut state = self.state();
        if state.fifo.is_empty() {
            return if state.closed {
                TryBatch::Closed
            } else {
                TryBatch::Empty
            };
        }
        if state.fifo.len() < self.max_batch_size && !state.closed {
            if let Some(release) = self.release_at(&state) {
                let now = Instant::now();
                if now < release {
                    return TryBatch::NotReady(release);
                }
            }
        }
        let take = state.fifo.len().min(self.max_batch_size);
        let now = Instant::now();
        self.note_early_release(&state, take, now);
        let (expired, live): (Vec<_>, Vec<_>) = state
            .fifo
            .drain(..take)
            .partition(|request| request.expired_at(now));
        if state.fifo.is_empty() {
            // Wake a retire blocked in `wait_drained`: every admitted
            // request is now in some worker's hands.
            self.drained.notify_all();
        }
        TryBatch::Batch(DequeuedBatch { live, expired })
    }

    fn timed_wait<'a>(
        &'a self,
        guard: MutexGuard<'a, QueueState>,
        duration: Duration,
    ) -> (MutexGuard<'a, QueueState>, bool) {
        match self.not_empty.wait_timeout(guard, duration) {
            Ok((guard, timeout)) => (guard, timeout.timed_out()),
            Err(poisoned) => {
                let (guard, timeout) = poisoned.into_inner();
                (guard, timeout.timed_out())
            }
        }
    }
}

/// A response handle for one submitted request.
pub struct PendingResponse {
    receiver: Receiver<Result<InferenceResponse>>,
}

impl PendingResponse {
    /// Wrap a receiver end.
    pub fn new(receiver: Receiver<Result<InferenceResponse>>) -> Self {
        PendingResponse { receiver }
    }

    /// Block until the response arrives. Fails with
    /// [`ServeError::DeadlineExceeded`] when the request's deadline passed
    /// before it could be served, and with [`ServeError::Disconnected`] if
    /// the worker dropped the request without answering (engine shutdown
    /// discarding it, or a failed batch) — the channel disconnect surfaces
    /// as a typed error, never a panic.
    pub fn wait(self) -> Result<InferenceResponse> {
        self.receiver.recv().map_err(|_| ServeError::Disconnected)?
    }

    /// Non-blocking poll: `None` while the request is still in flight.
    pub fn try_wait(&self) -> Option<Result<InferenceResponse>> {
        self.receiver.try_recv().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc;
    use std::sync::Arc;

    fn request(id: u64) -> (InferenceRequest, Receiver<Result<InferenceResponse>>) {
        request_with_deadline(id, None)
    }

    fn request_with_deadline(
        id: u64,
        deadline: Option<Duration>,
    ) -> (InferenceRequest, Receiver<Result<InferenceResponse>>) {
        let (tx, rx) = mpsc::channel();
        let now = Instant::now();
        let req = InferenceRequest {
            id,
            input: Tensor::zeros(vec![2, 2, 1]),
            enqueued_at: now,
            deadline: deadline.map(|d| now + d),
            responder: tx,
        };
        (req, rx)
    }

    #[test]
    fn full_batches_form_without_waiting_for_the_deadline() {
        let queue = BatchQueue::new(4, Duration::from_secs(60), usize::MAX);
        for id in 0..4 {
            queue.push(request(id).0).unwrap();
        }
        let started = Instant::now();
        let batch = queue.next_batch().unwrap();
        assert_eq!(batch.live.len(), 4);
        assert!(batch.expired.is_empty());
        assert!(
            started.elapsed() < Duration::from_secs(1),
            "must not wait out the delay"
        );
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn partial_batches_release_at_the_deadline() {
        let queue = BatchQueue::new(8, Duration::from_millis(30), usize::MAX);
        queue.push(request(1).0).unwrap();
        let started = Instant::now();
        let batch = queue.next_batch().unwrap();
        assert_eq!(batch.live.len(), 1);
        let waited = started.elapsed();
        assert!(
            waited >= Duration::from_millis(15),
            "released too early: {waited:?}"
        );
    }

    #[test]
    fn oversized_backlog_splits_into_max_sized_batches() {
        let queue = BatchQueue::new(3, Duration::from_millis(5), usize::MAX);
        for id in 0..7 {
            queue.push(request(id).0).unwrap();
        }
        let sizes: Vec<usize> = (0..3)
            .map(|_| queue.next_batch().unwrap().live.len())
            .collect();
        assert_eq!(sizes, vec![3, 3, 1]);
    }

    #[test]
    fn pushes_beyond_the_admission_bound_are_rejected() {
        let queue = BatchQueue::new(8, Duration::from_millis(5), 2);
        queue.push(request(0).0).unwrap();
        queue.push(request(1).0).unwrap();
        let rejected = queue.push(request(2).0);
        assert!(matches!(rejected, Err(ServeError::Overloaded { limit: 2 })));
        assert_eq!(queue.depth(), 2, "the rejected request was not enqueued");
        // Draining the queue re-opens admission.
        assert_eq!(queue.next_batch().unwrap().live.len(), 2);
        queue.push(request(3).0).unwrap();
    }

    #[test]
    fn push_many_is_all_or_nothing_under_the_admission_bound() {
        let queue = BatchQueue::new(8, Duration::from_millis(5), 4);
        queue.push(request(0).0).unwrap();
        // 1 + 4 > 4: the whole group is rejected, nothing was enqueued.
        let group: Vec<InferenceRequest> = (1..5).map(|id| request(id).0).collect();
        assert!(matches!(
            queue.push_many(group),
            Err(ServeError::Overloaded { limit: 4 })
        ));
        assert_eq!(queue.depth(), 1);
        // 1 + 3 <= 4: admitted contiguously behind the existing request.
        let group: Vec<InferenceRequest> = (1..4).map(|id| request(id).0).collect();
        queue.push_many(group).unwrap();
        assert_eq!(queue.depth(), 4);
        let ids: Vec<u64> = queue
            .next_batch()
            .unwrap()
            .live
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        // The empty group is a no-op even on a closed queue.
        queue.close();
        assert!(queue.push_many(Vec::new()).is_ok());
        assert!(matches!(
            queue.push_many(vec![request(9).0]),
            Err(ServeError::Closed)
        ));
    }

    #[test]
    fn expired_requests_are_dropped_at_dequeue_and_later_live_ones_still_serve() {
        let queue = BatchQueue::new(8, Duration::from_millis(5), usize::MAX);
        // An already-expired request ahead of a live one: the dequeue splits
        // them, serving the live request in the same dispatch instead of
        // letting the dead head block it.
        let (expired, _rx) = request_with_deadline(0, Some(Duration::ZERO));
        queue.push(expired).unwrap();
        let (live, _rx2) = request_with_deadline(1, Some(Duration::from_secs(60)));
        queue.push(live).unwrap();
        let batch = queue.next_batch().unwrap();
        assert_eq!(
            batch.expired.iter().map(|r| r.id).collect::<Vec<_>>(),
            vec![0]
        );
        assert_eq!(batch.live.iter().map(|r| r.id).collect::<Vec<_>>(), vec![1]);
        assert_eq!(queue.depth(), 0);
    }

    #[test]
    fn a_batch_never_waits_past_its_earliest_member_deadline() {
        // Formation delay of 60 s, but the queued request's deadline is
        // 20 ms out: the batch must release at the deadline, not the delay,
        // and the request — expired exactly at release — comes back in the
        // expired set without any executor work.
        let queue = BatchQueue::new(8, Duration::from_secs(60), usize::MAX);
        let (req, _rx) = request_with_deadline(7, Some(Duration::from_millis(20)));
        queue.push(req).unwrap();
        let started = Instant::now();
        let batch = queue.next_batch().unwrap();
        let waited = started.elapsed();
        assert!(
            waited < Duration::from_secs(5),
            "the member deadline did not release the batch: {waited:?}"
        );
        assert!(batch.live.is_empty());
        assert_eq!(batch.expired.len(), 1);
    }

    #[test]
    fn close_drains_then_terminates() {
        let queue = Arc::new(BatchQueue::new(2, Duration::from_millis(5), usize::MAX));
        for id in 0..3 {
            queue.push(request(id).0).unwrap();
        }
        queue.close();
        assert!(queue.push(request(9).0).is_err());
        assert_eq!(queue.next_batch().unwrap().live.len(), 2);
        assert_eq!(queue.next_batch().unwrap().live.len(), 1);
        assert!(queue.next_batch().is_none());
    }

    #[test]
    fn blocked_worker_wakes_on_close() {
        let queue = Arc::new(BatchQueue::new(2, Duration::from_secs(60), usize::MAX));
        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.next_batch().is_none())
        };
        std::thread::sleep(Duration::from_millis(20));
        queue.close();
        assert!(waiter.join().unwrap(), "worker should see the shutdown");
    }

    #[test]
    fn wait_drained_returns_once_every_request_is_dispatched() {
        let queue = Arc::new(BatchQueue::new(2, Duration::from_millis(1), usize::MAX));
        // Empty queue: drained immediately.
        assert!(queue.wait_drained(Duration::from_millis(1)));
        for id in 0..4 {
            queue.push(request(id).0).unwrap();
        }
        // Nobody is dequeuing: the wait must time out with work still queued.
        assert!(!queue.wait_drained(Duration::from_millis(20)));
        let drainer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(20));
                while queue.next_batch().is_some() {
                    if queue.depth() == 0 {
                        break;
                    }
                }
            })
        };
        assert!(
            queue.wait_drained(Duration::from_secs(5)),
            "the drain notification never arrived"
        );
        assert_eq!(queue.depth(), 0);
        queue.close();
        drainer.join().unwrap();
    }

    #[test]
    fn preserves_fifo_order() {
        let queue = BatchQueue::new(8, Duration::from_millis(5), usize::MAX);
        for id in 0..5 {
            queue.push(request(id).0).unwrap();
        }
        let ids: Vec<u64> = queue
            .next_batch()
            .unwrap()
            .live
            .iter()
            .map(|r| r.id)
            .collect();
        assert_eq!(ids, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn try_next_batch_never_blocks() {
        let queue = BatchQueue::new(4, Duration::from_secs(60), usize::MAX);
        // Empty and open.
        assert!(matches!(queue.try_next_batch(), TryBatch::Empty));
        // Under-full inside the release window: not ready, with the
        // release instant (here the oldest request's 60 s delay horizon).
        let (req, _rx) = request(0);
        let enqueued_at = req.enqueued_at;
        queue.push(req).unwrap();
        match queue.try_next_batch() {
            TryBatch::NotReady(release) => {
                assert_eq!(release, enqueued_at + Duration::from_secs(60));
            }
            _ => panic!("an under-full fresh batch must report NotReady"),
        }
        assert_eq!(queue.depth(), 1, "NotReady must not consume requests");
        // A full batch dispatches immediately.
        for id in 1..4 {
            queue.push(request(id).0).unwrap();
        }
        match queue.try_next_batch() {
            TryBatch::Batch(batch) => assert_eq!(batch.live.len(), 4),
            _ => panic!("a full batch must dispatch"),
        }
        // Close: queued leftovers still dispatch, then Closed.
        queue.push(request(9).0).unwrap();
        queue.close();
        match queue.try_next_batch() {
            TryBatch::Batch(batch) => assert_eq!(batch.live.len(), 1),
            _ => panic!("a closed queue dispatches its remainder immediately"),
        }
        assert!(matches!(queue.try_next_batch(), TryBatch::Closed));
    }

    #[test]
    fn release_is_pulled_to_deadline_minus_the_exec_estimate() {
        let queue = BatchQueue::new(4, Duration::from_secs(60), usize::MAX);
        queue.set_exec_estimate(Duration::from_millis(40));
        assert_eq!(queue.exec_estimate(), Duration::from_millis(40));
        let (req, _rx) = request_with_deadline(0, Some(Duration::from_secs(30)));
        let deadline = req.deadline.unwrap();
        queue.push(req).unwrap();
        match queue.try_next_batch() {
            TryBatch::NotReady(release) => {
                assert_eq!(
                    release,
                    deadline - Duration::from_millis(40),
                    "the release must be the deadline minus the execution estimate"
                );
            }
            _ => panic!("inside the pulled window the batch is still forming"),
        }
        assert_eq!(queue.early_releases(), 0, "nothing has dispatched yet");
    }

    #[test]
    fn an_early_release_ships_live_requests_and_is_counted() {
        // The estimate covers the whole distance to the deadline, so the
        // pulled release instant is already in the past: the very next poll
        // dispatches, the request is still LIVE (its deadline has not
        // passed), and the dispatch is counted as an early release — all
        // without a single sleep.
        let queue = BatchQueue::new(4, Duration::from_secs(60), usize::MAX);
        queue.set_exec_estimate(Duration::from_secs(30));
        let (req, _rx) = request_with_deadline(0, Some(Duration::from_secs(20)));
        queue.push(req).unwrap();
        match queue.try_next_batch() {
            TryBatch::Batch(batch) => {
                assert_eq!(batch.live.len(), 1, "the request must ship live");
                assert!(batch.expired.is_empty());
            }
            _ => panic!("a pulled release in the past must dispatch immediately"),
        }
        assert_eq!(queue.early_releases(), 1);
        // Without deadlines the estimate changes nothing: still NotReady at
        // the plain delay horizon.
        let (plain, _rx2) = request(1);
        let enqueued_at = plain.enqueued_at;
        queue.push(plain).unwrap();
        match queue.try_next_batch() {
            TryBatch::NotReady(release) => {
                assert_eq!(release, enqueued_at + Duration::from_secs(60));
            }
            _ => panic!("a deadline-free batch keeps the delay horizon"),
        }
        assert_eq!(queue.early_releases(), 1, "no further early release");
    }

    #[test]
    fn try_next_batch_release_follows_the_earliest_deadline() {
        let queue = BatchQueue::new(4, Duration::from_secs(60), usize::MAX);
        let (req, _rx) = request_with_deadline(0, Some(Duration::from_millis(5)));
        let deadline = req.deadline.unwrap();
        queue.push(req).unwrap();
        match queue.try_next_batch() {
            TryBatch::NotReady(release) => {
                assert_eq!(
                    release, deadline,
                    "the poll instant must be pulled in by the deadline"
                );
            }
            _ => panic!("inside the window the batch is still forming"),
        }
        // Once the deadline passes, the same poll takes the batch and
        // splits the request out as expired.
        std::thread::sleep(Duration::from_millis(10));
        match queue.try_next_batch() {
            TryBatch::Batch(batch) => {
                assert!(batch.live.is_empty());
                assert_eq!(batch.expired.len(), 1);
            }
            _ => panic!("a passed release instant must dispatch"),
        }
    }
}
