//! A dependency-free HTTP/1.1 front end over a [`ModelRegistry`].
//!
//! Consistent with the offline `crates/compat` policy, this is a minimal
//! hand-rolled server on [`std::net::TcpListener`] — no async runtime, no
//! external HTTP crate. One acceptor thread hands each connection to a
//! short-lived handler thread; requests and responses are JSON through the
//! workspace's `serde_json` stand-in. The serving concurrency model is
//! unchanged: handler threads only *submit* into the per-model engines, whose
//! own batcher + worker pools execute the work.
//!
//! Routes:
//!
//! | Method | Path                          | Response |
//! |--------|-------------------------------|----------|
//! | `POST` | `/v1/models/{name}/infer`     | run one sample through `{name}` |
//! | `GET`  | `/v1/models`                  | [`ModelInfo`](crate::registry::ModelInfo) list |
//! | `GET`  | `/metrics`                    | [`RegistryMetrics`](crate::registry::RegistryMetrics) snapshot |
//! | `GET`  | `/healthz`                    | liveness + model count |
//!
//! The infer body is `{"input": [f32...], "dims": [h, w, c]}`; `dims` may be
//! omitted when it equals the model's expected input dims. Errors map onto
//! conventional status codes: unknown model or route → `404`, malformed body
//! or wrong shape → `400`, admission rejection ([`ServeError::Overloaded`])
//! → `429`, engine shut down → `503`.
//!
//! Serving stays bit-exact across the wire: `f32` values are serialized
//! through the stand-in's shortest-round-trip float formatting, so an output
//! fetched over HTTP equals the in-process [`InferenceResponse`] bit for bit.

use crate::batcher::InferenceResponse;
use crate::registry::ModelRegistry;
use crate::{Result, ServeError};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;
use tdc_tensor::Tensor;

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Longest accepted request body, bytes.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Per-connection socket read timeout.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Most connection-handler threads alive at once; connections beyond the cap
/// are handled inline on the acceptor thread (natural backpressure) instead
/// of spawning without bound.
const MAX_HANDLER_THREADS: usize = 64;

/// JSON body of `POST /v1/models/{name}/infer`.
#[derive(Debug, Clone, PartialEq)]
pub struct InferBody {
    /// Flat input sample, row-major.
    pub input: Vec<f32>,
    /// HWC dims of `input`; defaults to the model's expected input dims.
    pub dims: Option<Vec<usize>>,
}

impl Serialize for InferBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("input".to_string(), self.input.to_value())];
        if let Some(dims) = &self.dims {
            fields.push(("dims".to_string(), dims.to_value()));
        }
        serde::Value::Object(fields)
    }
}

// Hand-written so `dims` may be absent entirely (the derive macro requires
// every field, including `Option`s, to be present as a key).
impl Deserialize for InferBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let input = value
            .get("input")
            .ok_or_else(|| serde::Error::custom("missing field `input` in infer body"))?;
        let dims = match value.get("dims") {
            None | Some(serde::Value::Null) => None,
            Some(dims) => Some(Vec::<usize>::from_value(dims)?),
        };
        Ok(InferBody {
            input: Vec::<f32>::from_value(input)?,
            dims,
        })
    }
}

/// JSON reply of `POST /v1/models/{name}/infer`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InferReply {
    /// Registered model name that served the request.
    pub model: String,
    /// Execution backend identity.
    pub backend: String,
    /// Output logits, flat.
    pub output: Vec<f32>,
    /// Dims of `output`.
    pub dims: Vec<usize>,
    /// Size of the batch the request rode in.
    pub batch_size: usize,
    /// Queue wait, ms.
    pub queue_ms: f64,
    /// Executor time for the batch, ms.
    pub exec_ms: f64,
    /// Predicted GPU latency for the batch, ms.
    pub predicted_gpu_batch_ms: f64,
    /// Simulated GPU latency for the batch, ms (0 on non-simulating backends).
    pub simulated_gpu_batch_ms: f64,
}

#[derive(serde::Serialize)]
struct HealthReply {
    status: String,
    models: usize,
}

#[derive(serde::Serialize)]
struct ModelsReply {
    models: Vec<crate::registry::ModelInfo>,
}

#[derive(serde::Serialize)]
struct ErrorReply {
    error: String,
}

fn json_response(status: u16, body: &impl serde::Serialize) -> (u16, String) {
    (
        status,
        serde_json::to_string(body).unwrap_or_else(|e| format!("{{\"error\":\"{}\"}}", e.message)),
    )
}

fn error_response(status: u16, message: impl std::fmt::Display) -> (u16, String) {
    json_response(
        status,
        &ErrorReply {
            error: message.to_string(),
        },
    )
}

fn status_for(error: &ServeError) -> u16 {
    match error {
        ServeError::UnknownModel { .. } => 404,
        ServeError::BadInput { .. } | ServeError::BadConfig { .. } => 400,
        ServeError::Overloaded { .. } => 429,
        ServeError::Closed | ServeError::Disconnected => 503,
        _ => 500,
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn infer(registry: &ModelRegistry, model: &str, body: &str) -> Result<InferReply> {
    // Resolve the model first so an unknown name answers 404 even when the
    // body is also malformed.
    let engine = registry.engine(model)?;
    let parsed: InferBody = serde_json::from_str(body).map_err(|e| ServeError::BadConfig {
        reason: format!("malformed infer body: {}", e.message),
    })?;
    let dims = parsed
        .dims
        .unwrap_or_else(|| engine.model().input_dims().to_vec());
    // A dims/input-length mismatch is a client error (400), not a server
    // failure: map the tensor-construction error onto BadConfig.
    let input = Tensor::from_vec(dims, parsed.input).map_err(|e| ServeError::BadConfig {
        reason: format!("bad infer body: {e}"),
    })?;
    let response: InferenceResponse = registry.infer(model, input)?;
    Ok(InferReply {
        model: model.to_string(),
        backend: engine.backend_name().to_string(),
        output: response.output.data().to_vec(),
        dims: response.output.dims().to_vec(),
        batch_size: response.batch_size,
        queue_ms: response.queue_ms,
        exec_ms: response.exec_ms,
        predicted_gpu_batch_ms: response.predicted_gpu_batch_ms,
        simulated_gpu_batch_ms: response.simulated_gpu_batch_ms,
    })
}

/// Pure request router, independent of any socket: maps one parsed request
/// onto a `(status, JSON body)` pair. Exposed for direct testing.
pub fn route(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("GET", "/healthz") => json_response(
            200,
            &HealthReply {
                status: "ok".to_string(),
                models: registry.len(),
            },
        ),
        ("GET", "/v1/models") => json_response(
            200,
            &ModelsReply {
                models: registry.model_info(),
            },
        ),
        ("GET", "/metrics") => json_response(200, &registry.metrics()),
        ("POST", infer_path) => {
            // `/v1/models/{name}/infer` with a non-empty, single-segment
            // name. strip_prefix + strip_suffix cannot overlap, so paths
            // like `/v1/models/infer` fall through to 404 instead of
            // slicing out of bounds.
            let model = infer_path
                .strip_prefix("/v1/models/")
                .and_then(|rest| rest.strip_suffix("/infer"))
                .filter(|model| !model.is_empty() && !model.contains('/'));
            match model {
                Some(model) => match infer(registry, model, body) {
                    Ok(reply) => json_response(200, &reply),
                    Err(e) => error_response(status_for(&e), e),
                },
                None => error_response(404, format!("no route for POST {infer_path}")),
            }
        }
        ("GET", _) => error_response(404, format!("no route for {method} {path}")),
        _ => error_response(405, format!("method {method} is not supported")),
    }
}

struct ParsedRequest {
    method: String,
    path: String,
    body: String,
}

enum ParseOutcome {
    Request(ParsedRequest),
    /// The peer closed without sending anything (e.g. the shutdown nudge).
    Empty,
    /// Malformed or over-limit input, with the status to answer.
    Reject(u16, String),
}

fn parse_request(stream: &mut TcpStream) -> std::io::Result<ParseOutcome> {
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    // Read until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(&buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Ok(ParseOutcome::Reject(
                413,
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return if buffer.is_empty() {
                Ok(ParseOutcome::Empty)
            } else {
                Ok(ParseOutcome::Reject(
                    400,
                    "connection closed mid-request".to_string(),
                ))
            };
        }
        buffer.extend_from_slice(&chunk[..n]);
    };

    let head = String::from_utf8_lossy(&buffer[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v),
        _ => {
            return Ok(ParseOutcome::Reject(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ParseOutcome::Reject(
            400,
            format!("unsupported protocol {version:?}"),
        ));
    }
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Ok(ParseOutcome::Reject(
                            400,
                            format!("bad content-length {:?}", value.trim()),
                        ))
                    }
                };
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Ok(ParseOutcome::Reject(
            413,
            format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        ));
    }

    let body_start = head_end + 4;
    let mut body = buffer[body_start.min(buffer.len())..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Ok(ParseOutcome::Reject(
                400,
                "connection closed mid-body".to_string(),
            ));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = match String::from_utf8(body) {
        Ok(body) => body,
        Err(_) => {
            return Ok(ParseOutcome::Reject(
                400,
                "request body is not UTF-8".to_string(),
            ))
        }
    };
    Ok(ParseOutcome::Request(ParsedRequest { method, path, body }))
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
    )?;
    stream.flush()
}

fn handle_connection(registry: &ModelRegistry, mut stream: TcpStream) {
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let outcome = match parse_request(&mut stream) {
        Ok(outcome) => outcome,
        // Socket-level failure (timeout, reset): nothing sensible to answer.
        Err(_) => return,
    };
    let (status, body) = match outcome {
        ParseOutcome::Empty => return,
        ParseOutcome::Reject(status, message) => error_response(status, message),
        ParseOutcome::Request(request) => {
            route(registry, &request.method, &request.path, &request.body)
        }
    };
    let _ = write_response(&mut stream, status, &body);
}

/// The running HTTP front end: an acceptor thread plus one short-lived
/// handler thread per connection, all routing into a shared
/// [`ModelRegistry`].
pub struct HttpServer {
    registry: Arc<ModelRegistry>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks a free port) and
    /// start accepting connections against `registry`.
    pub fn bind(addr: &str, registry: Arc<ModelRegistry>) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Runtime {
            reason: format!("cannot bind {addr}: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Runtime {
            reason: format!("cannot resolve the bound address: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tdc-serve-http-accept".to_string())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = connection else { continue };
                        // Reap finished handlers; if the pool is saturated
                        // (or a spawn fails), serve this connection inline —
                        // the acceptor stalls briefly, which is exactly the
                        // backpressure an unbounded thread count would hide.
                        let at_capacity = {
                            let mut handlers = match handlers.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            handlers.retain(|h| !h.is_finished());
                            handlers.len() >= MAX_HANDLER_THREADS
                        };
                        if at_capacity {
                            handle_connection(&registry, stream);
                            continue;
                        }
                        let conn_registry = Arc::clone(&registry);
                        let spawned = std::thread::Builder::new()
                            .name("tdc-serve-http-conn".to_string())
                            .spawn(move || handle_connection(&conn_registry, stream));
                        match spawned {
                            Ok(handle) => {
                                let mut handlers = match handlers.lock() {
                                    Ok(guard) => guard,
                                    Err(poisoned) => poisoned.into_inner(),
                                };
                                handlers.push(handle);
                            }
                            // The stream moved into the failed closure and
                            // is gone; nothing further to answer here.
                            Err(_) => continue,
                        }
                    }
                })
                .map_err(|e| ServeError::Runtime {
                    reason: format!("cannot spawn the HTTP acceptor: {e}"),
                })?
        };
        Ok(HttpServer {
            registry,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server routes into.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the acceptor out of its blocking `accept`. A wildcard bind
        // (0.0.0.0 / ::) is not a connectable destination everywhere, so
        // aim the nudge at loopback on the bound port.
        let mut nudge = self.local_addr;
        if nudge.ip().is_unspecified() {
            match nudge {
                SocketAddr::V4(_) => nudge.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => nudge.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        let _ = TcpStream::connect(nudge);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles: Vec<JoinHandle<()>> = {
            let mut handlers = match self.handlers.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            handlers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Stop accepting connections, finish in-flight requests and return the
    /// registry (so the caller can in turn drain the engines with
    /// [`ModelRegistry::shutdown`] once it holds the only reference).
    pub fn shutdown(mut self) -> Arc<ModelRegistry> {
        self.stop_threads();
        Arc::clone(&self.registry)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Minimal blocking HTTP/1.1 client for tests, smoke checks and examples:
/// send one request, read the full response, return `(status, body)`.
pub fn http_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len(),
    )?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response.split_once("\r\n\r\n").ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidData, "response without a head")
    })?;
    let status = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "response without a status")
        })?;
    Ok((status, body.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelConfig;
    use crate::serving_descriptor;
    use crate::BatchingOptions;
    use std::time::Duration;

    fn test_registry() -> Arc<ModelRegistry> {
        let mut registry = ModelRegistry::new(4);
        registry
            .register(
                "mini",
                &serving_descriptor("http-mini", 8, 4, 4),
                ModelConfig {
                    batching: BatchingOptions {
                        max_batch_size: 4,
                        max_batch_delay: Duration::from_millis(1),
                        ..BatchingOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        Arc::new(registry)
    }

    fn infer_body(dims: &[usize]) -> String {
        let input = vec![0.25f32; dims.iter().product()];
        serde_json::to_string(&InferBody {
            input,
            dims: Some(dims.to_vec()),
        })
        .unwrap()
    }

    #[test]
    fn serves_the_four_routes_over_a_real_socket() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"ok\"") && body.contains("\"models\":1"),
            "{body}"
        );

        let (status, body) = http_request(&addr, "GET", "/v1/models", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"mini\""), "{body}");

        let (status, reply) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: InferReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.model, "mini");
        assert_eq!(reply.dims, vec![4]);
        assert_eq!(reply.output.len(), 4);

        // The same request without explicit dims defaults to the model's.
        let body_no_dims = serde_json::to_string(&InferBody {
            input: vec![0.25f32; 8 * 8 * 4],
            dims: None,
        })
        .unwrap();
        let (status, reply2) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&body_no_dims)).unwrap();
        assert_eq!(status, 200);
        let reply2: InferReply = serde_json::from_str(&reply2).unwrap();
        assert_eq!(reply2.output, reply.output, "same input, same logits");

        let (status, metrics) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            metrics.contains("\"total_completed_requests\":2"),
            "{metrics}"
        );

        let registry = server.shutdown();
        assert_eq!(registry.metrics().total_completed_requests, 2);
    }

    #[test]
    fn maps_errors_onto_conventional_status_codes() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/ghost/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("ghost"));

        let (status, _) = http_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(&addr, "DELETE", "/healthz", None).unwrap();
        assert_eq!(status, 405);

        let (status, body) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");

        // Input length inconsistent with dims: also a client error.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some("{\"input\": [1.0, 2.0, 3.0], \"dims\": [2, 2]}"),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");

        // Wrong shape: parses fine, rejected by the engine's input check.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some(&infer_body(&[2, 2, 2])),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("expected"), "{body}");
    }

    #[test]
    fn route_rejects_nested_and_degenerate_model_paths() {
        let registry = test_registry();
        let (status, _) = route(&registry, "POST", "/v1/models//infer", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models/a/b/infer", "{}");
        assert_eq!(status, 404);
        // The prefix and suffix overlap here; must 404, not panic.
        let (status, _) = route(&registry, "POST", "/v1/models/infer", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models", "{}");
        assert_eq!(status, 404);
    }

    #[test]
    fn infer_body_round_trips_with_and_without_dims() {
        let with = InferBody {
            input: vec![1.5, -2.25],
            dims: Some(vec![2]),
        };
        let text = serde_json::to_string(&with).unwrap();
        assert_eq!(serde_json::from_str::<InferBody>(&text).unwrap(), with);
        let without = InferBody {
            input: vec![0.5],
            dims: None,
        };
        let text = serde_json::to_string(&without).unwrap();
        assert!(!text.contains("dims"));
        assert_eq!(serde_json::from_str::<InferBody>(&text).unwrap(), without);
        assert!(serde_json::from_str::<InferBody>("{}").is_err());
    }
}
