//! A dependency-free HTTP/1.1 front end over a [`ModelRegistry`].
//!
//! Consistent with the offline `crates/compat` policy, this is a minimal
//! hand-rolled server on [`std::net::TcpListener`] — no async runtime, no
//! external HTTP crate. One acceptor thread hands each connection to a
//! handler thread; requests and responses are JSON through the workspace's
//! `serde_json` stand-in. The serving concurrency model is unchanged:
//! handler threads only *submit* into the per-model engines, whose own
//! batcher + worker pools execute the work.
//!
//! Connections are **persistent** (HTTP/1.1 keep-alive): a handler runs a
//! per-connection request loop, honoring the `Connection:` header
//! (`keep-alive` is the HTTP/1.1 default, `close` ends the loop; HTTP/1.0
//! defaults to `close`), with an idle timeout between requests and a bound
//! on requests served per connection. Pipelined requests — several requests
//! written before the first response is read — are handled in order from
//! the connection's read buffer.
//!
//! Routes:
//!
//! | Method | Path                          | Response |
//! |--------|-------------------------------|----------|
//! | `POST` | `/v1/models/{name}/infer`     | run one sample (or a batch) through `{name}` |
//! | `GET`  | `/v1/models`                  | [`ModelInfo`](crate::registry::ModelInfo) list |
//! | `GET`  | `/metrics`                    | [`RegistryMetrics`](crate::registry::RegistryMetrics) snapshot |
//! | `GET`  | `/healthz`                    | liveness + model count |
//!
//! The infer body comes in two forms:
//!
//! * single — `{"input": [f32...], "dims": [h, w, c], "deadline_ms": N}`;
//! * batched — `{"inputs": [[f32...], ...], "dims": [h, w, c],
//!   "deadline_ms": N}`: the samples are submitted atomically and ride one
//!   executor batch (when they fit `max_batch_size` on an idle queue), and
//!   the reply carries per-input outputs bit-identical to N sequential
//!   single calls.
//!
//! `dims` may be omitted when it equals the model's expected input dims;
//! `deadline_ms` overrides the model's configured default deadline for this
//! request. Errors map onto conventional status codes: unknown model or
//! route → `404`, malformed body or wrong shape → `400`, admission
//! rejection ([`ServeError::Overloaded`]) → `429`, deadline expiry
//! ([`ServeError::DeadlineExceeded`]) → `504`, engine shut down → `503`.
//!
//! Serving stays bit-exact across the wire: `f32` values are serialized
//! through the stand-in's shortest-round-trip float formatting, so an output
//! fetched over HTTP equals the in-process [`InferenceResponse`] bit for bit
//! — whether the connection is reused or closed per request.

use crate::batcher::InferenceResponse;
use crate::registry::ModelRegistry;
use crate::{Result, ServeError};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tdc_tensor::Tensor;

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Longest accepted request body, bytes.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Longest a started request may take to arrive in full.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Longest a keep-alive connection may sit idle between requests.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);
/// Granularity of socket reads: each blocking read wakes at least this
/// often so handlers notice server shutdown and enforce the two timeouts
/// above without parking on a dead socket.
const READ_SLICE: Duration = Duration::from_millis(250);
/// Most requests one keep-alive connection may issue before the server
/// closes it (bounds per-connection resource lifetime).
const MAX_REQUESTS_PER_CONNECTION: usize = 1024;
/// Most connection-handler threads alive at once; connections beyond the cap
/// are handled inline on the acceptor thread (natural backpressure) instead
/// of spawning without bound. Inline connections serve a single request —
/// a keep-alive loop on the acceptor would stall every other client.
const MAX_HANDLER_THREADS: usize = 64;

/// JSON body of `POST /v1/models/{name}/infer` (single-sample form).
#[derive(Debug, Clone, PartialEq)]
pub struct InferBody {
    /// Flat input sample, row-major.
    pub input: Vec<f32>,
    /// HWC dims of `input`; defaults to the model's expected input dims.
    pub dims: Option<Vec<usize>>,
    /// Per-request deadline in milliseconds, overriding the model's default
    /// ([`BatchingOptions::default_deadline`](crate::BatchingOptions)); a
    /// request not served within the deadline answers `504`.
    pub deadline_ms: Option<u64>,
}

impl Serialize for InferBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("input".to_string(), self.input.to_value())];
        if let Some(dims) = &self.dims {
            fields.push(("dims".to_string(), dims.to_value()));
        }
        if let Some(deadline_ms) = &self.deadline_ms {
            fields.push(("deadline_ms".to_string(), deadline_ms.to_value()));
        }
        serde::Value::Object(fields)
    }
}

// Hand-written so optional fields may be absent entirely (the derive macro
// requires every field, including `Option`s, to be present as a key).
impl Deserialize for InferBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let input = value
            .get("input")
            .ok_or_else(|| serde::Error::custom("missing field `input` in infer body"))?;
        Ok(InferBody {
            input: Vec::<f32>::from_value(input)?,
            dims: optional_field(value, "dims")?,
            deadline_ms: optional_field(value, "deadline_ms")?,
        })
    }
}

/// JSON body of the batched infer form: N samples riding one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchInferBody {
    /// Flat input samples, row-major, all sharing one `dims`.
    pub inputs: Vec<Vec<f32>>,
    /// HWC dims of each sample; defaults to the model's expected input dims.
    pub dims: Option<Vec<usize>>,
    /// Per-request deadline in milliseconds shared by every sample in the
    /// group, overriding the model's default.
    pub deadline_ms: Option<u64>,
}

impl Serialize for BatchInferBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("inputs".to_string(), self.inputs.to_value())];
        if let Some(dims) = &self.dims {
            fields.push(("dims".to_string(), dims.to_value()));
        }
        if let Some(deadline_ms) = &self.deadline_ms {
            fields.push(("deadline_ms".to_string(), deadline_ms.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for BatchInferBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let inputs = value
            .get("inputs")
            .ok_or_else(|| serde::Error::custom("missing field `inputs` in batched infer body"))?;
        Ok(BatchInferBody {
            inputs: Vec::<Vec<f32>>::from_value(inputs)?,
            dims: optional_field(value, "dims")?,
            deadline_ms: optional_field(value, "deadline_ms")?,
        })
    }
}

fn optional_field<T: Deserialize>(
    value: &serde::Value,
    key: &str,
) -> std::result::Result<Option<T>, serde::Error> {
    match value.get(key) {
        None | Some(serde::Value::Null) => Ok(None),
        Some(field) => Ok(Some(T::from_value(field)?)),
    }
}

/// JSON reply of `POST /v1/models/{name}/infer` (single-sample form).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InferReply {
    /// Registered model name that served the request.
    pub model: String,
    /// Execution backend identity.
    pub backend: String,
    /// Output logits, flat.
    pub output: Vec<f32>,
    /// Dims of `output`.
    pub dims: Vec<usize>,
    /// Size of the batch the request rode in.
    pub batch_size: usize,
    /// Queue wait, ms.
    pub queue_ms: f64,
    /// Executor time for the batch, ms.
    pub exec_ms: f64,
    /// Predicted GPU latency for the batch, ms.
    pub predicted_gpu_batch_ms: f64,
    /// Simulated GPU latency for the batch, ms (0 on non-simulating backends).
    pub simulated_gpu_batch_ms: f64,
}

/// JSON reply of the batched infer form: one entry per submitted input, in
/// submission order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchInferReply {
    /// Registered model name that served the group.
    pub model: String,
    /// Execution backend identity.
    pub backend: String,
    /// Per-input output logits, flat, in submission order — bit-identical
    /// to N sequential single-sample calls.
    pub outputs: Vec<Vec<f32>>,
    /// Dims of each entry in `outputs`.
    pub dims: Vec<usize>,
    /// Number of inputs served.
    pub count: usize,
    /// Executor batch size each input rode in (all equal to `count` when the
    /// group fit one batch).
    pub batch_sizes: Vec<usize>,
}

#[derive(serde::Serialize)]
struct HealthReply {
    status: String,
    models: usize,
}

#[derive(serde::Serialize)]
struct ModelsReply {
    models: Vec<crate::registry::ModelInfo>,
}

#[derive(serde::Serialize)]
struct ErrorReply {
    error: String,
}

fn json_response(status: u16, body: &impl serde::Serialize) -> (u16, String) {
    (
        status,
        serde_json::to_string(body).unwrap_or_else(|e| format!("{{\"error\":\"{}\"}}", e.message)),
    )
}

fn error_response(status: u16, message: impl std::fmt::Display) -> (u16, String) {
    json_response(
        status,
        &ErrorReply {
            error: message.to_string(),
        },
    )
}

fn status_for(error: &ServeError) -> u16 {
    match error {
        ServeError::UnknownModel { .. } => 404,
        ServeError::BadInput { .. } | ServeError::BadConfig { .. } => 400,
        ServeError::Overloaded { .. } => 429,
        ServeError::DeadlineExceeded { .. } => 504,
        ServeError::Closed | ServeError::Disconnected => 503,
        _ => 500,
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

fn bad_body(e: serde::Error) -> ServeError {
    ServeError::BadConfig {
        reason: format!("malformed infer body: {}", e.message),
    }
}

/// Serve the single-sample infer form.
fn infer_single(
    registry: &ModelRegistry,
    engine: &crate::server::ServeEngine,
    model: &str,
    value: &serde::Value,
) -> Result<InferReply> {
    let parsed = InferBody::from_value(value).map_err(bad_body)?;
    let dims = parsed
        .dims
        .unwrap_or_else(|| engine.model().input_dims().to_vec());
    // A dims/input-length mismatch is a client error (400), not a server
    // failure: map the tensor-construction error onto BadConfig.
    let input = Tensor::from_vec(dims, parsed.input).map_err(|e| ServeError::BadConfig {
        reason: format!("bad infer body: {e}"),
    })?;
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| engine.default_deadline());
    let response: InferenceResponse = registry.infer_with_deadline(model, input, deadline)?;
    Ok(InferReply {
        model: model.to_string(),
        backend: engine.backend_name().to_string(),
        output: response.output.data().to_vec(),
        dims: response.output.dims().to_vec(),
        batch_size: response.batch_size,
        queue_ms: response.queue_ms,
        exec_ms: response.exec_ms,
        predicted_gpu_batch_ms: response.predicted_gpu_batch_ms,
        simulated_gpu_batch_ms: response.simulated_gpu_batch_ms,
    })
}

/// Serve the batched infer form: submit every sample atomically so the group
/// rides one executor batch, then await them all.
fn infer_batch(
    registry: &ModelRegistry,
    engine: &crate::server::ServeEngine,
    model: &str,
    value: &serde::Value,
) -> Result<BatchInferReply> {
    let parsed = BatchInferBody::from_value(value).map_err(bad_body)?;
    if parsed.inputs.is_empty() {
        return Err(ServeError::BadConfig {
            reason: "batched infer body needs at least one entry in `inputs`".into(),
        });
    }
    let dims = parsed
        .dims
        .unwrap_or_else(|| engine.model().input_dims().to_vec());
    let tensors = parsed
        .inputs
        .into_iter()
        .map(|input| {
            Tensor::from_vec(dims.clone(), input).map_err(|e| ServeError::BadConfig {
                reason: format!("bad infer body: {e}"),
            })
        })
        .collect::<Result<Vec<Tensor>>>()?;
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| engine.default_deadline());
    let pending = registry.submit_many(model, tensors, deadline)?;
    let mut outputs = Vec::with_capacity(pending.len());
    let mut batch_sizes = Vec::with_capacity(pending.len());
    let mut out_dims = Vec::new();
    for handle in pending {
        let response = handle.wait()?;
        out_dims = response.output.dims().to_vec();
        outputs.push(response.output.data().to_vec());
        batch_sizes.push(response.batch_size);
    }
    Ok(BatchInferReply {
        model: model.to_string(),
        backend: engine.backend_name().to_string(),
        count: outputs.len(),
        outputs,
        dims: out_dims,
        batch_sizes,
    })
}

fn infer(registry: &ModelRegistry, model: &str, body: &str) -> Result<String> {
    // Resolve the model first — once, shared by both body forms — so an
    // unknown name answers 404 even when the body is also malformed.
    let engine = registry.engine(model)?;
    let value = serde_json::parse_value(body).map_err(bad_body)?;
    // The body form picks the path: `inputs` is the batched contract,
    // `input` the single-sample one.
    let rendered = if value.get("inputs").is_some() {
        serde_json::to_string(&infer_batch(registry, engine, model, &value)?)
    } else {
        serde_json::to_string(&infer_single(registry, engine, model, &value)?)
    };
    rendered.map_err(|e| ServeError::Runtime {
        reason: format!("cannot serialize the infer reply: {}", e.message),
    })
}

/// Pure request router, independent of any socket: maps one parsed request
/// onto a `(status, JSON body)` pair. Exposed for direct testing.
pub fn route(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> (u16, String) {
    match (method, path) {
        ("GET", "/healthz") => json_response(
            200,
            &HealthReply {
                status: "ok".to_string(),
                models: registry.len(),
            },
        ),
        ("GET", "/v1/models") => json_response(
            200,
            &ModelsReply {
                models: registry.model_info(),
            },
        ),
        ("GET", "/metrics") => json_response(200, &registry.metrics()),
        ("POST", infer_path) => {
            // `/v1/models/{name}/infer` with a non-empty, single-segment
            // name. strip_prefix + strip_suffix cannot overlap, so paths
            // like `/v1/models/infer` fall through to 404 instead of
            // slicing out of bounds.
            let model = infer_path
                .strip_prefix("/v1/models/")
                .and_then(|rest| rest.strip_suffix("/infer"))
                .filter(|model| !model.is_empty() && !model.contains('/'));
            match model {
                Some(model) => match infer(registry, model, body) {
                    Ok(reply) => (200, reply),
                    Err(e) => error_response(status_for(&e), e),
                },
                None => error_response(404, format!("no route for POST {infer_path}")),
            }
        }
        ("GET", _) => error_response(404, format!("no route for {method} {path}")),
        _ => error_response(405, format!("method {method} is not supported")),
    }
}

struct ParsedRequest {
    method: String,
    path: String,
    body: String,
    /// Whether the connection may serve another request after this one,
    /// per the request's `Connection:` header and HTTP version defaults.
    keep_alive: bool,
}

enum ParseOutcome {
    Request(ParsedRequest),
    /// The peer closed (or went idle past the timeout) between requests —
    /// nothing to answer, close quietly. Also covers the shutdown nudge.
    Empty,
    /// Malformed or over-limit input, with the status to answer. The
    /// connection closes after the reply: the read buffer can no longer be
    /// trusted to start at a request boundary.
    Reject(u16, String),
}

/// One slice of a socket read: distinguishes data, EOF and a timeout wake.
enum SocketRead {
    Data(usize),
    Closed,
    TimedOut,
}

fn read_slice(stream: &mut TcpStream, chunk: &mut [u8]) -> std::io::Result<SocketRead> {
    match stream.read(chunk) {
        Ok(0) => Ok(SocketRead::Closed),
        Ok(n) => Ok(SocketRead::Data(n)),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(SocketRead::TimedOut)
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(SocketRead::TimedOut),
        Err(e) => Err(e),
    }
}

/// Parse one request from the connection. `buffer` persists across requests
/// on the same connection: bytes past the current request's body (pipelined
/// requests) stay in it for the next call. The socket must be configured
/// with a [`READ_SLICE`] read timeout so the wait loop can enforce
/// [`IDLE_TIMEOUT`] / [`READ_TIMEOUT`] and notice `stop`.
fn parse_request(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
    stop: &AtomicBool,
) -> std::io::Result<ParseOutcome> {
    // Two independent clocks: the idle phase (no request bytes yet) is
    // bounded by IDLE_TIMEOUT from entry; the request phase is bounded by
    // READ_TIMEOUT from its *first byte* — an almost-idled-out connection
    // that then starts a large upload still gets the full request budget.
    let idle_since = Instant::now();
    let mut request_since = if buffer.is_empty() {
        None
    } else {
        Some(idle_since)
    };
    let mut chunk = [0u8; 4096];
    let mut wait = |stream: &mut TcpStream,
                    buffer: &mut Vec<u8>|
     -> std::io::Result<Option<ParseOutcome>> {
        match read_slice(stream, &mut chunk)? {
            SocketRead::Data(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if request_since.is_none() {
                    request_since = Some(Instant::now());
                }
                Ok(None)
            }
            SocketRead::Closed => Ok(Some(if request_since.is_some() {
                ParseOutcome::Reject(400, "connection closed mid-request".to_string())
            } else {
                ParseOutcome::Empty
            })),
            SocketRead::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    // Server shutting down: abandon idle connections quietly.
                    return Ok(Some(ParseOutcome::Empty));
                }
                match request_since {
                    Some(since) if since.elapsed() >= READ_TIMEOUT => Ok(Some(
                        ParseOutcome::Reject(408, "request timed out".to_string()),
                    )),
                    None if idle_since.elapsed() >= IDLE_TIMEOUT => Ok(Some(ParseOutcome::Empty)),
                    _ => Ok(None),
                }
            }
        }
    };

    // Read until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Ok(ParseOutcome::Reject(
                413,
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        if let Some(outcome) = wait(stream, buffer)? {
            return Ok(outcome);
        }
    };

    let head = String::from_utf8_lossy(&buffer[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v.to_string()),
        _ => {
            return Ok(ParseOutcome::Reject(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ParseOutcome::Reject(
            400,
            format!("unsupported protocol {version:?}"),
        ));
    }
    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Ok(ParseOutcome::Reject(
                            400,
                            format!("bad content-length {:?}", value.trim()),
                        ))
                    }
                };
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // `Connection:` header wins either way.
    let keep_alive = match connection.as_deref() {
        Some(value) if value.contains("close") => false,
        Some(value) if value.contains("keep-alive") => true,
        _ => version != "HTTP/1.0",
    };
    if content_length > MAX_BODY_BYTES {
        return Ok(ParseOutcome::Reject(
            413,
            format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        ));
    }

    let body_start = head_end + 4;
    while buffer.len() < body_start + content_length {
        if let Some(outcome) = wait(stream, buffer)? {
            return Ok(outcome);
        }
    }
    let body = buffer[body_start..body_start + content_length].to_vec();
    // Keep any pipelined follow-up request for the next parse.
    buffer.drain(..body_start + content_length);
    let body = match String::from_utf8(body) {
        Ok(body) => body,
        Err(_) => {
            return Ok(ParseOutcome::Reject(
                400,
                "request body is not UTF-8".to_string(),
            ))
        }
    };
    Ok(ParseOutcome::Request(ParsedRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
) -> std::io::Result<()> {
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    stream.flush()
}

/// The per-connection request loop: parse → route → respond, until the
/// client asks to close, the request budget runs out, the connection idles
/// past the timeout, or the server stops.
fn handle_connection(
    registry: &ModelRegistry,
    mut stream: TcpStream,
    stop: &AtomicBool,
    max_requests: usize,
) {
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut served = 0usize;
    loop {
        let outcome = match parse_request(&mut stream, &mut buffer, stop) {
            Ok(outcome) => outcome,
            // Socket-level failure (reset): nothing sensible to answer.
            Err(_) => return,
        };
        match outcome {
            ParseOutcome::Empty => return,
            ParseOutcome::Reject(status, message) => {
                let (status, body) = error_response(status, message);
                let _ = write_response(&mut stream, status, &body, true);
                return;
            }
            ParseOutcome::Request(request) => {
                served += 1;
                let (status, body) = route(registry, &request.method, &request.path, &request.body);
                let close =
                    !request.keep_alive || served >= max_requests || stop.load(Ordering::SeqCst);
                if write_response(&mut stream, status, &body, close).is_err() || close {
                    return;
                }
            }
        }
    }
}

/// The running HTTP front end: an acceptor thread plus per-connection
/// handler threads (each running a keep-alive request loop), all routing
/// into a shared [`ModelRegistry`].
pub struct HttpServer {
    registry: Arc<ModelRegistry>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks a free port) and
    /// start accepting connections against `registry`.
    pub fn bind(addr: &str, registry: Arc<ModelRegistry>) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Runtime {
            reason: format!("cannot bind {addr}: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Runtime {
            reason: format!("cannot resolve the bound address: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let registry = Arc::clone(&registry);
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tdc-serve-http-accept".to_string())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = connection else { continue };
                        // Reap finished handlers; if the pool is saturated
                        // (or a spawn fails), serve this connection inline —
                        // the acceptor stalls briefly, which is exactly the
                        // backpressure an unbounded thread count would hide.
                        let at_capacity = {
                            let mut handlers = match handlers.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            handlers.retain(|h| !h.is_finished());
                            handlers.len() >= MAX_HANDLER_THREADS
                        };
                        if at_capacity {
                            handle_connection(&registry, stream, &stop, 1);
                            continue;
                        }
                        let conn_registry = Arc::clone(&registry);
                        let conn_stop = Arc::clone(&stop);
                        let spawned = std::thread::Builder::new()
                            .name("tdc-serve-http-conn".to_string())
                            .spawn(move || {
                                handle_connection(
                                    &conn_registry,
                                    stream,
                                    &conn_stop,
                                    MAX_REQUESTS_PER_CONNECTION,
                                )
                            });
                        match spawned {
                            Ok(handle) => {
                                let mut handlers = match handlers.lock() {
                                    Ok(guard) => guard,
                                    Err(poisoned) => poisoned.into_inner(),
                                };
                                handlers.push(handle);
                            }
                            // The stream moved into the failed closure and
                            // is gone; nothing further to answer here.
                            Err(_) => continue,
                        }
                    }
                })
                .map_err(|e| ServeError::Runtime {
                    reason: format!("cannot spawn the HTTP acceptor: {e}"),
                })?
        };
        Ok(HttpServer {
            registry,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server routes into.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the acceptor out of its blocking `accept`. A wildcard bind
        // (0.0.0.0 / ::) is not a connectable destination everywhere, so
        // aim the nudge at loopback on the bound port.
        let mut nudge = self.local_addr;
        if nudge.ip().is_unspecified() {
            match nudge {
                SocketAddr::V4(_) => nudge.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => nudge.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        let _ = TcpStream::connect(nudge);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Handlers notice `stop` within one read slice: in-flight requests
        // finish and answer with `Connection: close`, idle keep-alive
        // connections are abandoned.
        let handles: Vec<JoinHandle<()>> = {
            let mut handlers = match self.handlers.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            handlers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Stop accepting connections, finish in-flight requests and return the
    /// registry (so the caller can in turn drain the engines with
    /// [`ModelRegistry::shutdown`] once it holds the only reference).
    pub fn shutdown(mut self) -> Arc<ModelRegistry> {
        self.stop_threads();
        Arc::clone(&self.registry)
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Read one HTTP response from `stream`, honoring `Content-Length` instead
/// of assuming an EOF-terminated body — mandatory on a keep-alive
/// connection, where EOF never comes between responses. `buffer` carries
/// bytes already read past the previous response (e.g. when the peer
/// pipelines) and keeps any surplus for the next call.
pub fn read_response(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
) -> std::io::Result<(u16, String)> {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(buffer) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection closed before a full response head",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buffer[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .unwrap_or_default()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "response without a status")
        })?;
    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
        }
    }
    let body_start = head_end + 4;
    while buffer.len() < body_start + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection closed mid-body",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    }
    let body =
        String::from_utf8_lossy(&buffer[body_start..body_start + content_length]).to_string();
    buffer.drain(..body_start + content_length);
    Ok((status, body))
}

fn write_request(
    stream: &mut TcpStream,
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    stream.flush()
}

/// Minimal blocking HTTP/1.1 client for tests, smoke checks and examples:
/// open a fresh connection, send one `Connection: close` request, read the
/// full response, return `(status, body)`. For connection reuse, use
/// [`HttpClient`].
pub fn http_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    write_request(&mut stream, addr, method, path, body, false)?;
    read_response(&mut stream, &mut Vec::new())
}

/// A persistent HTTP/1.1 test client: one TCP connection serving any number
/// of sequential `Connection: keep-alive` requests, reading each response by
/// its `Content-Length`. The counterpart of the server's keep-alive loop —
/// and the way to verify that N requests really shared one connection
/// ([`HttpClient::requests_sent`]).
pub struct HttpClient {
    stream: TcpStream,
    addr: SocketAddr,
    buffer: Vec<u8>,
    requests_sent: u64,
}

impl HttpClient {
    /// Open one connection to `addr`.
    pub fn connect(addr: &SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(HttpClient {
            stream,
            addr: *addr,
            buffer: Vec::with_capacity(1024),
            requests_sent: 0,
        })
    }

    /// Send one keep-alive request on the shared connection and read its
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        write_request(&mut self.stream, &self.addr, method, path, body, true)?;
        self.requests_sent += 1;
        read_response(&mut self.stream, &mut self.buffer)
    }

    /// How many requests were sent over this single connection.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// The underlying stream and read buffer, for raw-bytes tests (e.g.
    /// writing two pipelined requests in one syscall before reading either
    /// response).
    pub fn raw_parts(&mut self) -> (&mut TcpStream, &mut Vec<u8>) {
        (&mut self.stream, &mut self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelConfig;
    use crate::serving_descriptor;
    use crate::BatchingOptions;
    use std::time::Duration;

    fn test_registry() -> Arc<ModelRegistry> {
        let mut registry = ModelRegistry::new(4);
        registry
            .register(
                "mini",
                &serving_descriptor("http-mini", 8, 4, 4),
                ModelConfig {
                    batching: BatchingOptions {
                        max_batch_size: 4,
                        max_batch_delay: Duration::from_millis(1),
                        ..BatchingOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        Arc::new(registry)
    }

    fn infer_body(dims: &[usize]) -> String {
        let input = vec![0.25f32; dims.iter().product()];
        serde_json::to_string(&InferBody {
            input,
            dims: Some(dims.to_vec()),
            deadline_ms: None,
        })
        .unwrap()
    }

    #[test]
    fn serves_the_four_routes_over_a_real_socket() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"ok\"") && body.contains("\"models\":1"),
            "{body}"
        );

        let (status, body) = http_request(&addr, "GET", "/v1/models", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"mini\""), "{body}");

        let (status, reply) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: InferReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.model, "mini");
        assert_eq!(reply.dims, vec![4]);
        assert_eq!(reply.output.len(), 4);

        // The same request without explicit dims defaults to the model's.
        let body_no_dims = serde_json::to_string(&InferBody {
            input: vec![0.25f32; 8 * 8 * 4],
            dims: None,
            deadline_ms: None,
        })
        .unwrap();
        let (status, reply2) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&body_no_dims)).unwrap();
        assert_eq!(status, 200);
        let reply2: InferReply = serde_json::from_str(&reply2).unwrap();
        assert_eq!(reply2.output, reply.output, "same input, same logits");

        let (status, metrics) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            metrics.contains("\"total_completed_requests\":2"),
            "{metrics}"
        );

        let registry = server.shutdown();
        assert_eq!(registry.metrics().total_completed_requests, 2);
    }

    #[test]
    fn keep_alive_connection_serves_many_requests_and_honors_close() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();
        let mut client = HttpClient::connect(&addr).unwrap();

        // Several sequential requests on one connection.
        for _ in 0..3 {
            let (status, body) = client.request("GET", "/healthz", None).unwrap();
            assert_eq!(status, 200, "{body}");
        }
        let (status, reply) = client
            .request(
                "POST",
                "/v1/models/mini/infer",
                Some(&infer_body(&[8, 8, 4])),
            )
            .unwrap();
        assert_eq!(status, 200, "{reply}");
        assert_eq!(client.requests_sent(), 4);

        // Two pipelined requests written back-to-back before reading either
        // response: the server must answer both, in order, from its
        // connection buffer.
        {
            let (stream, _) = client.raw_parts();
            let addr_text = addr.to_string();
            let one = format!(
                "GET /healthz HTTP/1.1\r\nHost: {addr_text}\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n"
            );
            stream.write_all(format!("{one}{one}").as_bytes()).unwrap();
            stream.flush().unwrap();
        }
        let (stream, buffer) = client.raw_parts();
        let (status_a, _) = read_response(stream, buffer).unwrap();
        let (status_b, _) = read_response(stream, buffer).unwrap();
        assert_eq!((status_a, status_b), (200, 200));

        // An explicit `Connection: close` request ends the loop: the server
        // answers, then closes, so the next read sees EOF.
        let (stream, buffer) = client.raw_parts();
        let addr_text = addr.to_string();
        stream
            .write_all(
                format!(
                    "GET /healthz HTTP/1.1\r\nHost: {addr_text}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let (status, _) = read_response(stream, buffer).unwrap();
        assert_eq!(status, 200);
        let mut probe = [0u8; 1];
        assert_eq!(
            stream.read(&mut probe).unwrap(),
            0,
            "server must close after Connection: close"
        );

        server.shutdown();
    }

    #[test]
    fn maps_errors_onto_conventional_status_codes() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/ghost/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("ghost"));

        let (status, _) = http_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(&addr, "DELETE", "/healthz", None).unwrap();
        assert_eq!(status, 405);

        let (status, body) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");

        // Input length inconsistent with dims: also a client error.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some("{\"input\": [1.0, 2.0, 3.0], \"dims\": [2, 2]}"),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");

        // Wrong shape: parses fine, rejected by the engine's input check.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some(&infer_body(&[2, 2, 2])),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("expected"), "{body}");

        // Batched form with no inputs: a client error too.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some("{\"inputs\": []}"),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");

        server.shutdown();
    }

    #[test]
    fn batched_bodies_ride_one_batch_and_map_expiry_onto_504() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let body = serde_json::to_string(&BatchInferBody {
            inputs: vec![vec![0.25f32; 8 * 8 * 4]; 3],
            dims: None,
            deadline_ms: None,
        })
        .unwrap();
        let (status, reply) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&body)).unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: BatchInferReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.count, 3);
        assert_eq!(reply.outputs.len(), 3);
        assert_eq!(reply.dims, vec![4]);
        assert_eq!(
            reply.batch_sizes,
            vec![3, 3, 3],
            "the group must ride one executor batch"
        );
        // Identical inputs → identical logits, thrice.
        assert_eq!(reply.outputs[0], reply.outputs[1]);
        assert_eq!(reply.outputs[0], reply.outputs[2]);

        // deadline_ms: 0 expires immediately → 504 Gateway Timeout.
        let expired = serde_json::to_string(&InferBody {
            input: vec![0.25f32; 8 * 8 * 4],
            dims: None,
            deadline_ms: Some(0),
        })
        .unwrap();
        let (status, body) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&expired)).unwrap();
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("deadline exceeded"), "{body}");

        server.shutdown();
    }

    #[test]
    fn route_rejects_nested_and_degenerate_model_paths() {
        let registry = test_registry();
        let (status, _) = route(&registry, "POST", "/v1/models//infer", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models/a/b/infer", "{}");
        assert_eq!(status, 404);
        // The prefix and suffix overlap here; must 404, not panic.
        let (status, _) = route(&registry, "POST", "/v1/models/infer", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models", "{}");
        assert_eq!(status, 404);
    }

    #[test]
    fn infer_bodies_round_trip_with_and_without_optional_fields() {
        let with = InferBody {
            input: vec![1.5, -2.25],
            dims: Some(vec![2]),
            deadline_ms: Some(250),
        };
        let text = serde_json::to_string(&with).unwrap();
        assert!(text.contains("deadline_ms"));
        assert_eq!(serde_json::from_str::<InferBody>(&text).unwrap(), with);
        let without = InferBody {
            input: vec![0.5],
            dims: None,
            deadline_ms: None,
        };
        let text = serde_json::to_string(&without).unwrap();
        assert!(!text.contains("dims") && !text.contains("deadline_ms"));
        assert_eq!(serde_json::from_str::<InferBody>(&text).unwrap(), without);
        assert!(serde_json::from_str::<InferBody>("{}").is_err());

        let batch = BatchInferBody {
            inputs: vec![vec![1.0], vec![2.0]],
            dims: Some(vec![1]),
            deadline_ms: None,
        };
        let text = serde_json::to_string(&batch).unwrap();
        assert_eq!(
            serde_json::from_str::<BatchInferBody>(&text).unwrap(),
            batch
        );
        assert!(serde_json::from_str::<BatchInferBody>("{}").is_err());
    }
}
