//! A dependency-free HTTP/1.1 front end over a [`ModelRegistry`].
//!
//! Consistent with the offline `crates/compat` policy, this is a minimal
//! hand-rolled server on [`std::net::TcpListener`] — no async runtime, no
//! external HTTP crate. One acceptor thread hands each connection to a
//! handler thread; requests and responses are JSON through the workspace's
//! `serde_json` stand-in. Handler threads only *submit* into the per-model
//! engines; batches execute on the process-wide work-stealing executor
//! (`tdc_exec`), which schedules every model by QoS band and fair-share
//! weight. A registration body may pick the class (`"qos"`) and weight
//! (`"workers"`), and `GET /metrics` reports the executor fleet-wide
//! (`"executor"`: worker utilization, steal totals, per-band queue depths)
//! and per model (each model row's `"executor"`: queued/running dispatch
//! tokens and stolen-batch counts).
//!
//! Connections are **persistent** (HTTP/1.1 keep-alive): a handler runs a
//! per-connection request loop, honoring the `Connection:` header
//! (`keep-alive` is the HTTP/1.1 default, `close` ends the loop; HTTP/1.0
//! defaults to `close`), with an idle timeout between requests and a bound
//! on requests served per connection. Pipelined requests — several requests
//! written before the first response is read — are handled in order from
//! the connection's read buffer.
//!
//! Routes — the data plane:
//!
//! | Method | Path                          | Response |
//! |--------|-------------------------------|----------|
//! | `POST` | `/v1/models/{name}/infer`     | run one sample (or a batch) through `{name}` |
//! | `GET`  | `/v1/models`                  | [`ModelInfo`](crate::registry::ModelInfo) list |
//! | `GET`  | `/metrics`                    | [`RegistryMetrics`](crate::registry::RegistryMetrics) snapshot |
//! | `GET`  | `/healthz`                    | readiness JSON ([`HealthReply`]): model count, table epoch, admission state |
//! | `POST` | `/admin/shutdown`             | request graceful shutdown (the daemon drains and exits) |
//!
//! …and the admin plane, backed by the [control plane](crate::control)
//! (every operation is safe on a live, serving process):
//!
//! | Method   | Path                          | Response |
//! |----------|-------------------------------|----------|
//! | `PUT`    | `/v1/models/{name}`           | register from a JSON [`RegisterBody`] (descriptor + options) |
//! | `DELETE` | `/v1/models/{name}`           | graceful retire: unroute, drain, free — final counters |
//! | `POST`   | `/v1/models/{name}/replan`    | re-plan at a new budget and hot-swap ([`ReplanReport`](crate::control::ReplanReport)) |
//! | `POST`   | `/v1/models/{name}/autotune`  | SLO budget search ([`AutotuneReport`](crate::control::AutotuneReport)) |
//! | `POST`   | `/v1/models/{name}/tune`      | joint knob tune through the controller ([`TuneReport`](crate::control::TuneReport)) |
//! | `GET`    | `/v1/controller`              | controller status ([`ControllerStatus`](crate::control::ControllerStatus)) |
//! | `PUT`    | `/v1/controller`              | merge a partial [`ControllerBody`] onto the watch-loop config |
//!
//! The infer body comes in two forms:
//!
//! * single — `{"input": [f32...], "dims": [h, w, c], "deadline_ms": N}`;
//! * batched — `{"inputs": [[f32...], ...], "dims": [h, w, c],
//!   "deadline_ms": N}`: the samples are submitted atomically and ride one
//!   executor batch (when they fit `max_batch_size` on an idle queue), and
//!   the reply carries per-input outputs bit-identical to N sequential
//!   single calls.
//!
//! `dims` may be omitted when it equals the model's expected input dims;
//! `deadline_ms` overrides the model's configured default deadline for this
//! request. Errors map onto conventional status codes: unknown model or
//! route → `404`, malformed body or wrong shape → `400`, admission
//! rejection ([`ServeError::Overloaded`]) → `429`, deadline expiry
//! ([`ServeError::DeadlineExceeded`]) → `504`, engine shut down or mid-retire
//! → `503`. The shed-load responses (`429` and `503`) carry a `Retry-After`
//! header derived from the model's live queue depth times its estimated
//! batch latency ([`ServeEngine::retry_after_hint`](crate::ServeEngine)),
//! so clients back off proportionally to the actual backlog.
//!
//! Serving stays bit-exact across the wire: `f32` values are serialized
//! through the stand-in's shortest-round-trip float formatting, so an output
//! fetched over HTTP equals the in-process [`InferenceResponse`] bit for bit
//! — whether the connection is reused or closed per request.
//!
//! The connection machinery is reusable beyond the registry: any
//! [`HttpHandler`] can sit behind [`HttpServer::bind_with_handler`] — that
//! is how the `tdc-router` crate fronts a whole replica fleet with this
//! same std-only server.

use crate::arena::BufferPool;
use crate::batcher::InferenceResponse;
use crate::control::{AutotuneRequest, ControllerConfig, TuneRequest};
use crate::options::{BatchingOptions, PlanningOptions, RuntimeOptions};
use crate::registry::{ModelConfig, ModelRegistry};
use crate::{BackendKind, Result, ServeError};
use serde::{Deserialize, Serialize};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tdc_exec::QosClass;
use tdc_gpu_sim::DeviceSpec;
use tdc_nn::models::ModelDescriptor;
use tdc_tensor::Tensor;

/// Longest accepted request head (request line + headers), bytes.
const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Longest accepted request body, bytes.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;
/// Longest a started request may take to arrive in full.
const READ_TIMEOUT: Duration = Duration::from_secs(10);
/// Longest a keep-alive connection may sit idle between requests.
const IDLE_TIMEOUT: Duration = Duration::from_secs(5);
/// Granularity of socket reads: each blocking read wakes at least this
/// often so handlers notice server shutdown and enforce the two timeouts
/// above without parking on a dead socket.
const READ_SLICE: Duration = Duration::from_millis(250);
/// Most requests one keep-alive connection may issue before the server
/// closes it (bounds per-connection resource lifetime).
const MAX_REQUESTS_PER_CONNECTION: usize = 1024;
/// Most connection-handler threads alive at once; connections beyond the cap
/// are handled inline on the acceptor thread (natural backpressure) instead
/// of spawning without bound. Inline connections serve a single request —
/// a keep-alive loop on the acceptor would stall every other client.
const MAX_HANDLER_THREADS: usize = 64;

/// JSON body of `POST /v1/models/{name}/infer` (single-sample form).
#[derive(Debug, Clone, PartialEq)]
pub struct InferBody {
    /// Flat input sample, row-major.
    pub input: Vec<f32>,
    /// HWC dims of `input`; defaults to the model's expected input dims.
    pub dims: Option<Vec<usize>>,
    /// Per-request deadline in milliseconds, overriding the model's default
    /// ([`BatchingOptions::default_deadline`](crate::BatchingOptions)); a
    /// request not served within the deadline answers `504`.
    pub deadline_ms: Option<u64>,
}

impl Serialize for InferBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("input".to_string(), self.input.to_value())];
        if let Some(dims) = &self.dims {
            fields.push(("dims".to_string(), dims.to_value()));
        }
        if let Some(deadline_ms) = &self.deadline_ms {
            fields.push(("deadline_ms".to_string(), deadline_ms.to_value()));
        }
        serde::Value::Object(fields)
    }
}

// Hand-written so optional fields may be absent entirely (the derive macro
// requires every field, including `Option`s, to be present as a key).
impl Deserialize for InferBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let input = value
            .get("input")
            .ok_or_else(|| serde::Error::custom("missing field `input` in infer body"))?;
        Ok(InferBody {
            input: Vec::<f32>::from_value(input)?,
            dims: optional_field(value, "dims")?,
            deadline_ms: optional_field(value, "deadline_ms")?,
        })
    }
}

/// JSON body of the batched infer form: N samples riding one submission.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchInferBody {
    /// Flat input samples, row-major, all sharing one `dims`.
    pub inputs: Vec<Vec<f32>>,
    /// HWC dims of each sample; defaults to the model's expected input dims.
    pub dims: Option<Vec<usize>>,
    /// Per-request deadline in milliseconds shared by every sample in the
    /// group, overriding the model's default.
    pub deadline_ms: Option<u64>,
}

impl Serialize for BatchInferBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("inputs".to_string(), self.inputs.to_value())];
        if let Some(dims) = &self.dims {
            fields.push(("dims".to_string(), dims.to_value()));
        }
        if let Some(deadline_ms) = &self.deadline_ms {
            fields.push(("deadline_ms".to_string(), deadline_ms.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for BatchInferBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let inputs = value
            .get("inputs")
            .ok_or_else(|| serde::Error::custom("missing field `inputs` in batched infer body"))?;
        Ok(BatchInferBody {
            inputs: Vec::<Vec<f32>>::from_value(inputs)?,
            dims: optional_field(value, "dims")?,
            deadline_ms: optional_field(value, "deadline_ms")?,
        })
    }
}

fn optional_field<T: Deserialize>(
    value: &serde::Value,
    key: &str,
) -> std::result::Result<Option<T>, serde::Error> {
    match value.get(key) {
        None | Some(serde::Value::Null) => Ok(None),
        Some(field) => Ok(Some(T::from_value(field)?)),
    }
}

/// JSON body of `PUT /v1/models/{name}`: the model descriptor plus optional
/// planning / batching / runtime knobs (defaults match
/// [`ModelConfig::default`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RegisterBody {
    /// The network to serve (`{"name", "convs": [...], "fc": [[in, out]]}`).
    pub descriptor: ModelDescriptor,
    /// FLOPs-reduction budget for rank selection, in `[0, 1)`.
    pub budget: Option<f64>,
    /// Rank-candidate step.
    pub rank_step: Option<usize>,
    /// θ skip threshold for rank selection.
    pub theta: Option<f64>,
    /// Planning/simulation device: `"a100"` (default) or `"rtx2080ti"`.
    pub device: Option<String>,
    /// Execution backend: `"cpu"` (default) or `"sim-gpu"`.
    pub backend: Option<String>,
    /// Maximum requests per executed batch.
    pub max_batch_size: Option<usize>,
    /// Longest the oldest queued request waits for batch-mates, ms.
    pub max_batch_delay_ms: Option<u64>,
    /// Admission bound of the model's queue.
    pub max_queue_depth: Option<usize>,
    /// Default per-request deadline, ms.
    pub default_deadline_ms: Option<u64>,
    /// Fair-share weight on the fleet executor (historically the size of a
    /// per-model worker pool; the executor is now shared, so this scales the
    /// model's scheduling quantum instead).
    pub workers: Option<usize>,
    /// QoS class on the fleet executor: `"interactive"`, `"standard"`
    /// (default) or `"batch"`.
    pub qos: Option<String>,
    /// Seed for weight materialization.
    pub seed: Option<u64>,
}

impl RegisterBody {
    /// A registration body for `descriptor` with every option left at its
    /// default.
    pub fn for_descriptor(descriptor: ModelDescriptor) -> Self {
        RegisterBody {
            descriptor,
            budget: None,
            rank_step: None,
            theta: None,
            device: None,
            backend: None,
            max_batch_size: None,
            max_batch_delay_ms: None,
            max_queue_depth: None,
            default_deadline_ms: None,
            workers: None,
            qos: None,
            seed: None,
        }
    }

    /// Resolve the body's knobs into a full [`ModelConfig`], filling gaps
    /// with the defaults. Unknown device or backend labels are a
    /// [`ServeError::BadConfig`] (HTTP 400).
    pub fn model_config(&self) -> Result<ModelConfig> {
        let device = match self.device.as_deref() {
            None | Some("a100") => DeviceSpec::a100(),
            Some("rtx2080ti") | Some("2080ti") | Some("rtx-2080-ti") => DeviceSpec::rtx2080ti(),
            Some(other) => {
                return Err(ServeError::BadConfig {
                    reason: format!("unknown device {other:?}; use \"a100\" or \"rtx2080ti\""),
                })
            }
        };
        let backend = match self.backend.as_deref() {
            None => BackendKind::Cpu,
            Some(label) => BackendKind::parse(label).ok_or_else(|| ServeError::BadConfig {
                reason: format!("unknown backend {label:?}; use \"cpu\" or \"sim-gpu\""),
            })?,
        };
        let planning_defaults = PlanningOptions::default();
        let batching_defaults = BatchingOptions::default();
        let runtime_defaults = RuntimeOptions::default();
        Ok(ModelConfig {
            planning: PlanningOptions {
                device,
                budget: self.budget.unwrap_or(planning_defaults.budget),
                rank_step: self.rank_step.unwrap_or(planning_defaults.rank_step),
                theta: self.theta.unwrap_or(planning_defaults.theta),
                strategy: planning_defaults.strategy,
            },
            batching: BatchingOptions {
                max_batch_size: self
                    .max_batch_size
                    .unwrap_or(batching_defaults.max_batch_size),
                max_batch_delay: self
                    .max_batch_delay_ms
                    .map(Duration::from_millis)
                    .unwrap_or(batching_defaults.max_batch_delay),
                max_queue_depth: self
                    .max_queue_depth
                    .unwrap_or(batching_defaults.max_queue_depth),
                default_deadline: self.default_deadline_ms.map(Duration::from_millis),
            },
            runtime: RuntimeOptions {
                workers: self.workers.unwrap_or(runtime_defaults.workers),
                qos: match self.qos.as_deref() {
                    None => runtime_defaults.qos,
                    Some(label) => QosClass::parse(label).ok_or_else(|| ServeError::BadConfig {
                        reason: format!(
                            "unknown qos {label:?}; use \"interactive\", \"standard\" or \"batch\""
                        ),
                    })?,
                },
                seed: self.seed.unwrap_or(runtime_defaults.seed),
                backend,
                ..runtime_defaults
            },
            backend_wrapper: None,
        })
    }
}

impl Serialize for RegisterBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("descriptor".to_string(), self.descriptor.to_value())];
        let mut push_opt = |name: &str, value: Option<serde::Value>| {
            if let Some(value) = value {
                fields.push((name.to_string(), value));
            }
        };
        push_opt("budget", self.budget.as_ref().map(Serialize::to_value));
        push_opt(
            "rank_step",
            self.rank_step.as_ref().map(Serialize::to_value),
        );
        push_opt("theta", self.theta.as_ref().map(Serialize::to_value));
        push_opt("device", self.device.as_ref().map(Serialize::to_value));
        push_opt("backend", self.backend.as_ref().map(Serialize::to_value));
        push_opt(
            "max_batch_size",
            self.max_batch_size.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "max_batch_delay_ms",
            self.max_batch_delay_ms.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "max_queue_depth",
            self.max_queue_depth.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "default_deadline_ms",
            self.default_deadline_ms.as_ref().map(Serialize::to_value),
        );
        push_opt("workers", self.workers.as_ref().map(Serialize::to_value));
        push_opt("qos", self.qos.as_ref().map(Serialize::to_value));
        push_opt("seed", self.seed.as_ref().map(Serialize::to_value));
        serde::Value::Object(fields)
    }
}

impl Deserialize for RegisterBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let descriptor = value
            .get("descriptor")
            .ok_or_else(|| serde::Error::custom("missing field `descriptor` in register body"))?;
        Ok(RegisterBody {
            descriptor: ModelDescriptor::from_value(descriptor)?,
            budget: optional_field(value, "budget")?,
            rank_step: optional_field(value, "rank_step")?,
            theta: optional_field(value, "theta")?,
            device: optional_field(value, "device")?,
            backend: optional_field(value, "backend")?,
            max_batch_size: optional_field(value, "max_batch_size")?,
            max_batch_delay_ms: optional_field(value, "max_batch_delay_ms")?,
            max_queue_depth: optional_field(value, "max_queue_depth")?,
            default_deadline_ms: optional_field(value, "default_deadline_ms")?,
            workers: optional_field(value, "workers")?,
            qos: optional_field(value, "qos")?,
            seed: optional_field(value, "seed")?,
        })
    }
}

/// JSON body of `POST /v1/models/{name}/replan`: the new budget, plus
/// optional rank-step / θ overrides (everything else keeps the model's
/// current planning options).
#[derive(Debug, Clone, PartialEq)]
pub struct ReplanBody {
    /// The new FLOPs-reduction budget, in `[0, 1)`.
    pub budget: f64,
    /// Optional rank-candidate step override.
    pub rank_step: Option<usize>,
    /// Optional θ override.
    pub theta: Option<f64>,
}

impl Serialize for ReplanBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("budget".to_string(), self.budget.to_value())];
        if let Some(rank_step) = &self.rank_step {
            fields.push(("rank_step".to_string(), rank_step.to_value()));
        }
        if let Some(theta) = &self.theta {
            fields.push(("theta".to_string(), theta.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for ReplanBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let budget = value
            .get("budget")
            .ok_or_else(|| serde::Error::custom("missing field `budget` in replan body"))?;
        Ok(ReplanBody {
            budget: f64::from_value(budget)?,
            rank_step: optional_field(value, "rank_step")?,
            theta: optional_field(value, "theta")?,
        })
    }
}

/// JSON body of `POST /v1/models/{name}/autotune`: the target SLO plus
/// optional search-interval overrides (see
/// [`AutotuneRequest`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AutotuneBody {
    /// Target p99 end-to-end latency, ms.
    pub target_p99_ms: f64,
    /// Lower edge of the budget interval (default 0.02).
    pub min_budget: Option<f64>,
    /// Upper, over-provisioned edge (default: the model's current budget).
    pub max_budget: Option<f64>,
    /// Bisection resolution in budget units (default 0.01).
    pub resolution: Option<f64>,
    /// Whether to hot-swap the winning budget in (default true).
    pub apply: Option<bool>,
}

impl AutotuneBody {
    /// Resolve into the control plane's request, filling gaps with
    /// [`AutotuneRequest::new`]'s defaults.
    pub fn request(&self) -> AutotuneRequest {
        let defaults = AutotuneRequest::new(self.target_p99_ms);
        AutotuneRequest {
            target_p99_ms: self.target_p99_ms,
            min_budget: self.min_budget.unwrap_or(defaults.min_budget),
            max_budget: self.max_budget,
            resolution: self.resolution.unwrap_or(defaults.resolution),
            apply: self.apply.unwrap_or(defaults.apply),
        }
    }
}

impl Serialize for AutotuneBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![("target_p99_ms".to_string(), self.target_p99_ms.to_value())];
        let mut push_opt = |name: &str, value: Option<serde::Value>| {
            if let Some(value) = value {
                fields.push((name.to_string(), value));
            }
        };
        push_opt(
            "min_budget",
            self.min_budget.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "max_budget",
            self.max_budget.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "resolution",
            self.resolution.as_ref().map(Serialize::to_value),
        );
        push_opt("apply", self.apply.as_ref().map(Serialize::to_value));
        serde::Value::Object(fields)
    }
}

impl Deserialize for AutotuneBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let target = value.get("target_p99_ms").ok_or_else(|| {
            serde::Error::custom("missing field `target_p99_ms` in autotune body")
        })?;
        Ok(AutotuneBody {
            target_p99_ms: f64::from_value(target)?,
            min_budget: optional_field(value, "min_budget")?,
            max_budget: optional_field(value, "max_budget")?,
            resolution: optional_field(value, "resolution")?,
            apply: optional_field(value, "apply")?,
        })
    }
}

/// JSON body of `POST /v1/models/{name}/tune`: every field optional (an
/// empty body tunes against the model's recorded target with defaults).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TuneBody {
    /// Target p99 end-to-end latency, ms (default: the model's recorded
    /// target, or one derived from its current operating point).
    pub target_p99_ms: Option<f64>,
    /// Whether to hot-swap the winning knobs in (default true).
    pub apply: Option<bool>,
    /// Coordinate-descent round budget (default 3).
    pub max_rounds: Option<u64>,
}

impl TuneBody {
    /// Resolve into the control plane's request, filling gaps with
    /// [`TuneRequest::default`].
    pub fn request(&self) -> TuneRequest {
        let defaults = TuneRequest::default();
        TuneRequest {
            target_p99_ms: self.target_p99_ms,
            apply: self.apply.unwrap_or(defaults.apply),
            max_rounds: self.max_rounds.unwrap_or(defaults.max_rounds),
        }
    }
}

impl Serialize for TuneBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = Vec::new();
        let mut push_opt = |name: &str, value: Option<serde::Value>| {
            if let Some(value) = value {
                fields.push((name.to_string(), value));
            }
        };
        push_opt(
            "target_p99_ms",
            self.target_p99_ms.as_ref().map(Serialize::to_value),
        );
        push_opt("apply", self.apply.as_ref().map(Serialize::to_value));
        push_opt(
            "max_rounds",
            self.max_rounds.as_ref().map(Serialize::to_value),
        );
        serde::Value::Object(fields)
    }
}

impl Deserialize for TuneBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(TuneBody {
            target_p99_ms: optional_field(value, "target_p99_ms")?,
            apply: optional_field(value, "apply")?,
            max_rounds: optional_field(value, "max_rounds")?,
        })
    }
}

/// JSON body of `PUT /v1/controller`: a partial [`ControllerConfig`] —
/// present fields override the live config, absent ones keep their current
/// values, so `{"enabled": true}` flips the watch loop on without
/// re-stating the interval or band.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ControllerBody {
    /// Whether the watch loop acts on its ticks.
    pub enabled: Option<bool>,
    /// Milliseconds between watch ticks.
    pub interval_ms: Option<u64>,
    /// Re-tune when measured p99 drifts beyond this fraction of expected.
    pub drift_band_frac: Option<f64>,
    /// Minimum latency samples before a model's p99 is drift-checked.
    pub min_samples: Option<u64>,
}

impl ControllerBody {
    /// The live config with this body's present fields overridden.
    pub fn merged_onto(&self, mut config: ControllerConfig) -> ControllerConfig {
        if let Some(enabled) = self.enabled {
            config.enabled = enabled;
        }
        if let Some(interval_ms) = self.interval_ms {
            config.interval_ms = interval_ms;
        }
        if let Some(drift_band_frac) = self.drift_band_frac {
            config.drift_band_frac = drift_band_frac;
        }
        if let Some(min_samples) = self.min_samples {
            config.min_samples = min_samples;
        }
        config
    }
}

impl Serialize for ControllerBody {
    fn to_value(&self) -> serde::Value {
        let mut fields = Vec::new();
        let mut push_opt = |name: &str, value: Option<serde::Value>| {
            if let Some(value) = value {
                fields.push((name.to_string(), value));
            }
        };
        push_opt("enabled", self.enabled.as_ref().map(Serialize::to_value));
        push_opt(
            "interval_ms",
            self.interval_ms.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "drift_band_frac",
            self.drift_band_frac.as_ref().map(Serialize::to_value),
        );
        push_opt(
            "min_samples",
            self.min_samples.as_ref().map(Serialize::to_value),
        );
        serde::Value::Object(fields)
    }
}

impl Deserialize for ControllerBody {
    fn from_value(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(ControllerBody {
            enabled: optional_field(value, "enabled")?,
            interval_ms: optional_field(value, "interval_ms")?,
            drift_band_frac: optional_field(value, "drift_band_frac")?,
            min_samples: optional_field(value, "min_samples")?,
        })
    }
}

/// JSON reply of `PUT /v1/models/{name}`.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RegisterReply {
    /// The freshly routed model's description.
    pub registered: crate::registry::ModelInfo,
    /// Routing-table epoch after the registration.
    pub epoch: u64,
}

/// JSON reply of `DELETE /v1/models/{name}`: the retired engine's final
/// counters.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct RetireReply {
    /// The name that was retired.
    pub model: String,
    /// Backend the retired engine ran.
    pub backend: String,
    /// Requests the engine completed over its lifetime (everything admitted
    /// before the retire was drained and answered).
    pub completed_requests: u64,
    /// Deadline expiries over the engine's lifetime.
    pub deadline_exceeded: u64,
    /// Fingerprint of the plan that was serving, hex.
    pub plan_fingerprint: String,
    /// Routing-table epoch after the retire.
    pub epoch: u64,
}

/// JSON reply of `POST /v1/models/{name}/infer` (single-sample form).
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InferReply {
    /// Registered model name that served the request.
    pub model: String,
    /// Execution backend identity.
    pub backend: String,
    /// Output logits, flat.
    pub output: Vec<f32>,
    /// Dims of `output`.
    pub dims: Vec<usize>,
    /// Size of the batch the request rode in.
    pub batch_size: usize,
    /// Queue wait, ms.
    pub queue_ms: f64,
    /// Executor time for the batch, ms.
    pub exec_ms: f64,
    /// Predicted GPU latency for the batch, ms.
    pub predicted_gpu_batch_ms: f64,
    /// Simulated GPU latency for the batch, ms (0 on non-simulating backends).
    pub simulated_gpu_batch_ms: f64,
}

/// JSON reply of the batched infer form: one entry per submitted input, in
/// submission order.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct BatchInferReply {
    /// Registered model name that served the group.
    pub model: String,
    /// Execution backend identity.
    pub backend: String,
    /// Per-input output logits, flat, in submission order — bit-identical
    /// to N sequential single-sample calls.
    pub outputs: Vec<Vec<f32>>,
    /// Dims of each entry in `outputs`.
    pub dims: Vec<usize>,
    /// Number of inputs served.
    pub count: usize,
    /// Executor batch size each input rode in (all equal to `count` when the
    /// group fit one batch).
    pub batch_sizes: Vec<usize>,
}

/// JSON body of `GET /healthz`: liveness plus the readiness detail a fleet
/// health-checker consumes. The original plain-liveness contract is kept —
/// the reply is still a `200` whose body contains `"status":"ok"` and the
/// model count — and the readiness fields ride along.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct HealthReply {
    /// Liveness: always `"ok"` on a serving process.
    pub status: String,
    /// Registered model count.
    pub models: usize,
    /// Routing-table epoch (bumps on every admin mutation).
    pub epoch: u64,
    /// Total queued requests across every model.
    pub queue_depth: usize,
    /// Admission state: `"open"`, or `"saturated"` when at least one model's
    /// queue sits at its admission bound (new submits there answer `429`).
    pub admission: String,
    /// Readiness: the process accepts inference traffic.
    pub ready: bool,
}

impl HealthReply {
    /// Snapshot `registry`'s health.
    pub fn snapshot(registry: &ModelRegistry) -> HealthReply {
        let mut queue_depth = 0usize;
        let mut models = 0usize;
        let mut saturated = false;
        for name in registry.names() {
            // A model retired between names() and here simply drops out.
            let Ok(engine) = registry.engine(&name) else {
                continue;
            };
            models += 1;
            let depth = engine.queue_depth();
            queue_depth += depth;
            let bound = engine.info().max_queue_depth;
            saturated |= bound > 0 && depth >= bound;
        }
        HealthReply {
            status: "ok".to_string(),
            models,
            epoch: registry.epoch(),
            queue_depth,
            admission: if saturated { "saturated" } else { "open" }.to_string(),
            ready: true,
        }
    }
}

#[derive(serde::Serialize)]
struct ModelsReply {
    models: Vec<crate::registry::ModelInfo>,
}

#[derive(serde::Serialize)]
struct ErrorReply {
    error: String,
}

/// One routed reply: status, JSON body and (for shed-load responses) the
/// `Retry-After` value in seconds. What an [`HttpHandler`] returns and the
/// connection loop writes.
pub struct RoutedResponse {
    /// HTTP status code.
    pub status: u16,
    /// JSON response body.
    pub body: String,
    /// `Retry-After` header value in seconds, on shed-load responses.
    pub retry_after: Option<u64>,
}

impl RoutedResponse {
    /// A JSON reply at `status` (serialization failures degrade to an
    /// `error` body rather than panicking the connection handler).
    pub fn json(status: u16, body: &impl serde::Serialize) -> RoutedResponse {
        json_routed(status, body)
    }

    /// An `{"error": message}` reply at `status`.
    pub fn error(status: u16, message: impl std::fmt::Display) -> RoutedResponse {
        error_routed(status, message)
    }
}

/// What the connection loop serves: anything that maps one parsed request
/// onto a [`RoutedResponse`]. [`HttpServer::bind`] installs the registry
/// handler; [`HttpServer::bind_with_handler`] accepts any implementation —
/// the way `tdc-router` reuses this server for a replica-fleet front end.
pub trait HttpHandler: Send + Sync + 'static {
    /// Answer one request. Runs on a connection-handler thread; blocking
    /// here blocks only that connection.
    fn handle(&self, method: &str, path: &str, body: &str) -> RoutedResponse;
}

type Routed = RoutedResponse;

fn json_routed(status: u16, body: &impl serde::Serialize) -> Routed {
    Routed {
        status,
        body: serde_json::to_string(body)
            .unwrap_or_else(|e| format!("{{\"error\":\"{}\"}}", e.message)),
        retry_after: None,
    }
}

fn error_routed(status: u16, message: impl std::fmt::Display) -> Routed {
    json_routed(
        status,
        &ErrorReply {
            error: message.to_string(),
        },
    )
}

/// A one-shot, waitable shutdown request — how `POST /admin/shutdown`
/// reaches the daemon's main thread. Cloning shares the signal.
#[derive(Clone)]
pub struct ShutdownSignal {
    inner: Arc<(Mutex<bool>, Condvar)>,
}

impl ShutdownSignal {
    /// A fresh, un-requested signal.
    pub fn new() -> ShutdownSignal {
        ShutdownSignal {
            inner: Arc::new((Mutex::new(false), Condvar::new())),
        }
    }

    /// Request shutdown, waking every [`wait`](ShutdownSignal::wait)er.
    pub fn request(&self) {
        let (flag, condvar) = &*self.inner;
        let mut requested = match flag.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        *requested = true;
        condvar.notify_all();
    }

    /// Whether shutdown has been requested.
    pub fn requested(&self) -> bool {
        let (flag, _) = &*self.inner;
        match flag.lock() {
            Ok(guard) => *guard,
            Err(poisoned) => *poisoned.into_inner(),
        }
    }

    /// Block until shutdown is requested.
    pub fn wait(&self) {
        let (flag, condvar) = &*self.inner;
        let mut requested = match flag.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !*requested {
            requested = match condvar.wait(requested) {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    /// Block until shutdown is requested or `timeout` passes; returns
    /// whether shutdown was requested.
    pub fn wait_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let (flag, condvar) = &*self.inner;
        let mut requested = match flag.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        while !*requested {
            let remaining = match deadline.checked_duration_since(Instant::now()) {
                Some(remaining) if !remaining.is_zero() => remaining,
                _ => return false,
            };
            requested = match condvar.wait_timeout(requested, remaining) {
                Ok((guard, _)) => guard,
                Err(poisoned) => poisoned.into_inner().0,
            };
        }
        true
    }
}

impl Default for ShutdownSignal {
    fn default() -> Self {
        ShutdownSignal::new()
    }
}

/// The registry-backed [`HttpHandler`] that [`HttpServer::bind`] installs:
/// the full route table, plus `POST /admin/shutdown`, which requests the
/// server's [`ShutdownSignal`] (the daemon's main thread waits on it and
/// runs the graceful drain) and answers before any teardown begins.
struct RegistryHandler {
    registry: Arc<ModelRegistry>,
    shutdown: ShutdownSignal,
}

impl HttpHandler for RegistryHandler {
    fn handle(&self, method: &str, path: &str, body: &str) -> RoutedResponse {
        if (method, path) == ("POST", "/admin/shutdown") {
            self.shutdown.request();
            return json_routed(200, &StatusReply::shutting_down());
        }
        route_full(&self.registry, method, path, body)
    }
}

#[derive(serde::Serialize)]
struct StatusReply {
    status: String,
}

impl StatusReply {
    fn shutting_down() -> StatusReply {
        StatusReply {
            status: "shutting-down".to_string(),
        }
    }
}

/// Map a [`ServeError`] onto its status and body; shed-load conditions
/// (admission rejection, engine mid-retire) additionally get a
/// `Retry-After` derived from the model's live queue depth × estimated
/// batch latency — or a conservative 1 s when the engine is already gone.
fn serve_error_routed(registry: &ModelRegistry, model: Option<&str>, e: &ServeError) -> Routed {
    let status = status_for(e);
    let mut routed = error_routed(status, e);
    if matches!(status, 429 | 503) {
        routed.retry_after = Some(
            model
                .and_then(|name| registry.engine(name).ok())
                .map(|handle| handle.retry_after_hint().as_secs().max(1))
                .unwrap_or(1),
        );
    }
    routed
}

fn status_for(error: &ServeError) -> u16 {
    match error {
        ServeError::UnknownModel { .. } => 404,
        ServeError::BadInput { .. } | ServeError::BadConfig { .. } => 400,
        ServeError::Overloaded { .. } => 429,
        ServeError::DeadlineExceeded { .. } => 504,
        ServeError::Closed | ServeError::Disconnected => 503,
        _ => 500,
    }
}

fn reason_phrase(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Internal Server Error",
    }
}

fn bad_body(e: serde::Error) -> ServeError {
    ServeError::BadConfig {
        reason: format!("malformed infer body: {}", e.message),
    }
}

/// Serve the single-sample infer form. Takes the handle by value: the
/// submission goes through the *pinned* engine (never a second by-name
/// lookup that a concurrent replan could split from the pin), and the
/// handle is released before the blocking wait so a retire or replan only
/// waits for submissions, not for response delivery — the draining engine
/// answers in-flight work on its way out.
fn infer_single(
    engine: crate::control::EngineHandle,
    model: &str,
    value: &serde::Value,
) -> Result<InferReply> {
    let parsed = InferBody::from_value(value).map_err(bad_body)?;
    infer_single_parsed(engine, model, parsed)
}

/// Shared tail of the single-sample infer: both the generic serde path and
/// the zero-copy fast path feed the same [`InferBody`] through here, so the
/// two parses are guaranteed behaviorally identical downstream. The answered
/// output's buffer is recycled into the engine's pool after serialization —
/// the delivery half of the zero-allocation loop.
fn infer_single_parsed(
    engine: crate::control::EngineHandle,
    model: &str,
    parsed: InferBody,
) -> Result<InferReply> {
    let dims = parsed
        .dims
        .unwrap_or_else(|| engine.model().input_dims().to_vec());
    // A dims/input-length mismatch is a client error (400), not a server
    // failure: map the tensor-construction error onto BadConfig.
    let input = Tensor::from_vec(dims, parsed.input).map_err(|e| ServeError::BadConfig {
        reason: format!("bad infer body: {e}"),
    })?;
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| engine.default_deadline());
    let backend = engine.backend_name().to_string();
    let pool = engine.buffer_pool();
    let pending = engine.submit_counted(input, deadline)?;
    drop(engine);
    let response: InferenceResponse = pending.wait()?;
    let reply = InferReply {
        model: model.to_string(),
        backend,
        output: response.output.data().to_vec(),
        dims: response.output.dims().to_vec(),
        batch_size: response.batch_size,
        queue_ms: response.queue_ms,
        exec_ms: response.exec_ms,
        predicted_gpu_batch_ms: response.predicted_gpu_batch_ms,
        simulated_gpu_batch_ms: response.simulated_gpu_batch_ms,
    };
    pool.give(response.output.into_data());
    Ok(reply)
}

/// Serve the batched infer form: submit every sample atomically through the
/// pinned engine so the group rides one executor batch, release the pin,
/// then await them all (same handle discipline as [`infer_single`]).
fn infer_batch(
    engine: crate::control::EngineHandle,
    model: &str,
    value: &serde::Value,
) -> Result<BatchInferReply> {
    let parsed = BatchInferBody::from_value(value).map_err(bad_body)?;
    if parsed.inputs.is_empty() {
        return Err(ServeError::BadConfig {
            reason: "batched infer body needs at least one entry in `inputs`".into(),
        });
    }
    let dims = parsed
        .dims
        .unwrap_or_else(|| engine.model().input_dims().to_vec());
    let tensors = parsed
        .inputs
        .into_iter()
        .map(|input| {
            Tensor::from_vec(dims.clone(), input).map_err(|e| ServeError::BadConfig {
                reason: format!("bad infer body: {e}"),
            })
        })
        .collect::<Result<Vec<Tensor>>>()?;
    let deadline = parsed
        .deadline_ms
        .map(Duration::from_millis)
        .or_else(|| engine.default_deadline());
    let backend = engine.backend_name().to_string();
    let pool = engine.buffer_pool();
    let pending = engine.submit_many_counted(tensors, deadline)?;
    drop(engine);
    let mut outputs = Vec::with_capacity(pending.len());
    let mut batch_sizes = Vec::with_capacity(pending.len());
    let mut out_dims = Vec::new();
    for handle in pending {
        let response = handle.wait()?;
        out_dims = response.output.dims().to_vec();
        outputs.push(response.output.data().to_vec());
        batch_sizes.push(response.batch_size);
        pool.give(response.output.into_data());
    }
    Ok(BatchInferReply {
        model: model.to_string(),
        backend,
        count: outputs.len(),
        outputs,
        dims: out_dims,
        batch_sizes,
    })
}

/// Byte scanner behind [`parse_infer_fast`]. Token rules mirror the
/// workspace `serde_json` stand-in exactly — same whitespace set, same
/// number charset scan finished by `str::parse::<f64>` — so any body the
/// fast path accepts parses to the very same values the generic path would
/// produce. Anything else makes the scanner bail (return `None`), sending
/// the body down the generic path for identical error messages.
struct FastScan<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> FastScan<'a> {
    fn new(body: &'a str) -> FastScan<'a> {
        FastScan {
            bytes: body.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, byte: u8) -> bool {
        if self.peek() == Some(byte) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    /// One JSON number, with the stand-in's exact charset-scan semantics.
    fn number(&mut self) -> Option<f64> {
        // The stand-in only dispatches into a number on `-` or a digit.
        if !matches!(self.peek(), Some(b'-' | b'0'..=b'9')) {
            return None;
        }
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while matches!(
            self.bytes.get(self.pos),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
    }

    /// A `"key"` with no escapes (escaped keys bail to the generic path).
    fn plain_key(&mut self) -> Option<&'a str> {
        if !self.eat(b'"') {
            return None;
        }
        let start = self.pos;
        loop {
            match self.bytes.get(self.pos)? {
                b'"' => break,
                b'\\' => return None,
                _ => self.pos += 1,
            }
        }
        let key = std::str::from_utf8(&self.bytes[start..self.pos]).ok()?;
        self.pos += 1;
        Some(key)
    }

    /// `[n, n, ...]` appended onto `out` via `f(value)`.
    fn number_array<T>(&mut self, out: &mut Vec<T>, f: impl Fn(f64) -> T) -> Option<()> {
        if !self.eat(b'[') {
            return None;
        }
        if self.eat(b']') {
            return Some(());
        }
        loop {
            out.push(f(self.number()?));
            if self.eat(b']') {
                return Some(());
            }
            if !self.eat(b',') {
                return None;
            }
        }
    }
}

/// Zero-copy-ish parse of the common single-sample infer body,
/// `{"input": [...], "dims": [...], "deadline_ms": N}` (keys in any order,
/// `dims`/`deadline_ms` optional or `null`): the input numbers are scanned
/// straight from the request bytes into a buffer recycled from the engine's
/// pool — no intermediate `Value` tree, and on a warm pool no allocation for
/// the sample itself. Returns `None` for anything outside that shape —
/// unknown or duplicate keys, escapes, non-number array elements, trailing
/// characters — which sends the body down the generic serde path, keeping
/// observable behavior (including error messages) identical.
fn parse_infer_fast(body: &str, pool: &BufferPool, expected_len: usize) -> Option<InferBody> {
    let mut input: Option<Vec<f32>> = None;
    match parse_infer_fast_into(body, pool, expected_len, &mut input) {
        Some((dims, deadline_ms)) => Some(InferBody {
            input: input?,
            dims,
            deadline_ms,
        }),
        None => {
            // A bail after `input` was scanned returns its buffer to the
            // pool, so malformed bodies do not inflate the checkout stats.
            if let Some(buf) = input.take() {
                pool.give(buf);
            }
            None
        }
    }
}

#[allow(clippy::type_complexity)]
fn parse_infer_fast_into(
    body: &str,
    pool: &BufferPool,
    expected_len: usize,
    input: &mut Option<Vec<f32>>,
) -> Option<(Option<Vec<usize>>, Option<u64>)> {
    let mut scan = FastScan::new(body);
    if !scan.eat(b'{') {
        return None;
    }
    let mut dims: Option<Vec<usize>> = None;
    let mut deadline_ms: Option<u64> = None;
    let (mut seen_dims, mut seen_deadline) = (false, false);
    if !scan.eat(b'}') {
        loop {
            let key = scan.plain_key()?;
            if !scan.eat(b':') {
                return None;
            }
            // Duplicate keys bail out: the generic path's `get` is
            // first-key-wins, which a single-pass scan cannot reproduce.
            match key {
                "input" if input.is_none() => {
                    // Contents are irrelevant (cleared then pushed into), so
                    // skip the zero-fill.
                    let mut buf = pool.take_full(expected_len);
                    buf.clear();
                    *input = Some(buf);
                    scan.number_array(input.as_mut()?, |n| n as f32)?;
                }
                "dims" if !seen_dims => {
                    seen_dims = true;
                    if scan.peek() == Some(b'n') {
                        // `"dims": null` means "use the model's dims".
                        if !body[scan.pos..].starts_with("null") {
                            return None;
                        }
                        scan.pos += 4;
                    } else {
                        let mut out = Vec::new();
                        scan.number_array(&mut out, |n| n as usize)?;
                        dims = Some(out);
                    }
                }
                "deadline_ms" if !seen_deadline => {
                    seen_deadline = true;
                    if scan.peek() == Some(b'n') {
                        if !body[scan.pos..].starts_with("null") {
                            return None;
                        }
                        scan.pos += 4;
                    } else {
                        deadline_ms = Some(scan.number()? as u64);
                    }
                }
                _ => return None,
            }
            if scan.eat(b'}') {
                break;
            }
            if !scan.eat(b',') {
                return None;
            }
        }
    }
    scan.skip_ws();
    if scan.pos != scan.bytes.len() || input.is_none() {
        return None;
    }
    Some((dims, deadline_ms))
}

fn infer(registry: &ModelRegistry, model: &str, body: &str) -> Result<String> {
    // Resolve the model once — shared by both body forms — so an unknown
    // name answers 404 even when the body is also malformed. Submission
    // then goes through this very handle, so the request is guaranteed to
    // ride the engine that was resolved here.
    let engine = registry.engine(model)?;
    // Fast path: scan the common single-sample body straight into a pooled
    // buffer. Any deviation falls through to the generic serde path below.
    let expected_len = engine.model().input_dims().iter().product();
    if let Some(parsed) = parse_infer_fast(body, &engine.buffer_pool(), expected_len) {
        return serde_json::to_string(&infer_single_parsed(engine, model, parsed)?).map_err(|e| {
            ServeError::Runtime {
                reason: format!("cannot serialize the infer reply: {}", e.message),
            }
        });
    }
    let value = serde_json::parse_value(body).map_err(bad_body)?;
    // The body form picks the path: `inputs` is the batched contract,
    // `input` the single-sample one.
    let rendered = if value.get("inputs").is_some() {
        serde_json::to_string(&infer_batch(engine, model, &value)?)
    } else {
        serde_json::to_string(&infer_single(engine, model, &value)?)
    };
    rendered.map_err(|e| ServeError::Runtime {
        reason: format!("cannot serialize the infer reply: {}", e.message),
    })
}

/// `/v1/models/{name}` with a non-empty, single-segment name.
fn model_path(path: &str) -> Option<&str> {
    path.strip_prefix("/v1/models/")
        .filter(|name| !name.is_empty() && !name.contains('/'))
}

/// `/v1/models/{name}/{action}` with a non-empty, single-segment name.
/// strip_prefix + strip_suffix cannot overlap, so degenerate paths like
/// `/v1/models/infer` fall through to 404 instead of slicing out of bounds.
fn action_path<'a>(path: &'a str, action: &str) -> Option<&'a str> {
    path.strip_prefix("/v1/models/")
        .and_then(|rest| rest.strip_suffix(action))
        .filter(|model| !model.is_empty() && !model.contains('/'))
}

/// `PUT /v1/models/{name}` — register a model on the live table. The reply
/// is built from the entry and epoch this very call created (never a
/// second by-name lookup or epoch read a racing admin operation could
/// invalidate).
fn put_model(registry: &ModelRegistry, name: &str, body: &str) -> Routed {
    let registered = serde_json::parse_value(body)
        .and_then(|value| RegisterBody::from_value(&value))
        .map_err(bad_body)
        .and_then(|parsed| {
            let config = parsed.model_config()?;
            registry
                .control()
                .register(name, &parsed.descriptor, config)
        });
    match registered {
        Ok((info, epoch)) => json_routed(
            200,
            &RegisterReply {
                registered: info,
                epoch,
            },
        ),
        Err(e) => serve_error_routed(registry, Some(name), &e),
    }
}

/// `DELETE /v1/models/{name}` — graceful retire.
fn delete_model(registry: &ModelRegistry, name: &str) -> Routed {
    match registry.control().retire(name) {
        Ok((report, epoch)) => json_routed(
            200,
            &RetireReply {
                model: name.to_string(),
                backend: report.backend,
                completed_requests: report.metrics.completed_requests,
                deadline_exceeded: report.metrics.deadline_exceeded,
                plan_fingerprint: format!("{:016x}", report.plan_fingerprint),
                epoch,
            },
        ),
        Err(e) => serve_error_routed(registry, Some(name), &e),
    }
}

/// `POST /v1/models/{name}/replan` — plan hot-swap at a new budget. The
/// body's overrides are merged onto the model's current planning options
/// *inside* the control plane's writer lock, so two concurrent replans
/// compose instead of one clobbering the other from a stale snapshot.
fn replan_model(registry: &ModelRegistry, name: &str, body: &str) -> Routed {
    let parsed = match serde_json::parse_value(body)
        .and_then(|value| ReplanBody::from_value(&value))
        .map_err(bad_body)
    {
        Ok(parsed) => parsed,
        Err(e) => return serve_error_routed(registry, Some(name), &e),
    };
    let replanned = registry.replan_with(name, move |mut planning| {
        planning.budget = parsed.budget;
        if let Some(rank_step) = parsed.rank_step {
            planning.rank_step = rank_step;
        }
        if let Some(theta) = parsed.theta {
            planning.theta = theta;
        }
        planning
    });
    match replanned {
        Ok(report) => json_routed(200, &report),
        Err(e) => serve_error_routed(registry, Some(name), &e),
    }
}

/// `POST /v1/models/{name}/autotune` — SLO-driven budget search.
fn autotune_model(registry: &ModelRegistry, name: &str, body: &str) -> Routed {
    let parsed = match serde_json::parse_value(body)
        .and_then(|value| AutotuneBody::from_value(&value))
        .map_err(bad_body)
    {
        Ok(parsed) => parsed,
        Err(e) => return serve_error_routed(registry, Some(name), &e),
    };
    match registry.autotune(name, &parsed.request()) {
        Ok(report) => json_routed(200, &report),
        Err(e) => serve_error_routed(registry, Some(name), &e),
    }
}

/// `POST /v1/models/{name}/tune` — one controller tune (joint knob search
/// through the installed [`TuneDriver`](crate::control::TuneDriver)). An
/// empty body runs with defaults.
fn tune_model(registry: &ModelRegistry, name: &str, body: &str) -> Routed {
    let parsed = if body.trim().is_empty() {
        TuneBody::default()
    } else {
        match serde_json::parse_value(body)
            .and_then(|value| TuneBody::from_value(&value))
            .map_err(bad_body)
        {
            Ok(parsed) => parsed,
            Err(e) => return serve_error_routed(registry, Some(name), &e),
        }
    };
    match registry.tune(name, &parsed.request()) {
        Ok(report) => json_routed(200, &report),
        Err(e) => serve_error_routed(registry, Some(name), &e),
    }
}

/// `PUT /v1/controller` — merge a partial config onto the live watch-loop
/// configuration and reply with the resulting controller status.
fn put_controller(registry: &ModelRegistry, body: &str) -> Routed {
    let parsed = if body.trim().is_empty() {
        ControllerBody::default()
    } else {
        match serde_json::parse_value(body)
            .and_then(|value| ControllerBody::from_value(&value))
            .map_err(bad_body)
        {
            Ok(parsed) => parsed,
            Err(e) => return serve_error_routed(registry, None, &e),
        }
    };
    let merged = parsed.merged_onto(registry.controller_config());
    match registry.set_controller_config(merged) {
        Ok(_) => json_routed(200, &registry.controller_status()),
        Err(e) => serve_error_routed(registry, None, &e),
    }
}

/// Full request router, independent of any socket: maps one parsed request
/// onto a reply with status, JSON body and optional Retry-After. Public so
/// custom [`HttpHandler`]s (a chaos harness interposing on a replica, say)
/// can delegate to the stock registry route table.
pub fn route_full(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> Routed {
    match (method, path) {
        ("GET", "/healthz") => json_routed(200, &HealthReply::snapshot(registry)),
        ("GET", "/v1/models") => json_routed(
            200,
            &ModelsReply {
                models: registry.model_info(),
            },
        ),
        ("GET", "/metrics") => json_routed(200, &registry.metrics()),
        ("GET", "/v1/controller") => json_routed(200, &registry.controller_status()),
        ("PUT", "/v1/controller") => put_controller(registry, body),
        ("POST", post_path) => {
            if let Some(model) = action_path(post_path, "/infer") {
                match infer(registry, model, body) {
                    Ok(reply) => Routed {
                        status: 200,
                        body: reply,
                        retry_after: None,
                    },
                    Err(e) => serve_error_routed(registry, Some(model), &e),
                }
            } else if let Some(model) = action_path(post_path, "/replan") {
                replan_model(registry, model, body)
            } else if let Some(model) = action_path(post_path, "/autotune") {
                autotune_model(registry, model, body)
            } else if let Some(model) = action_path(post_path, "/tune") {
                tune_model(registry, model, body)
            } else {
                error_routed(404, format!("no route for POST {post_path}"))
            }
        }
        ("PUT", put_path) => match model_path(put_path) {
            Some(model) => put_model(registry, model, body),
            None => error_routed(404, format!("no route for PUT {put_path}")),
        },
        ("DELETE", delete_path) => match model_path(delete_path) {
            Some(model) => delete_model(registry, model),
            None => error_routed(404, format!("no route for DELETE {delete_path}")),
        },
        ("GET", _) => error_routed(404, format!("no route for {method} {path}")),
        _ => error_routed(405, format!("method {method} is not supported")),
    }
}

/// Pure request router, independent of any socket: maps one parsed request
/// onto a `(status, JSON body)` pair. Exposed for direct testing; the
/// connection handler uses the full form that additionally carries the
/// `Retry-After` header value.
pub fn route(registry: &ModelRegistry, method: &str, path: &str, body: &str) -> (u16, String) {
    let routed = route_full(registry, method, path, body);
    (routed.status, routed.body)
}

struct ParsedRequest {
    method: String,
    path: String,
    body: String,
    /// Whether the connection may serve another request after this one,
    /// per the request's `Connection:` header and HTTP version defaults.
    keep_alive: bool,
}

enum ParseOutcome {
    Request(ParsedRequest),
    /// The peer closed (or went idle past the timeout) between requests —
    /// nothing to answer, close quietly. Also covers the shutdown nudge.
    Empty,
    /// Malformed or over-limit input, with the status to answer. The
    /// connection closes after the reply: the read buffer can no longer be
    /// trusted to start at a request boundary.
    Reject(u16, String),
}

/// One slice of a socket read: distinguishes data, EOF and a timeout wake.
enum SocketRead {
    Data(usize),
    Closed,
    TimedOut,
}

fn read_slice(stream: &mut TcpStream, chunk: &mut [u8]) -> std::io::Result<SocketRead> {
    match stream.read(chunk) {
        Ok(0) => Ok(SocketRead::Closed),
        Ok(n) => Ok(SocketRead::Data(n)),
        Err(e)
            if matches!(
                e.kind(),
                std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
            ) =>
        {
            Ok(SocketRead::TimedOut)
        }
        Err(e) if e.kind() == std::io::ErrorKind::Interrupted => Ok(SocketRead::TimedOut),
        Err(e) => Err(e),
    }
}

/// Parse one request from the connection. `buffer` persists across requests
/// on the same connection: bytes past the current request's body (pipelined
/// requests) stay in it for the next call. The socket must be configured
/// with a [`READ_SLICE`] read timeout so the wait loop can enforce
/// [`IDLE_TIMEOUT`] / [`READ_TIMEOUT`] and notice `stop`.
fn parse_request(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
    stop: &AtomicBool,
) -> std::io::Result<ParseOutcome> {
    // Two independent clocks: the idle phase (no request bytes yet) is
    // bounded by IDLE_TIMEOUT from entry; the request phase is bounded by
    // READ_TIMEOUT from its *first byte* — an almost-idled-out connection
    // that then starts a large upload still gets the full request budget.
    let idle_since = Instant::now();
    let mut request_since = if buffer.is_empty() {
        None
    } else {
        Some(idle_since)
    };
    let mut chunk = [0u8; 4096];
    let mut wait = |stream: &mut TcpStream,
                    buffer: &mut Vec<u8>|
     -> std::io::Result<Option<ParseOutcome>> {
        match read_slice(stream, &mut chunk)? {
            SocketRead::Data(n) => {
                buffer.extend_from_slice(&chunk[..n]);
                if request_since.is_none() {
                    request_since = Some(Instant::now());
                }
                Ok(None)
            }
            SocketRead::Closed => Ok(Some(if request_since.is_some() {
                ParseOutcome::Reject(400, "connection closed mid-request".to_string())
            } else {
                ParseOutcome::Empty
            })),
            SocketRead::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    // Server shutting down: abandon idle connections quietly.
                    return Ok(Some(ParseOutcome::Empty));
                }
                match request_since {
                    Some(since) if since.elapsed() >= READ_TIMEOUT => Ok(Some(
                        ParseOutcome::Reject(408, "request timed out".to_string()),
                    )),
                    None if idle_since.elapsed() >= IDLE_TIMEOUT => Ok(Some(ParseOutcome::Empty)),
                    _ => Ok(None),
                }
            }
        }
    };

    // Read until the blank line terminating the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(buffer) {
            break pos;
        }
        if buffer.len() > MAX_HEAD_BYTES {
            return Ok(ParseOutcome::Reject(
                413,
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        if let Some(outcome) = wait(stream, buffer)? {
            return Ok(outcome);
        }
    };

    let head = String::from_utf8_lossy(&buffer[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path, version) = match (parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v)) => (m.to_string(), p.to_string(), v.to_string()),
        _ => {
            return Ok(ParseOutcome::Reject(
                400,
                format!("malformed request line {request_line:?}"),
            ))
        }
    };
    if !version.starts_with("HTTP/1.") {
        return Ok(ParseOutcome::Reject(
            400,
            format!("unsupported protocol {version:?}"),
        ));
    }
    let mut content_length = 0usize;
    let mut connection: Option<String> = None;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim();
            if name.eq_ignore_ascii_case("content-length") {
                content_length = match value.trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        return Ok(ParseOutcome::Reject(
                            400,
                            format!("bad content-length {:?}", value.trim()),
                        ))
                    }
                };
            } else if name.eq_ignore_ascii_case("connection") {
                connection = Some(value.trim().to_ascii_lowercase());
            }
        }
    }
    // HTTP/1.1 defaults to keep-alive, HTTP/1.0 to close; an explicit
    // `Connection:` header wins either way.
    let keep_alive = match connection.as_deref() {
        Some(value) if value.contains("close") => false,
        Some(value) if value.contains("keep-alive") => true,
        _ => version != "HTTP/1.0",
    };
    if content_length > MAX_BODY_BYTES {
        return Ok(ParseOutcome::Reject(
            413,
            format!("request body exceeds {MAX_BODY_BYTES} bytes"),
        ));
    }

    let body_start = head_end + 4;
    while buffer.len() < body_start + content_length {
        if let Some(outcome) = wait(stream, buffer)? {
            return Ok(outcome);
        }
    }
    let body = buffer[body_start..body_start + content_length].to_vec();
    // Keep any pipelined follow-up request for the next parse.
    buffer.drain(..body_start + content_length);
    let body = match String::from_utf8(body) {
        Ok(body) => body,
        Err(_) => {
            return Ok(ParseOutcome::Reject(
                400,
                "request body is not UTF-8".to_string(),
            ))
        }
    };
    Ok(ParseOutcome::Request(ParsedRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

fn find_head_end(buffer: &[u8]) -> Option<usize> {
    buffer.windows(4).position(|w| w == b"\r\n\r\n")
}

fn write_response(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    close: bool,
    retry_after: Option<u64>,
) -> std::io::Result<()> {
    let retry_after = retry_after
        .map(|secs| format!("Retry-After: {secs}\r\n"))
        .unwrap_or_default();
    write!(
        stream,
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\n{retry_after}Connection: {}\r\n\r\n{body}",
        reason_phrase(status),
        body.len(),
        if close { "close" } else { "keep-alive" },
    )?;
    stream.flush()
}

/// The per-connection request loop: parse → route → respond, until the
/// client asks to close, the request budget runs out, the connection idles
/// past the timeout, or the server stops.
fn handle_connection(
    handler: &dyn HttpHandler,
    mut stream: TcpStream,
    stop: &AtomicBool,
    max_requests: usize,
) {
    let _ = stream.set_read_timeout(Some(READ_SLICE));
    let mut buffer: Vec<u8> = Vec::with_capacity(1024);
    let mut served = 0usize;
    loop {
        let outcome = match parse_request(&mut stream, &mut buffer, stop) {
            Ok(outcome) => outcome,
            // Socket-level failure (reset): nothing sensible to answer.
            Err(_) => return,
        };
        match outcome {
            ParseOutcome::Empty => return,
            ParseOutcome::Reject(status, message) => {
                let rejected = error_routed(status, message);
                let _ = write_response(&mut stream, rejected.status, &rejected.body, true, None);
                return;
            }
            ParseOutcome::Request(request) => {
                served += 1;
                let routed = handler.handle(&request.method, &request.path, &request.body);
                let close =
                    !request.keep_alive || served >= max_requests || stop.load(Ordering::SeqCst);
                let written = write_response(
                    &mut stream,
                    routed.status,
                    &routed.body,
                    close,
                    routed.retry_after,
                );
                if written.is_err() || close {
                    return;
                }
            }
        }
    }
}

/// The running HTTP front end: an acceptor thread plus per-connection
/// handler threads (each running a keep-alive request loop), all routing
/// into a shared [`HttpHandler`] — usually the registry handler that
/// [`bind`](HttpServer::bind) installs, or any custom implementation via
/// [`bind_with_handler`](HttpServer::bind_with_handler).
pub struct HttpServer {
    registry: Option<Arc<ModelRegistry>>,
    shutdown_signal: Option<ShutdownSignal>,
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    handlers: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl HttpServer {
    /// Bind `addr` (e.g. `"127.0.0.1:7878"`; port `0` picks a free port) and
    /// start accepting connections against `registry` — the full route
    /// table plus `POST /admin/shutdown`, whose requests surface on
    /// [`shutdown_signal`](HttpServer::shutdown_signal).
    pub fn bind(addr: &str, registry: Arc<ModelRegistry>) -> Result<HttpServer> {
        let shutdown = ShutdownSignal::new();
        let handler = Arc::new(RegistryHandler {
            registry: Arc::clone(&registry),
            shutdown: shutdown.clone(),
        });
        let mut server = HttpServer::bind_with_handler(addr, handler)?;
        server.registry = Some(registry);
        server.shutdown_signal = Some(shutdown);
        Ok(server)
    }

    /// Bind `addr` and serve connections through an arbitrary handler. The
    /// returned server has no registry: tear it down with
    /// [`stop`](HttpServer::stop) (or drop), not
    /// [`shutdown`](HttpServer::shutdown).
    pub fn bind_with_handler(addr: &str, handler: Arc<dyn HttpHandler>) -> Result<HttpServer> {
        let listener = TcpListener::bind(addr).map_err(|e| ServeError::Runtime {
            reason: format!("cannot bind {addr}: {e}"),
        })?;
        let local_addr = listener.local_addr().map_err(|e| ServeError::Runtime {
            reason: format!("cannot resolve the bound address: {e}"),
        })?;
        let stop = Arc::new(AtomicBool::new(false));
        let handlers: Arc<Mutex<Vec<JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let acceptor = {
            let handler = Arc::clone(&handler);
            let stop = Arc::clone(&stop);
            let handlers = Arc::clone(&handlers);
            std::thread::Builder::new()
                .name("tdc-serve-http-accept".to_string())
                .spawn(move || {
                    for connection in listener.incoming() {
                        if stop.load(Ordering::SeqCst) {
                            break;
                        }
                        let Ok(stream) = connection else { continue };
                        // Reap finished handlers; if the pool is saturated
                        // (or a spawn fails), serve this connection inline —
                        // the acceptor stalls briefly, which is exactly the
                        // backpressure an unbounded thread count would hide.
                        let at_capacity = {
                            let mut handlers = match handlers.lock() {
                                Ok(guard) => guard,
                                Err(poisoned) => poisoned.into_inner(),
                            };
                            handlers.retain(|h| !h.is_finished());
                            handlers.len() >= MAX_HANDLER_THREADS
                        };
                        if at_capacity {
                            handle_connection(handler.as_ref(), stream, &stop, 1);
                            continue;
                        }
                        let conn_handler = Arc::clone(&handler);
                        let conn_stop = Arc::clone(&stop);
                        let spawned = std::thread::Builder::new()
                            .name("tdc-serve-http-conn".to_string())
                            .spawn(move || {
                                handle_connection(
                                    conn_handler.as_ref(),
                                    stream,
                                    &conn_stop,
                                    MAX_REQUESTS_PER_CONNECTION,
                                )
                            });
                        match spawned {
                            Ok(handle) => {
                                let mut handlers = match handlers.lock() {
                                    Ok(guard) => guard,
                                    Err(poisoned) => poisoned.into_inner(),
                                };
                                handlers.push(handle);
                            }
                            // The stream moved into the failed closure and
                            // is gone; nothing further to answer here.
                            Err(_) => continue,
                        }
                    }
                })
                .map_err(|e| ServeError::Runtime {
                    reason: format!("cannot spawn the HTTP acceptor: {e}"),
                })?
        };
        Ok(HttpServer {
            registry: None,
            shutdown_signal: None,
            local_addr,
            stop,
            acceptor: Some(acceptor),
            handlers,
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The registry this server routes into.
    ///
    /// # Panics
    ///
    /// On a handler-bound server ([`bind_with_handler`](HttpServer::bind_with_handler)),
    /// which has no registry.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        self.registry
            .as_ref()
            .expect("handler-bound HttpServer has no registry")
    }

    /// The signal `POST /admin/shutdown` requests — a registry-bound
    /// server's daemon waits on it and then runs the graceful drain.
    /// `None` on a handler-bound server (its handler owns lifecycle).
    pub fn shutdown_signal(&self) -> Option<ShutdownSignal> {
        self.shutdown_signal.clone()
    }

    fn stop_threads(&mut self) {
        if self.stop.swap(true, Ordering::SeqCst) {
            return;
        }
        // Nudge the acceptor out of its blocking `accept`. A wildcard bind
        // (0.0.0.0 / ::) is not a connectable destination everywhere, so
        // aim the nudge at loopback on the bound port.
        let mut nudge = self.local_addr;
        if nudge.ip().is_unspecified() {
            match nudge {
                SocketAddr::V4(_) => nudge.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => nudge.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        let _ = TcpStream::connect(nudge);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Handlers notice `stop` within one read slice: in-flight requests
        // finish and answer with `Connection: close`, idle keep-alive
        // connections are abandoned.
        let handles: Vec<JoinHandle<()>> = {
            let mut handlers = match self.handlers.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            handlers.drain(..).collect()
        };
        for handle in handles {
            let _ = handle.join();
        }
    }

    /// Stop accepting connections, finish in-flight requests and return the
    /// registry (so the caller can in turn drain the engines with
    /// [`ModelRegistry::shutdown`] once it holds the only reference).
    ///
    /// # Panics
    ///
    /// On a handler-bound server, which has no registry — use
    /// [`stop`](HttpServer::stop) there.
    pub fn shutdown(mut self) -> Arc<ModelRegistry> {
        self.stop_threads();
        Arc::clone(
            self.registry
                .as_ref()
                .expect("handler-bound HttpServer has no registry; use stop()"),
        )
    }

    /// Stop accepting connections and finish in-flight requests, without
    /// touching any registry — the teardown for handler-bound servers.
    pub fn stop(mut self) {
        self.stop_threads();
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop_threads();
    }
}

/// Read one HTTP response from `stream`, honoring `Content-Length` instead
/// of assuming an EOF-terminated body — mandatory on a keep-alive
/// connection, where EOF never comes between responses. `buffer` carries
/// bytes already read past the previous response (e.g. when the peer
/// pipelines) and keeps any surplus for the next call.
pub fn read_response(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = read_response_with_headers(stream, buffer)?;
    Ok((status, body))
}

/// One parsed HTTP response: status, headers (lower-cased names) and body.
pub type HttpResponseParts = (u16, Vec<(String, String)>, String);

/// [`read_response`], additionally returning every response header as
/// lower-cased `(name, value)` pairs — the way tests assert `Retry-After`
/// on shed-load responses.
pub fn read_response_with_headers(
    stream: &mut TcpStream,
    buffer: &mut Vec<u8>,
) -> std::io::Result<HttpResponseParts> {
    let mut chunk = [0u8; 4096];
    let head_end = loop {
        if let Some(pos) = find_head_end(buffer) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection closed before a full response head",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8_lossy(&buffer[..head_end]).to_string();
    let mut lines = head.split("\r\n");
    let status = lines
        .next()
        .unwrap_or_default()
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "response without a status")
        })?;
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value.parse().map_err(|_| {
                    std::io::Error::new(std::io::ErrorKind::InvalidData, "bad content-length")
                })?;
            }
            headers.push((name, value));
        }
    }
    let body_start = head_end + 4;
    while buffer.len() < body_start + content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "connection closed mid-body",
            ));
        }
        buffer.extend_from_slice(&chunk[..n]);
    }
    let body =
        String::from_utf8_lossy(&buffer[body_start..body_start + content_length]).to_string();
    buffer.drain(..body_start + content_length);
    Ok((status, headers, body))
}

fn write_request(
    stream: &mut TcpStream,
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
    keep_alive: bool,
) -> std::io::Result<()> {
    let body = body.unwrap_or("");
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    stream.flush()
}

/// Minimal blocking HTTP/1.1 client for tests, smoke checks and examples:
/// open a fresh connection, send one `Connection: close` request, read the
/// full response, return `(status, body)`. For connection reuse, use
/// [`HttpClient`].
pub fn http_request(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<(u16, String)> {
    let (status, _, body) = http_request_with_headers(addr, method, path, body)?;
    Ok((status, body))
}

/// [`http_request`], additionally returning the response headers
/// (lower-cased names) — e.g. to assert `Retry-After` on a `429`/`503`.
pub fn http_request_with_headers(
    addr: &SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> std::io::Result<HttpResponseParts> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    write_request(&mut stream, addr, method, path, body, false)?;
    read_response_with_headers(&mut stream, &mut Vec::new())
}

/// Re-type a raw socket timeout (`WouldBlock` on Unix) as the conventional
/// [`TimedOut`](std::io::ErrorKind::TimedOut); other errors pass through.
fn map_timeout(error: std::io::Error) -> std::io::Error {
    if is_timeout(&error) && error.kind() != std::io::ErrorKind::TimedOut {
        std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            format!("HTTP request timed out: {error}"),
        )
    } else {
        error
    }
}

/// Whether an I/O error is a timeout — either the typed
/// [`TimedOut`](std::io::ErrorKind::TimedOut) a deadline-bounded
/// [`HttpClient`] raises, or the raw
/// [`WouldBlock`](std::io::ErrorKind::WouldBlock) a socket read timeout
/// surfaces as on Unix.
pub fn is_timeout(error: &std::io::Error) -> bool {
    matches!(
        error.kind(),
        std::io::ErrorKind::TimedOut | std::io::ErrorKind::WouldBlock
    )
}

/// A persistent HTTP/1.1 test client: one TCP connection serving any number
/// of sequential `Connection: keep-alive` requests, reading each response by
/// its `Content-Length`. The counterpart of the server's keep-alive loop —
/// and the way to verify that N requests really shared one connection
/// ([`HttpClient::requests_sent`]).
///
/// With [`connect_with_timeout`](HttpClient::connect_with_timeout) (or
/// [`set_request_timeout`](HttpClient::set_request_timeout)) every socket
/// operation is bounded: connecting, writing and each read return a typed
/// [`TimedOut`](std::io::ErrorKind::TimedOut) error instead of hanging on a
/// wedged peer — which is what lets a fleet health-checker probe replicas
/// without ever blocking the prober. After a timeout the connection is no
/// longer at a response boundary; drop the client and reconnect.
pub struct HttpClient {
    stream: TcpStream,
    addr: SocketAddr,
    buffer: Vec<u8>,
    requests_sent: u64,
    timeout: Option<Duration>,
}

impl HttpClient {
    /// Open one connection to `addr`.
    pub fn connect(addr: &SocketAddr) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(READ_TIMEOUT))?;
        Ok(HttpClient {
            stream,
            addr: *addr,
            buffer: Vec::with_capacity(1024),
            requests_sent: 0,
            timeout: None,
        })
    }

    /// Open one connection to `addr`, bounding the connect itself and every
    /// later socket operation by `timeout`.
    pub fn connect_with_timeout(
        addr: &SocketAddr,
        timeout: Duration,
    ) -> std::io::Result<HttpClient> {
        let stream = TcpStream::connect_timeout(addr, timeout).map_err(map_timeout)?;
        let mut client = HttpClient {
            stream,
            addr: *addr,
            buffer: Vec::with_capacity(1024),
            requests_sent: 0,
            timeout: None,
        };
        client.set_request_timeout(Some(timeout))?;
        Ok(client)
    }

    /// Bound (or, with `None`, unbound back to the 10 s read default)
    /// every subsequent socket operation on this connection.
    pub fn set_request_timeout(&mut self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(Some(
            timeout.filter(|t| !t.is_zero()).unwrap_or(READ_TIMEOUT),
        ))?;
        self.stream
            .set_write_timeout(timeout.filter(|t| !t.is_zero()))?;
        self.timeout = timeout;
        Ok(())
    }

    /// Send one keep-alive request on the shared connection and read its
    /// response.
    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<(u16, String)> {
        let (status, _, body) = self.request_with_headers(method, path, body)?;
        Ok((status, body))
    }

    /// [`request`](HttpClient::request), additionally returning the response
    /// headers as lower-cased `(name, value)` pairs — e.g. to read
    /// `Retry-After` off a shed-load response.
    pub fn request_with_headers(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> std::io::Result<HttpResponseParts> {
        let result = (|| -> std::io::Result<HttpResponseParts> {
            write_request(&mut self.stream, &self.addr, method, path, body, true)?;
            self.requests_sent += 1;
            read_response_with_headers(&mut self.stream, &mut self.buffer)
        })();
        // With a configured deadline, surface the socket's WouldBlock as the
        // typed timeout this client promises.
        match result {
            Err(e) if self.timeout.is_some() && is_timeout(&e) => Err(map_timeout(e)),
            other => other,
        }
    }

    /// How many requests were sent over this single connection.
    pub fn requests_sent(&self) -> u64 {
        self.requests_sent
    }

    /// The underlying stream and read buffer, for raw-bytes tests (e.g.
    /// writing two pipelined requests in one syscall before reading either
    /// response).
    pub fn raw_parts(&mut self) -> (&mut TcpStream, &mut Vec<u8>) {
        (&mut self.stream, &mut self.buffer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::ModelConfig;
    use crate::serving_descriptor;
    use crate::BatchingOptions;
    use std::time::Duration;

    fn test_registry() -> Arc<ModelRegistry> {
        let registry = ModelRegistry::new(4);
        registry
            .register(
                "mini",
                &serving_descriptor("http-mini", 8, 4, 4),
                ModelConfig {
                    batching: BatchingOptions {
                        max_batch_size: 4,
                        max_batch_delay: Duration::from_millis(1),
                        ..BatchingOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        Arc::new(registry)
    }

    fn infer_body(dims: &[usize]) -> String {
        let input = vec![0.25f32; dims.iter().product()];
        serde_json::to_string(&InferBody {
            input,
            dims: Some(dims.to_vec()),
            deadline_ms: None,
        })
        .unwrap()
    }

    /// Every body the fast scanner accepts must parse to the exact
    /// `InferBody` the generic serde path produces — bit-for-bit on the
    /// f32 values, including negative zero and exponent forms.
    #[test]
    fn fast_parse_agrees_with_the_generic_path() {
        let pool = BufferPool::new();
        let bodies = [
            r#"{"input": [1, 2.5, -0.0, 1e-3, 6.02e23, -1.5E-2]}"#,
            r#"{"input":[0.25,0.5],"dims":[1,1,2],"deadline_ms":250}"#,
            "{ \"deadline_ms\" : 9 ,\n\t\"input\" : [ 1 , 2 ] , \"dims\" : [ 2 ] }",
            r#"{"input": [], "dims": null, "deadline_ms": null}"#,
            r#"{"input": [3]}"#,
            r#"{"input": [1e999, -1e999]}"#,
        ];
        for body in bodies {
            let fast = parse_infer_fast(body, &pool, 4)
                .unwrap_or_else(|| panic!("fast path rejected {body}"));
            let value = serde_json::parse_value(body).unwrap();
            let generic = InferBody::from_value(&value).unwrap();
            assert_eq!(
                fast.input.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                generic
                    .input
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "input mismatch on {body}"
            );
            assert_eq!(fast.dims, generic.dims, "dims mismatch on {body}");
            assert_eq!(
                fast.deadline_ms, generic.deadline_ms,
                "deadline mismatch on {body}"
            );
            pool.give(fast.input);
            pool.give(generic.input);
        }
    }

    /// Anything outside the plain single-sample shape must bail to the
    /// generic path (`None`) — and a bail after the input array was scanned
    /// returns the pooled buffer, so checkout telemetry stays flat.
    #[test]
    fn fast_parse_bails_on_anything_unusual() {
        let pool = BufferPool::new();
        let bodies = [
            r#"{"inputs": [[1]]}"#,                         // batched form
            r#"{"input": [1], "extra": 1}"#,                // unknown key
            r#"{"input": [1], "input": [2]}"#,              // duplicate key
            r#"{"input": [1], "dims": null, "dims": [1]}"#, // duplicate after null
            r#"{"input": [1e2e3]}"#,                        // malformed number
            r#"{"input": [+5]}"#,                           // leading + (JSON-invalid)
            r#"{"input": [1], "dims": "hwc"}"#,             // non-array dims
            r#"{"input": [true]}"#,                         // non-number element
            "{\"\\u0069nput\": [1]}",                       // escaped key
            r#"{"input": [1]}x"#,                           // trailing chars
            r#"{"input": [1],}"#,                           // trailing comma
            r#"["input"]"#,                                 // not an object
        ];
        for body in bodies {
            assert!(
                parse_infer_fast(body, &pool, 4).is_none(),
                "fast path must bail on {body}"
            );
        }
        // Buffers taken for bailed bodies were recycled: a fresh take is a
        // pool hit, not a new allocation.
        let before = pool.stats();
        pool.give(pool.take(4));
        assert_eq!(pool.stats().allocated_buffers, before.allocated_buffers);
    }

    #[test]
    fn serves_the_four_routes_over_a_real_socket() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_request(&addr, "GET", "/healthz", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            body.contains("\"ok\"") && body.contains("\"models\":1"),
            "{body}"
        );

        let (status, body) = http_request(&addr, "GET", "/v1/models", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.contains("\"mini\""), "{body}");

        let (status, reply) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: InferReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.model, "mini");
        assert_eq!(reply.dims, vec![4]);
        assert_eq!(reply.output.len(), 4);

        // The same request without explicit dims defaults to the model's.
        let body_no_dims = serde_json::to_string(&InferBody {
            input: vec![0.25f32; 8 * 8 * 4],
            dims: None,
            deadline_ms: None,
        })
        .unwrap();
        let (status, reply2) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&body_no_dims)).unwrap();
        assert_eq!(status, 200);
        let reply2: InferReply = serde_json::from_str(&reply2).unwrap();
        assert_eq!(reply2.output, reply.output, "same input, same logits");

        let (status, metrics) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(
            metrics.contains("\"total_completed_requests\":2"),
            "{metrics}"
        );

        let registry = server.shutdown();
        assert_eq!(registry.metrics().total_completed_requests, 2);
    }

    #[test]
    fn keep_alive_connection_serves_many_requests_and_honors_close() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();
        let mut client = HttpClient::connect(&addr).unwrap();

        // Several sequential requests on one connection.
        for _ in 0..3 {
            let (status, body) = client.request("GET", "/healthz", None).unwrap();
            assert_eq!(status, 200, "{body}");
        }
        let (status, reply) = client
            .request(
                "POST",
                "/v1/models/mini/infer",
                Some(&infer_body(&[8, 8, 4])),
            )
            .unwrap();
        assert_eq!(status, 200, "{reply}");
        assert_eq!(client.requests_sent(), 4);

        // Two pipelined requests written back-to-back before reading either
        // response: the server must answer both, in order, from its
        // connection buffer.
        {
            let (stream, _) = client.raw_parts();
            let addr_text = addr.to_string();
            let one = format!(
                "GET /healthz HTTP/1.1\r\nHost: {addr_text}\r\nContent-Length: 0\r\nConnection: keep-alive\r\n\r\n"
            );
            stream.write_all(format!("{one}{one}").as_bytes()).unwrap();
            stream.flush().unwrap();
        }
        let (stream, buffer) = client.raw_parts();
        let (status_a, _) = read_response(stream, buffer).unwrap();
        let (status_b, _) = read_response(stream, buffer).unwrap();
        assert_eq!((status_a, status_b), (200, 200));

        // An explicit `Connection: close` request ends the loop: the server
        // answers, then closes, so the next read sees EOF.
        let (stream, buffer) = client.raw_parts();
        let addr_text = addr.to_string();
        stream
            .write_all(
                format!(
                    "GET /healthz HTTP/1.1\r\nHost: {addr_text}\r\nContent-Length: 0\r\nConnection: close\r\n\r\n"
                )
                .as_bytes(),
            )
            .unwrap();
        let (status, _) = read_response(stream, buffer).unwrap();
        assert_eq!(status, 200);
        let mut probe = [0u8; 1];
        assert_eq!(
            stream.read(&mut probe).unwrap(),
            0,
            "server must close after Connection: close"
        );

        server.shutdown();
    }

    #[test]
    fn maps_errors_onto_conventional_status_codes() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/ghost/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 404, "{body}");
        assert!(body.contains("ghost"));

        let (status, _) = http_request(&addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        // DELETE is a real (admin) method now, so an unroutable DELETE path
        // is a 404; a method the server does not speak at all stays 405.
        let (status, _) = http_request(&addr, "DELETE", "/healthz", None).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(&addr, "PATCH", "/healthz", None).unwrap();
        assert_eq!(status, 405);

        let (status, body) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some("{not json")).unwrap();
        assert_eq!(status, 400, "{body}");

        // Input length inconsistent with dims: also a client error.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some("{\"input\": [1.0, 2.0, 3.0], \"dims\": [2, 2]}"),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");

        // Wrong shape: parses fine, rejected by the engine's input check.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some(&infer_body(&[2, 2, 2])),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");
        assert!(body.contains("expected"), "{body}");

        // Batched form with no inputs: a client error too.
        let (status, body) = http_request(
            &addr,
            "POST",
            "/v1/models/mini/infer",
            Some("{\"inputs\": []}"),
        )
        .unwrap();
        assert_eq!(status, 400, "{body}");

        server.shutdown();
    }

    #[test]
    fn batched_bodies_ride_one_batch_and_map_expiry_onto_504() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        let body = serde_json::to_string(&BatchInferBody {
            inputs: vec![vec![0.25f32; 8 * 8 * 4]; 3],
            dims: None,
            deadline_ms: None,
        })
        .unwrap();
        let (status, reply) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&body)).unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: BatchInferReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.count, 3);
        assert_eq!(reply.outputs.len(), 3);
        assert_eq!(reply.dims, vec![4]);
        assert_eq!(
            reply.batch_sizes,
            vec![3, 3, 3],
            "the group must ride one executor batch"
        );
        // Identical inputs → identical logits, thrice.
        assert_eq!(reply.outputs[0], reply.outputs[1]);
        assert_eq!(reply.outputs[0], reply.outputs[2]);

        // deadline_ms: 0 expires immediately → 504 Gateway Timeout.
        let expired = serde_json::to_string(&InferBody {
            input: vec![0.25f32; 8 * 8 * 4],
            dims: None,
            deadline_ms: Some(0),
        })
        .unwrap();
        let (status, body) =
            http_request(&addr, "POST", "/v1/models/mini/infer", Some(&expired)).unwrap();
        assert_eq!(status, 504, "{body}");
        assert!(body.contains("deadline exceeded"), "{body}");

        server.shutdown();
    }

    #[test]
    fn route_rejects_nested_and_degenerate_model_paths() {
        let registry = test_registry();
        let (status, _) = route(&registry, "POST", "/v1/models//infer", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models/a/b/infer", "{}");
        assert_eq!(status, 404);
        // The prefix and suffix overlap here; must 404, not panic.
        let (status, _) = route(&registry, "POST", "/v1/models/infer", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models", "{}");
        assert_eq!(status, 404);
        // The admin paths reject the same degenerate forms.
        let (status, _) = route(&registry, "PUT", "/v1/models/", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "PUT", "/v1/models/a/b", "{}");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "DELETE", "/v1/models/", "");
        assert_eq!(status, 404);
        let (status, _) = route(&registry, "POST", "/v1/models//replan", "{}");
        assert_eq!(status, 404);
    }

    #[test]
    fn admin_routes_register_replan_and_retire_on_a_live_server() {
        let server = HttpServer::bind("127.0.0.1:0", test_registry()).unwrap();
        let addr = server.local_addr();

        // PUT a brand-new model on the running server.
        let body = serde_json::to_string(&RegisterBody {
            budget: Some(0.5),
            backend: Some("sim-gpu".to_string()),
            max_batch_size: Some(4),
            max_batch_delay_ms: Some(1),
            ..RegisterBody::for_descriptor(crate::serving_descriptor("http-hot", 12, 8, 10))
        })
        .unwrap();
        let (status, reply) = http_request(&addr, "PUT", "/v1/models/hot", Some(&body)).unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: RegisterReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.registered.name, "hot");
        assert_eq!(reply.registered.backend, "sim-gpu");
        assert_eq!(reply.registered.generation, 1);
        let first_fingerprint = reply.registered.plan_fingerprint.clone();

        // It serves immediately.
        let infer = serde_json::to_string(&InferBody {
            input: vec![0.25f32; 12 * 12 * 8],
            dims: None,
            deadline_ms: None,
        })
        .unwrap();
        let (status, _) =
            http_request(&addr, "POST", "/v1/models/hot/infer", Some(&infer)).unwrap();
        assert_eq!(status, 200);

        // Re-plan at a much more demanding budget: the plan hot-swaps in
        // place (0.9 forces genuinely different rank decisions on a model
        // this small).
        let (status, reply) = http_request(
            &addr,
            "POST",
            "/v1/models/hot/replan",
            Some("{\"budget\": 0.9}"),
        )
        .unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: crate::control::ReplanReport = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.old_budget, 0.5);
        assert_eq!(reply.new_budget, 0.9);
        assert_eq!(reply.generation, 2);
        assert!(reply.plan_changed);
        assert_ne!(reply.new_plan_fingerprint, first_fingerprint);
        assert_eq!(
            reply.drained_completed_requests, 1,
            "the in-flight work on the old plan was served, not dropped"
        );
        let (status, _) =
            http_request(&addr, "POST", "/v1/models/hot/infer", Some(&infer)).unwrap();
        assert_eq!(status, 200, "the new plan serves");

        // Retire it; the reply carries the drained engine's counters and
        // later infers 404.
        let (status, reply) = http_request(&addr, "DELETE", "/v1/models/hot", None).unwrap();
        assert_eq!(status, 200, "{reply}");
        let reply: RetireReply = serde_json::from_str(&reply).unwrap();
        assert_eq!(reply.completed_requests, 1);
        let (status, _) =
            http_request(&addr, "POST", "/v1/models/hot/infer", Some(&infer)).unwrap();
        assert_eq!(status, 404);
        let (status, _) = http_request(&addr, "DELETE", "/v1/models/hot", None).unwrap();
        assert_eq!(status, 404);

        // The lifecycle counters surface in /metrics.
        let (status, metrics) = http_request(&addr, "GET", "/metrics", None).unwrap();
        assert_eq!(status, 200);
        assert!(metrics.contains("\"replans_total\":1"), "{metrics}");
        assert!(metrics.contains("\"models_retired_total\":1"), "{metrics}");
        assert!(metrics.contains("\"plan_cache\""), "{metrics}");

        // Malformed admin bodies are client errors.
        let (status, _) = http_request(&addr, "PUT", "/v1/models/bad", Some("{}")).unwrap();
        assert_eq!(status, 400);
        let (status, _) =
            http_request(&addr, "POST", "/v1/models/mini/replan", Some("{}")).unwrap();
        assert_eq!(status, 400);
        server.shutdown();
    }

    #[test]
    fn overloaded_responses_carry_a_retry_after_header() {
        // One worker stuck waiting out a long batch delay + a queue bound of
        // 2: the third instant submit is a deterministic 429.
        let registry = ModelRegistry::new(2);
        registry
            .register(
                "tiny",
                &serving_descriptor("http-429", 8, 4, 4),
                ModelConfig {
                    batching: BatchingOptions {
                        max_batch_size: 16,
                        max_batch_delay: Duration::from_millis(1200),
                        max_queue_depth: 2,
                        ..BatchingOptions::default()
                    },
                    runtime: crate::RuntimeOptions {
                        workers: 1,
                        ..crate::RuntimeOptions::default()
                    },
                    ..ModelConfig::default()
                },
            )
            .unwrap();
        let server = HttpServer::bind("127.0.0.1:0", Arc::new(registry)).unwrap();
        let addr = server.local_addr();

        let fill = |n: usize| {
            (0..n)
                .map(|_| {
                    server
                        .registry()
                        .submit("tiny", tdc_tensor::Tensor::zeros(vec![8, 8, 4]))
                        .unwrap()
                })
                .collect::<Vec<_>>()
        };
        let pending = fill(2);
        let (status, headers, body) = http_request_with_headers(
            &addr,
            "POST",
            "/v1/models/tiny/infer",
            Some(&infer_body(&[8, 8, 4])),
        )
        .unwrap();
        assert_eq!(status, 429, "{body}");
        let retry_after = headers
            .iter()
            .find(|(name, _)| name == "retry-after")
            .map(|(_, value)| value.parse::<u64>().unwrap());
        assert!(
            matches!(retry_after, Some(secs) if secs >= 1),
            "429 must carry a positive Retry-After, got {headers:?}"
        );
        for p in pending {
            p.wait().unwrap();
        }
        server.shutdown();
    }

    #[test]
    fn admin_bodies_round_trip_with_and_without_optional_fields() {
        let full = RegisterBody {
            budget: Some(0.4),
            rank_step: Some(2),
            theta: Some(0.1),
            device: Some("rtx2080ti".to_string()),
            backend: Some("sim-gpu".to_string()),
            max_batch_size: Some(4),
            max_batch_delay_ms: Some(3),
            max_queue_depth: Some(64),
            default_deadline_ms: Some(250),
            workers: Some(3),
            qos: Some("batch".to_string()),
            seed: Some(42),
            ..RegisterBody::for_descriptor(crate::serving_descriptor("rt", 8, 4, 4))
        };
        let text = serde_json::to_string(&full).unwrap();
        assert_eq!(serde_json::from_str::<RegisterBody>(&text).unwrap(), full);
        let config = full.model_config().unwrap();
        assert_eq!(config.planning.budget, 0.4);
        assert_eq!(config.planning.device.name, "NVIDIA GeForce RTX 2080 Ti");
        assert_eq!(config.runtime.backend, crate::BackendKind::SimGpu);
        assert_eq!(config.runtime.qos, tdc_exec::QosClass::Batch);
        assert_eq!(config.runtime.fair_share_weight(), 3);
        assert_eq!(config.batching.max_queue_depth, 64);
        assert_eq!(
            config.batching.default_deadline,
            Some(Duration::from_millis(250))
        );

        let bare = RegisterBody::for_descriptor(crate::serving_descriptor("rt", 8, 4, 4));
        let text = serde_json::to_string(&bare).unwrap();
        assert!(!text.contains("budget") && !text.contains("workers"));
        assert_eq!(serde_json::from_str::<RegisterBody>(&text).unwrap(), bare);
        assert!(serde_json::from_str::<RegisterBody>("{}").is_err());
        assert!(RegisterBody {
            device: Some("tpu".into()),
            ..bare.clone()
        }
        .model_config()
        .is_err());
        assert!(RegisterBody {
            backend: Some("npu".into()),
            ..bare.clone()
        }
        .model_config()
        .is_err());
        assert!(RegisterBody {
            qos: Some("urgent".into()),
            ..bare
        }
        .model_config()
        .is_err());

        let replan = ReplanBody {
            budget: 0.25,
            rank_step: None,
            theta: Some(0.05),
        };
        let text = serde_json::to_string(&replan).unwrap();
        assert_eq!(serde_json::from_str::<ReplanBody>(&text).unwrap(), replan);
        assert!(serde_json::from_str::<ReplanBody>("{}").is_err());

        let tune = AutotuneBody {
            target_p99_ms: 12.5,
            min_budget: None,
            max_budget: Some(0.8),
            resolution: None,
            apply: Some(false),
        };
        let text = serde_json::to_string(&tune).unwrap();
        assert_eq!(serde_json::from_str::<AutotuneBody>(&text).unwrap(), tune);
        let request = tune.request();
        assert_eq!(request.min_budget, 0.02, "defaults fill the gaps");
        assert_eq!(request.max_budget, Some(0.8));
        assert!(!request.apply);
        assert!(serde_json::from_str::<AutotuneBody>("{}").is_err());
    }

    #[test]
    fn infer_bodies_round_trip_with_and_without_optional_fields() {
        let with = InferBody {
            input: vec![1.5, -2.25],
            dims: Some(vec![2]),
            deadline_ms: Some(250),
        };
        let text = serde_json::to_string(&with).unwrap();
        assert!(text.contains("deadline_ms"));
        assert_eq!(serde_json::from_str::<InferBody>(&text).unwrap(), with);
        let without = InferBody {
            input: vec![0.5],
            dims: None,
            deadline_ms: None,
        };
        let text = serde_json::to_string(&without).unwrap();
        assert!(!text.contains("dims") && !text.contains("deadline_ms"));
        assert_eq!(serde_json::from_str::<InferBody>(&text).unwrap(), without);
        assert!(serde_json::from_str::<InferBody>("{}").is_err());

        let batch = BatchInferBody {
            inputs: vec![vec![1.0], vec![2.0]],
            dims: Some(vec![1]),
            deadline_ms: None,
        };
        let text = serde_json::to_string(&batch).unwrap();
        assert_eq!(
            serde_json::from_str::<BatchInferBody>(&text).unwrap(),
            batch
        );
        assert!(serde_json::from_str::<BatchInferBody>("{}").is_err());
    }
}
