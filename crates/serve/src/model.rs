//! The serving executor: a compressed network materialized with real weights,
//! running real CPU forward passes.
//!
//! A [`CompressedModel`] is built from a model descriptor plus the per-layer
//! decisions of a [`tdc::CompressionPlan`]:
//!
//! * layers the plan **keeps dense** execute through `tdc-conv`'s algorithm
//!   zoo (im2col+GEMM by default — the library path the paper keeps for
//!   "other layers" — with direct / Winograd / FFT selectable per deployment);
//! * layers the plan **decomposes** execute the paper's three-stage Tucker-2
//!   pipeline (1×1 → R×S core → 1×1) via [`tdc_tucker::TuckerConv`], with the
//!   factors obtained by Tucker-2 decomposition of the materialized kernel.
//!
//! Weights are drawn from a seeded RNG, so a `(descriptor, plan, seed)`
//! triple always materializes the identical network — the property the
//! serving tests lean on for deterministic batched outputs.

use crate::arena::ScratchArena;
use crate::{Result, ServeError};
use rand::rngs::StdRng;
use rand::SeedableRng;
use tdc::rank_select::Decision;
use tdc::CompressionPlan;
use tdc_conv::{direct, im2col, ConvShape, CpuConvAlgorithm};
use tdc_nn::models::ModelDescriptor;
use tdc_tensor::matmul::{gemm_blocked_into, matmul};
use tdc_tensor::{init, Tensor};
use tdc_tucker::tkd::tucker2;
use tdc_tucker::TuckerConv;

/// Which CPU algorithm executes the kept (dense) convolutions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseAlgorithm {
    /// Seven-loop direct convolution (reference).
    Direct,
    /// im2col + GEMM (the default; mirrors the library path).
    Im2col,
    /// Winograd F(2×2, 3×3) — stride-1 3×3 layers only.
    Winograd,
    /// FFT-based convolution.
    Fft,
}

impl DenseAlgorithm {
    /// The `tdc-conv` dispatch-surface algorithm this deployment choice maps
    /// to.
    pub fn conv_algorithm(&self) -> CpuConvAlgorithm {
        match self {
            DenseAlgorithm::Direct => CpuConvAlgorithm::Direct,
            DenseAlgorithm::Im2col => CpuConvAlgorithm::Im2col,
            DenseAlgorithm::Winograd => CpuConvAlgorithm::Winograd,
            DenseAlgorithm::Fft => CpuConvAlgorithm::Fft,
        }
    }

    fn run(&self, input: &Tensor, kernel: &Tensor, shape: &ConvShape) -> Result<Tensor> {
        Ok(tdc_conv::dispatch(
            self.conv_algorithm(),
            input,
            kernel,
            shape,
        )?)
    }
}

/// One executable layer of the compressed network.
enum LayerExec {
    /// Kept dense: original CNRS kernel, run through the algorithm zoo. The
    /// `(C·R·S) × N` GEMM operand (`kmat`) is cached at materialization so
    /// the per-request im2col path never rebuilds it.
    Dense {
        shape: ConvShape,
        kernel: Tensor,
        kmat: Tensor,
    },
    /// Decomposed: the three-stage Tucker-2 convolution. The core kernel is
    /// additionally cached in RSCN layout so the arena hot path runs the
    /// vectorised [`direct::conv2d_rscn_into`] form.
    Tucker {
        conv: Box<TuckerConv>,
        core_rscn: Tensor,
    },
}

/// A compressed network materialized for serving.
pub struct CompressedModel {
    /// Name copied from the descriptor.
    pub name: String,
    layers: Vec<LayerExec>,
    /// FC weight matrices, `in_features × out_features` each.
    fc: Vec<Tensor>,
    dense_algorithm: DenseAlgorithm,
    input_dims: Vec<usize>,
    output_classes: usize,
    decomposed_layers: usize,
}

impl CompressedModel {
    /// Materialize the network for `descriptor` following `plan`'s per-layer
    /// decisions, drawing weights from a RNG seeded with `seed`.
    ///
    /// The descriptor must form a sequential chain (each convolution consumes
    /// the previous one's output) and the plan must have been produced for
    /// this descriptor.
    pub fn materialize(
        descriptor: &ModelDescriptor,
        plan: &CompressionPlan,
        seed: u64,
    ) -> Result<Self> {
        Self::materialize_with(descriptor, plan, seed, DenseAlgorithm::Im2col)
    }

    /// [`CompressedModel::materialize`] with an explicit dense algorithm.
    pub fn materialize_with(
        descriptor: &ModelDescriptor,
        plan: &CompressionPlan,
        seed: u64,
        dense_algorithm: DenseAlgorithm,
    ) -> Result<Self> {
        if plan.decisions.len() != descriptor.convs.len() {
            return Err(ServeError::BadConfig {
                reason: format!(
                    "plan covers {} layers but descriptor has {}",
                    plan.decisions.len(),
                    descriptor.convs.len()
                ),
            });
        }
        for (i, pair) in descriptor.convs.windows(2).enumerate() {
            if pair[0].output_dims() != pair[1].input_dims() {
                return Err(ServeError::NotAChain {
                    layer_index: i + 1,
                    reason: format!(
                        "layer {} produces {:?} but layer {} consumes {:?}",
                        i,
                        pair[0].output_dims(),
                        i + 1,
                        pair[1].input_dims()
                    ),
                });
            }
        }
        let last_channels = match descriptor.convs.last() {
            Some(shape) => shape.n,
            None => {
                return Err(ServeError::BadConfig {
                    reason: "descriptor has no convolutions".into(),
                })
            }
        };
        if let Some(&(fc_in, _)) = descriptor.fc.first() {
            if fc_in != last_channels {
                return Err(ServeError::NotAChain {
                    layer_index: descriptor.convs.len(),
                    reason: format!(
                        "global average pooling yields {last_channels} features but the first FC layer consumes {fc_in}"
                    ),
                });
            }
        }

        let mut rng = StdRng::seed_from_u64(seed);
        let mut layers = Vec::with_capacity(descriptor.convs.len());
        let mut decomposed_layers = 0usize;
        for (shape, decision) in descriptor.convs.iter().zip(plan.decisions.iter()) {
            if decision.shape != *shape {
                return Err(ServeError::BadConfig {
                    reason: format!(
                        "plan decision for layer {} is for shape {} but the descriptor has {}",
                        decision.layer_index, decision.shape, shape
                    ),
                });
            }
            // Xavier-style scale keeps activations bounded through the chain.
            let fan = (shape.c * shape.r * shape.s) as f32;
            let bound = (3.0 / fan).sqrt();
            let kernel = init::uniform(shape.kernel_dims(), -bound, bound, &mut rng);
            layers.push(match decision.decision {
                Decision::Keep { .. } => LayerExec::Dense {
                    shape: *shape,
                    kmat: im2col::kernel_matrix(&kernel, shape)?,
                    kernel,
                },
                Decision::Decompose { rank, .. } => {
                    let factors = tucker2(&kernel, rank.d1, rank.d2)?;
                    decomposed_layers += 1;
                    let conv = Box::new(TuckerConv::from_factors(*shape, &factors)?);
                    let core_rscn = tdc_conv::layout::cnrs_to_rscn(&conv.core)?;
                    LayerExec::Tucker { conv, core_rscn }
                }
            });
        }

        let mut fc = Vec::with_capacity(descriptor.fc.len());
        let mut features = last_channels;
        for &(fc_in, fc_out) in &descriptor.fc {
            if fc_in != features {
                return Err(ServeError::NotAChain {
                    layer_index: descriptor.convs.len(),
                    reason: format!("FC layer consumes {fc_in} features but receives {features}"),
                });
            }
            let bound = (3.0 / fc_in as f32).sqrt();
            fc.push(init::uniform(vec![fc_in, fc_out], -bound, bound, &mut rng));
            features = fc_out;
        }

        Ok(CompressedModel {
            name: descriptor.name.clone(),
            input_dims: descriptor.convs[0].input_dims(),
            layers,
            fc,
            dense_algorithm,
            output_classes: features,
            decomposed_layers,
        })
    }

    /// Expected HWC input dims.
    pub fn input_dims(&self) -> &[usize] {
        &self.input_dims
    }

    /// Number of output logits.
    pub fn output_classes(&self) -> usize {
        self.output_classes
    }

    /// How many layers run in Tucker-decomposed form.
    pub fn decomposed_layers(&self) -> usize {
        self.decomposed_layers
    }

    /// Total parameter count actually held by the executor (decomposed layers
    /// store factors, not the dense kernel).
    pub fn num_params(&self) -> usize {
        let conv: usize = self
            .layers
            .iter()
            .map(|l| match l {
                LayerExec::Dense { kernel, .. } => kernel.numel(),
                LayerExec::Tucker { conv, .. } => conv.num_params(),
            })
            .sum();
        let fc: usize = self.fc.iter().map(Tensor::numel).sum();
        conv + fc
    }

    /// Run one sample (HWC) through the network: convolution chain, global
    /// average pooling, FC layers. Returns the logits.
    pub fn forward(&self, input: &Tensor) -> Result<Tensor> {
        if input.dims() != self.input_dims.as_slice() {
            return Err(ServeError::BadInput {
                expected: self.input_dims.clone(),
                actual: input.dims().to_vec(),
            });
        }
        let mut x = input.clone();
        for layer in &self.layers {
            x = match layer {
                LayerExec::Dense { shape, kernel, .. } => {
                    self.dense_algorithm.run(&x, kernel, shape)?
                }
                LayerExec::Tucker { conv, .. } => conv.forward(&x)?,
            };
        }
        // Global average pooling: HWC -> C.
        let dims = x.dims().to_vec();
        let (h, w, c) = (dims[0], dims[1], dims[2]);
        let data = x.data();
        let mut pooled = vec![0.0f32; c];
        for pos in 0..h * w {
            for (ch, p) in pooled.iter_mut().enumerate() {
                *p += data[pos * c + ch];
            }
        }
        let scale = 1.0 / (h * w) as f32;
        for p in &mut pooled {
            *p *= scale;
        }
        let mut features = Tensor::from_vec(vec![1, c], pooled)?;
        for weights in &self.fc {
            features = matmul(&features, weights)?;
        }
        features
            .reshape(vec![self.output_classes])
            .map_err(Into::into)
    }

    /// [`CompressedModel::forward`] staging every intermediate — im2col patch
    /// matrices, Tucker stage outputs, pooled features and the returned
    /// logits — in `arena` instead of allocating.
    ///
    /// Bit-identical to [`CompressedModel::forward`]: each stage runs the
    /// same kernel ([`gemm_blocked_into`], [`direct::conv2d_into`],
    /// [`im2col::im2col_into`]) on the same operands in the same order, only
    /// the buffers' provenance differs. Dense layers use the `kmat` cached at
    /// materialization (the same [`im2col::kernel_matrix`] reordering, so the
    /// same values). On a warm arena this path performs zero f32 allocations;
    /// the returned tensor's storage comes from the pool and is expected to
    /// be recycled by the caller once serialized.
    ///
    /// Only the im2col dense algorithm has a staged form; other deployments
    /// fall back to [`CompressedModel::forward`].
    pub fn forward_in(&self, input: &Tensor, arena: &mut ScratchArena) -> Result<Tensor> {
        if self.dense_algorithm != DenseAlgorithm::Im2col {
            return self.forward(input);
        }
        if input.dims() != self.input_dims.as_slice() {
            return Err(ServeError::BadInput {
                expected: self.input_dims.clone(),
                actual: input.dims().to_vec(),
            });
        }

        // Current activation: `None` means "still the caller's input", which
        // avoids copying the input tensor into the arena.
        let mut cur: Option<Vec<f32>> = None;
        let (mut h, mut w, mut c) = (self.input_dims[0], self.input_dims[1], self.input_dims[2]);
        for layer in &self.layers {
            let src: &[f32] = cur.as_deref().unwrap_or_else(|| input.data());
            let next = match layer {
                LayerExec::Dense { shape, kmat, .. } => {
                    let m = shape.out_h() * shape.out_w();
                    let kdim = shape.c * shape.r * shape.s;
                    // im2col writes every patch slot and the GEMM overwrites
                    // `out`, so neither buffer needs the zero-fill.
                    let mut patches = arena.take_full(m * kdim);
                    im2col::im2col_into(src, &mut patches, shape);
                    let mut out = arena.take_full(m * shape.n);
                    gemm_blocked_into(&patches, kmat.data(), &mut out, m, kdim, shape.n);
                    arena.give(patches);
                    (h, w, c) = (shape.out_h(), shape.out_w(), shape.n);
                    out
                }
                LayerExec::Tucker { conv: t, core_rscn } => {
                    // Stage 1: 1×1 channel reduction, a (H·W × C)·(C × D1)
                    // GEMM — exactly what `conv1x1` lowers to.
                    let d1 = t.u1.dims()[1];
                    let mut z1 = arena.take_full(h * w * d1);
                    gemm_blocked_into(src, t.u1.data(), &mut z1, h * w, c, d1);
                    // Stage 2: R×S core convolution in the rank space, run
                    // against the RSCN copy of the core cached at
                    // materialization (same values, same accumulation order,
                    // vectorisable layout).
                    let core_shape = t.core_shape();
                    let (oh, ow, d2) = (core_shape.out_h(), core_shape.out_w(), core_shape.n);
                    // `z2` must be zero-filled: the core conv accumulates
                    // into it rather than overwriting.
                    let mut z2 = arena.take(oh * ow * d2);
                    direct::conv2d_rscn_into(&z1, core_rscn.data(), &mut z2, &core_shape);
                    arena.give(z1);
                    // Stage 3: 1×1 channel restoration.
                    let n = t.u2_t.dims()[1];
                    let mut out = arena.take_full(oh * ow * n);
                    gemm_blocked_into(&z2, t.u2_t.data(), &mut out, oh * ow, d2, n);
                    arena.give(z2);
                    (h, w, c) = (oh, ow, n);
                    out
                }
            };
            if let Some(prev) = cur.take() {
                arena.give(prev);
            }
            cur = Some(next);
        }

        // Global average pooling: HWC -> C. Same accumulation loop as
        // `forward`.
        let data: &[f32] = cur.as_deref().unwrap_or_else(|| input.data());
        // `pooled` is an accumulator — it needs the zeroing take.
        let mut pooled = arena.take(c);
        for pos in 0..h * w {
            for (ch, p) in pooled.iter_mut().enumerate() {
                *p += data[pos * c + ch];
            }
        }
        let scale = 1.0 / (h * w) as f32;
        for p in &mut pooled {
            *p *= scale;
        }
        if let Some(prev) = cur.take() {
            arena.give(prev);
        }

        let mut features = pooled;
        let mut width = c;
        for weights in &self.fc {
            let fc_out = weights.dims()[1];
            let mut out = arena.take_full(fc_out);
            gemm_blocked_into(&features, weights.data(), &mut out, 1, width, fc_out);
            arena.give(features);
            features = out;
            width = fc_out;
        }
        debug_assert_eq!(width, self.output_classes);
        Ok(Tensor::from_vec(vec![self.output_classes], features)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serving_descriptor;
    use tdc::rank_select::RankSelectionConfig;
    use tdc::tiling::TilingStrategy;
    use tdc::TdcPipeline;
    use tdc_gpu_sim::DeviceSpec;

    fn small_plan(descriptor: &ModelDescriptor) -> CompressionPlan {
        let pipeline = TdcPipeline::new(DeviceSpec::a100(), TilingStrategy::Model);
        let cfg = RankSelectionConfig {
            budget: 0.5,
            theta: 0.0,
            strategy: TilingStrategy::Model,
            rank_step: 4,
        };
        pipeline.plan_with_config(descriptor, &cfg).unwrap()
    }

    #[test]
    fn materialized_model_runs_and_compresses_some_layers() {
        let descriptor = serving_descriptor("svc", 12, 8, 10);
        let plan = small_plan(&descriptor);
        let model = CompressedModel::materialize(&descriptor, &plan, 7).unwrap();
        assert!(
            model.decomposed_layers() > 0,
            "expected at least one Tucker layer"
        );
        assert_eq!(model.input_dims(), &[12, 12, 8]);
        assert_eq!(model.output_classes(), 10);

        let mut rng = StdRng::seed_from_u64(3);
        let input = init::uniform(vec![12, 12, 8], -1.0, 1.0, &mut rng);
        let logits = model.forward(&input).unwrap();
        assert_eq!(logits.dims(), &[10]);
        assert!(logits.is_finite());
    }

    #[test]
    fn same_seed_materializes_identical_outputs() {
        let descriptor = serving_descriptor("svc", 10, 4, 6);
        let plan = small_plan(&descriptor);
        let a = CompressedModel::materialize(&descriptor, &plan, 11).unwrap();
        let b = CompressedModel::materialize(&descriptor, &plan, 11).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let input = init::uniform(vec![10, 10, 4], -1.0, 1.0, &mut rng);
        assert_eq!(a.forward(&input).unwrap(), b.forward(&input).unwrap());
        // A different seed gives a genuinely different network.
        let c = CompressedModel::materialize(&descriptor, &plan, 12).unwrap();
        assert_ne!(a.forward(&input).unwrap(), c.forward(&input).unwrap());
    }

    #[test]
    fn dense_algorithms_agree_on_kept_layers() {
        let descriptor = serving_descriptor("svc", 8, 4, 5);
        let plan = small_plan(&descriptor);
        let mut rng = StdRng::seed_from_u64(9);
        let input = init::uniform(vec![8, 8, 4], -1.0, 1.0, &mut rng);
        let reference =
            CompressedModel::materialize_with(&descriptor, &plan, 2, DenseAlgorithm::Direct)
                .unwrap()
                .forward(&input)
                .unwrap();
        for algorithm in [
            DenseAlgorithm::Im2col,
            DenseAlgorithm::Winograd,
            DenseAlgorithm::Fft,
        ] {
            let model =
                CompressedModel::materialize_with(&descriptor, &plan, 2, algorithm).unwrap();
            let got = model.forward(&input).unwrap();
            assert!(
                got.relative_error(&reference).unwrap() < 1e-3,
                "{algorithm:?} disagrees with the direct reference"
            );
        }
    }

    #[test]
    fn arena_forward_is_bit_identical_to_plain_forward() {
        use crate::arena::{BufferPool, ScratchArena};
        use std::sync::Arc;

        let descriptor = serving_descriptor("svc", 12, 8, 10);
        let plan = small_plan(&descriptor);
        let model = CompressedModel::materialize(&descriptor, &plan, 7).unwrap();
        let mut arena = ScratchArena::new(Arc::new(BufferPool::new()));
        let mut rng = StdRng::seed_from_u64(17);
        for _ in 0..3 {
            let input = init::uniform(vec![12, 12, 8], -1.0, 1.0, &mut rng);
            let plain = model.forward(&input).unwrap();
            let staged = model.forward_in(&input, &mut arena).unwrap();
            assert_eq!(plain, staged, "arena forward diverged bitwise");
            // Recycle the output like the production loop does.
            arena.give(staged.into_data());
        }
    }

    #[test]
    fn arena_forward_falls_back_for_non_im2col_deployments() {
        use crate::arena::{BufferPool, ScratchArena};
        use std::sync::Arc;

        let descriptor = serving_descriptor("svc", 8, 4, 5);
        let plan = small_plan(&descriptor);
        let model =
            CompressedModel::materialize_with(&descriptor, &plan, 2, DenseAlgorithm::Direct)
                .unwrap();
        let mut rng = StdRng::seed_from_u64(23);
        let input = init::uniform(vec![8, 8, 4], -1.0, 1.0, &mut rng);
        let mut arena = ScratchArena::new(Arc::new(BufferPool::new()));
        assert_eq!(
            model.forward(&input).unwrap(),
            model.forward_in(&input, &mut arena).unwrap()
        );
    }

    #[test]
    fn tucker_params_are_fewer_than_dense() {
        let descriptor = serving_descriptor("svc", 12, 8, 10);
        let plan = small_plan(&descriptor);
        let model = CompressedModel::materialize(&descriptor, &plan, 7).unwrap();
        assert!(model.num_params() < descriptor.total_params());
    }

    #[test]
    fn bad_inputs_and_mismatched_plans_are_rejected() {
        let descriptor = serving_descriptor("svc", 10, 4, 6);
        let plan = small_plan(&descriptor);
        let model = CompressedModel::materialize(&descriptor, &plan, 1).unwrap();
        assert!(model.forward(&Tensor::zeros(vec![10, 10, 3])).is_err());

        let other = serving_descriptor("other", 12, 4, 6);
        assert!(matches!(
            CompressedModel::materialize(&other, &plan, 1),
            Err(ServeError::BadConfig { .. })
        ));

        // A non-chain descriptor is rejected up front.
        let broken = ModelDescriptor {
            name: "broken".into(),
            convs: vec![
                ConvShape::same3x3(4, 8, 10, 10),
                ConvShape::same3x3(4, 8, 10, 10),
            ],
            fc: vec![(8, 3)],
        };
        let broken_plan = small_plan(&broken);
        assert!(matches!(
            CompressedModel::materialize(&broken, &broken_plan, 1),
            Err(ServeError::NotAChain { .. })
        ));
    }
}
