//! Size-classed f32 buffer pooling for the zero-allocation serving hot path.
//!
//! A [`BufferPool`] owns recycled `Vec<f32>` buffers grouped into
//! power-of-two size classes; a [`ScratchArena`] is the thin per-worker
//! handle the execution API threads through
//! [`crate::backend::ExecutionBackend::forward_batch_in`]. Once a worker has
//! processed enough requests to populate its classes, every staging buffer on
//! the CPU path — im2col patch matrices, Tucker intermediates, pooled
//! features, output tensors, even the parsed HTTP input — is a pool hit, and
//! steady-state serving performs **zero** per-request f32 allocations. The
//! pool's telemetry ([`PoolStats`], surfaced per engine via
//! [`crate::ServeEngine::pool_stats`] and recorded in `serve_bench`'s
//! `kernels` artifact section) pins that property in tests: a warm pool shows
//! stable `allocated_buffers` / `high_water_f32` across batches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Buffers per size class retained before further returns are dropped, for
/// classes at or above [`BIN_F32_BUDGET`]`/`[`MAX_BIN_DEPTH`] capacity.
const MAX_BIN_DEPTH: usize = 64;
/// Retained-capacity budget (in f32s) that sets the depth of *small* size
/// classes: a class may hold up to `BIN_F32_BUDGET / capacity` buffers, so
/// tiny buffers (e.g. response vectors a burst of clients consumes late) get
/// deep, cheap bins while large staging buffers stay capped at
/// [`MAX_BIN_DEPTH`]. Depth never exceeds [`MAX_SMALL_BIN_DEPTH`].
const BIN_F32_BUDGET: usize = 1 << 20;
/// Hard depth cap for the smallest classes.
const MAX_SMALL_BIN_DEPTH: usize = 1024;
/// Number of power-of-two size classes (class `i` holds capacity `2^i`).
const CLASSES: usize = usize::BITS as usize;

/// Cumulative telemetry for one [`BufferPool`]. Serializable so the
/// registry can surface every engine's arena behavior in `/metrics`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub struct PoolStats {
    /// Fresh `Vec<f32>` allocations performed by the pool (monotonic).
    pub allocated_buffers: u64,
    /// Total f32 capacity freshly allocated by the pool (monotonic).
    pub allocated_f32: u64,
    /// Maximum f32 capacity simultaneously checked out of the pool.
    pub high_water_f32: u64,
    /// Total [`BufferPool::take`] calls (monotonic).
    pub takes: u64,
    /// [`BufferPool::take`] calls satisfied by a recycled buffer (monotonic).
    pub hits: u64,
}

/// Thread-safe pool of recycled f32 buffers in power-of-two size classes.
///
/// [`BufferPool::take`] returns a **zero-filled** buffer of exactly the
/// requested length (rounded up to a power-of-two capacity), either recycled
/// or freshly allocated; [`BufferPool::give`] returns a buffer for reuse.
/// Buffers that did not originate here are accepted too — their capacity is
/// classified by its largest contained power of two.
#[derive(Debug, Default)]
pub struct BufferPool {
    bins: Mutex<Vec<Vec<Vec<f32>>>>,
    allocated_buffers: AtomicUsize,
    allocated_f32: AtomicUsize,
    outstanding_f32: AtomicUsize,
    high_water_f32: AtomicUsize,
    takes: AtomicUsize,
    hits: AtomicUsize,
}

impl BufferPool {
    /// Create an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Size class for a requested length: smallest power of two ≥ `len`.
    fn take_class(len: usize) -> usize {
        len.next_power_of_two().trailing_zeros() as usize
    }

    /// Size class a returned capacity belongs to: largest power of two ≤ it.
    fn give_class(capacity: usize) -> usize {
        (usize::BITS - 1 - capacity.leading_zeros()) as usize
    }

    /// Take a zero-filled buffer of exactly `len` elements.
    pub fn take(&self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        self.takes.fetch_add(1, Ordering::Relaxed);
        let class = Self::take_class(len);
        let recycled = {
            let mut bins = self.bins.lock().expect("buffer pool poisoned");
            bins.get_mut(class).and_then(Vec::pop)
        };
        let mut buf = match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                let capacity = 1usize << class;
                self.allocated_buffers.fetch_add(1, Ordering::Relaxed);
                self.allocated_f32.fetch_add(capacity, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        };
        buf.clear();
        buf.resize(len, 0.0);
        let outstanding = self
            .outstanding_f32
            .fetch_add(buf.capacity(), Ordering::Relaxed)
            + buf.capacity();
        self.high_water_f32
            .fetch_max(outstanding, Ordering::Relaxed);
        buf
    }

    /// Take a buffer of exactly `len` elements whose contents are
    /// **unspecified** (recycled buffers keep their previous values).
    ///
    /// For consumers that overwrite every element before reading any —
    /// overwrite-semantics GEMM outputs, im2col patch matrices, parse
    /// staging. Using it for a buffer that is *accumulated into* (or only
    /// partially written) would leak stale values into results; [`take`] is
    /// the safe default. Skipping the zero-fill matters: the im2col patch
    /// matrix alone is hundreds of KB per request.
    ///
    /// [`take`]: BufferPool::take
    pub fn take_full(&self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        self.takes.fetch_add(1, Ordering::Relaxed);
        let class = Self::take_class(len);
        let recycled = {
            let mut bins = self.bins.lock().expect("buffer pool poisoned");
            bins.get_mut(class).and_then(Vec::pop)
        };
        let mut buf = match recycled {
            Some(buf) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                buf
            }
            None => {
                let capacity = 1usize << class;
                self.allocated_buffers.fetch_add(1, Ordering::Relaxed);
                self.allocated_f32.fetch_add(capacity, Ordering::Relaxed);
                Vec::with_capacity(capacity)
            }
        };
        if buf.len() > len {
            buf.truncate(len);
        } else {
            // Zero-fills only the gap past the recycled length (everything,
            // on a fresh allocation).
            buf.resize(len, 0.0);
        }
        let outstanding = self
            .outstanding_f32
            .fetch_add(buf.capacity(), Ordering::Relaxed)
            + buf.capacity();
        self.high_water_f32
            .fetch_max(outstanding, Ordering::Relaxed);
        buf
    }

    /// Return a buffer for reuse. Buffers beyond the per-class retention
    /// depth (or with zero capacity) are simply dropped.
    pub fn give(&self, buf: Vec<f32>) {
        let capacity = buf.capacity();
        if capacity == 0 {
            return;
        }
        // Saturating: foreign buffers (e.g. serde-parsed request vectors)
        // may be given without ever having been taken.
        let _ = self
            .outstanding_f32
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(capacity))
            });
        let class = Self::give_class(capacity);
        let mut bins = self.bins.lock().expect("buffer pool poisoned");
        if bins.len() <= class {
            bins.resize_with(class.min(CLASSES - 1) + 1, Vec::new);
        }
        let bin = &mut bins[class];
        let depth = (BIN_F32_BUDGET >> class).clamp(MAX_BIN_DEPTH, MAX_SMALL_BIN_DEPTH);
        if bin.len() < depth {
            bin.push(buf);
        }
    }

    /// Snapshot of the pool's cumulative telemetry.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            allocated_buffers: self.allocated_buffers.load(Ordering::Relaxed) as u64,
            allocated_f32: self.allocated_f32.load(Ordering::Relaxed) as u64,
            high_water_f32: self.high_water_f32.load(Ordering::Relaxed) as u64,
            takes: self.takes.load(Ordering::Relaxed) as u64,
            hits: self.hits.load(Ordering::Relaxed) as u64,
        }
    }
}

/// Per-worker handle over a shared [`BufferPool`] — the arena the execution
/// API threads through the backend so kernels can stage scratch data without
/// allocating.
///
/// The handle is deliberately thin: buffers taken from any arena may be given
/// back through any other arena (or the pool itself), which is exactly what
/// happens when a worker-produced output tensor is recycled by the HTTP
/// handler that serialized it.
#[derive(Debug, Clone)]
pub struct ScratchArena {
    pool: Arc<BufferPool>,
}

impl ScratchArena {
    /// Create an arena over a shared pool.
    pub fn new(pool: Arc<BufferPool>) -> Self {
        ScratchArena { pool }
    }

    /// Take a zero-filled buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        self.pool.take(len)
    }

    /// Take a buffer of exactly `len` elements with unspecified contents —
    /// only for consumers that overwrite every element; see
    /// [`BufferPool::take_full`].
    pub fn take_full(&mut self, len: usize) -> Vec<f32> {
        self.pool.take_full(len)
    }

    /// Return a buffer for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        self.pool.give(buf);
    }

    /// The shared pool backing this arena.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_zero_fills_and_rounds_capacity_up() {
        let pool = BufferPool::new();
        let buf = pool.take(5);
        assert_eq!(buf.len(), 5);
        assert_eq!(buf.capacity(), 8);
        assert!(buf.iter().all(|&v| v == 0.0));
        let empty = pool.take(0);
        assert!(empty.is_empty());
        assert_eq!(empty.capacity(), 0);
    }

    #[test]
    fn recycled_buffers_are_rezeroed() {
        let pool = BufferPool::new();
        let mut buf = pool.take(6);
        buf.iter_mut().for_each(|v| *v = 3.5);
        pool.give(buf);
        let again = pool.take(6);
        assert!(again.iter().all(|&v| v == 0.0));
        let stats = pool.stats();
        assert_eq!(stats.allocated_buffers, 1);
        assert_eq!(stats.takes, 2);
        assert_eq!(stats.hits, 1);
    }

    #[test]
    fn take_full_skips_the_zero_fill_but_counts_stats() {
        let pool = BufferPool::new();
        let mut buf = pool.take(8);
        buf.iter_mut().for_each(|v| *v = 2.0);
        pool.give(buf);
        let again = pool.take_full(8);
        assert_eq!(again.len(), 8);
        // Contents are unspecified; with a same-length recycled buffer the
        // previous values survive — the zero-fill really was skipped.
        assert!(again.iter().all(|&v| v == 2.0));
        let stats = pool.stats();
        assert_eq!(stats.allocated_buffers, 1);
        assert_eq!(stats.takes, 2);
        assert_eq!(stats.hits, 1);
        // A fresh allocation still yields exactly `len` elements.
        let fresh = pool.take_full(12);
        assert_eq!(fresh.len(), 12);
        assert_eq!(fresh.capacity(), 16);
    }

    #[test]
    fn warm_pool_allocates_nothing_and_high_water_is_stable() {
        let pool = BufferPool::new();
        for _ in 0..3 {
            let a = pool.take(100);
            let b = pool.take(17);
            pool.give(a);
            pool.give(b);
        }
        let warm = pool.stats();
        for _ in 0..10 {
            let a = pool.take(100);
            let b = pool.take(17);
            pool.give(a);
            pool.give(b);
        }
        let after = pool.stats();
        assert_eq!(after.allocated_buffers, warm.allocated_buffers);
        assert_eq!(after.allocated_f32, warm.allocated_f32);
        assert_eq!(after.high_water_f32, warm.high_water_f32);
        assert_eq!(after.hits - warm.hits, 20);
    }

    #[test]
    fn different_size_classes_do_not_alias() {
        let pool = BufferPool::new();
        pool.give(vec![0.0; 64]);
        // 65 needs a 128-capacity class; the 64-capacity buffer must not be
        // returned for it.
        let buf = pool.take(65);
        assert!(buf.capacity() >= 128);
        // But a 64-element request is a hit.
        let hit = pool.take(64);
        assert_eq!(hit.capacity(), 64);
        assert_eq!(pool.stats().hits, 1);
    }

    #[test]
    fn foreign_buffers_are_classified_by_floor_power_of_two() {
        let pool = BufferPool::new();
        let mut foreign = Vec::with_capacity(100);
        foreign.resize(100, 1.0f32);
        pool.give(foreign);
        // capacity 100 floors to class 64: serves take(<=64) requests.
        let buf = pool.take(33);
        assert_eq!(pool.stats().hits, 1);
        assert!(buf.capacity() >= 64);
    }

    #[test]
    fn arena_handles_share_one_pool() {
        let pool = Arc::new(BufferPool::new());
        let mut a = ScratchArena::new(Arc::clone(&pool));
        let mut b = a.clone();
        let buf = a.take(32);
        b.give(buf);
        let again = b.take(32);
        assert_eq!(again.capacity(), 32);
        assert_eq!(pool.stats().hits, 1);
    }
}
